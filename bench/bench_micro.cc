// Google-benchmark microbenchmarks: compile-time cost of the analyses and
// allocators themselves (the paper notes CPA-RA's worst case is exponential
// but that real critical graphs are tiny — these timings quantify that).
#include <benchmark/benchmark.h>

#include "analysis/model.h"
#include "analysis/periodic.h"
#include "core/cpa_ra.h"
#include "core/frontier.h"
#include "core/knapsack.h"
#include "core/optimal.h"
#include "dfg/cuts.h"
#include "ir/parser.h"
#include "kernels/kernels.h"
#include "sched/cycle_model.h"
#include "sim/machine.h"

namespace {

using namespace srra;

Kernel kernel_by_index(int index) {
  switch (index) {
    case 0: return kernels::paper_example();
    case 1: return kernels::fir();
    case 2: return kernels::dec_fir();
    case 3: return kernels::mat();
    case 4: return kernels::imi();
    case 5: return kernels::pat();
    default: return kernels::bic();
  }
}

const char* kernel_name(int index) {
  static const char* names[] = {"example", "fir", "dec_fir", "mat", "imi", "pat", "bic"};
  return names[index];
}

void BM_ParseKernel(benchmark::State& state) {
  const std::string source = kernels::kernel_source(kernel_name(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_kernel(source));
  }
}
BENCHMARK(BM_ParseKernel)->DenseRange(0, 6);

void BM_ReuseAnalysis(benchmark::State& state) {
  const Kernel kernel = kernel_by_index(static_cast<int>(state.range(0)));
  const auto groups = collect_ref_groups(kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_all_reuse(kernel, groups));
  }
}
BENCHMARK(BM_ReuseAnalysis)->DenseRange(0, 6);

void BM_AllocateFr(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  (void)allocate_fr(model, 64);  // warm the access-count cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_fr(model, 64));
  }
}
BENCHMARK(BM_AllocateFr)->DenseRange(0, 6);

void BM_AllocateCpa(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  (void)allocate_cpa(model, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_cpa(model, 64));
  }
}
BENCHMARK(BM_AllocateCpa)->DenseRange(0, 6);

void BM_AllocateKnapsack(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  (void)allocate_knapsack(model, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_knapsack(model, 64));
  }
}
BENCHMARK(BM_AllocateKnapsack)->DenseRange(0, 6);

// Periodic-collapse access counting (the production path) against the
// full-iteration-space oracle: the tentpole speedup, per kernel. Both run
// through strategy selection, so the ratio reflects what every allocator
// query pays.
void BM_CountAccessesCollapsed(benchmark::State& state) {
  const Kernel kernel = kernel_by_index(static_cast<int>(state.range(0)));
  const auto groups = collect_ref_groups(kernel);
  const auto reuse = analyze_all_reuse(kernel, groups);
  for (auto _ : state) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      benchmark::DoNotOptimize(count_group_accesses(kernel, groups[g], reuse[g], 16));
    }
  }
  state.SetItemsProcessed(state.iterations() * kernel.iteration_count() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_CountAccessesCollapsed)->DenseRange(0, 6);

void BM_CountAccessesFullWalk(benchmark::State& state) {
  const Kernel kernel = kernel_by_index(static_cast<int>(state.range(0)));
  const auto groups = collect_ref_groups(kernel);
  const auto reuse = analyze_all_reuse(kernel, groups);
  ModelOptions oracle;
  oracle.full_walk_oracle = true;
  for (auto _ : state) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      benchmark::DoNotOptimize(count_group_accesses(kernel, groups[g], reuse[g], 16, oracle));
    }
  }
  state.SetItemsProcessed(state.iterations() * kernel.iteration_count() *
                          static_cast<std::int64_t>(groups.size()));
}
BENCHMARK(BM_CountAccessesFullWalk)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_CycleModel(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  const Allocation a = allocate_cpa(model, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_cycles(model, a));
  }
  state.SetItemsProcessed(state.iterations() * model.kernel().iteration_count());
}
BENCHMARK(BM_CycleModel)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

// The collapsed cycle walk without the report memo (a fresh model per
// pause/resume would pay this), vs the full-walk oracle below.
void BM_CycleModelCollapsedWalk(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  const Allocation a = allocate_cpa(model, 64);
  for (auto _ : state) {
    state.PauseTiming();
    const RefModel fresh(model.kernel().clone());
    state.ResumeTiming();
    benchmark::DoNotOptimize(estimate_cycles(fresh, a));
  }
  state.SetItemsProcessed(state.iterations() * model.kernel().iteration_count());
}
BENCHMARK(BM_CycleModelCollapsedWalk)->DenseRange(0, 6);

void BM_CycleModelFullWalk(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  const Allocation a = allocate_cpa(model, 64);
  CycleOptions full;
  full.full_iteration_walk = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_cycles(model, a, full));
  }
  state.SetItemsProcessed(state.iterations() * model.kernel().iteration_count());
}
BENCHMARK(BM_CycleModelFullWalk)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_AllocateOptimalDp(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  (void)allocate_optimal_dp(model, 64);  // warm the access-count cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_optimal_dp(model, 64));
  }
}
BENCHMARK(BM_AllocateOptimalDp)->DenseRange(0, 6);

void BM_MachineSimulator(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  const Allocation a = allocate_cpa(model, 64);
  for (auto _ : state) {
    ArrayStore store(model.kernel());
    store.randomize(1);
    benchmark::DoNotOptimize(run_machine(model, a, store));
  }
  state.SetItemsProcessed(state.iterations() * model.kernel().iteration_count());
}
BENCHMARK(BM_MachineSimulator)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_FindCuts(benchmark::State& state) {
  const RefModel model(kernel_by_index(static_cast<int>(state.range(0))));
  const Dfg dfg = Dfg::build(model.kernel(), model.groups());
  const LatencyModel latency;
  const std::vector<std::int64_t> regs(static_cast<std::size_t>(model.group_count()), 1);
  const auto weights = node_weights(dfg, model, regs, latency);
  const CriticalGraph cg = critical_graph(dfg, weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_cuts(dfg, cg, weights));
  }
}
BENCHMARK(BM_FindCuts)->DenseRange(0, 6);

}  // namespace

BENCHMARK_MAIN();
