// Extension D (DESIGN.md §3): ablation of CPA-RA's cut-selection policy.
// The paper picks the cut with the minimum incremental register
// requirement; the alternatives greedily chase eliminated accesses per
// register or simply the smallest cut.
#include <iostream>

#include "core/cpa_ra.h"
#include "hw/estimate.h"
#include "kernels/kernels.h"
#include "sched/cycle_model.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  const std::vector<std::pair<CutStrategy, const char*>> strategies{
      {CutStrategy::kMinRegisters, "min-registers (paper)"},
      {CutStrategy::kMaxSavedPerReg, "max-saved-per-register"},
      {CutStrategy::kFewestMembers, "fewest-members"},
  };

  std::cout << "CPA-RA cut-selection strategies (budget 64)\n\n";
  Table table({"Kernel", "Strategy", "Distribution", "Exec cycles", "Tmem"});

  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel model(nk.kernel.clone());
    for (const auto& [strategy, name] : strategies) {
      CpaOptions options;
      options.strategy = strategy;
      const Allocation a = allocate_cpa(model, 64, options);
      const CycleReport cycles = estimate_cycles(model, a);
      table.add_row({nk.name, name, a.distribution(), with_commas(cycles.exec_cycles),
                     with_commas(cycles.mem_cycles)});
    }
    table.add_separator();
  }
  table.render(std::cout);
  return 0;
}
