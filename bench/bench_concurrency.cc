// Extension C (DESIGN.md §3): serial vs concurrent operand-fetch memory
// accounting (paper §3 argues for co-allocating the inputs of an operation
// so that residual RAM fetches overlap). The delta column isolates how much
// of each allocator's Tmem comes from overlapped fetches — CPA-RA is the
// only one that systematically creates such pairs.
#include <iostream>

#include "core/registry.h"
#include "kernels/kernels.h"
#include "sched/cycle_model.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  std::cout << "Serial vs concurrent operand-fetch accounting (budget 64)\n\n";
  Table table({"Kernel", "Algorithm", "Tmem serial", "Tmem concurrent", "Overlap win"});

  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel model(nk.kernel.clone());
    for (Algorithm alg : paper_variants()) {
      const Allocation a = allocate(alg, model, 64);
      CycleOptions serial;
      serial.concurrent_operand_fetch = false;
      CycleOptions concurrent;
      const std::int64_t ts = estimate_cycles(model, a, serial).mem_cycles;
      const std::int64_t tc = estimate_cycles(model, a, concurrent).mem_cycles;
      const double win = ts > 0 ? 1.0 - static_cast<double>(tc) / static_cast<double>(ts)
                                : 0.0;
      table.add_row({nk.name, algorithm_name(alg), with_commas(ts), with_commas(tc),
                     to_percent(win)});
    }
    table.add_separator();
  }
  table.render(std::cout);

  // The worked example, where the paper's 1184 depends on the overlap.
  const RefModel example(kernels::paper_example());
  const Allocation cpa = allocate(Algorithm::kCpaRa, example, 64);
  CycleOptions serial;
  serial.concurrent_operand_fetch = false;
  const std::int64_t outer = example.kernel().loop(0).trip_count();
  std::cout << "\nWorked example, CPA-RA per outer iteration: serial "
            << to_fixed(estimate_cycles(example, cpa, serial).mem_cycles_per_outer(outer), 0)
            << " vs concurrent "
            << to_fixed(estimate_cycles(example, cpa).mem_cycles_per_outer(outer), 0)
            << " (paper: 1184).\n";
  return 0;
}
