// Full design-space sweep through the DSE engine (DESIGN.md §7): every
// built-in kernel x all six allocators x a budget ladder x both operand
// fetch modes x every legal loop order, evaluated in parallel, reduced to
// Pareto frontiers and the best-per-budget table. This is the engine's
// throughput bench (points per second) and its broadest correctness
// exercise outside the test suite.
#include <chrono>
#include <iostream>
#include <thread>

#include "dse/report.h"
#include "kernels/kernels.h"
#include "support/str.h"

int main() {
  using namespace srra;
  using Clock = std::chrono::steady_clock;

  dse::AxisSpec axes;
  axes.kernels.push_back({"example", kernels::paper_example()});
  for (kernels::NamedKernel& nk : kernels::all_kernels()) {
    axes.kernels.push_back({nk.name, std::move(nk.kernel)});
  }
  axes.algorithms = {Algorithm::kFeasibility, Algorithm::kFrRa,     Algorithm::kPrRa,
                     Algorithm::kCpaRa,       Algorithm::kKnapsack, Algorithm::kOptimalDp};
  axes.budgets = {8, 16, 32, 64, 128};
  axes.fetch_modes = {true, false};
  axes.transforms.interchange = true;

  dse::ExploreOptions options;
  options.jobs = 0;  // all cores

  const auto start = Clock::now();
  const dse::ExploreResult result = dse::explore(std::move(axes), options);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::size_t feasible = 0;
  for (const dse::PointResult& r : result.results) feasible += r.feasible ? 1 : 0;

  std::cout << "DSE engine full sweep: " << result.space.variants.size()
            << " variants, " << result.space.points.size() << " points ("
            << feasible << " feasible), "
            << std::thread::hardware_concurrency() << " threads\n"
            << "elapsed: " << to_fixed(seconds, 2) << " s ("
            << to_fixed(static_cast<double>(result.space.points.size()) / seconds, 1)
            << " points/s)\n\n";

  dse::write_pareto_report(std::cout, result, dse::Format::kText);
  return 0;
}
