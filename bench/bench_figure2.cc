// Regenerates Figure 2 of the paper on the running example (Figure 1):
//  (a) the body data-flow graph,
//  (b) the critical graph and its cuts {{a,b}, {d}, {e}},
//  (c) the three allocators' register distributions and their steady-state
//      memory cycles per outer iteration — FR-RA 1800, PR-RA 1560,
//      CPA-RA 1184, the paper's exact numbers.
#include <iostream>

#include "core/cpa_ra.h"
#include "dfg/cuts.h"
#include "dfg/dot.h"
#include "driver/pipeline.h"
#include "ir/printer.h"
#include "kernels/kernels.h"
#include "sched/cycle_model.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  const RefModel model(kernels::paper_example());
  const Kernel& kernel = model.kernel();

  std::cout << "Figure 1: example code\n" << kernel_to_string(kernel) << "\n";

  // ---- Figure 2(a): DFG ----
  const Dfg dfg = Dfg::build(kernel, model.groups());
  std::cout << "Figure 2(a): data-flow graph (DOT)\n" << to_dot(dfg) << "\n";

  // ---- Figure 2(b): critical graph + cuts ----
  const LatencyModel latency;
  const std::vector<std::int64_t> feas(static_cast<std::size_t>(model.group_count()), 1);
  const auto weights = node_weights(dfg, model, feas, latency);
  const CriticalGraph cg = critical_graph(dfg, weights);
  std::cout << "Figure 2(b): critical graph (CP latency " << cg.length << "), cuts:\n";
  for (const auto& cut : find_cuts(dfg, cg, weights)) {
    std::vector<std::string> labels;
    for (int id : cut) labels.push_back(dfg.node(id).label);
    std::cout << "  { " << join(labels, ", ") << " }\n";
  }
  std::cout << "\n";

  // ---- CPA-RA trace ----
  std::vector<CpaRound> trace;
  (void)allocate_cpa_traced(model, 64, CpaOptions{}, trace);
  std::cout << "CPA-RA rounds:\n";
  for (std::size_t r = 0; r < trace.size(); ++r) {
    std::vector<std::string> chosen;
    for (int g : trace[r].chosen) {
      chosen.push_back(model.groups()[static_cast<std::size_t>(g)].display);
    }
    std::cout << "  round " << r + 1 << ": CP=" << trace[r].cp_length << ", chose { "
              << join(chosen, ", ") << " } needing " << trace[r].required
              << (trace[r].partial ? " (equal division of the leftovers)" : " (full)")
              << "\n";
  }
  std::cout << "\n";

  // ---- Figure 2(c): allocations + Tmem ----
  Table table({"Variant", "a[k]", "b[k][j]", "c[j]", "d[i][k]", "e[i][j][k]", "Total",
               "Tmem (cycles)"});
  const std::int64_t outer = kernel.loop(0).trip_count();
  for (Algorithm alg : paper_variants()) {
    const Allocation a = allocate(alg, model, 64);
    const CycleReport cycles = estimate_cycles(model, a);
    const auto reg = [&](const char* name) {
      return std::to_string(a.at(group_named(model.groups(), name).id));
    };
    table.add_row({algorithm_name(alg), reg("a[k]"), reg("b[k][j]"), reg("c[j]"),
                   reg("d[i][k]"), reg("e[i][j][k]"), std::to_string(a.total()),
                   to_fixed(cycles.mem_cycles_per_outer(outer), 0)});
  }
  std::cout << "Figure 2(c): register distribution and memory cycles per outer iteration\n";
  table.render(std::cout);
  std::cout << "\nPaper values: FR-RA 1800, PR-RA 1560, CPA-RA 1184 cycles.\n";
  return 0;
}
