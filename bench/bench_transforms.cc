// Extension E (DESIGN.md §3, §10): loop transforms x allocator. Interchange
// moves the reuse-carrying levels, tiling shrinks reuse windows until they
// fit a small register budget, and unroll-and-jam turns cross-iteration
// reuse into same-iteration forwarding; all three change every allocator's
// decisions. All enumerated variants compute bit-identical results
// (verified in test_transform.cc / test_fuzz.cc). Enumeration and
// evaluation run through the DSE engine's TransformSpec axis
// (src/dse/space.h).
//
// The closing section demonstrates the headline result pinned by
// test_dse.cc: a tiled variant whose (registers, exec cycles) point
// dominates *every* untiled point of the same kernel's sweep.
#include <algorithm>
#include <iostream>

#include "dse/report.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using namespace srra;

struct EvalPoint {
  std::string label;
  std::string algorithm;
  std::int64_t budget = 0;
  std::int64_t regs = 0;
  std::int64_t exec_cycles = 0;
  bool transformed = false;  ///< sequence contains a tile or unroll-and-jam
};

bool is_transformed(const dse::Variant& variant) {
  for (const LoopTransform& t : variant.transforms) {
    if (t.kind != TransformKind::kInterchange) return true;
  }
  return false;
}

std::vector<EvalPoint> evaluate(dse::AxisSpec axes) {
  dse::ExploreOptions options;
  options.jobs = 0;  // all cores
  const dse::ExploreResult result = dse::explore(std::move(axes), options);
  std::vector<EvalPoint> points;
  for (const dse::SpacePoint& point : result.space.points) {
    const dse::PointResult& r = result.results[static_cast<std::size_t>(point.index)];
    if (!r.feasible) continue;
    const dse::Variant& variant = result.variant_of(point);
    points.push_back({variant.label(), algorithm_name(point.algorithm), point.budget,
                      r.design.allocation.total(), r.design.cycles.exec_cycles,
                      is_transformed(variant)});
  }
  return points;
}

// p dominates q on (registers, exec cycles): <= in both, < in at least one.
bool dominates(const EvalPoint& p, const EvalPoint& q) {
  return p.regs <= q.regs && p.exec_cycles <= q.exec_cycles &&
         (p.regs < q.regs || p.exec_cycles < q.exec_cycles);
}

void interchange_block(const std::string& title, dse::AxisSpec axes) {
  axes.transforms.interchange = true;
  dse::ExploreOptions options;
  options.jobs = 0;  // all cores
  const dse::ExploreResult result = dse::explore(std::move(axes), options);

  Table table({"Loop order", "Algorithm", "Distribution", "Exec cycles", "Tmem"});
  int last_variant = 0;
  for (const dse::SpacePoint& point : result.space.points) {
    const dse::PointResult& r = result.results[static_cast<std::size_t>(point.index)];
    if (!r.feasible) continue;
    if (point.variant != last_variant) table.add_separator();
    last_variant = point.variant;
    table.add_row({result.variant_of(point).label(), algorithm_name(point.algorithm),
                   r.design.allocation.distribution(),
                   with_commas(r.design.cycles.exec_cycles),
                   with_commas(r.design.cycles.mem_cycles)});
  }
  table.add_separator();
  std::cout << title << "\n";
  table.render(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Loop transforms x allocator (DSE TransformSpec axis)\n\n";

  {
    dse::AxisSpec axes;
    axes.kernels.push_back({"MAT", kernels::mat()});
    interchange_block("MAT (c[i][j] += a[i][k] * b[k][j]) — interchange, budget 64",
                      std::move(axes));
  }
  {
    dse::AxisSpec axes;
    axes.kernels.push_back({"example", kernels::paper_example()});
    interchange_block("Worked example (Figure 1) — interchange, budget 64",
                      std::move(axes));
  }

  // Tile-size sweep over the Table-1 kernels: per kernel, the best untiled
  // point (any interchange order) vs the best tiled/unroll-jammed point
  // across the same algorithms and budget ladder. The last column is the
  // headline claim pinned by test_dse.cc: does some transformed point
  // dominate, for *every* untiled loop order, that order's best
  // (min exec cycles, then min registers) point?
  std::cout << "Tile / unroll-and-jam sweep (budgets 8,16,32,64; tiles 4,8; unroll 2)\n";
  Table sweep_table({"Kernel", "Best untiled", "Regs", "Exec cycles", "Best transformed",
                     "Regs", "Exec cycles", "Dominates every untiled order"});
  for (kernels::NamedKernel& nk : kernels::table1_kernels()) {
    dse::AxisSpec axes;
    axes.kernels.push_back({nk.name, std::move(nk.kernel)});
    axes.budgets = {8, 16, 32, 64};
    axes.transforms.interchange = true;
    axes.transforms.tile_sizes = {4, 8};
    axes.transforms.unroll_factors = {2};
    const std::vector<EvalPoint> points = evaluate(std::move(axes));

    const auto better = [](const EvalPoint& a, const EvalPoint& b) {
      return a.exec_cycles != b.exec_cycles ? a.exec_cycles < b.exec_cycles
                                            : a.regs < b.regs;
    };
    const EvalPoint* best_untiled = nullptr;
    const EvalPoint* best_transformed = nullptr;
    std::vector<const EvalPoint*> best_per_untiled_label;  // one per loop order
    for (const EvalPoint& p : points) {
      const EvalPoint*& overall = p.transformed ? best_transformed : best_untiled;
      if (overall == nullptr || better(p, *overall)) overall = &p;
      if (!p.transformed) {
        auto it = std::find_if(best_per_untiled_label.begin(), best_per_untiled_label.end(),
                               [&](const EvalPoint* q) { return q->label == p.label; });
        if (it == best_per_untiled_label.end()) {
          best_per_untiled_label.push_back(&p);
        } else if (better(p, **it)) {
          *it = &p;
        }
      }
    }
    if (best_untiled == nullptr || best_transformed == nullptr) continue;

    bool dominates_every_order = false;
    for (const EvalPoint& p : points) {
      if (!p.transformed) continue;
      bool all = true;
      for (const EvalPoint* q : best_per_untiled_label) {
        if (!dominates(p, *q)) {
          all = false;
          break;
        }
      }
      if (all) {
        dominates_every_order = true;
        break;
      }
    }
    sweep_table.add_row({nk.name, best_untiled->label, std::to_string(best_untiled->regs),
                         with_commas(best_untiled->exec_cycles), best_transformed->label,
                         std::to_string(best_transformed->regs),
                         with_commas(best_transformed->exec_cycles),
                         dominates_every_order ? "yes" : "no"});
  }
  sweep_table.render(std::cout);
  std::cout << "\n";
  return 0;
}
