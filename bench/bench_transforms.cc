// Extension E (DESIGN.md §3, §10, §13): loop transforms x allocator.
// Interchange moves the reuse-carrying levels, tiling shrinks reuse windows
// until they fit a small register budget, and unroll-and-jam turns
// cross-iteration reuse into same-iteration forwarding; all three change
// every allocator's decisions. All enumerated variants compute bit-identical
// results (verified in test_transform.cc / test_fuzz.cc).
//
// The closing section drives the analytic bound-guided search
// (src/dse/prune.h) over a transform space two orders of magnitude larger
// than the exhaustive sweep this bench used to run — tile-on-tile stacks,
// eight tile sizes, three unroll factors — while evaluating only a capped
// number of bound-surviving candidates per kernel, so the wall time stays in
// the old envelope (pinned by tests/golden/bench_transforms_baseline.json +
// tools/perf_guard.sh in CI). The bench *fails* (nonzero exit) if the space
// shrinks below 100x the old 64-variant cap, so the coverage claim in the
// README cannot silently rot.
#include <algorithm>
#include <iostream>

#include "dse/prune.h"
#include "dse/report.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using namespace srra;

// 100x the seed sweep's 64-variant cap: the floor the guided search must
// generate (abstract candidates, counted by SpaceStats) per kernel.
constexpr std::int64_t kGeneratedFloor = 6400;

struct EvalPoint {
  std::string label;
  std::string algorithm;
  std::int64_t budget = 0;
  std::int64_t regs = 0;
  std::int64_t exec_cycles = 0;
  bool transformed = false;  ///< sequence contains a tile or unroll-and-jam
};

bool is_transformed(const dse::Variant& variant) {
  for (const LoopTransform& t : variant.transforms) {
    if (t.kind != TransformKind::kInterchange) return true;
  }
  return false;
}

std::vector<EvalPoint> collect(const dse::ExploreResult& result) {
  std::vector<EvalPoint> points;
  for (const dse::SpacePoint& point : result.space.points) {
    const dse::PointResult& r = result.results[static_cast<std::size_t>(point.index)];
    if (!r.feasible) continue;
    const dse::Variant& variant = result.variant_of(point);
    points.push_back({variant.label(), algorithm_name(point.algorithm), point.budget,
                      r.design.allocation.total(), r.design.cycles.exec_cycles,
                      is_transformed(variant)});
  }
  return points;
}

// p dominates q on (registers, exec cycles): <= in both, < in at least one.
bool dominates(const EvalPoint& p, const EvalPoint& q) {
  return p.regs <= q.regs && p.exec_cycles <= q.exec_cycles &&
         (p.regs < q.regs || p.exec_cycles < q.exec_cycles);
}

void interchange_block(const std::string& title, dse::AxisSpec axes) {
  axes.transforms.interchange = true;
  dse::ExploreOptions options;
  options.jobs = 0;  // all cores
  const dse::ExploreResult result = dse::explore(std::move(axes), options);

  Table table({"Loop order", "Algorithm", "Distribution", "Exec cycles", "Tmem"});
  int last_variant = 0;
  for (const dse::SpacePoint& point : result.space.points) {
    const dse::PointResult& r = result.results[static_cast<std::size_t>(point.index)];
    if (!r.feasible) continue;
    if (point.variant != last_variant) table.add_separator();
    last_variant = point.variant;
    table.add_row({result.variant_of(point).label(), algorithm_name(point.algorithm),
                   r.design.allocation.distribution(),
                   with_commas(r.design.cycles.exec_cycles),
                   with_commas(r.design.cycles.mem_cycles)});
  }
  table.add_separator();
  std::cout << title << "\n";
  table.render(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Loop transforms x allocator (DSE TransformSpec axis)\n\n";

  {
    dse::AxisSpec axes;
    axes.kernels.push_back({"MAT", kernels::mat()});
    interchange_block("MAT (c[i][j] += a[i][k] * b[k][j]) — interchange, budget 64",
                      std::move(axes));
  }
  {
    dse::AxisSpec axes;
    axes.kernels.push_back({"example", kernels::paper_example()});
    interchange_block("Worked example (Figure 1) — interchange, budget 64",
                      std::move(axes));
  }

  // Guided tile/unroll sweep over the Table-1 kernels. Per kernel: the best
  // untiled point comes from an exhaustive interchange-only sweep (a handful
  // of variants), the best transformed point from the bound-guided search
  // over the full tile-on-tile x unroll cross product, evaluating at most
  // kEvalCap bound-surviving candidates. The last column is the headline
  // claim pinned by test_dse.cc: does some transformed point dominate, for
  // *every* untiled loop order, that order's best point?
  constexpr int kEvalCap = 16;
  std::cout << "Guided tile/unroll sweep — analytic bound pruning (DESIGN.md §13)\n"
            << "space: interchange x 23 tile sizes (2..32) stacked 2 deep x "
               "unroll {2,3,4,6,8}; budgets 8,16,32,64; eval cap "
            << kEvalCap << "/kernel\n";
  Table sweep_table({"Kernel", "Generated", "Pruned", "Evaluated", "Best untiled",
                     "Regs", "Exec cycles", "Best transformed", "Regs", "Exec cycles",
                     "Dominates every untiled order"});
  std::int64_t total_generated = 0;
  std::int64_t total_evaluated = 0;
  bool coverage_ok = true;
  for (kernels::NamedKernel& nk : kernels::table1_kernels()) {
    dse::ExploreOptions options;
    options.jobs = 0;  // all cores

    dse::AxisSpec untiled_axes;
    untiled_axes.kernels.push_back({nk.name, nk.kernel.clone()});
    untiled_axes.budgets = {8, 16, 32, 64};
    untiled_axes.transforms.interchange = true;
    const std::vector<EvalPoint> untiled =
        collect(dse::explore(std::move(untiled_axes), options));

    dse::AxisSpec axes;
    axes.kernels.push_back({nk.name, std::move(nk.kernel)});
    axes.budgets = {8, 16, 32, 64};
    axes.transforms.interchange = true;
    axes.transforms.tile_sizes = {2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13,
                                  14, 15, 16, 18, 20, 22, 24, 26, 28, 30, 32};
    axes.transforms.tile_depth = 2;
    axes.transforms.unroll_factors = {2, 3, 4, 6, 8};
    dse::PruneOptions prune;
    prune.wave = 8;
    prune.max_evaluated_per_kernel = kEvalCap;
    const dse::ExploreResult guided = dse::explore_guided(std::move(axes), options, prune);
    const dse::SpaceStats& stats = guided.space.stats;
    total_generated += stats.variants_generated;
    total_evaluated += stats.variants_evaluated;
    if (stats.variants_generated < kGeneratedFloor) coverage_ok = false;
    const std::vector<EvalPoint> points = collect(guided);

    const auto better = [](const EvalPoint& a, const EvalPoint& b) {
      return a.exec_cycles != b.exec_cycles ? a.exec_cycles < b.exec_cycles
                                            : a.regs < b.regs;
    };
    const EvalPoint* best_untiled = nullptr;
    std::vector<const EvalPoint*> best_per_untiled_label;  // one per loop order
    for (const EvalPoint& p : untiled) {
      if (p.transformed) continue;
      if (best_untiled == nullptr || better(p, *best_untiled)) best_untiled = &p;
      auto it = std::find_if(best_per_untiled_label.begin(), best_per_untiled_label.end(),
                             [&](const EvalPoint* q) { return q->label == p.label; });
      if (it == best_per_untiled_label.end()) {
        best_per_untiled_label.push_back(&p);
      } else if (better(p, **it)) {
        *it = &p;
      }
    }
    const EvalPoint* best_transformed = nullptr;
    for (const EvalPoint& p : points) {
      if (!p.transformed) continue;
      if (best_transformed == nullptr || better(p, *best_transformed)) best_transformed = &p;
    }
    if (best_untiled == nullptr || best_transformed == nullptr) continue;

    bool dominates_every_order = false;
    for (const EvalPoint& p : points) {
      if (!p.transformed) continue;
      bool all = true;
      for (const EvalPoint* q : best_per_untiled_label) {
        if (!dominates(p, *q)) {
          all = false;
          break;
        }
      }
      if (all) {
        dominates_every_order = true;
        break;
      }
    }
    sweep_table.add_row({nk.name, std::to_string(stats.variants_generated),
                         std::to_string(stats.variants_pruned),
                         std::to_string(stats.variants_evaluated), best_untiled->label,
                         std::to_string(best_untiled->regs),
                         with_commas(best_untiled->exec_cycles), best_transformed->label,
                         std::to_string(best_transformed->regs),
                         with_commas(best_transformed->exec_cycles),
                         dominates_every_order ? "yes" : "no"});
  }
  sweep_table.render(std::cout);
  std::cout << "\nGuided totals: generated " << total_generated << ", evaluated "
            << total_evaluated << " (floor " << kGeneratedFloor << "/kernel)\n";
  if (!coverage_ok) {
    std::cerr << "FAIL: a kernel generated fewer than " << kGeneratedFloor
              << " candidates — the 100x coverage claim no longer holds\n";
    return 1;
  }
  return 0;
}
