// All-budget allocation frontier bench (DESIGN.md §9): evaluates *every*
// feasible budget up to kMaxBudget for every algorithm two ways —
//
//   frontier:   one AllocationFrontier per (kernel, algorithm), sliced per
//               budget (what run_budget_sweep and dse/explore do), and
//   per-budget: one allocator call per (algorithm, budget) point (the
//               oracle the frontier slices are byte-identical to),
//
// verifies both paths agree on every single allocation, and prints the
// per-phase timings (access-curve build, frontier builds, slicing, the
// per-budget loop) as a table plus a BENCH JSON blob for run_all.sh
// artifact tracking.
#include <chrono>
#include <iostream>

#include "core/frontier.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;
  using Clock = std::chrono::steady_clock;
  const auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  constexpr std::int64_t kMaxBudget = 128;
  const std::vector<Algorithm> algorithms = all_algorithms();

  std::cout << "All-budget allocation frontiers vs per-budget allocator runs\n"
            << "(every feasible budget up to " << kMaxBudget
            << ", all six algorithms; outputs cross-checked per budget)\n\n";

  Table table({"Kernel", "Budgets", "Curve (ms)", "Frontier (ms)", "Slice (ms)",
               "Per-budget (ms)", "Speedup"});
  double total_curve = 0;
  double total_frontier = 0;
  double total_slice = 0;
  double total_per_budget = 0;
  std::int64_t mismatches = 0;

  for (kernels::NamedKernel& nk : kernels::table1_kernels()) {
    // Frontier arm: one shared model, one frontier per algorithm, slices.
    const RefModel model(nk.kernel.clone());
    const std::int64_t budgets = kMaxBudget - model.group_count() + 1;

    const auto c0 = Clock::now();
    (void)model.access_curve(kMaxBudget);
    const auto c1 = Clock::now();
    std::vector<AllocationFrontier> frontiers;
    frontiers.reserve(algorithms.size());
    for (const Algorithm algorithm : algorithms) {
      frontiers.push_back(allocate_frontier(algorithm, model, kMaxBudget));
    }
    const auto c2 = Clock::now();
    std::vector<Allocation> slices;
    slices.reserve(frontiers.size() * static_cast<std::size_t>(budgets));
    for (const AllocationFrontier& frontier : frontiers) {
      for (std::int64_t b = frontier.min_budget; b <= frontier.max_budget; ++b) {
        slices.push_back(frontier.at(b));
      }
    }
    const auto c3 = Clock::now();

    // Per-budget arm: its own shared model, one allocator call per point.
    const RefModel per_point_model(nk.kernel.clone());
    const auto p0 = Clock::now();
    std::vector<Allocation> per_point;
    per_point.reserve(slices.size());
    for (const Algorithm algorithm : algorithms) {
      for (std::int64_t b = per_point_model.group_count(); b <= kMaxBudget; ++b) {
        per_point.push_back(allocate(algorithm, per_point_model, b));
      }
    }
    const auto p1 = Clock::now();

    for (std::size_t i = 0; i < slices.size(); ++i) {
      if (slices[i].regs != per_point[i].regs || slices[i].budget != per_point[i].budget ||
          slices[i].algorithm != per_point[i].algorithm) {
        ++mismatches;
      }
    }

    const double curve_ms = ms(c0, c1);
    const double frontier_ms = ms(c1, c2);
    const double slice_ms = ms(c2, c3);
    const double per_budget_ms = ms(p0, p1);
    total_curve += curve_ms;
    total_frontier += frontier_ms;
    total_slice += slice_ms;
    total_per_budget += per_budget_ms;
    const double frontier_total = curve_ms + frontier_ms + slice_ms;
    table.add_row({nk.name, std::to_string(budgets), to_fixed(curve_ms, 2),
                   to_fixed(frontier_ms, 2), to_fixed(slice_ms, 2),
                   to_fixed(per_budget_ms, 2),
                   frontier_total > 0 ? cat(to_fixed(per_budget_ms / frontier_total, 1), "x")
                                      : "-"});
  }

  const double frontier_total = total_curve + total_frontier + total_slice;
  table.add_row({"total", "", to_fixed(total_curve, 2), to_fixed(total_frontier, 2),
                 to_fixed(total_slice, 2), to_fixed(total_per_budget, 2),
                 frontier_total > 0 ? cat(to_fixed(total_per_budget / frontier_total, 1), "x")
                                    : "-"});
  table.render(std::cout);
  std::cout << "\ncross-check mismatches: " << mismatches
            << (mismatches == 0 ? " (frontier slices byte-identical to per-budget runs)"
                                : " (FRONTIER/PER-BUDGET DISAGREE)")
            << "\n\n";

  // Machine-readable per-phase record (run_all.sh stores this report next
  // to its own wall-clock JSON).
  std::cout << "BENCH JSON: {\"bench\": \"bench_frontier\", \"max_budget\": " << kMaxBudget
            << ", \"curve_ms\": " << to_fixed(total_curve, 3)
            << ", \"frontier_ms\": " << to_fixed(total_frontier, 3)
            << ", \"slice_ms\": " << to_fixed(total_slice, 3)
            << ", \"per_budget_ms\": " << to_fixed(total_per_budget, 3)
            << ", \"speedup\": "
            << to_fixed(frontier_total > 0 ? total_per_budget / frontier_total : 0.0, 2)
            << ", \"mismatches\": " << mismatches << "}\n";
  return mismatches == 0 ? 0 : 1;
}
