#!/usr/bin/env sh
# Runs every bench binary and records one BENCH_<name>.json per bench, so
# the performance trajectory of the repo can be tracked PR over PR.
#
# Usage: bench/run_all.sh [build-dir] [output-dir]
#   build-dir   where the bench binaries live (default: build)
#   output-dir  where BENCH_*.json and BENCH_*.txt are written (default: build-dir)
#
# Each JSON file records the bench name, exit code, wall-clock seconds and
# the path of the captured text report. bench_micro is Google Benchmark
# based and additionally emits its native JSON counters.
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (run: cmake -B build -S . && cmake --build build --target bench)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

# Escapes a string for inclusion inside a JSON string literal (backslashes
# first, then quotes), so exotic build/output paths cannot corrupt the
# emitted JSON.
json_escape() {
  printf '%s' "$1" | sed -e 's/\\/\\\\/g' -e 's/"/\\"/g'
}

# Portable millisecond-ish timer: prefer date +%s%N when it works.
now_ms() {
  ns=$(date +%s%N 2>/dev/null)
  case "$ns" in
    *N|'') echo "$(($(date +%s) * 1000))" ;;
    *) echo "$((ns / 1000000))" ;;
  esac
}

# Build type of the srra library itself (Google Benchmark's JSON context
# only reports how *libbenchmark* was built); recorded in every BENCH JSON
# so performance trajectories are never compared across build types.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:STRING=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null)
[ -n "$build_type" ] || build_type=unknown

failures=0
ran=0

for bin in "$BUILD_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  case "$bin" in *.json|*.txt) continue ;; esac
  name=$(basename "$bin")
  txt="$OUT_DIR/BENCH_${name}.txt"
  json="$OUT_DIR/BENCH_${name}.json"

  start=$(now_ms)
  if [ "$name" = "bench_micro" ]; then
    # Google Benchmark: native JSON counters. Keep stderr out of the JSON
    # stream so warnings cannot corrupt it.
    "$bin" --benchmark_format=json >"$txt" 2>"$OUT_DIR/BENCH_${name}.err.txt"
    code=$?
  else
    "$bin" >"$txt" 2>&1
    code=$?
  fi
  end=$(now_ms)
  wall_ms=$((end - start))
  bytes=$(wc -c <"$txt" | tr -d ' ')

  printf '{\n  "bench": "%s",\n  "build_type": "%s",\n  "exit_code": %d,\n  "wall_seconds": %d.%03d,\n  "report_bytes": %s,\n  "report": "%s"\n}\n' \
    "$(json_escape "$name")" "$(json_escape "$build_type")" "$code" \
    "$((wall_ms / 1000))" "$((wall_ms % 1000))" "$bytes" \
    "$(json_escape "BENCH_${name}.txt")" >"$json"

  ran=$((ran + 1))
  if [ "$code" -ne 0 ]; then
    failures=$((failures + 1))
    echo "FAIL $name (exit $code) — see $txt" >&2
  else
    echo "ok   $name (${wall_ms} ms) -> $json"
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "error: no bench binaries in '$BUILD_DIR' (build the 'bench' target first)" >&2
  exit 2
fi

echo "$((ran - failures))/$ran benches passed"
[ "$failures" -eq 0 ]
