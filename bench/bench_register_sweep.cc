// Extension A (DESIGN.md §3): execution cycles as a function of the
// register budget, per allocator and kernel. The paper fixes the budget at
// one value; this sweep shows where each algorithm saturates and where
// CPA-RA's cut-based distribution wins over the greedy ratios. The sweep
// itself runs through the DSE engine (src/dse/, DESIGN.md §7) — one
// RefModel per kernel shared across all budgets, evaluated in parallel —
// and also emits the engine's CSV report for plotting.
#include <iostream>
#include <map>

#include "dse/report.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  dse::AxisSpec axes;
  std::vector<std::string> descriptions;
  for (kernels::NamedKernel& nk : kernels::table1_kernels()) {
    descriptions.push_back(nk.description);
    axes.kernels.push_back({nk.name, std::move(nk.kernel)});
  }
  axes.budgets = {8, 16, 24, 32, 48, 64, 96, 128};

  dse::ExploreOptions options;
  options.jobs = 0;  // all cores
  const dse::ExploreResult result = dse::explore(std::move(axes), options);

  std::cout << "Register-budget sweep: execution cycles (FR-RA / PR-RA / CPA-RA)\n\n";

  // Pivot the flat point list into one (budget -> cycles per algorithm) row
  // set per kernel. Infeasible points (budget below the kernel's group
  // count) are skipped, like the pre-engine version of this bench did.
  for (const dse::Variant& variant : result.space.variants) {
    std::map<std::int64_t, std::map<Algorithm, std::int64_t>> by_budget;
    for (const dse::SpacePoint& point : result.space.points) {
      if (point.variant != variant.index) continue;
      const dse::PointResult& r = result.results[static_cast<std::size_t>(point.index)];
      if (!r.feasible) continue;
      by_budget[point.budget][point.algorithm] = r.design.cycles.exec_cycles;
    }
    Table table({"Budget", "FR-RA cycles", "PR-RA cycles", "CPA-RA cycles", "CPA vs PR"});
    for (const auto& [budget, cycles] : by_budget) {
      const std::int64_t pr = cycles.at(Algorithm::kPrRa);
      const std::int64_t cpa = cycles.at(Algorithm::kCpaRa);
      const double gain = 1.0 - static_cast<double>(cpa) / static_cast<double>(pr);
      table.add_row({std::to_string(budget), with_commas(cycles.at(Algorithm::kFrRa)),
                     with_commas(pr), with_commas(cpa), to_percent(gain)});
    }
    std::cout << variant.kernel_name << " ("
              << descriptions[static_cast<std::size_t>(variant.index)] << ")\n";
    table.render(std::cout);
    std::cout << "\n";
  }

  std::cout << "Engine CSV report (one record per design point):\n";
  dse::write_points_report(std::cout, result, dse::Format::kCsv);
  return 0;
}
