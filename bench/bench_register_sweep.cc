// Extension A (DESIGN.md §3): execution cycles as a function of the
// register budget, per allocator and kernel. The paper fixes the budget at
// one value; this sweep shows where each algorithm saturates and where
// CPA-RA's cut-based distribution wins over the greedy ratios. Also emits
// CSV for plotting.
#include <iostream>

#include "driver/pipeline.h"
#include "kernels/kernels.h"
#include "support/csv.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  const std::vector<std::int64_t> budgets{8, 16, 24, 32, 48, 64, 96, 128};

  std::cout << "Register-budget sweep: execution cycles (FR-RA / PR-RA / CPA-RA)\n\n";
  CsvWriter csv(std::cout);

  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel model(nk.kernel.clone());
    Table table({"Budget", "FR-RA cycles", "PR-RA cycles", "CPA-RA cycles", "CPA vs PR"});
    for (std::int64_t budget : budgets) {
      if (budget < model.group_count()) continue;
      PipelineOptions options;
      options.budget = budget;
      const auto points = run_paper_variants(model, options);
      const double gain = 1.0 - static_cast<double>(points[2].cycles.exec_cycles) /
                                    static_cast<double>(points[1].cycles.exec_cycles);
      table.add_row({std::to_string(budget), with_commas(points[0].cycles.exec_cycles),
                     with_commas(points[1].cycles.exec_cycles),
                     with_commas(points[2].cycles.exec_cycles), to_percent(gain)});
    }
    std::cout << nk.name << " (" << nk.description << ")\n";
    table.render(std::cout);
    std::cout << "\n";
  }

  std::cout << "CSV series (kernel,budget,algorithm,cycles):\n";
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel model(nk.kernel.clone());
    for (std::int64_t budget : budgets) {
      if (budget < model.group_count()) continue;
      PipelineOptions options;
      options.budget = budget;
      for (const DesignPoint& p : run_paper_variants(model, options)) {
        csv.row({nk.name, std::to_string(budget), algorithm_name(p.algorithm),
                 std::to_string(p.cycles.exec_cycles)});
      }
    }
  }
  return 0;
}
