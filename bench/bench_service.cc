// srrad service throughput bench (DESIGN.md §12): an in-process daemon on a
// Unix socket in a temp directory, hammered by concurrent client threads
// with a mixed query set. Pass 1 runs cold (every unique query computed
// once, duplicates coalesced), pass 2 replays the full set from every
// thread and must be served almost entirely from cache — the determinism
// contract says a warm store answers without recomputing, so the bench
// exits 1 when the second-pass hit rate drops below 90%.
//
// Pass 3 reruns the cold set against a fresh daemon whose store fails
// every write (a 100% ENOSPC fault plan, DESIGN.md §14): the daemon must
// flip to compute-only mode, stay up, and cost at most 1.2x the plain
// cold pass — graceful degradation, enforced in-bench.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernels.h"
#include "service/client.h"
#include "service/server.h"
#include "service/store.h"
#include "support/faultio.h"
#include "support/json.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

struct PassResult {
  std::vector<double> latencies_us;  // one per request, all threads
  double wall_seconds = 0.0;
  std::size_t hits = 0;
  std::size_t requests = 0;
};

std::string make_query(const std::string& kernel, const std::string& algorithm,
                       std::int64_t budget) {
  srra::JsonValue req = srra::JsonValue::make_object();
  req.set("kernel", srra::JsonValue::make_string(kernel));
  req.set("algorithm", srra::JsonValue::make_string(algorithm));
  req.set("budget", srra::JsonValue::make_int(budget));
  return req.to_string();
}

std::string make_frontier(const std::string& kernel, const std::string& algorithm,
                          const std::string& budgets) {
  srra::JsonValue req = srra::JsonValue::make_object();
  req.set("kernel", srra::JsonValue::make_string(kernel));
  req.set("algorithm", srra::JsonValue::make_string(algorithm));
  req.set("mode", srra::JsonValue::make_string("frontier"));
  req.set("budgets", srra::JsonValue::make_string(budgets));
  return req.to_string();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

// Runs one pass: each thread connects, fires its share of `queries` one
// roundtrip at a time (per-request latency is the client-observed kind),
// and counts cache hits out of the response envelopes.
PassResult run_pass(const std::string& socket_path,
                    const std::vector<std::vector<std::string>>& shares) {
  PassResult pass;
  std::mutex mu;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(shares.size());
  for (const std::vector<std::string>& share : shares) {
    threads.emplace_back([&pass, &mu, &socket_path, &share] {
      srra::service::Client client =
          srra::service::Client::connect_unix(socket_path);
      std::vector<double> latencies;
      latencies.reserve(share.size());
      std::size_t hits = 0;
      for (const std::string& query : share) {
        const auto t0 = Clock::now();
        const std::string response = client.roundtrip(query);
        latencies.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
        const srra::JsonValue doc = srra::parse_json(response);
        const srra::JsonValue* cache = doc.find("cache");
        if (cache != nullptr &&
            cache->find("status")->as_string() == "hit") {
          ++hits;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      pass.latencies_us.insert(pass.latencies_us.end(), latencies.begin(),
                               latencies.end());
      pass.hits += hits;
      pass.requests += share.size();
    });
  }
  for (std::thread& t : threads) t.join();
  pass.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return pass;
}

}  // namespace

int main() {
  using namespace srra;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      cat("srrad_bench_", static_cast<long>(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string socket_path = (dir / "srrad.sock").string();

  service::ServerOptions options;
  options.jobs = 0;  // all cores
  options.store_dir = (dir / "store").string();
  service::Server server(options);
  std::thread daemon([&] { server.serve_unix(socket_path); });
  // Wait for the listening socket to appear.
  while (!std::filesystem::exists(socket_path)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Mixed query set: every builtin kernel x three allocators x two budgets,
  // plus a frontier sweep per kernel. ~no two queries share a cache key.
  std::vector<std::string> queries;
  std::vector<std::string> names{"example"};
  for (const kernels::NamedKernel& nk : kernels::all_kernels()) {
    names.push_back(nk.name);
  }
  for (const std::string& name : names) {
    for (const char* algo : {"cpa", "fr", "ls"}) {
      for (std::int64_t budget : {32, 64}) {
        queries.push_back(make_query(name, algo, budget));
      }
    }
    queries.push_back(make_frontier(name, "cpa", "16:64"));
  }

  constexpr std::size_t kThreads = 4;

  // Pass 1 (cold): the unique set, sliced across threads round-robin.
  std::vector<std::vector<std::string>> cold_shares(kThreads);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    cold_shares[i % kThreads].push_back(queries[i]);
  }
  const PassResult cold = run_pass(socket_path, cold_shares);

  // Pass 2 (warm): every thread replays the full set; the store has
  // everything, so this measures pure cache-path latency.
  const std::vector<std::vector<std::string>> warm_shares(kThreads, queries);
  const PassResult warm = run_pass(socket_path, warm_shares);

  const double warm_hit_rate =
      warm.requests > 0
          ? static_cast<double>(warm.hits) / static_cast<double>(warm.requests)
          : 0.0;

  {
    service::Client client = service::Client::connect_unix(socket_path);
    client.roundtrip(R"({"op": "shutdown"})");
  }
  daemon.join();

  // Pass 3 (degraded): a fresh daemon over a pre-stamped store whose every
  // write fails. The breaker must open (compute-only), the daemon must keep
  // answering, and the pass must not cost more than 1.2x the plain cold run.
  const std::string degraded_socket = (dir / "srrad_degraded.sock").string();
  { service::ResultStore stamp((dir / "store_degraded").string()); }
  srra::faultio::install_plan("store.write=enospc@p=1");
  std::string degraded_mode;
  PassResult degraded;
  {
    service::ServerOptions degraded_options;
    degraded_options.jobs = 0;
    degraded_options.store_dir = (dir / "store_degraded").string();
    service::Server degraded_server(degraded_options);
    std::thread degraded_daemon([&] { degraded_server.serve_unix(degraded_socket); });
    while (!std::filesystem::exists(degraded_socket)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    degraded = run_pass(degraded_socket, cold_shares);
    {
      service::Client client = service::Client::connect_unix(degraded_socket);
      const JsonValue health =
          *parse_json(client.roundtrip(R"({"op": "health"})")).find("health");
      degraded_mode = health.find("store_mode")->as_string();
      client.roundtrip(R"({"op": "shutdown"})");
    }
    degraded_daemon.join();
  }
  srra::faultio::reset();
  std::filesystem::remove_all(dir);
  const double degraded_ratio =
      cold.wall_seconds > 0.0 ? degraded.wall_seconds / cold.wall_seconds : 0.0;

  const auto row = [](const char* label, const PassResult& p) {
    return std::vector<std::string>{
        label,
        std::to_string(p.requests),
        to_fixed(p.wall_seconds * 1e3, 1),
        to_fixed(static_cast<double>(p.requests) / p.wall_seconds, 0),
        to_fixed(percentile(p.latencies_us, 0.50), 1),
        to_fixed(percentile(p.latencies_us, 0.99), 1),
        cat(p.hits, "/", p.requests)};
  };
  Table table({"pass", "requests", "wall ms", "req/s", "p50 us", "p99 us", "hits"});
  table.add_row(row("cold", cold));
  table.add_row(row("warm", warm));
  table.add_row(row("degraded", degraded));

  std::cout << "srrad service bench: " << queries.size() << " unique queries, "
            << kThreads << " client threads, Unix socket\n\n";
  table.render(std::cout);
  std::cout << "\nwarm hit rate: " << to_fixed(warm_hit_rate * 100.0, 1) << "%\n"
            << "degraded pass (100% store-write failure): store mode '"
            << degraded_mode << "', " << to_fixed(degraded_ratio, 2)
            << "x cold wall time\n";

  std::cout << "BENCH JSON: {\"bench\": \"bench_service\", \"unique_queries\": "
            << queries.size() << ", \"threads\": " << kThreads
            << ", \"cold_req_per_s\": "
            << to_fixed(static_cast<double>(cold.requests) / cold.wall_seconds, 0)
            << ", \"warm_req_per_s\": "
            << to_fixed(static_cast<double>(warm.requests) / warm.wall_seconds, 0)
            << ", \"warm_p50_us\": " << to_fixed(percentile(warm.latencies_us, 0.50), 1)
            << ", \"warm_p99_us\": " << to_fixed(percentile(warm.latencies_us, 0.99), 1)
            << ", \"warm_hit_rate\": " << to_fixed(warm_hit_rate, 3)
            << ", \"degraded_req_per_s\": "
            << to_fixed(static_cast<double>(degraded.requests) / degraded.wall_seconds, 0)
            << ", \"degraded_vs_cold\": " << to_fixed(degraded_ratio, 3)
            << ", \"degraded_mode\": \"" << degraded_mode << "\"}\n";

  if (warm_hit_rate < 0.9) {
    std::cerr << "FAIL: warm-pass hit rate " << to_fixed(warm_hit_rate, 3)
              << " below 0.9 — warm store recomputed work\n";
    return 1;
  }
  if (degraded_mode != "degraded") {
    std::cerr << "FAIL: store mode after a 100% write-failure pass is '"
              << degraded_mode << "', want 'degraded' (breaker never opened?)\n";
    return 1;
  }
  if (degraded_ratio > 1.2) {
    std::cerr << "FAIL: degraded cold pass cost " << to_fixed(degraded_ratio, 2)
              << "x the plain cold pass (budget: 1.2x) — store failure must "
                 "not stall the compute path\n";
    return 1;
  }
  return 0;
}
