// Multi-daemon srrad scale-out bench (DESIGN.md §15): three in-process
// daemons sharing ONE persistent store directory, hammered with a
// Zipf-skewed query stream (a few hot queries dominate, a long cold tail —
// the shape a shared cache actually sees). Measures and enforces the PR's
// scale-out acceptance criteria:
//  * warm aggregate throughput of 3 daemons on the shared store is at
//    least 2x one daemon's (enforced only on machines with >= 4 hardware
//    threads — a 1-core container cannot parallelize anything — but always
//    printed);
//  * the warm pass hit rate stays >= 90% (shared store: every daemon
//    serves every key, whichever daemon computed it);
//  * a cold daemon warmed from a peer via --warm-from answers >= 80% of
//    its first pass from cache, without computing.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernels.h"
#include "service/client.h"
#include "service/server.h"
#include "service/store.h"
#include "support/json.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

struct PassResult {
  double wall_seconds = 0.0;
  std::size_t hits = 0;
  std::size_t requests = 0;
};

std::string make_query(const std::string& kernel, const std::string& algorithm,
                       std::int64_t budget) {
  srra::JsonValue req = srra::JsonValue::make_object();
  req.set("kernel", srra::JsonValue::make_string(kernel));
  req.set("algorithm", srra::JsonValue::make_string(algorithm));
  req.set("budget", srra::JsonValue::make_int(budget));
  return req.to_string();
}

std::string make_frontier(const std::string& kernel, const std::string& budgets) {
  srra::JsonValue req = srra::JsonValue::make_object();
  req.set("kernel", srra::JsonValue::make_string(kernel));
  req.set("mode", srra::JsonValue::make_string("frontier"));
  req.set("budgets", srra::JsonValue::make_string(budgets));
  return req.to_string();
}

// One pass: thread t fires `shares[t]` at `sockets[t % sockets.size()]`,
// counting cache hits. With one socket this loads a single daemon; with
// three, the same total work spreads across the fleet.
PassResult run_pass(const std::vector<std::string>& sockets,
                    const std::vector<std::vector<std::string>>& shares) {
  PassResult pass;
  std::mutex mu;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(shares.size());
  for (std::size_t t = 0; t < shares.size(); ++t) {
    threads.emplace_back([&, t] {
      srra::service::Client client =
          srra::service::Client::connect_unix(sockets[t % sockets.size()]);
      std::size_t hits = 0;
      for (const std::string& query : shares[t]) {
        const srra::JsonValue doc = srra::parse_json(client.roundtrip(query));
        const srra::JsonValue* cache = doc.find("cache");
        if (cache != nullptr && cache->find("status")->as_string() == "hit") {
          ++hits;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      pass.hits += hits;
      pass.requests += shares[t].size();
    });
  }
  for (std::thread& th : threads) th.join();
  pass.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return pass;
}

void await_socket(const std::string& path) {
  while (!std::filesystem::exists(path)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

int main() {
  using namespace srra;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      cat("srrad_bench_multi_", static_cast<long>(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string store_dir = (dir / "store").string();

  // Unique query set: every builtin kernel x allocators x budgets, plus a
  // frontier sweep per kernel.
  std::vector<std::string> queries;
  std::vector<std::string> names{"example"};
  for (const kernels::NamedKernel& nk : kernels::all_kernels()) {
    names.push_back(nk.name);
  }
  for (const std::string& name : names) {
    for (const char* algo : {"cpa", "fr", "ls"}) {
      for (std::int64_t budget : {32, 64}) {
        queries.push_back(make_query(name, algo, budget));
      }
    }
    queries.push_back(make_frontier(name, "16:64"));
  }

  // Zipf-skewed stream over the unique set (weight 1/(rank+1)): the hot
  // head hammers a few keys, the tail still touches everything. Seeded LCG
  // so every run (and every machine) draws the same stream.
  constexpr std::size_t kStreamLen = 600;
  std::vector<double> cumulative(queries.size());
  double total_weight = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    total_weight += 1.0 / static_cast<double>(i + 1);
    cumulative[i] = total_weight;
  }
  std::vector<std::string> stream;
  stream.reserve(kStreamLen);
  std::uint64_t lcg = 0x5eed5eed5eed5eedULL;
  for (std::size_t i = 0; i < kStreamLen; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(lcg >> 11) / 9007199254740992.0;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(),
                                     u * total_weight);
    stream.push_back(queries[static_cast<std::size_t>(
        std::min(it - cumulative.begin(),
                 static_cast<std::ptrdiff_t>(queries.size() - 1)))]);
  }
  constexpr std::size_t kClientThreads = 3;  // one per daemon in the fleet pass
  std::vector<std::vector<std::string>> shares(kClientThreads);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    shares[i % kClientThreads].push_back(stream[i]);
  }

  // --- Single daemon: cold-fill the shared store, then the warm reference.
  const std::string solo_socket = (dir / "solo.sock").string();
  PassResult cold, solo;
  {
    service::ServerOptions options;
    options.jobs = 0;
    options.store_dir = store_dir;
    service::Server server(options);
    std::thread daemon([&] { server.serve_unix(solo_socket); });
    await_socket(solo_socket);
    std::vector<std::vector<std::string>> unique_shares(kClientThreads);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      unique_shares[i % kClientThreads].push_back(queries[i]);
    }
    cold = run_pass({solo_socket}, unique_shares);
    solo = run_pass({solo_socket}, shares);  // warm Zipf stream, one daemon
    service::Client client = service::Client::connect_unix(solo_socket);
    client.roundtrip(R"({"op": "shutdown"})");
    daemon.join();
  }

  // --- Three daemons, one store: same warm stream, spread across the fleet.
  constexpr std::size_t kDaemons = 3;
  std::vector<std::string> fleet_sockets;
  PassResult fleet;
  {
    std::vector<std::unique_ptr<service::Server>> servers;
    std::vector<std::thread> daemons;
    for (std::size_t d = 0; d < kDaemons; ++d) {
      fleet_sockets.push_back((dir / cat("fleet", d, ".sock")).string());
      service::ServerOptions options;
      options.jobs = 0;
      options.store_dir = store_dir;  // the SAME store directory
      servers.push_back(std::make_unique<service::Server>(options));
      daemons.emplace_back(
          [&, d] { servers[d]->serve_unix(fleet_sockets[d]); });
      await_socket(fleet_sockets[d]);
    }
    fleet = run_pass(fleet_sockets, shares);

    // --- Warm-from-peer: a cold daemon pulls the fleet's store through the
    // wire, then takes its first pass without computing.
    service::ServerOptions cold_options;
    cold_options.jobs = 0;
    cold_options.store_dir = (dir / "store_warmed").string();
    service::Server warmed(cold_options);
    warmed.warm_from_peer(fleet_sockets[0]);
    const std::string warmed_socket = (dir / "warmed.sock").string();
    std::thread warmed_daemon([&] { warmed.serve_unix(warmed_socket); });
    await_socket(warmed_socket);
    const PassResult first = run_pass({warmed_socket}, shares);
    const double warmfrom_hit_rate =
        first.requests > 0
            ? static_cast<double>(first.hits) / static_cast<double>(first.requests)
            : 0.0;

    for (std::size_t d = 0; d < kDaemons; ++d) {
      service::Client client = service::Client::connect_unix(fleet_sockets[d]);
      client.roundtrip(R"({"op": "shutdown"})");
      daemons[d].join();
    }
    {
      service::Client client = service::Client::connect_unix(warmed_socket);
      client.roundtrip(R"({"op": "shutdown"})");
    }
    warmed_daemon.join();

    const double solo_rps =
        static_cast<double>(solo.requests) / solo.wall_seconds;
    const double fleet_rps =
        static_cast<double>(fleet.requests) / fleet.wall_seconds;
    const double scale = solo_rps > 0.0 ? fleet_rps / solo_rps : 0.0;
    const double warm_hit_rate =
        fleet.requests > 0
            ? static_cast<double>(fleet.hits) / static_cast<double>(fleet.requests)
            : 0.0;
    const unsigned cores = std::thread::hardware_concurrency();

    std::filesystem::remove_all(dir);

    const auto row = [](const char* label, const PassResult& p) {
      return std::vector<std::string>{
          label,
          std::to_string(p.requests),
          to_fixed(p.wall_seconds * 1e3, 1),
          to_fixed(static_cast<double>(p.requests) / p.wall_seconds, 0),
          cat(p.hits, "/", p.requests)};
    };
    Table table({"pass", "requests", "wall ms", "req/s", "hits"});
    table.add_row(row("cold fill (1 daemon)", cold));
    table.add_row(row("warm zipf (1 daemon)", solo));
    table.add_row(row(cat("warm zipf (", kDaemons, " daemons)").c_str(), fleet));
    table.add_row(row("first pass (warm-from)", first));

    std::cout << "srrad multi-daemon bench: " << queries.size()
              << " unique queries, " << kStreamLen << " Zipf-drawn requests, "
              << kDaemons << " daemons on one store, " << cores
              << " hardware threads\n\n";
    table.render(std::cout);
    std::cout << "\naggregate warm scaling: " << to_fixed(scale, 2)
              << "x one daemon (enforced >= 2x when cores >= 4)\n"
              << "warm hit rate: " << to_fixed(warm_hit_rate * 100.0, 1)
              << "%, warm-from first-pass hit rate: "
              << to_fixed(warmfrom_hit_rate * 100.0, 1) << "%\n";

    std::cout << "BENCH JSON: {\"bench\": \"bench_service_multi\", "
              << "\"unique_queries\": " << queries.size()
              << ", \"stream_len\": " << kStreamLen
              << ", \"daemons\": " << kDaemons
              << ", \"cores\": " << cores
              << ", \"solo_req_per_s\": " << to_fixed(solo_rps, 0)
              << ", \"fleet_req_per_s\": " << to_fixed(fleet_rps, 0)
              << ", \"scale\": " << to_fixed(scale, 3)
              << ", \"warm_hit_rate\": " << to_fixed(warm_hit_rate, 3)
              << ", \"warmfrom_hit_rate\": " << to_fixed(warmfrom_hit_rate, 3)
              << "}\n";

    if (warm_hit_rate < 0.9) {
      std::cerr << "FAIL: fleet warm hit rate " << to_fixed(warm_hit_rate, 3)
                << " below 0.9 — daemons are not sharing the store\n";
      return 1;
    }
    if (warmfrom_hit_rate < 0.8) {
      std::cerr << "FAIL: warm-from first-pass hit rate "
                << to_fixed(warmfrom_hit_rate, 3)
                << " below 0.8 — peer warmup did not transfer the store\n";
      return 1;
    }
    if (cores >= 4 && scale < 2.0) {
      std::cerr << "FAIL: 3-daemon aggregate warm throughput is only "
                << to_fixed(scale, 2)
                << "x one daemon (enforced >= 2x with " << cores
                << " hardware threads)\n";
      return 1;
    }
  }
  return 0;
}
