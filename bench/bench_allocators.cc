// Allocator-family bench (DESIGN.md §11): wall-clock cost of one
// allocation per algorithm family, on a fresh RefModel every repetition so
// each allocator pays for exactly the analysis it demands — LS-RA's claim
// is that a purely structural scan (occurrence ranks + beta_full, no
// access counting) lands within 2% of the certified optimum at a fraction
// of the greedy and DP cost. The BB-RA columns record the certification
// story: nodes expanded and whether the branch-and-bound proof completed
// within its default budgets on every built-in kernel.
//
// Exit code is 1 when a *deterministic* claim breaks (LS-RA's access
// count above 2% over the best greedy allocator's, or a kernel BB-RA
// fails to certify); timings are reported and tracked by the CI perf
// guard, not asserted here, so shared-runner noise cannot flake the
// bench. The tighter ≤2%-of-certified-optimum property holds on every
// *built-in* kernel and is pinned in tests/test_allocators.cc; the worked
// example is the known exception, where the whole greedy family (PR-RA
// included) sits ~30% off the serial optimum by design — that gap is the
// paper's CPA-RA motivation, not an LS-RA regression.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "core/bnb_optimal.h"
#include "core/linear_scan.h"
#include "core/registry.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;
  using Clock = std::chrono::steady_clock;

  constexpr std::int64_t kBudget = 64;
  constexpr int kReps = 20;

  std::vector<kernels::NamedKernel> all;
  all.push_back({"example", "Figure 1 worked example", kernels::paper_example()});
  for (kernels::NamedKernel& nk : kernels::all_kernels()) all.push_back(std::move(nk));

  // One allocation on a fresh model, allocator-only time in microseconds.
  const auto time_us = [&](const Kernel& kernel, Algorithm algorithm) {
    double total = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const RefModel model(kernel.clone());  // untimed: shared analysis
      const auto t0 = Clock::now();
      const Allocation a = allocate(algorithm, model, kBudget);
      const auto t1 = Clock::now();
      total += std::chrono::duration<double, std::micro>(t1 - t0).count();
      if (a.total() > kBudget) return -1.0;  // defensive; validate() is tested
    }
    return total / kReps;
  };

  std::cout << "Allocator families at budget " << kBudget << ": one allocation on a "
            << "fresh model,\nallocator-only time, best structural scan vs greedy "
            << "ratios vs budget DP\n(" << kReps << " reps each; BB-RA certifies the "
            << "optimum the gaps are measured against)\n\n";

  Table table({"Kernel", "LS us", "FR us", "PR us", "DP us", "LS/PR speedup",
               "LS gap", "BnB nodes", "Certified"});
  double total_ls = 0, total_fr = 0, total_pr = 0, total_dp = 0;
  std::int64_t certified_count = 0;
  double max_gap_pct = 0;
  bool claims_hold = true;

  for (const kernels::NamedKernel& nk : all) {
    const double ls_us = time_us(nk.kernel, Algorithm::kLinearScan);
    const double fr_us = time_us(nk.kernel, Algorithm::kFrRa);
    const double pr_us = time_us(nk.kernel, Algorithm::kPrRa);
    const double dp_us = time_us(nk.kernel, Algorithm::kOptimalDp);
    total_ls += ls_us;
    total_fr += fr_us;
    total_pr += pr_us;
    total_dp += dp_us;

    const RefModel model(nk.kernel.clone());
    const BnbResult optimum = allocate_bnb_certified(model, kBudget);
    certified_count += optimum.certified ? 1 : 0;
    const auto steady = [&](Algorithm algorithm) {
      const Allocation a = allocate(algorithm, model, kBudget);
      std::int64_t total = 0;
      for (int g = 0; g < model.group_count(); ++g) {
        total += model.accesses(g, a.at(g), CountMode::kSteady);
      }
      return total;
    };
    const std::int64_t ls_accesses = steady(Algorithm::kLinearScan);
    const std::int64_t greedy_accesses =
        std::min(steady(Algorithm::kFrRa), steady(Algorithm::kPrRa));
    const double gap_pct =
        optimum.accesses > 0
            ? 100.0 * static_cast<double>(ls_accesses - optimum.accesses) /
                  static_cast<double>(optimum.accesses)
            : 0.0;
    if (gap_pct > max_gap_pct) max_gap_pct = gap_pct;
    // The deterministic claims: LS-RA within 2% of the greedy family's
    // access count on every kernel, and every kernel certified.
    if (static_cast<double>(ls_accesses - greedy_accesses) >
            0.02 * static_cast<double>(greedy_accesses) ||
        !optimum.certified) {
      claims_hold = false;
    }

    table.add_row({nk.name, to_fixed(ls_us, 1), to_fixed(fr_us, 1), to_fixed(pr_us, 1),
                   to_fixed(dp_us, 1),
                   ls_us > 0 ? cat(to_fixed(pr_us / ls_us, 1), "x") : "-",
                   cat(to_fixed(gap_pct, 2), "%"), std::to_string(optimum.nodes),
                   optimum.certified ? "yes" : "NO"});
  }

  table.add_row({"total", to_fixed(total_ls, 1), to_fixed(total_fr, 1),
                 to_fixed(total_pr, 1), to_fixed(total_dp, 1),
                 total_ls > 0 ? cat(to_fixed(total_pr / total_ls, 1), "x") : "-",
                 cat("max ", to_fixed(max_gap_pct, 2), "%"), "",
                 cat(certified_count, "/", all.size())});
  table.render(std::cout);
  std::cout << "\n";

  // Machine-readable record (run_all.sh stores this report next to its own
  // wall-clock JSON; the perf guard watches the binary's wall time).
  std::cout << "BENCH JSON: {\"bench\": \"bench_allocators\", \"budget\": " << kBudget
            << ", \"ls_us\": " << to_fixed(total_ls, 1)
            << ", \"fr_us\": " << to_fixed(total_fr, 1)
            << ", \"pr_us\": " << to_fixed(total_pr, 1)
            << ", \"dp_us\": " << to_fixed(total_dp, 1)
            << ", \"ls_speedup_vs_greedy\": "
            << to_fixed(total_ls > 0 ? total_pr / total_ls : 0.0, 2)
            << ", \"ls_speedup_vs_dp\": "
            << to_fixed(total_ls > 0 ? total_dp / total_ls : 0.0, 2)
            << ", \"max_ls_gap_pct\": " << to_fixed(max_gap_pct, 3)
            << ", \"bnb_certified\": " << certified_count
            << ", \"bnb_kernels\": " << all.size()
            << ", \"claims_hold\": " << (claims_hold ? "true" : "false") << "}\n";
  return claims_hold ? 0 : 1;
}
