// Extension E (DESIGN.md §3): loop order x allocator. Interchange moves the
// reuse-carrying levels, which changes beta requirements and therefore
// every allocator's decisions; CPA-RA adapts because it re-derives the
// critical graph per order. All orders compute bit-identical results
// (verified in test_transform.cc). The order enumeration and evaluation run
// through the DSE engine's interchange axis (src/dse/space.h), which
// expands every permutation `interchange_is_safe` admits.
#include <iostream>

#include "dse/report.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  std::cout << "Loop interchange x allocator (MAT and the worked example, budget 64)\n\n";

  const auto run_block = [](const std::string& title, dse::AxisSpec axes) {
    axes.interchange = true;
    dse::ExploreOptions options;
    options.jobs = 0;  // all cores
    const dse::ExploreResult result = dse::explore(std::move(axes), options);

    Table table({"Loop order", "Algorithm", "Distribution", "Exec cycles", "Tmem"});
    int last_variant = 0;
    for (const dse::SpacePoint& point : result.space.points) {
      const dse::PointResult& r = result.results[static_cast<std::size_t>(point.index)];
      if (!r.feasible) continue;
      if (point.variant != last_variant) table.add_separator();
      last_variant = point.variant;
      table.add_row({result.variant_of(point).order, algorithm_name(point.algorithm),
                     r.design.allocation.distribution(),
                     with_commas(r.design.cycles.exec_cycles),
                     with_commas(r.design.cycles.mem_cycles)});
    }
    table.add_separator();
    std::cout << title << "\n";
    table.render(std::cout);
    std::cout << "\n";
  };

  {
    dse::AxisSpec axes;
    axes.kernels.push_back({"MAT", kernels::mat()});
    run_block("MAT (c[i][j] += a[i][k] * b[k][j])", std::move(axes));
  }
  {
    dse::AxisSpec axes;
    axes.kernels.push_back({"example", kernels::paper_example()});
    run_block("Worked example (Figure 1)", std::move(axes));
  }
  return 0;
}
