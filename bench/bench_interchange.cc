// Extension E (DESIGN.md §3): loop order x allocator. Interchange moves the
// reuse-carrying levels, which changes beta requirements and therefore
// every allocator's decisions; CPA-RA adapts because it re-derives the
// critical graph per order. All orders compute bit-identical results
// (verified in test_transform.cc).
#include <iostream>

#include "driver/pipeline.h"
#include "ir/transform.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  std::cout << "Loop interchange x allocator (MAT and the worked example, budget 64)\n\n";

  struct Variant {
    const char* label;
    Kernel kernel;
  };

  const auto run_block = [](const std::string& title, std::vector<Variant> variants) {
    Table table({"Loop order", "Algorithm", "Distribution", "Exec cycles", "Tmem"});
    for (const Variant& v : variants) {
      if (!interchange_is_safe(v.kernel)) continue;
      const RefModel model(v.kernel.clone());
      for (Algorithm alg : paper_variants()) {
        const DesignPoint p = run_pipeline(model, alg);
        table.add_row({v.label, algorithm_name(alg), p.allocation.distribution(),
                       with_commas(p.cycles.exec_cycles), with_commas(p.cycles.mem_cycles)});
      }
      table.add_separator();
    }
    std::cout << title << "\n";
    table.render(std::cout);
    std::cout << "\n";
  };

  {
    const Kernel base = kernels::mat();
    std::vector<Variant> variants;
    variants.push_back(Variant{"(i,j,k)", base.clone()});
    variants.push_back(Variant{"(j,i,k)", interchange_loops(base, 0, 1)});
    variants.push_back(Variant{"(k,j,i)", interchange_loops(base, 0, 2)});
    variants.push_back(Variant{"(i,k,j)", interchange_loops(base, 1, 2)});
    run_block("MAT (c[i][j] += a[i][k] * b[k][j])", std::move(variants));
  }
  {
    const Kernel base = kernels::paper_example();
    std::vector<Variant> variants;
    variants.push_back(Variant{"(i,j,k)", base.clone()});
    variants.push_back(Variant{"(i,k,j)", interchange_loops(base, 1, 2)});
    run_block("Worked example (Figure 1)", std::move(variants));
  }
  return 0;
}
