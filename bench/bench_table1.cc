// Regenerates Table 1 of the paper: for each of the six kernels and the
// three register-allocation variants (v1 = FR-RA, v2 = PR-RA, v3 = CPA-RA),
// the register distribution, execution cycle count (with % reduction vs
// v1), modeled clock period, wall-clock time (with speedup vs v1), slice
// usage/occupancy and BlockRAM count. See EXPERIMENTS.md for the
// paper-vs-measured comparison.
#include <iostream>

#include "driver/pipeline.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

namespace {

const char* version_name(int index) {
  switch (index) {
    case 0: return "v1 FR-RA";
    case 1: return "v2 PR-RA";
    default: return "v3 CPA-RA";
  }
}

}  // namespace

int main() {
  using namespace srra;

  std::cout << "Table 1 reproduction: register allocation and hardware designs\n"
            << "(budget 64 registers, Virtex XCV1000 model; see DESIGN.md §4-6)\n\n";

  Table table({"Kernel", "Version", "Required S.R.", "Distribution", "Total",
               "Cycles", "dCyc", "Clock ns", "Time us", "Speedup", "Slices", "Occup",
               "RAMs"});

  double v2_cycle_gain = 0.0;
  double v3_cycle_gain = 0.0;
  double v2_wall_gain = 0.0;
  double v3_wall_gain = 0.0;
  double v3_clock_loss = 0.0;
  int kernels_counted = 0;

  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel model(nk.kernel.clone());
    const PipelineOptions options;
    const auto points = run_paper_variants(model, options);
    const DesignPoint& v1 = points[0];

    for (std::size_t v = 0; v < points.size(); ++v) {
      const DesignPoint& p = points[v];
      const double dcyc = 1.0 - static_cast<double>(p.cycles.exec_cycles) /
                                    static_cast<double>(v1.cycles.exec_cycles);
      const double speedup = v1.time_us() / p.time_us();
      table.add_row({nk.name, version_name(static_cast<int>(v)),
                     v == 0 ? required_registers_string(model) : "",
                     p.allocation.distribution(), std::to_string(p.allocation.total()),
                     with_commas(p.cycles.exec_cycles), v == 0 ? "-" : to_percent(dcyc),
                     to_fixed(p.hw.clock_ns, 1), to_fixed(p.time_us(), 1),
                     v == 0 ? "1.00" : to_fixed(speedup, 2), with_commas(p.hw.slices),
                     to_percent(p.hw.occupancy).substr(1), std::to_string(p.hw.block_rams)});
      if (v == 1) {
        v2_cycle_gain += dcyc;
        v2_wall_gain += 1.0 - p.time_us() / v1.time_us();
      }
      if (v == 2) {
        v3_cycle_gain += dcyc;
        v3_wall_gain += 1.0 - p.time_us() / v1.time_us();
        v3_clock_loss += p.hw.clock_ns / v1.hw.clock_ns - 1.0;
      }
    }
    table.add_separator();
    ++kernels_counted;
  }
  table.render(std::cout);

  const double n = kernels_counted;
  std::cout << "\nAverages vs v1 (paper reports the same aggregates):\n"
            << "  v2 cycle reduction: " << to_percent(v2_cycle_gain / n)
            << "   v2 wall-clock gain: " << to_percent(v2_wall_gain / n) << "\n"
            << "  v3 cycle reduction: " << to_percent(v3_cycle_gain / n)
            << "   v3 wall-clock gain: " << to_percent(v3_wall_gain / n)
            << "   v3 clock-rate loss: " << to_percent(v3_clock_loss / n) << "\n";
  return 0;
}
