// Regenerates Table 1 of the paper: for each of the six kernels and the
// three register-allocation variants (v1 = FR-RA, v2 = PR-RA, v3 = CPA-RA),
// the register distribution, execution cycle count (with % reduction vs
// v1), modeled clock period, wall-clock time (with speedup vs v1), slice
// usage/occupancy and BlockRAM count. The per-kernel blocks render through
// dse::write_design_table — the same formatter `srra run` uses, so the CLI
// and this bench cannot diverge (DESIGN.md §7).
#include <iostream>

#include "driver/pipeline.h"
#include "dse/report.h"
#include "kernels/kernels.h"
#include "support/str.h"

int main() {
  using namespace srra;

  std::cout << "Table 1 reproduction: register allocation and hardware designs\n"
            << "(budget 64 registers, Virtex XCV1000 model; see DESIGN.md §4-6)\n\n";

  double v2_cycle_gain = 0.0;
  double v3_cycle_gain = 0.0;
  double v2_wall_gain = 0.0;
  double v3_wall_gain = 0.0;
  double v3_clock_loss = 0.0;
  int kernels_counted = 0;

  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel model(nk.kernel.clone());
    const auto points = run_paper_variants(model);
    dse::write_design_table(std::cout, nk.name, model, points);
    std::cout << "\n";

    const DesignPoint& v1 = points[0];
    const DesignPoint& v2 = points[1];
    const DesignPoint& v3 = points[2];
    v2_cycle_gain += 1.0 - static_cast<double>(v2.cycles.exec_cycles) /
                               static_cast<double>(v1.cycles.exec_cycles);
    v2_wall_gain += 1.0 - v2.time_us() / v1.time_us();
    v3_cycle_gain += 1.0 - static_cast<double>(v3.cycles.exec_cycles) /
                               static_cast<double>(v1.cycles.exec_cycles);
    v3_wall_gain += 1.0 - v3.time_us() / v1.time_us();
    v3_clock_loss += v3.hw.clock_ns / v1.hw.clock_ns - 1.0;
    ++kernels_counted;
  }

  const double n = kernels_counted;
  std::cout << "Averages vs v1 (paper reports the same aggregates):\n"
            << "  v2 cycle reduction: " << to_percent(v2_cycle_gain / n)
            << "   v2 wall-clock gain: " << to_percent(v2_wall_gain / n) << "\n"
            << "  v3 cycle reduction: " << to_percent(v3_cycle_gain / n)
            << "   v3 wall-clock gain: " << to_percent(v3_wall_gain / n)
            << "   v3 clock-rate loss: " << to_percent(v3_clock_loss / n) << "\n";
  return 0;
}
