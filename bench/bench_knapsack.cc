// Extension B (DESIGN.md §3): optimal baselines versus the paper's greedy
// allocators. KS-RA is the exact 0/1 knapsack over the paper's §3
// full-or-nothing formulation; DP-RA additionally allows partial windows
// and is optimal for the serial steady-access objective. The table shows
// how little the greedy ratio heuristic loses on its own objective — and
// that CPA-RA can still execute fewer cycles than both optima, because
// eliminating the most accesses is not the same as minimizing the critical
// path with concurrent operand fetches.
#include <iostream>

#include "driver/pipeline.h"
#include "kernels/kernels.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  std::cout << "Exact knapsack vs greedy allocators (budget 64)\n\n";
  Table table({"Kernel", "Algorithm", "Registers", "Saved accesses", "Exec cycles",
               "vs KS-RA cycles"});

  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel model(nk.kernel.clone());
    const std::vector<Algorithm> algorithms{Algorithm::kKnapsack, Algorithm::kOptimalDp,
                                            Algorithm::kFrRa, Algorithm::kPrRa,
                                            Algorithm::kCpaRa};
    std::int64_t ks_cycles = 0;
    for (Algorithm alg : algorithms) {
      const DesignPoint p = run_pipeline(model, alg);
      std::int64_t saved = 0;
      for (int g = 0; g < model.group_count(); ++g) {
        // Value achieved under the knapsack's own objective: total-mode
        // access elimination for the registers actually granted.
        saved += model.accesses(g, 1, CountMode::kTotal) -
                 model.accesses(g, p.allocation.at(g), CountMode::kTotal);
      }
      if (alg == Algorithm::kKnapsack) ks_cycles = p.cycles.exec_cycles;
      const double ratio = static_cast<double>(p.cycles.exec_cycles) /
                           static_cast<double>(ks_cycles);
      table.add_row({nk.name, algorithm_name(alg), std::to_string(p.allocation.total()),
                     with_commas(saved), with_commas(p.cycles.exec_cycles),
                     alg == Algorithm::kKnapsack ? "1.000" : to_fixed(ratio, 3)});
    }
    table.add_separator();
  }
  table.render(std::cout);
  std::cout << "\n(<1.000 = fewer cycles than the access-count-optimal knapsack;\n"
            << " the paper's point: eliminating the most accesses is not the same\n"
            << " as minimizing the critical path.)\n";
  return 0;
}
