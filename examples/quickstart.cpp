// Quickstart: the smallest end-to-end use of the srra library.
//
//  1. describe a loop kernel in the DSL,
//  2. analyze its array references (reuse + register requirements),
//  3. run the paper's three allocators at a register budget,
//  4. estimate cycles / clock / area for each resulting design.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "driver/pipeline.h"
#include "ir/parser.h"
#include "support/str.h"
#include "support/table.h"
#include "xform/scalar_replace.h"

int main() {
  using namespace srra;

  // A 2-deep moving-average kernel, written in the kernel DSL.
  const RefModel model(parse_kernel(R"(
    kernel moving_average {
      array x[272] : u8;
      array w[16] : u8;
      array y[256] : s32;
      for i in 0..256 {
        for j in 0..16 {
          y[i] += w[j] * x[i + j];
        }
      }
    }
  )"));

  // Reuse analysis: what would full scalar replacement cost per reference?
  std::cout << "references and full-scalar-replacement register requirements:\n";
  for (int g = 0; g < model.group_count(); ++g) {
    std::cout << "  " << pad_right(model.groups()[g].display, 10) << " beta_full = "
              << model.beta_full(g) << ", saves " << model.saved(g)
              << " RAM accesses (B/C = " << to_fixed(model.bc_ratio(g), 1) << ")\n";
  }

  // The three allocators at a 24-register budget.
  PipelineOptions options;
  options.budget = 24;
  Table table({"Algorithm", "Distribution", "Regs", "Exec cycles", "Clock ns", "Time us"});
  for (Algorithm alg : paper_variants()) {
    const DesignPoint p = run_pipeline(model, alg, options);
    table.add_row({algorithm_name(alg), p.allocation.distribution(),
                   std::to_string(p.allocation.total()), with_commas(p.cycles.exec_cycles),
                   to_fixed(p.hw.clock_ns, 1), to_fixed(p.time_us(), 1)});
  }
  std::cout << "\ndesigns at a 24-register budget:\n";
  table.render(std::cout);

  // What the winning allocation means as a code transformation.
  const Allocation best = allocate(Algorithm::kCpaRa, model, options.budget);
  std::cout << "\n" << describe_plan(model, plan_scalar_replacement(model, best));
  return 0;
}
