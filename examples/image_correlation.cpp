// Binary image correlation (the paper's BIC kernel) built with the C++
// builder API instead of the DSL, then pushed through analysis, CPA-RA,
// the machine simulator and both code generators.
//
// Build & run:  ./build/examples/image_correlation
#include <iostream>

#include "codegen/c_emitter.h"
#include "codegen/vhdl_emitter.h"
#include "driver/pipeline.h"
#include "ir/builder.h"
#include "sim/machine.h"
#include "support/str.h"

int main() {
  using namespace srra;

  // corr[r][s] += (tpl[i][j] == img[r+i][s+j]) over all 29x29 placements of
  // a 4x4 template in a 32x32 image — a smaller BIC so the 64-register
  // budget can cover a meaningful share of the image window.
  KernelBuilder b("bic_small");
  b.array("img", {32, 32}, ScalarType::kU8);
  b.array("tpl", {4, 4}, ScalarType::kU8);
  b.array("corr", {29, 29}, ScalarType::kS16);
  b.loop("r", 0, 29).loop("s", 0, 29).loop("i", 0, 4).loop("j", 0, 4);
  b.assign("corr", {b.var("r"), b.var("s")},
           add(b.ref("corr", {b.var("r"), b.var("s")}),
               eq(b.ref("tpl", {b.var("i"), b.var("j")}),
                  b.ref("img", {b.var("r") + b.var("i"), b.var("s") + b.var("j")}))));
  const RefModel model(b.build());

  std::cout << "reference analysis:\n";
  for (int g = 0; g < model.group_count(); ++g) {
    std::cout << "  " << pad_right(model.groups()[g].display, 18)
              << " beta_full = " << model.beta_full(g) << "\n";
  }

  const DesignPoint p = run_pipeline(model, Algorithm::kCpaRa);
  std::cout << "\nCPA-RA design (budget 64): regs " << p.allocation.distribution()
            << ", " << with_commas(p.cycles.exec_cycles) << " cycles, "
            << to_fixed(p.hw.clock_ns, 1) << " ns clock, " << to_fixed(p.time_us(), 1)
            << " us, " << p.hw.slices << " slices, " << p.hw.block_rams << " BlockRAMs\n";

  const VerifyResult check = verify_allocation(model, p.allocation, /*seed=*/7);
  std::cout << "machine simulation vs golden interpreter: "
            << (check.ok ? "MATCH" : "MISMATCH") << " (" << check.machine.ram_total()
            << " RAM accesses, " << check.machine.reg_hits << " register hits)\n";
  if (!check.ok) return 1;

  // Code generation: sizes only; see build/examples output files for text.
  const TransformPlan plan = plan_scalar_replacement(model, p.allocation);
  std::cout << "\ngenerated C: " << emit_c(model, plan).size() << " bytes; generated VHDL: "
            << emit_vhdl(model, plan).size() << " bytes\n";
  return 0;
}
