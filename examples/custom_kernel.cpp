// Custom-kernel driver: parse a kernel from a DSL file (or fall back to a
// built-in stencil), then print everything the toolchain knows about it —
// reuse analysis, the DFG in DOT form, all allocators at a chosen budget,
// the transformation plan, and the generated C and VHDL.
//
// Usage:  ./build/examples/custom_kernel [kernel.dsl [budget]]
#include <fstream>
#include <iostream>
#include <sstream>

#include "codegen/c_emitter.h"
#include "codegen/vhdl_emitter.h"
#include "dfg/dot.h"
#include "driver/pipeline.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/str.h"
#include "support/table.h"

namespace {

constexpr const char* kDefaultKernel = R"(
# 1-D 3-point stencil with reused coefficients
kernel stencil3 {
  array w[3] : s16;
  array in[130] : s16;
  array out[128] : s32;
  for i in 0..128 {
    for j in 0..3 {
      out[i] += w[j] * in[i + j];
    }
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace srra;

  std::string source = kDefaultKernel;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }
  const std::int64_t budget = argc > 2 ? std::stoll(argv[2]) : 16;

  const RefModel model(parse_kernel(source));
  std::cout << "parsed kernel:\n" << kernel_to_string(model.kernel()) << "\n";

  std::cout << "reuse analysis:\n";
  for (int g = 0; g < model.group_count(); ++g) {
    const ReuseInfo& r = model.reuse()[g];
    std::cout << "  " << pad_right(model.groups()[g].display, 12);
    if (!r.has_reuse()) {
      std::cout << "no temporal reuse\n";
      continue;
    }
    std::vector<std::string> parts;
    for (const CarryLevel& cl : r.levels) {
      parts.push_back(cat(model.kernel().loop(cl.level).var, ": beta ", cl.beta));
    }
    std::cout << "carried at { " << join(parts, ", ") << " }\n";
  }

  const Dfg dfg = Dfg::build(model.kernel(), model.groups());
  std::cout << "\nDFG (DOT):\n" << to_dot(dfg);

  PipelineOptions options;
  options.budget = budget;
  Table table({"Algorithm", "Distribution", "Regs", "Exec cycles", "Tmem", "Time us"});
  for (Algorithm alg : {Algorithm::kFeasibility, Algorithm::kFrRa, Algorithm::kPrRa,
                        Algorithm::kCpaRa, Algorithm::kKnapsack}) {
    const DesignPoint p = run_pipeline(model, alg, options);
    table.add_row({algorithm_name(alg), p.allocation.distribution(),
                   std::to_string(p.allocation.total()), with_commas(p.cycles.exec_cycles),
                   with_commas(p.cycles.mem_cycles), to_fixed(p.time_us(), 1)});
  }
  std::cout << "\nall allocators at budget " << budget << ":\n";
  table.render(std::cout);

  const Allocation best = allocate(Algorithm::kCpaRa, model, budget);
  const TransformPlan plan = plan_scalar_replacement(model, best);
  std::cout << "\n" << describe_plan(model, plan);
  std::cout << "\n---- generated C ----\n" << emit_c(model, plan);
  std::cout << "\n---- generated VHDL ----\n" << emit_vhdl(model, plan);
  return 0;
}
