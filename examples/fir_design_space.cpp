// FIR design-space exploration: how the three allocators trade registers
// for cycles on the paper's FIR kernel, with functional verification of
// every design point on the machine simulator (explicit register file +
// RAM banks) against the golden interpreter. The (algorithm x budget)
// sweep itself is one run_budget_sweep call: the analysis stage is shared
// across every point (driver/pipeline.h; the DSE engine in src/dse/ builds
// on the same reuse).
//
// Build & run:  ./build/examples/fir_design_space
#include <iostream>

#include "driver/pipeline.h"
#include "kernels/kernels.h"
#include "sim/machine.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  const RefModel model(kernels::fir());
  std::cout << "FIR: 1024-sample convolution, 32 taps (paper kernel 1)\n\n";

  const std::vector<DesignPoint> points =
      run_budget_sweep(model, paper_variants(), {8, 16, 32, 64});

  Table table({"Algorithm", "Budget", "Distribution", "Exec cycles", "RAM accesses",
               "Time us", "Verified"});
  std::string last_algorithm;
  for (const DesignPoint& p : points) {
    // Functional check: the design must compute exactly what the source
    // kernel computes.
    const VerifyResult check = verify_allocation(model, p.allocation, /*seed=*/42);
    if (!last_algorithm.empty() && p.allocation.algorithm != last_algorithm) {
      table.add_separator();
    }
    last_algorithm = p.allocation.algorithm;
    table.add_row({algorithm_name(p.algorithm), std::to_string(p.allocation.budget),
                   p.allocation.distribution(), with_commas(p.cycles.exec_cycles),
                   with_commas(check.machine.ram_total()), to_fixed(p.time_us(), 1),
                   check.ok ? "yes" : "NO"});
    if (!check.ok) {
      std::cerr << "verification failed for budget " << p.allocation.budget << "\n";
      return 1;
    }
  }
  table.render(std::cout);

  std::cout << "\nNote the rotating window: x[i+j] holds the most recent taps in\n"
               "registers and performs one steady-state fill per output sample.\n";
  return 0;
}
