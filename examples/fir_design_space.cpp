// FIR design-space exploration: how the three allocators trade registers
// for cycles on the paper's FIR kernel, with functional verification of
// every design point on the machine simulator (explicit register file +
// RAM banks) against the golden interpreter.
//
// Build & run:  ./build/examples/fir_design_space
#include <iostream>

#include "driver/pipeline.h"
#include "kernels/kernels.h"
#include "sim/machine.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace srra;

  const RefModel model(kernels::fir());
  std::cout << "FIR: 1024-sample convolution, 32 taps (paper kernel 1)\n\n";

  Table table({"Budget", "Algorithm", "Distribution", "Exec cycles", "RAM accesses",
               "Time us", "Verified"});
  for (std::int64_t budget : {8, 16, 32, 64}) {
    PipelineOptions options;
    options.budget = budget;
    for (Algorithm alg : paper_variants()) {
      const DesignPoint p = run_pipeline(model, alg, options);
      // Functional check: the design must compute exactly what the source
      // kernel computes.
      const VerifyResult check = verify_allocation(model, p.allocation, /*seed=*/42);
      table.add_row({std::to_string(budget), algorithm_name(alg),
                     p.allocation.distribution(), with_commas(p.cycles.exec_cycles),
                     with_commas(check.machine.ram_total()), to_fixed(p.time_us(), 1),
                     check.ok ? "yes" : "NO"});
      if (!check.ok) {
        std::cerr << "verification failed for budget " << budget << "\n";
        return 1;
      }
    }
    table.add_separator();
  }
  table.render(std::cout);

  std::cout << "\nNote the rotating window: x[i+j] holds the most recent taps in\n"
               "registers and performs one steady-state fill per output sample.\n";
  return 0;
}
