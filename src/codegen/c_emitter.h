// C code generator: emits a standalone, compilable C translation of a
// kernel under a scalar-replacement plan. The generated program contains
//  * one flat global array per kernel array,
//  * a register-window runtime (the register-file controller the hardware
//    would implement: rank tracking, fill/flush, LRU rotation) — the same
//    policy as analysis/walker.h,
//  * deterministic SplitMix64 initialization identical to
//    ArrayStore::randomize, and
//  * an FNV-1a checksum of all arrays printed on exit,
// so its output can be compared bit-for-bit against the interpreter (the
// codegen tests compile and execute it).
#pragma once

#include <cstdint>
#include <string>

#include "xform/scalar_replace.h"

namespace srra {

/// Emission switches.
struct CEmitOptions {
  std::uint64_t seed = 1234;  ///< array initialization seed
  bool plain = false;         ///< emit the untransformed kernel (no windows)
};

/// Emits the complete C translation unit.
std::string emit_c(const RefModel& model, const TransformPlan& plan,
                   const CEmitOptions& options = {});

/// FNV-1a checksum of every array of `store`, element order — must equal the
/// number printed by the generated program when seeded identically.
std::uint64_t store_checksum(const class ArrayStore& store, const Kernel& kernel);

}  // namespace srra
