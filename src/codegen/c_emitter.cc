#include "codegen/c_emitter.h"

#include <sstream>

#include "sim/storage.h"
#include "support/error.h"
#include "support/str.h"

namespace srra {

namespace {

// The register-file controller runtime: the C rendition of the window
// policy in analysis/walker.h (rank tracking per carry iteration, fill on
// first held touch, LRU rotation, flush of dirty registers).
constexpr const char* kRuntime = R"(/* ---- srra register-window runtime ---- */
typedef struct {
  int64_t cap;            /* held-element limit */
  int64_t *backing;       /* flat RAM array */
  int64_t *held_elem; int64_t *held_val; int *held_dirty; uint64_t *held_touch;
  int64_t held_n;
  int64_t *rank_elem;     /* touch order of the current carry iteration */
  int64_t rank_n;
  int64_t window_key, carry_key;
  int started;
  uint64_t seq;
} srra_rf;

static void srra_rf_flush_all(srra_rf *rf) {
  for (int64_t h = 0; h < rf->held_n; ++h) {
    if (rf->held_dirty[h]) rf->backing[rf->held_elem[h]] = rf->held_val[h];
  }
  rf->held_n = 0;
}

static void srra_rf_begin(srra_rf *rf, int64_t window_key, int64_t carry_key) {
  if (!rf->started) {
    rf->started = 1;
    rf->window_key = window_key;
    rf->carry_key = carry_key;
    return;
  }
  if (window_key != rf->window_key) {
    srra_rf_flush_all(rf);
    rf->rank_n = 0;
  } else if (carry_key != rf->carry_key) {
    rf->rank_n = 0;
  }
  rf->window_key = window_key;
  rf->carry_key = carry_key;
}

static int64_t srra_rf_rank(srra_rf *rf, int64_t elem) {
  for (int64_t r = 0; r < rf->rank_n; ++r) {
    if (rf->rank_elem[r] == elem) return r;
  }
  rf->rank_elem[rf->rank_n] = elem;
  return rf->rank_n++;
}

static int64_t srra_rf_slot(srra_rf *rf, int64_t elem) {
  for (int64_t h = 0; h < rf->held_n; ++h) {
    if (rf->held_elem[h] == elem) return h;
  }
  return -1;
}

static int64_t srra_rf_make_room(srra_rf *rf) {
  if (rf->held_n < rf->cap) return rf->held_n++;
  int64_t victim = 0;
  for (int64_t h = 1; h < rf->held_n; ++h) {
    if (rf->held_touch[h] < rf->held_touch[victim]) victim = h;
  }
  if (rf->held_dirty[victim]) rf->backing[rf->held_elem[victim]] = rf->held_val[victim];
  return victim;
}

static int64_t srra_rf_read(srra_rf *rf, int64_t elem) {
  if (srra_rf_rank(rf, elem) >= rf->cap) return rf->backing[elem];
  ++rf->seq;
  int64_t slot = srra_rf_slot(rf, elem);
  if (slot >= 0) {
    rf->held_touch[slot] = rf->seq;
    return rf->held_val[slot];
  }
  slot = srra_rf_make_room(rf);
  rf->held_elem[slot] = elem;
  rf->held_val[slot] = rf->backing[elem];  /* fill */
  rf->held_dirty[slot] = 0;
  rf->held_touch[slot] = rf->seq;
  return rf->held_val[slot];
}

static void srra_rf_write(srra_rf *rf, int64_t elem, int64_t value) {
  if (srra_rf_rank(rf, elem) >= rf->cap) {
    rf->backing[elem] = value;
    return;
  }
  ++rf->seq;
  int64_t slot = srra_rf_slot(rf, elem);
  if (slot < 0) {
    slot = srra_rf_make_room(rf);
    rf->held_elem[slot] = elem;
  }
  rf->held_val[slot] = value;
  rf->held_dirty[slot] = 1;
  rf->held_touch[slot] = rf->seq;
}

/* ---- datapath helpers (match the srra simulator semantics) ---- */
static int64_t srra_div(int64_t a, int64_t b) { return b == 0 ? 0 : a / b; }
static int64_t srra_shl(int64_t a, int64_t b) { return (b < 0 || b > 62) ? 0 : a << b; }
static int64_t srra_shr(int64_t a, int64_t b) { return (b < 0 || b > 62) ? 0 : a >> b; }
static int64_t srra_min(int64_t a, int64_t b) { return a < b ? a : b; }
static int64_t srra_max(int64_t a, int64_t b) { return a > b ? a : b; }
static int64_t srra_abs(int64_t a) { return a < 0 ? -a : a; }
static int64_t srra_trunc(int64_t v, int bits, int sgn) {
  uint64_t mask = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
  uint64_t n = ((uint64_t)v) & mask;
  if (sgn && (n & (1ULL << (bits - 1)))) n |= ~mask;
  return (int64_t)n;
}

/* ---- deterministic init + checksum (match srra::Rng / store_checksum) ---- */
static uint64_t srra_rng_state;
static uint64_t srra_rng_next(void) {
  srra_rng_state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = srra_rng_state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
)";

std::string c_ident(const std::string& name) { return name + "_data"; }

// Flat row-major index expression for an access.
std::string flat_index(const Kernel& kernel, const ArrayAccess& access) {
  const ArrayDecl& decl = kernel.array(access.array_id);
  const auto names = kernel.loop_names();
  std::string out;
  for (int d = 0; d < decl.rank(); ++d) {
    const std::string sub =
        cat("(", access.subscripts[static_cast<std::size_t>(d)].to_string(names), ")");
    if (d == 0) {
      out = sub;
    } else {
      out = cat("(", out, ") * ", decl.dims[static_cast<std::size_t>(d)], " + ", sub);
    }
  }
  return out;
}

struct Emitter {
  const RefModel& model;
  const TransformPlan& plan;
  const CEmitOptions& options;
  std::ostringstream os;

  const Kernel& kernel() const { return model.kernel(); }

  bool group_holds(int g) const {
    return !options.plain && plan.for_group(g).strategy.holds();
  }

  int group_of(const ArrayAccess& access) const {
    for (const RefGroup& g : model.groups()) {
      if (g.access == access) return g.id;
    }
    fail("access has no group");
  }

  std::string read_expr(const ArrayAccess& access) {
    const int g = group_of(access);
    const std::string idx = flat_index(kernel(), access);
    if (group_holds(g)) return cat("srra_rf_read(&rf_g", g, ", ", idx, ")");
    return cat(c_ident(kernel().array(access.array_id).name), "[", idx, "]");
  }

  std::string expr_str(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kConst:
        return cat("INT64_C(", e.const_value(), ")");
      case ExprKind::kLoopVar:
        return kernel().loop(e.loop_level()).var;
      case ExprKind::kRef:
        return read_expr(e.access());
      case ExprKind::kUnOp: {
        const std::string inner = expr_str(e.operand());
        switch (e.un_op()) {
          case UnOpKind::kNeg: return cat("(-(", inner, "))");
          case UnOpKind::kNot: return cat("(~(", inner, "))");
          case UnOpKind::kAbs: return cat("srra_abs(", inner, ")");
        }
        fail("unknown UnOpKind");
      }
      case ExprKind::kBinOp: {
        const std::string a = expr_str(e.lhs());
        const std::string b = expr_str(e.rhs());
        switch (e.bin_op()) {
          case BinOpKind::kAdd: return cat("(", a, " + ", b, ")");
          case BinOpKind::kSub: return cat("(", a, " - ", b, ")");
          case BinOpKind::kMul: return cat("(", a, " * ", b, ")");
          case BinOpKind::kDiv: return cat("srra_div(", a, ", ", b, ")");
          case BinOpKind::kAnd: return cat("(", a, " & ", b, ")");
          case BinOpKind::kOr: return cat("(", a, " | ", b, ")");
          case BinOpKind::kXor: return cat("(", a, " ^ ", b, ")");
          case BinOpKind::kShl: return cat("srra_shl(", a, ", ", b, ")");
          case BinOpKind::kShr: return cat("srra_shr(", a, ", ", b, ")");
          case BinOpKind::kEq: return cat("((", a, ") == (", b, ") ? 1 : 0)");
          case BinOpKind::kNe: return cat("((", a, ") != (", b, ") ? 1 : 0)");
          case BinOpKind::kLt: return cat("((", a, ") < (", b, ") ? 1 : 0)");
          case BinOpKind::kLe: return cat("((", a, ") <= (", b, ") ? 1 : 0)");
          case BinOpKind::kMin: return cat("srra_min(", a, ", ", b, ")");
          case BinOpKind::kMax: return cat("srra_max(", a, ", ", b, ")");
        }
        fail("unknown BinOpKind");
      }
    }
    fail("unknown ExprKind");
  }

  // Combined outer-level window key / carry key expressions for a group.
  std::string window_key_expr(int carry_level) {
    if (carry_level == 0) return "0";
    std::string out = kernel().loop(0).var;
    for (int l = 1; l < carry_level; ++l) {
      out = cat("(", out, ") * ", kernel().loop(l).upper, " + ", kernel().loop(l).var);
    }
    return out;
  }

  void emit_arrays() {
    for (const ArrayDecl& a : kernel().arrays()) {
      os << "static int64_t " << c_ident(a.name) << "[" << a.element_count() << "];\n";
    }
    os << "\n";
  }

  void emit_regfiles() {
    if (options.plain) return;
    for (const GroupPlan& gp : plan.groups) {
      if (!gp.strategy.holds()) continue;
      const int g = gp.group;
      const std::int64_t cap = gp.strategy.held_limit;
      const std::int64_t ranks = gp.window_elements;
      const std::string array =
          c_ident(kernel().array(model.groups()[static_cast<std::size_t>(g)].access.array_id).name);
      os << "/* " << gp.display << ": " << (gp.full ? "full" : "partial") << " window, "
         << cap << " registers, carry loop '"
         << kernel().loop(gp.strategy.carry_level).var << "' */\n";
      os << "static int64_t rf_g" << g << "_elem[" << cap << "], rf_g" << g << "_val[" << cap
         << "];\n";
      os << "static int rf_g" << g << "_dirty[" << cap << "];\n";
      os << "static uint64_t rf_g" << g << "_touch[" << cap << "];\n";
      os << "static int64_t rf_g" << g << "_rank[" << ranks << "];\n";
      os << "static srra_rf rf_g" << g << " = {" << cap << ", " << array << ", rf_g" << g
         << "_elem, rf_g" << g << "_val, rf_g" << g << "_dirty, rf_g" << g << "_touch, 0, rf_g"
         << g << "_rank, 0, 0, 0, 0, 0};\n\n";
    }
  }

  void emit_kernel_fn() {
    os << "static void run_kernel(void) {\n";
    std::string indent = "  ";
    for (int l = 0; l < kernel().depth(); ++l) {
      const Loop& loop = kernel().loop(l);
      os << indent << "for (int64_t " << loop.var << " = " << loop.lower << "; " << loop.var
         << " < " << loop.upper << "; " << loop.var << " += " << loop.step << ") {\n";
      indent += "  ";
    }
    if (!options.plain) {
      for (const GroupPlan& gp : plan.groups) {
        if (!gp.strategy.holds()) continue;
        os << indent << "srra_rf_begin(&rf_g" << gp.group << ", "
           << window_key_expr(gp.strategy.carry_level) << ", "
           << kernel().loop(gp.strategy.carry_level).var << ");\n";
      }
    }
    for (const Stmt& stmt : kernel().body()) {
      const int g = group_of(stmt.lhs);
      const ArrayDecl& decl = kernel().array(stmt.lhs.array_id);
      const std::string value =
          cat("srra_trunc(", expr_str(*stmt.rhs), ", ", bit_width(decl.type), ", ",
              is_signed(decl.type) ? 1 : 0, ")");
      if (group_holds(g)) {
        os << indent << "srra_rf_write(&rf_g" << g << ", " << flat_index(kernel(), stmt.lhs)
           << ", " << value << ");\n";
      } else {
        os << indent << c_ident(decl.name) << "[" << flat_index(kernel(), stmt.lhs)
           << "] = " << value << ";\n";
      }
    }
    for (int l = kernel().depth() - 1; l >= 0; --l) {
      indent.resize(indent.size() - 2);
      os << indent << "}\n";
    }
    if (!options.plain) {
      for (const GroupPlan& gp : plan.groups) {
        if (!gp.strategy.holds()) continue;
        os << "  srra_rf_flush_all(&rf_g" << gp.group << ");\n";
      }
    }
    os << "}\n\n";
  }

  void emit_main() {
    os << "int main(void) {\n";
    os << "  srra_rng_state = UINT64_C(" << options.seed << ");\n";
    for (const ArrayDecl& a : kernel().arrays()) {
      os << "  for (int64_t e = 0; e < " << a.element_count() << "; ++e) "
         << c_ident(a.name) << "[e] = srra_trunc((int64_t)srra_rng_next(), "
         << bit_width(a.type) << ", " << (is_signed(a.type) ? 1 : 0) << ");\n";
    }
    os << "  run_kernel();\n";
    os << "  uint64_t h = UINT64_C(14695981039346656037);\n";
    for (const ArrayDecl& a : kernel().arrays()) {
      os << "  for (int64_t e = 0; e < " << a.element_count() << "; ++e) { h ^= (uint64_t)"
         << c_ident(a.name) << "[e]; h *= UINT64_C(1099511628211); }\n";
    }
    os << "  printf(\"%llu\\n\", (unsigned long long)h);\n";
    os << "  return 0;\n}\n";
  }

  std::string run() {
    os << "/* Generated by srra: kernel '" << kernel().name() << "' under "
       << plan.allocation.algorithm << " (" << plan.allocation.total() << "/"
       << plan.allocation.budget << " registers)"
       << (options.plain ? ", plain (untransformed)" : "") << ". */\n";
    os << "#include <stdint.h>\n#include <stdio.h>\n\n";
    os << kRuntime << "\n";
    emit_arrays();
    emit_regfiles();
    emit_kernel_fn();
    emit_main();
    return os.str();
  }
};

}  // namespace

std::string emit_c(const RefModel& model, const TransformPlan& plan,
                   const CEmitOptions& options) {
  Emitter emitter{model, plan, options, {}};
  return emitter.run();
}

std::uint64_t store_checksum(const ArrayStore& store, const Kernel& kernel) {
  std::uint64_t h = 14695981039346656037ULL;
  for (int a = 0; a < static_cast<int>(kernel.arrays().size()); ++a) {
    const std::int64_t count = kernel.arrays()[static_cast<std::size_t>(a)].element_count();
    for (std::int64_t e = 0; e < count; ++e) {
      h ^= static_cast<std::uint64_t>(store.peek(a, e));
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace srra
