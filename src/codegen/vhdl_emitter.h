// Behavioral VHDL generator: emits the entity the paper's flow would feed
// into Monet — a sequential FSM datapath with one state per DFG operation /
// memory access, per-array BlockRAM interfaces, loop counters and the
// allocated register files. The output is structural documentation of the
// design (synthesizable in style); the repository does not ship a VHDL
// simulator, so tests verify structure, not waveforms.
#pragma once

#include <string>

#include "dfg/latency.h"
#include "xform/scalar_replace.h"

namespace srra {

/// Emits one VHDL design unit (entity + architecture) for the kernel under
/// the given plan.
std::string emit_vhdl(const RefModel& model, const TransformPlan& plan);

}  // namespace srra
