#include "kernels/kernels.h"

#include "ir/parser.h"
#include "support/error.h"
#include "support/str.h"

namespace srra::kernels {

namespace {

// Bounds are compile-time constants in the paper's experiments; the values
// below are the calibration choices recorded in DESIGN.md §4 (the published
// text's digits are OCR-damaged, but all derived quantities in the worked
// example match the paper exactly with these choices).

constexpr const char* kExampleSrc = R"(
kernel example {
  array a[30] : s32;
  array b[30][20] : s32;
  array c[20] : s32;
  array d[2][30] : s32;
  array e[2][20][30] : s32;
  for i in 0..2 {
    for j in 0..20 {
      for k in 0..30 {
        d[i][k] = a[k] * b[k][j];
        e[i][j][k] = c[j] * d[i][k];
      }
    }
  }
}
)";

// FIR: y[i] = sum_j c[j] * x[i+j]; 1024 outputs, 32 taps, 8-bit samples.
constexpr const char* kFirSrc = R"(
kernel fir {
  array x[1055] : u8;
  array c[32] : u8;
  array y[1024] : s32;
  for i in 0..1024 {
    for j in 0..32 {
      y[i] += c[j] * x[i + j];
    }
  }
}
)";

// Dec-FIR: y[i] = sum_j c[j] * x[4i+j]; 256 outputs, 64 taps, decimation 4.
constexpr const char* kDecFirSrc = R"(
kernel dec_fir {
  array x[1084] : u8;
  array c[64] : u8;
  array y[256] : s32;
  for i in 0..256 {
    for j in 0..64 {
      y[i] += c[j] * x[4*i + j];
    }
  }
}
)";

// MAT: c = a * b, 16x16 matrices.
constexpr const char* kMatSrc = R"(
kernel mat {
  array a[16][16] : s16;
  array b[16][16] : s16;
  array c[16][16] : s32;
  for i in 0..16 {
    for j in 0..16 {
      for k in 0..16 {
        c[i][j] += a[i][k] * b[k][j];
      }
    }
  }
}
)";

// IMI: 8 intermediate frames between two 32x32 grey-scale images,
// out = (im1*(8-t) + im2*t) / 8 with the loop counter t as a datapath input.
constexpr const char* kImiSrc = R"(
kernel imi {
  array im1[32][32] : u8;
  array im2[32][32] : u8;
  array out[8][32][32] : u8;
  for t in 0..8 {
    for i in 0..32 {
      for j in 0..32 {
        out[t][i][j] = (im1[i][j] * (8 - t) + im2[i][j] * t) >> 3;
      }
    }
  }
}
)";

// PAT: match count of a 32-char pattern at each of 993 text positions.
constexpr const char* kPatSrc = R"(
kernel pat {
  array txt[1024] : u8;
  array p[32] : u8;
  array m[993] : s16;
  for i in 0..993 {
    for j in 0..32 {
      m[i] += (txt[i + j] == p[j]);
    }
  }
}
)";

// BIC: binary image correlation, 8x8 template over every 57x57 placement in
// a 64x64 image (match = equality count).
constexpr const char* kBicSrc = R"(
kernel bic {
  array img[64][64] : u8;
  array tpl[8][8] : u8;
  array corr[57][57] : s16;
  for r in 0..57 {
    for s in 0..57 {
      for i in 0..8 {
        for j in 0..8 {
          corr[r][s] += (tpl[i][j] == img[r + i][s + j]);
        }
      }
    }
  }
}
)";

// SOBEL-style 3x3 convolution: out[i][j] = sum_{u,v} g[u][v] * in[i+u][j+v].
constexpr const char* kConv2dSrc = R"(
kernel conv2d {
  array in[66][66] : u8;
  array g[3][3] : s8;
  array out[64][64] : s32;
  for i in 0..64 {
    for j in 0..64 {
      for u in 0..3 {
        for v in 0..3 {
          out[i][j] += g[u][v] * in[i + u][j + v];
        }
      }
    }
  }
}
)";

// Matrix-vector product: y[i] = sum_j a[i][j] * x[j].
constexpr const char* kMatvecSrc = R"(
kernel matvec {
  array a[32][32] : s16;
  array x[32] : s16;
  array y[32] : s32;
  for i in 0..32 {
    for j in 0..32 {
      y[i] += a[i][j] * x[j];
    }
  }
}
)";

}  // namespace

Kernel conv2d() { return parse_kernel(kConv2dSrc); }
Kernel matvec() { return parse_kernel(kMatvecSrc); }

std::vector<NamedKernel> all_kernels() {
  std::vector<NamedKernel> all = table1_kernels();
  all.push_back({"CONV2D", "3x3 convolution over a 64x64 image", conv2d()});
  all.push_back({"MATVEC", "32x32 matrix-vector product", matvec()});
  return all;
}

Kernel paper_example() { return parse_kernel(kExampleSrc); }
Kernel fir() { return parse_kernel(kFirSrc); }
Kernel dec_fir() { return parse_kernel(kDecFirSrc); }
Kernel mat() { return parse_kernel(kMatSrc); }
Kernel imi() { return parse_kernel(kImiSrc); }
Kernel pat() { return parse_kernel(kPatSrc); }
Kernel bic() { return parse_kernel(kBicSrc); }

std::vector<NamedKernel> table1_kernels() {
  std::vector<NamedKernel> all;
  all.push_back({"FIR", "1024-sample convolution, 32 taps", fir()});
  all.push_back({"Dec-FIR", "decimating convolution, 64 taps, factor 4", dec_fir()});
  all.push_back({"IMI", "image interpolation, 2x 32x32 -> 8 frames", imi()});
  all.push_back({"MAT", "16x16x16 matrix multiply", mat()});
  all.push_back({"PAT", "32-char pattern over 1024-char text", pat()});
  all.push_back({"BIC", "8x8 binary template correlation over 64x64", bic()});
  return all;
}

std::string kernel_source(const std::string& name) {
  if (name == "example") return kExampleSrc;
  if (name == "conv2d") return kConv2dSrc;
  if (name == "matvec") return kMatvecSrc;
  if (name == "fir") return kFirSrc;
  if (name == "dec_fir") return kDecFirSrc;
  if (name == "mat") return kMatSrc;
  if (name == "imi") return kImiSrc;
  if (name == "pat") return kPatSrc;
  if (name == "bic") return kBicSrc;
  fail(cat("unknown kernel name: ", name));
}

}  // namespace srra::kernels
