// The paper's benchmark kernels (Table 1) and the running example
// (Figure 1), with the calibration parameters documented in DESIGN.md §4.
// All kernels are written in the kernel DSL and parsed at construction, so
// the textual frontend is exercised on every use.
#pragma once

#include <string>
#include <vector>

#include "ir/kernel.h"

namespace srra::kernels {

/// The Figure 1 running example:
///   for i { for j { for k {
///     d[i][k] = a[k] * b[k][j];
///     e[i][j][k] = c[j] * d[i][k]; } } }
/// Bounds: i in 0..2 (a steady outer iteration plus the peeled first one),
/// j in 0..20, k in 0..30 — the bounds that reproduce the paper's
/// beta = {a:30, b:600, c:20, d:30, e:1} and Tmem = 1800/1560/1184.
Kernel paper_example();

/// FIR: 1024-sample convolution with 32 coefficients (8-bit data).
Kernel fir();

/// Decimation FIR: 64 coefficients, decimation factor 4.
Kernel dec_fir();

/// MAT: 16x16x16 matrix-matrix multiply.
Kernel mat();

/// IMI: interpolation of two 32x32 grey-scale images for 8 intermediate
/// frames.
Kernel imi();

/// PAT: occurrences of a 32-character pattern in a 1024-character string.
Kernel pat();

/// BIC: binary image correlation of an 8x8 template over a 64x64 image.
Kernel bic();

/// A named kernel plus its one-line description (for benches and examples).
struct NamedKernel {
  std::string name;
  std::string description;
  Kernel kernel;
};

/// The six Table 1 kernels, in the paper's order.
std::vector<NamedKernel> table1_kernels();

/// SOBEL-style 3x3 convolution over a 64x64 image (extra workload from the
/// paper's motivating domain; not part of Table 1).
Kernel conv2d();

/// Matrix-vector product, 32x32 (extra workload; not part of Table 1).
Kernel matvec();

/// Table-1 kernels plus the extra workloads (sweeps and examples).
std::vector<NamedKernel> all_kernels();

/// DSL source text of a kernel by name ("example", "fir", "dec_fir", "mat",
/// "imi", "pat", "bic"); throws for unknown names. Useful for the parser
/// tests and the custom-kernel example.
std::string kernel_source(const std::string& name);

}  // namespace srra::kernels
