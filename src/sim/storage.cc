#include "sim/storage.h"

#include <numeric>

#include "support/error.h"

namespace srra {

ArrayStore::ArrayStore(const Kernel& kernel) {
  for (const ArrayDecl& a : kernel.arrays()) {
    types_.push_back(a.type);
    data_.emplace_back(static_cast<std::size_t>(a.element_count()), 0);
  }
  read_counts_.assign(data_.size(), 0);
  write_counts_.assign(data_.size(), 0);
}

void ArrayStore::randomize(std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t a = 0; a < data_.size(); ++a) {
    for (Value& v : data_[a]) v = truncate_to(types_[a], static_cast<Value>(rng.next()));
  }
}

void ArrayStore::clear() {
  for (auto& bank : data_) std::fill(bank.begin(), bank.end(), 0);
}

const std::vector<Value>& ArrayStore::bank(int array_id) const {
  check(array_id >= 0 && array_id < array_count(), "array id out of range");
  return data_[static_cast<std::size_t>(array_id)];
}

Value ArrayStore::read(int array_id, std::int64_t flat_index) {
  ++read_counts_[static_cast<std::size_t>(array_id)];
  return peek(array_id, flat_index);
}

void ArrayStore::write(int array_id, std::int64_t flat_index, Value value) {
  ++write_counts_[static_cast<std::size_t>(array_id)];
  poke(array_id, flat_index, value);
}

Value ArrayStore::peek(int array_id, std::int64_t flat_index) const {
  const auto& b = bank(array_id);
  check(flat_index >= 0 && flat_index < static_cast<std::int64_t>(b.size()),
        "array index out of bounds");
  return b[static_cast<std::size_t>(flat_index)];
}

void ArrayStore::poke(int array_id, std::int64_t flat_index, Value value) {
  auto& b = data_[static_cast<std::size_t>(array_id)];
  check(flat_index >= 0 && flat_index < static_cast<std::int64_t>(b.size()),
        "array index out of bounds");
  b[static_cast<std::size_t>(flat_index)] =
      truncate_to(types_[static_cast<std::size_t>(array_id)], value);
}

std::int64_t ArrayStore::reads(int array_id) const {
  check(array_id >= 0 && array_id < array_count(), "array id out of range");
  return read_counts_[static_cast<std::size_t>(array_id)];
}

std::int64_t ArrayStore::writes(int array_id) const {
  check(array_id >= 0 && array_id < array_count(), "array id out of range");
  return write_counts_[static_cast<std::size_t>(array_id)];
}

std::int64_t ArrayStore::total_reads() const {
  return std::accumulate(read_counts_.begin(), read_counts_.end(), std::int64_t{0});
}

std::int64_t ArrayStore::total_writes() const {
  return std::accumulate(write_counts_.begin(), write_counts_.end(), std::int64_t{0});
}

void ArrayStore::reset_counters() {
  std::fill(read_counts_.begin(), read_counts_.end(), 0);
  std::fill(write_counts_.begin(), write_counts_.end(), 0);
}

bool ArrayStore::equals(const ArrayStore& other) const {
  return data_ == other.data_;
}

}  // namespace srra
