#include "sim/machine.h"

#include <unordered_map>

#include "analysis/walker.h"
#include "sim/interp.h"
#include "support/error.h"
#include "support/str.h"

namespace srra {

namespace {

// Register file + forwarding wires of one reference group.
struct GroupState {
  std::unordered_map<std::int64_t, Value> held;  // element -> register value
  std::unordered_map<std::int64_t, Value> wires; // same-iteration forwarding
};

class Machine {
 public:
  Machine(const RefModel& model, const Allocation& allocation, ArrayStore& store)
      : model_(model), store_(store) {
    const Kernel& kernel = model.kernel();
    for (int g = 0; g < model.group_count(); ++g) {
      trackers_.emplace_back(kernel, model.groups()[static_cast<std::size_t>(g)],
                             select_strategy(kernel, model.groups()[static_cast<std::size_t>(g)],
                                             model.reuse()[static_cast<std::size_t>(g)],
                                             allocation.at(g), model.options()));
      states_.emplace_back();
      const int array = model.groups()[static_cast<std::size_t>(g)].access.array_id;
      types_.push_back(kernel.array(array).type);
      arrays_.push_back(array);
    }
    // occurrence order -> group id
    order_group_.assign(static_cast<std::size_t>(total_occurrences(model.groups())), -1);
    for (const RefGroup& g : model.groups()) {
      for (const RefOccurrence& occ : g.occurrences) {
        order_group_[static_cast<std::size_t>(occ.order)] = g.id;
      }
    }
  }

  MachineReport run() {
    const Kernel& kernel = model_.kernel();
    std::vector<std::int64_t> iter = first_iteration(kernel);
    do {
      for (GroupState& s : states_) s.wires.clear();
      for (WindowTracker& t : trackers_) t.begin_iteration(iter, flush_sink());
      int order = 0;
      for (const Stmt& stmt : kernel.body()) {
        const int stmt_index = static_cast<int>(&stmt - kernel.body().data());
        const Value v = eval(*stmt.rhs, iter, stmt_index, order);
        write_access(stmt.lhs, iter, stmt_index, order, v);
        ++order;
      }
    } while (next_iteration(kernel, iter));
    for (WindowTracker& t : trackers_) t.finish(flush_sink());
    return report_;
  }

 private:
  // Named callable the non-owning EventSink references (the machine owns
  // it, so the sink stays valid for every tracker call).
  struct FlushFn {
    Machine* machine;
    void operator()(const AccessEvent& e) const {
      if (e.kind != AccessKind::kFlush) return;
      machine->handle_flush(e);
    }
  };

  EventSink flush_sink() { return EventSink(flush_fn_); }

  void handle_flush(const AccessEvent& e) {
    GroupState& s = states_[static_cast<std::size_t>(e.group)];
    const auto it = s.held.find(e.element);
    check(it != s.held.end(), "flush of a value the register file does not hold");
    store_.write(arrays_[static_cast<std::size_t>(e.group)], e.element, it->second);
    s.held.erase(it);
    ++report_.flushes;
    ++report_.ram_writes;
    if (e.steady) ++report_.steady_ram_accesses;
  }

  Value read_access(const ArrayAccess& access, srra::span<const std::int64_t> iter,
                    int stmt_index, int& order) {
    const int my_order = order++;
    const int g = order_group_[static_cast<std::size_t>(my_order)];
    GroupState& s = states_[static_cast<std::size_t>(g)];
    const AccessEvent e = trackers_[static_cast<std::size_t>(g)].on_access(
        iter, /*is_write=*/false, stmt_index, my_order, flush_sink());
    check(access.array_id == arrays_[static_cast<std::size_t>(g)], "group/array mismatch");
    switch (e.kind) {
      case AccessKind::kForward: {
        const auto it = s.wires.find(e.element);
        check(it != s.wires.end(), "forwarded value missing from wires");
        ++report_.forwards;
        return it->second;
      }
      case AccessKind::kRegHit: {
        const auto it = s.held.find(e.element);
        check(it != s.held.end(), "register hit on a value not held");
        ++report_.reg_hits;
        return it->second;
      }
      case AccessKind::kFill: {
        const Value v = store_.read(access.array_id, e.element);
        s.held[e.element] = v;
        ++report_.fills;
        ++report_.ram_reads;
        if (e.steady) ++report_.steady_ram_accesses;
        return v;
      }
      case AccessKind::kMissRead: {
        const Value v = store_.read(access.array_id, e.element);
        ++report_.ram_reads;
        if (e.steady) ++report_.steady_ram_accesses;
        return v;
      }
      default:
        fail(cat("unexpected read event kind"));
    }
  }

  void write_access(const ArrayAccess& access, srra::span<const std::int64_t> iter,
                    int stmt_index, int order, Value value) {
    const int g = order_group_[static_cast<std::size_t>(order)];
    GroupState& s = states_[static_cast<std::size_t>(g)];
    const AccessEvent e = trackers_[static_cast<std::size_t>(g)].on_access(
        iter, /*is_write=*/true, stmt_index, order, flush_sink());
    // Registers and RAM cells have the array's element width.
    const Value narrowed = truncate_to(types_[static_cast<std::size_t>(g)], value);
    s.wires[e.element] = narrowed;
    switch (e.kind) {
      case AccessKind::kRegWrite:
        s.held[e.element] = narrowed;
        ++report_.reg_writes;
        break;
      case AccessKind::kMissWrite:
        store_.write(access.array_id, e.element, narrowed);
        ++report_.ram_writes;
        if (e.steady) ++report_.steady_ram_accesses;
        break;
      default:
        fail("unexpected write event kind");
    }
  }

  Value eval(const Expr& expr, srra::span<const std::int64_t> iter, int stmt_index,
             int& order) {
    switch (expr.kind()) {
      case ExprKind::kConst:
        return expr.const_value();
      case ExprKind::kLoopVar:
        return iter[static_cast<std::size_t>(expr.loop_level())];
      case ExprKind::kRef:
        return read_access(expr.access(), iter, stmt_index, order);
      case ExprKind::kBinOp: {
        const Value a = eval(expr.lhs(), iter, stmt_index, order);
        const Value b = eval(expr.rhs(), iter, stmt_index, order);
        return eval_bin_op(expr.bin_op(), a, b);
      }
      case ExprKind::kUnOp:
        return eval_un_op(expr.un_op(), eval(expr.operand(), iter, stmt_index, order));
    }
    fail("unknown ExprKind");
  }

  const RefModel& model_;
  ArrayStore& store_;
  std::vector<WindowTracker> trackers_;
  std::vector<GroupState> states_;
  std::vector<ScalarType> types_;
  std::vector<int> arrays_;
  std::vector<int> order_group_;
  FlushFn flush_fn_{this};
  MachineReport report_;
};

}  // namespace

MachineReport run_machine(const RefModel& model, const Allocation& allocation,
                          ArrayStore& store) {
  Machine machine(model, allocation, store);
  return machine.run();
}

VerifyResult verify_allocation(const RefModel& model, const Allocation& allocation,
                               std::uint64_t seed) {
  ArrayStore golden(model.kernel());
  golden.randomize(seed);
  ArrayStore machine_store(model.kernel());
  machine_store.randomize(seed);

  interpret(model.kernel(), golden);
  VerifyResult result;
  result.machine = run_machine(model, allocation, machine_store);
  result.ok = golden.equals(machine_store);
  return result;
}

}  // namespace srra
