// Concrete array storage for the simulators: one value vector per kernel
// array, with bounds-checked, type-truncating access and RAM traffic
// counters (per-array reads/writes).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/kernel.h"
#include "support/rng.h"

namespace srra {

/// Backing store for every array of a kernel.
class ArrayStore {
 public:
  explicit ArrayStore(const Kernel& kernel);

  /// Fills every array with deterministic pseudo-random values in the
  /// representable range of its element type.
  void randomize(std::uint64_t seed);

  /// Zeroes every array.
  void clear();

  Value read(int array_id, std::int64_t flat_index);
  void write(int array_id, std::int64_t flat_index, Value value);

  /// Direct access for verification (no counters, still bounds-checked).
  Value peek(int array_id, std::int64_t flat_index) const;
  void poke(int array_id, std::int64_t flat_index, Value value);

  std::int64_t reads(int array_id) const;
  std::int64_t writes(int array_id) const;
  std::int64_t total_reads() const;
  std::int64_t total_writes() const;
  void reset_counters();

  int array_count() const { return static_cast<int>(data_.size()); }

  /// True if every element of every array matches `other`.
  bool equals(const ArrayStore& other) const;

 private:
  const std::vector<Value>& bank(int array_id) const;

  std::vector<ScalarType> types_;
  std::vector<std::vector<Value>> data_;
  std::vector<std::int64_t> read_counts_;
  std::vector<std::int64_t> write_counts_;
};

}  // namespace srra
