// Machine simulator: executes a kernel the way the synthesized design
// would, with an explicit per-group register file (window policy from
// analysis/walker.h), per-array RAM banks, same-iteration forwarding wires
// and width truncation at every register and RAM boundary.
//
// Running it against the golden interpreter proves the scalar-replacement
// transformation is semantics-preserving for a given allocation; its access
// counters must agree with the analytic walker (cross-checked in tests).
#pragma once

#include <cstdint>

#include "analysis/model.h"
#include "core/allocation.h"
#include "sim/storage.h"

namespace srra {

/// Traffic counters observed by the machine run.
struct MachineReport {
  std::int64_t ram_reads = 0;
  std::int64_t ram_writes = 0;
  std::int64_t reg_hits = 0;
  std::int64_t reg_writes = 0;
  std::int64_t fills = 0;
  std::int64_t flushes = 0;
  std::int64_t forwards = 0;
  std::int64_t steady_ram_accesses = 0;  ///< walker steady-accounting total

  std::int64_t ram_total() const { return ram_reads + ram_writes; }
};

/// Executes `model.kernel()` under `allocation`, reading/writing `store`.
MachineReport run_machine(const RefModel& model, const Allocation& allocation,
                          ArrayStore& store);

/// End-to-end check: randomizes identical stores, runs the golden
/// interpreter and the machine, and reports whether the final memories
/// match.
struct VerifyResult {
  bool ok = false;
  MachineReport machine;
};
VerifyResult verify_allocation(const RefModel& model, const Allocation& allocation,
                               std::uint64_t seed);

}  // namespace srra
