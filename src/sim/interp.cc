#include "sim/interp.h"

#include "analysis/reuse.h"
#include "analysis/walker.h"
#include "support/error.h"

namespace srra {

Value eval_expr(const Kernel& kernel, const Expr& expr,
                srra::span<const std::int64_t> iteration, ArrayStore& store) {
  switch (expr.kind()) {
    case ExprKind::kConst:
      return expr.const_value();
    case ExprKind::kLoopVar:
      return iteration[static_cast<std::size_t>(expr.loop_level())];
    case ExprKind::kRef: {
      const ArrayAccess& access = expr.access();
      return store.read(access.array_id, element_at(kernel, access, iteration));
    }
    case ExprKind::kBinOp:
      return eval_bin_op(expr.bin_op(), eval_expr(kernel, expr.lhs(), iteration, store),
                         eval_expr(kernel, expr.rhs(), iteration, store));
    case ExprKind::kUnOp:
      return eval_un_op(expr.un_op(), eval_expr(kernel, expr.operand(), iteration, store));
  }
  fail("unknown ExprKind");
}

void interpret(const Kernel& kernel, ArrayStore& store) {
  kernel.validate();
  std::vector<std::int64_t> iter = first_iteration(kernel);
  do {
    for (const Stmt& stmt : kernel.body()) {
      const Value v = eval_expr(kernel, *stmt.rhs, iter, store);
      store.write(stmt.lhs.array_id, element_at(kernel, stmt.lhs, iter), v);
    }
  } while (next_iteration(kernel, iter));
}

}  // namespace srra
