// Golden interpreter: executes a kernel directly over an ArrayStore with no
// register modelling. The machine simulator's results must match this
// bit-for-bit (the correctness oracle for scalar replacement).
#pragma once

#include "ir/kernel.h"
#include "sim/storage.h"

namespace srra {

/// Executes the kernel; every read/write goes straight to `store` (and
/// bumps its traffic counters).
void interpret(const Kernel& kernel, ArrayStore& store);

/// Evaluates one expression at `iteration` against `store` (reads counted).
Value eval_expr(const Kernel& kernel, const Expr& expr,
                srra::span<const std::int64_t> iteration, ArrayStore& store);

}  // namespace srra
