// Area, BlockRAM and clock-period estimation for a kernel design under a
// register allocation. This replaces the paper's Monet -> Synplify -> ISE
// place-and-route flow (DESIGN.md §5): absolute numbers are synthetic, but
// area grows with datapath width/registers/muxing and the clock period
// degrades mildly with register-file size and control complexity — the two
// effects the paper's discussion hinges on.
#pragma once

#include <cstdint>

#include "analysis/model.h"
#include "core/allocation.h"
#include "hw/device.h"

namespace srra {

/// Calibration constants of the synthetic area model.
struct AreaModel {
  double lut_per_add_bit = 1.0;     ///< ripple adder/subtractor/compare
  double lut_per_mul_bit2 = 0.5;    ///< combinational multiplier ~ w^2 / 2
  double lut_per_logic_bit = 0.5;   ///< and/or/xor/shift
  double lut_per_mux_input_bit = 0.5;  ///< register-file read mux tree
  double lut_per_fsm_state = 4.0;
  double ff_per_fsm_state = 1.0;
  double packing_efficiency = 0.7;  ///< achievable slice packing
};

/// Calibration constants of the synthetic clock model. Calibrated so that a
/// fully allocated 64-register design pays a mild (~4-7%) period penalty
/// over a minimal design of the same kernel — the magnitude the paper
/// reports after place-and-route for its v3 designs.
struct ClockModel {
  double base_ns = 24.0;             ///< datapath + routing floor
  double mux_ns_per_log_input = 0.25;///< register-file mux depth
  double ff_ns_per_log_count = 0.08; ///< clock tree / fanout growth
  double ctrl_ns_per_log_state = 0.8;///< FSM decode depth
};

/// Synthesized-design summary.
struct HwEstimate {
  std::int64_t registers = 0;     ///< data registers (allocation total)
  std::int64_t flip_flops = 0;    ///< total FFs incl. control
  std::int64_t luts = 0;
  std::int64_t slices = 0;
  double occupancy = 0.0;         ///< slices / device slices
  std::int64_t block_rams = 0;
  std::int64_t fsm_states = 0;
  double clock_ns = 0.0;
  double clock_mhz() const { return clock_ns > 0 ? 1000.0 / clock_ns : 0.0; }
};

/// Estimates the hardware cost of `allocation` on `device`.
HwEstimate estimate_hw(const RefModel& model, const Allocation& allocation,
                       const VirtexDevice& device = xcv1000(), const AreaModel& area = {},
                       const ClockModel& clock = {});

/// BlockRAMs needed to host every kernel array on `device`.
std::int64_t block_rams_for(const Kernel& kernel, const VirtexDevice& device = xcv1000());

}  // namespace srra
