#include "hw/estimate.h"

#include <cmath>

#include "dfg/dfg.h"
#include "support/error.h"

namespace srra {

std::int64_t block_rams_for(const Kernel& kernel, const VirtexDevice& device) {
  check(device.bram_bits > 0, "device needs BlockRAM capacity");
  std::int64_t total = 0;
  for (const ArrayDecl& a : kernel.arrays()) {
    total += (a.bit_count() + device.bram_bits - 1) / device.bram_bits;
  }
  return total;
}

HwEstimate estimate_hw(const RefModel& model, const Allocation& allocation,
                       const VirtexDevice& device, const AreaModel& area,
                       const ClockModel& clock) {
  const Kernel& kernel = model.kernel();
  const Dfg dfg = Dfg::build(kernel, model.groups());

  HwEstimate hw;
  hw.registers = allocation.total();

  // ---- datapath width bookkeeping ----
  const auto width_of_group = [&](int g) {
    return bit_width(kernel.array(model.groups()[static_cast<std::size_t>(g)].access.array_id).type);
  };

  double luts = 0.0;
  double ffs = 0.0;
  std::int64_t max_mux_inputs = 1;

  // Data registers + read-mux per reference group.
  for (int g = 0; g < model.group_count(); ++g) {
    const std::int64_t regs = allocation.at(g);
    const int width = width_of_group(g);
    ffs += static_cast<double>(regs) * width;
    if (regs > 1) {
      luts += area.lut_per_mux_input_bit * static_cast<double>(regs) * width;
      max_mux_inputs = std::max(max_mux_inputs, regs);
    }
  }

  // Functional units + output latches.
  std::int64_t mem_states = 0;
  for (const DfgNode& n : dfg.nodes()) {
    switch (n.kind) {
      case DfgNodeKind::kOp: {
        // Operand width: widest incident reference (fallback 16).
        int width = 16;
        for (int p : n.preds) {
          const DfgNode& pn = dfg.node(p);
          if (pn.is_ref()) width = std::max(width, width_of_group(pn.group));
        }
        if (!n.is_unary && n.bin_op == BinOpKind::kMul) {
          luts += area.lut_per_mul_bit2 * static_cast<double>(width) * width;
        } else if (!n.is_unary && (n.bin_op == BinOpKind::kAdd || n.bin_op == BinOpKind::kSub ||
                                   n.bin_op == BinOpKind::kDiv)) {
          luts += area.lut_per_add_bit * width;
        } else {
          luts += area.lut_per_logic_bit * width;
        }
        ffs += width;  // result latch
        break;
      }
      case DfgNodeKind::kRead:
      case DfgNodeKind::kWrite:
        ffs += width_of_group(n.group);  // operand latch / store buffer
        ++mem_states;
        break;
      default:
        break;
    }
  }

  // Loop counters and address generators.
  for (const Loop& loop : kernel.loops()) {
    const double bits = std::ceil(std::log2(static_cast<double>(loop.upper) + 1.0)) + 1.0;
    ffs += bits;
    luts += 2.0 * bits;  // increment + compare
  }

  // FSM: one state per op plus one per potential memory access plus loop
  // control.
  std::int64_t op_states = 0;
  for (const DfgNode& n : dfg.nodes()) {
    if (n.kind == DfgNodeKind::kOp) ++op_states;
  }
  hw.fsm_states = op_states + mem_states + 2 * kernel.depth() + 2;
  luts += area.lut_per_fsm_state * static_cast<double>(hw.fsm_states);
  ffs += area.ff_per_fsm_state * static_cast<double>(hw.fsm_states);

  hw.luts = static_cast<std::int64_t>(std::ceil(luts));
  hw.flip_flops = static_cast<std::int64_t>(std::ceil(ffs));

  // A Virtex slice packs 2 LUTs and 2 FFs; packing is imperfect.
  const double raw_slices =
      std::max(luts, ffs) / 2.0 / area.packing_efficiency;
  hw.slices = static_cast<std::int64_t>(std::ceil(raw_slices));
  hw.occupancy = device.slices > 0
                     ? static_cast<double>(hw.slices) / static_cast<double>(device.slices)
                     : 0.0;

  hw.block_rams = block_rams_for(kernel, device);

  // ---- clock period ----
  hw.clock_ns = clock.base_ns +
                clock.mux_ns_per_log_input * std::log2(1.0 + static_cast<double>(max_mux_inputs)) +
                clock.ff_ns_per_log_count * std::log2(1.0 + static_cast<double>(hw.registers)) +
                clock.ctrl_ns_per_log_state * std::log2(1.0 + static_cast<double>(hw.fsm_states));
  return hw;
}

}  // namespace srra
