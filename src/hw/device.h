// FPGA device models. The paper targets a Xilinx Virtex XCV1000 (BG560):
// 12288 slices (2 4-LUTs + 2 FFs each) and 32 BlockRAMs of 4096 data bits.
#pragma once

#include <cstdint>
#include <string>

namespace srra {

/// Capacity description of one FPGA device.
struct VirtexDevice {
  std::string name;
  std::int64_t slices = 0;
  std::int64_t block_rams = 0;
  std::int64_t bram_bits = 0;  ///< data bits per BlockRAM
};

/// The paper's device: Virtex XCV1000 BG560.
VirtexDevice xcv1000();

/// A smaller sibling for capacity-pressure experiments.
VirtexDevice xcv300();

}  // namespace srra
