#include "hw/device.h"

namespace srra {

VirtexDevice xcv1000() { return VirtexDevice{"XCV1000", 12288, 32, 4096}; }

VirtexDevice xcv300() { return VirtexDevice{"XCV300", 3072, 16, 4096}; }

}  // namespace srra
