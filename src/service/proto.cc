#include "service/proto.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace srra::service {

namespace {

const char* fetch_name(bool concurrent) { return concurrent ? "concurrent" : "serial"; }
const char* mode_name(bool frontier) { return frontier ? "frontier" : "budget"; }

std::string hex16(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

// ------------------------------------------------------------------ framing

void write_frame(std::ostream& os, std::string_view payload) {
  check(payload.size() <= kMaxFrameBytes, "write_frame: payload too large");
  os << payload.size() << '\n' << payload;
}

std::optional<std::string> read_frame(std::istream& is) {
  // Length line: decimal digits terminated by '\n'. EOF before the first
  // digit is a clean end of stream; EOF anywhere later is a torn frame.
  std::string line;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      if (line.empty()) return std::nullopt;
      fail("read_frame: end of stream inside frame header");
    }
    if (c == '\n') break;
    check(c >= '0' && c <= '9', "read_frame: malformed frame length");
    check(line.size() < 9, "read_frame: frame length line too long");
    line += static_cast<char>(c);
  }
  check(!line.empty(), "read_frame: empty frame length");
  const unsigned long long n = std::stoull(line);
  check(n <= kMaxFrameBytes, "read_frame: frame larger than kMaxFrameBytes");
  std::string payload(static_cast<std::size_t>(n), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(n));
  check(static_cast<unsigned long long>(is.gcount()) == n,
        "read_frame: end of stream inside frame payload");
  return payload;
}

int extract_frame(std::string& buffer, std::string& payload) {
  const std::size_t limit = buffer.size() < 10 ? buffer.size() : 10;
  std::size_t eol = std::string::npos;
  for (std::size_t i = 0; i < limit; ++i) {
    const char c = buffer[i];
    if (c == '\n') {
      eol = i;
      break;
    }
    if (c < '0' || c > '9') return -1;
  }
  if (eol == std::string::npos) return buffer.size() >= 10 ? -1 : 0;
  if (eol == 0) return -1;
  const unsigned long long n = std::stoull(buffer.substr(0, eol));
  if (n > kMaxFrameBytes) return -1;
  const std::size_t total = eol + 1 + static_cast<std::size_t>(n);
  if (buffer.size() < total) return 0;
  payload = buffer.substr(eol + 1, static_cast<std::size_t>(n));
  buffer.erase(0, total);
  return 1;
}

// ----------------------------------------------------------------- requests

Request parse_request(const std::string& payload) {
  JsonValue doc;
  try {
    doc = parse_json(payload);
  } catch (const Error& e) {
    fail(cat("request is not valid JSON: ", e.what()));
  }
  check(doc.is_object(), "request must be a JSON object");

  Request request;
  bool saw_kernel = false, saw_key = false, saw_budget = false, saw_budgets = false,
       saw_mode = false, saw_probe = false, saw_query_field = false,
       saw_pull_field = false;
  for (const JsonValue::Member& member : doc.members()) {
    const std::string& name = member.first;
    const JsonValue& value = member.second;
    if (name == "op") {
      const std::string& op = value.as_string();
      if (op == "query") request.op = RequestOp::kQuery;
      else if (op == "stats") request.op = RequestOp::kStats;
      else if (op == "health") request.op = RequestOp::kHealth;
      else if (op == "shutdown") request.op = RequestOp::kShutdown;
      else if (op == "pull") request.op = RequestOp::kPull;
      else fail(cat("unknown op '", op, "' (want query|stats|health|shutdown|pull)"));
    } else if (name == "id") {
      request.id = value.as_string();
    } else if (name == "kernel") {
      request.kernel = value.as_string();
      check(!request.kernel.empty(), "request member 'kernel' must be non-empty");
      saw_kernel = saw_query_field = true;
    } else if (name == "key") {
      request.key = value.as_string();
      check(request.key.size() == 16 &&
                request.key.find_first_not_of("0123456789abcdef") == std::string::npos,
            "request member 'key' must be 16 lowercase hex characters");
      saw_key = saw_query_field = true;
    } else if (name == "transforms") {
      request.transforms = value.as_string();
      saw_query_field = true;
    } else if (name == "algorithm") {
      request.algorithm = value.as_string();
      check(!request.algorithm.empty(), "request member 'algorithm' must be non-empty");
      saw_query_field = true;
    } else if (name == "mode") {
      const std::string& mode = value.as_string();
      if (mode == "budget") request.frontier = false;
      else if (mode == "frontier") request.frontier = true;
      else fail(cat("unknown mode '", mode, "' (want budget|frontier)"));
      saw_mode = saw_query_field = true;
    } else if (name == "budget") {
      request.budget = value.as_int();
      check(request.budget >= 1, "request member 'budget' must be >= 1");
      saw_budget = saw_query_field = true;
    } else if (name == "budgets") {
      request.budgets = value.as_string();
      check(!request.budgets.empty(), "request member 'budgets' must be non-empty");
      saw_budgets = saw_query_field = true;
    } else if (name == "fetch") {
      request.fetch = value.as_bool();
      saw_query_field = true;
    } else if (name == "probe") {
      request.probe = value.as_bool();
      saw_probe = saw_query_field = true;
    } else if (name == "timing") {
      request.timing = value.as_bool();
    } else if (name == "limit") {
      request.limit = value.as_int();
      check(request.limit >= 1, "request member 'limit' must be >= 1");
      saw_pull_field = true;
    } else if (name == "offset") {
      request.offset = value.as_int();
      check(request.offset >= 0, "request member 'offset' must be >= 0");
      saw_pull_field = true;
    } else {
      fail(cat("unknown request member '", name, "'"));
    }
  }

  if (request.op == RequestOp::kPull) {
    check(!saw_query_field && !saw_probe,
          "pull requests take only 'op', 'id', 'limit' and 'offset'");
    return request;
  }
  check(!saw_pull_field, "'limit' and 'offset' are pull-op members");
  if (request.op != RequestOp::kQuery) {
    check(!saw_query_field && !saw_probe,
          "stats/health/shutdown requests take only 'op', 'id' and 'timing'");
    return request;
  }

  check(saw_kernel || saw_key, "query needs 'kernel' (name or DSL text) or 'key'");
  check(!(saw_kernel && saw_key), "'kernel' and 'key' are mutually exclusive");
  if (saw_key) {
    check(request.probe, "'key' queries are cache-only probes; set \"probe\": true");
    check(request.transforms.empty() && !saw_budget && !saw_budgets && !saw_mode,
          "'key' already identifies the query; drop transforms/mode/budget members");
  }
  if (request.frontier) {
    check(!saw_budget, "frontier mode takes 'budgets', not 'budget'");
  } else {
    check(!saw_budgets, "budget mode takes 'budget', not 'budgets'");
  }
  return request;
}

std::string cache_key(std::uint64_t kernel_hash, std::string_view kernel_name,
                      const Request& request) {
  const std::string material =
      cat(kKeyVersion, '|', hex16(kernel_hash), '|', kernel_name, '|',
          request.transforms, '|', request.algorithm, '|', mode_name(request.frontier),
          '|', request.frontier ? request.budgets : std::to_string(request.budget), '|',
          fetch_name(request.fetch));
  return hex16(fnv1a64(material));
}

std::string payload_hash(std::string_view payload) {
  return hex16(fnv1a64(payload));
}

// ------------------------------------------------- query report (cached unit)

QueryReport evaluate_query(const RefModel& model, const QueryInput& input) {
  QueryReport report;
  report.kernel_name = input.kernel_name;
  report.transforms = input.transforms;
  report.kernel_hash = input.kernel_hash;
  report.algorithm = algorithm_name(input.algorithm);
  report.fetch = input.fetch;
  report.frontier = input.frontier;
  report.outer_trip = model.kernel().loop(0).trip_count();

  PipelineOptions options;
  options.cycles.concurrent_operand_fetch = input.fetch;
  if (!input.frontier) {
    report.budget = input.budget;
    options.budget = input.budget;
    try {
      DesignPoint design = run_pipeline(model, input.algorithm, options);
      report.points.emplace_back(input.budget, std::move(design));
    } catch (const Error& e) {
      report.feasible = false;  // budget below the feasibility assignment
      report.error = e.what();
    }
  } else {
    std::vector<DesignPoint> designs =
        run_budget_sweep(model, {input.algorithm}, input.budgets, options);
    for (DesignPoint& design : designs) {
      const std::int64_t budget = design.allocation.budget;
      report.points.emplace_back(budget, std::move(design));
    }
  }
  return report;
}

void write_design_point_fields(JsonWriter& json, const DesignPoint& design,
                               std::int64_t outer_trip) {
  json.field("registers", design.allocation.total());
  json.field("distribution", design.allocation.distribution());
  json.field("mem_cycles", design.cycles.mem_cycles);
  json.field("mem_cycles_per_outer", design.cycles.mem_cycles_per_outer(outer_trip));
  json.field("ram_accesses", design.cycles.ram_accesses);
  json.field("exec_cycles", design.cycles.exec_cycles);
  json.field("clock_ns", design.hw.clock_ns);
  json.field("time_us", design.time_us());
  json.field("slices", design.hw.slices);
  json.field("occupancy", design.hw.occupancy);
  json.field("block_rams", design.hw.block_rams);
}

void write_query_report(JsonWriter& json, const QueryReport& report) {
  json.begin_object();
  json.field("schema", kQuerySchema);
  json.field("kernel", report.kernel_name);
  json.field("transforms", report.transforms);
  json.field("structural_hash", hex16(report.kernel_hash));
  json.field("algorithm", report.algorithm);
  json.field("fetch", fetch_name(report.fetch));
  json.field("mode", mode_name(report.frontier));
  if (!report.frontier) {
    json.field("budget", report.budget);
    json.field("feasible", report.feasible);
    if (!report.feasible) {
      json.field("error", report.error);
    } else {
      check(report.points.size() == 1, "budget-mode report needs exactly one point");
      json.key("point");
      json.begin_object();
      write_design_point_fields(json, report.points.front().second, report.outer_trip);
      json.end_object();
    }
  } else {
    json.key("points");
    json.begin_array();
    for (const auto& [budget, design] : report.points) {
      json.begin_object();
      json.field("budget", budget);
      write_design_point_fields(json, design, report.outer_trip);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
}

std::string query_payload(const QueryReport& report) {
  std::ostringstream os;
  JsonWriter json(os);
  write_query_report(json, report);
  return os.str();
}

// ---------------------------------------------------------------- responses

namespace {

JsonValue envelope_head(const std::string& id, bool ok) {
  JsonValue envelope = JsonValue::make_object();
  envelope.set("schema", JsonValue::make_string(kServiceSchema));
  if (!id.empty()) envelope.set("id", JsonValue::make_string(id));
  envelope.set("ok", JsonValue::make_bool(ok));
  return envelope;
}

std::string render(const JsonValue& envelope) { return envelope.to_string() + "\n"; }

}  // namespace

std::string make_query_response(const ResponseMeta& meta, const std::string& payload) {
  JsonValue envelope = envelope_head(meta.id, /*ok=*/true);
  if (!meta.cache_status.empty()) {
    JsonValue cache = JsonValue::make_object();
    cache.set("status", JsonValue::make_string(meta.cache_status));
    cache.set("key", JsonValue::make_string(meta.key));
    envelope.set("cache", std::move(cache));
  }
  if (meta.elapsed_us >= 0) envelope.set("elapsed_us", JsonValue::make_int(meta.elapsed_us));
  if (!payload.empty()) envelope.set("query", parse_json(payload));
  return render(envelope);
}

std::string make_error_response(const std::string& id, const std::string& message) {
  JsonValue envelope = envelope_head(id, /*ok=*/false);
  envelope.set("error", JsonValue::make_string(message));
  return render(envelope);
}

std::string make_value_response(const std::string& id, const std::string& member,
                                const JsonValue& value) {
  JsonValue envelope = envelope_head(id, /*ok=*/true);
  envelope.set(member, value);
  return render(envelope);
}

}  // namespace srra::service
