#include "service/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "support/error.h"
#include "support/faultio.h"
#include "support/str.h"

namespace fs = std::filesystem;

namespace srra::service {

namespace {

bool valid_key(const std::string& key) {
  return key.size() == 16 &&
         key.find_first_not_of("0123456789abcdef") == std::string::npos;
}

// Reads a whole file through the fault-injection shim; nullopt on any I/O
// problem. Short reads append and continue; EINTR retries; anything else
// (including an injected EAGAIN/EIO) degrades to a miss.
std::optional<std::string> slurp(const fs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::string text;
  char chunk[65536];
  for (;;) {
    const ssize_t n = faultio::read(faultio::Site::kStoreRead, fd, chunk, sizeof chunk);
    if (n > 0) {
      text.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    return std::nullopt;
  }
  ::close(fd);
  return text;
}

// Writes [data, data+size) to fd through the shim, riding out EINTR and
// short writes. False on any other failure (ENOSPC, EIO, ...).
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n =
        faultio::write(faultio::Site::kStoreWrite, fd, data + off, size - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

// Crash-safe write: temp file in the same directory, then rename into
// place (atomic within one filesystem). Returns false on any I/O failure,
// leaving errno describing it and no temp debris behind. The named crash
// points cover every state a power cut could freeze: empty tmp, torn tmp,
// unsynced tmp, un-renamed tmp, renamed-but-unindexed entry — the torture
// suite (test_fault.cc) relaunches from each and proves recovery.
bool write_then_rename(const fs::path& path, const std::string& bytes, bool durable) {
  const std::string tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  faultio::crash_point("store.write.open");

  const auto give_up = [&](int why) {
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = why;
    return false;
  };

  const std::size_t half = bytes.size() / 2;
  if (!write_all(fd, bytes.data(), half)) return give_up(errno);
  faultio::crash_point("store.write.partial");
  if (!write_all(fd, bytes.data() + half, bytes.size() - half)) return give_up(errno);
  faultio::crash_point("store.write.sync");
  if (durable && faultio::fsync(faultio::Site::kStoreFlush, fd) != 0) {
    return give_up(errno);
  }
  if (::close(fd) != 0) {
    const int why = errno;
    ::unlink(tmp.c_str());
    errno = why;
    return false;
  }
  faultio::crash_point("store.write.rename");
  if (faultio::rename(faultio::Site::kStoreRename, tmp.c_str(), path.c_str()) != 0) {
    // Keep the rename's errno as the diagnostic; the cleanup must not
    // clobber it (a failed remove of the tmp file is best-effort anyway).
    const int why = errno;
    ::unlink(tmp.c_str());
    errno = why;
    return false;
  }
  faultio::crash_point("store.write.publish");
  if (durable) {
    // The rename is only durable once the *directory* entry is on disk.
    const int dir_fd = ::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0) return false;
    const int rc = faultio::fsync(faultio::Site::kStoreFlush, dir_fd);
    const int why = errno;
    ::close(dir_fd);
    if (rc != 0) {
      errno = why;
      return false;
    }
  }
  return true;
}

}  // namespace

ResultStore::ResultStore(std::string dir, std::int64_t max_entries)
    : ResultStore(std::move(dir), StoreOptions{max_entries, false}) {}

ResultStore::ResultStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  options_.max_entries = std::max<std::int64_t>(1, options_.max_entries);
  if (dir_.empty()) return;

  std::error_code ec;
  fs::create_directories(dir_, ec);
  check(!ec, cat("cannot create store directory '", dir_, "': ", ec.message()));

  // Version stamp: a store written by a different format version is cleared
  // — stale payload shapes must degrade to cold misses, not be served.
  const fs::path format_path = fs::path(dir_) / "FORMAT";
  const std::optional<std::string> stamp = slurp(format_path);
  const std::string want = cat(kStoreFormat, "\n");
  const bool fresh = !stamp.has_value();
  if (!fresh && *stamp != want) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
      if (entry.path().extension() == ".entry") fs::remove(entry.path(), ec);
    }
  }
  if (fresh || *stamp != want) {
    if (!write_then_rename(format_path, want, options_.fsync)) {
      // A store that cannot even be stamped (full disk, read-only mount)
      // degrades to disabled — the daemon keeps computing without it.
      last_write_error_ = std::strerror(errno);
      open_failed_ = true;
      dir_.clear();
      return;
    }
  }

  // Startup scan: entry filenames become the in-memory index; contents are
  // validated lazily on get(). Oldest-mtime-first seeds the eviction order.
  // Stale *.tmp files — crash leftovers from a torn write — are swept here
  // so debris cannot accumulate across restarts.
  std::vector<std::pair<fs::file_time_type, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rm_ec;
      if (fs::remove(entry.path(), rm_ec)) ++tmp_swept_;
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.size() != 1 + 16 + 6 || name[0] != 'k' ||
        entry.path().extension() != ".entry") {
      continue;
    }
    const std::string key = name.substr(1, 16);
    if (!valid_key(key)) continue;
    std::error_code time_ec;
    const fs::file_time_type mtime = entry.last_write_time(time_ec);
    found.emplace_back(time_ec ? fs::file_time_type::min() : mtime, key);
  }
  check(!ec, cat("cannot scan store directory '", dir_, "': ", ec.message()));
  std::sort(found.begin(), found.end());
  for (auto& [mtime, key] : found) {
    keys_.insert(key);
    order_.push_back(std::move(key));
  }
}

std::string ResultStore::entry_path(const std::string& key) const {
  return (fs::path(dir_) / cat("k", key, ".entry")).string();
}

void ResultStore::drop(const std::string& key) {
  keys_.erase(key);
  order_.erase(std::remove(order_.begin(), order_.end(), key), order_.end());
  std::error_code ec;
  fs::remove(entry_path(key), ec);  // best effort
}

std::optional<std::string> ResultStore::get(const std::string& key) {
  if (!enabled() || keys_.count(key) == 0) return std::nullopt;
  const std::optional<std::string> bytes = slurp(entry_path(key));
  if (bytes.has_value()) {
    // Header: "srrad-entry/v1 <key16> <payload bytes>\n".
    const std::size_t eol = bytes->find('\n');
    if (eol != std::string::npos) {
      std::istringstream header(bytes->substr(0, eol));
      std::string stamp, stored_key;
      unsigned long long size = 0;
      header >> stamp >> stored_key >> size;
      if (header && stamp == kEntryFormat && stored_key == key &&
          bytes->size() == eol + 1 + size) {
        return bytes->substr(eol + 1);
      }
    }
  }
  // Unreadable, torn, or mislabeled: a miss, never a crash.
  ++corrupt_dropped_;
  drop(key);
  return std::nullopt;
}

bool ResultStore::put(const std::string& key, const std::string& payload) {
  if (!enabled()) return false;
  check(valid_key(key), "ResultStore::put: malformed key");
  const bool existed = keys_.count(key) != 0;
  if (!existed) {
    while (static_cast<std::int64_t>(keys_.size()) >= options_.max_entries &&
           !order_.empty()) {
      const std::string victim = order_.front();
      drop(victim);
      ++evictions_;
    }
  }
  const std::string bytes =
      cat(kEntryFormat, ' ', key, ' ', payload.size(), '\n', payload);
  if (!write_then_rename(entry_path(key), bytes, options_.fsync)) {
    // Degrade, don't throw — but keep the evidence for health reporting.
    ++write_failures_;
    last_write_error_ = std::strerror(errno);
    return false;
  }
  if (!existed) {
    keys_.insert(key);
    order_.push_back(key);
  }
  return true;
}

}  // namespace srra::service
