#include "service/store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/error.h"
#include "support/str.h"

namespace fs = std::filesystem;

namespace srra::service {

namespace {

bool valid_key(const std::string& key) {
  return key.size() == 16 &&
         key.find_first_not_of("0123456789abcdef") == std::string::npos;
}

// Reads a whole file; nullopt on any I/O problem.
std::optional<std::string> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return text.str();
}

// Crash-safe write: temp file in the same directory, then rename into
// place (atomic within one filesystem). Returns false on any I/O failure.
bool write_then_rename(const fs::path& path, const std::string& bytes) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

ResultStore::ResultStore(std::string dir, std::int64_t max_entries)
    : dir_(std::move(dir)), max_entries_(std::max<std::int64_t>(1, max_entries)) {
  if (dir_.empty()) return;

  std::error_code ec;
  fs::create_directories(dir_, ec);
  check(!ec, cat("cannot create store directory '", dir_, "': ", ec.message()));

  // Version stamp: a store written by a different format version is cleared
  // — stale payload shapes must degrade to cold misses, not be served.
  const fs::path format_path = fs::path(dir_) / "FORMAT";
  const std::optional<std::string> stamp = slurp(format_path);
  const std::string want = cat(kStoreFormat, "\n");
  const bool fresh = !stamp.has_value();
  if (!fresh && *stamp != want) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
      if (entry.path().extension() == ".entry") fs::remove(entry.path(), ec);
    }
  }
  if (fresh || *stamp != want) {
    check(write_then_rename(format_path, want),
          cat("cannot stamp store directory '", dir_, "'"));
  }

  // Startup scan: entry filenames become the in-memory index; contents are
  // validated lazily on get(). Oldest-mtime-first seeds the eviction order.
  std::vector<std::pair<fs::file_time_type, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 1 + 16 + 6 || name[0] != 'k' ||
        entry.path().extension() != ".entry") {
      continue;
    }
    const std::string key = name.substr(1, 16);
    if (!valid_key(key)) continue;
    std::error_code time_ec;
    const fs::file_time_type mtime = entry.last_write_time(time_ec);
    found.emplace_back(time_ec ? fs::file_time_type::min() : mtime, key);
  }
  check(!ec, cat("cannot scan store directory '", dir_, "': ", ec.message()));
  std::sort(found.begin(), found.end());
  for (auto& [mtime, key] : found) {
    keys_.insert(key);
    order_.push_back(std::move(key));
  }
}

std::string ResultStore::entry_path(const std::string& key) const {
  return (fs::path(dir_) / cat("k", key, ".entry")).string();
}

void ResultStore::drop(const std::string& key) {
  keys_.erase(key);
  order_.erase(std::remove(order_.begin(), order_.end(), key), order_.end());
  std::error_code ec;
  fs::remove(entry_path(key), ec);  // best effort
}

std::optional<std::string> ResultStore::get(const std::string& key) {
  if (!enabled() || keys_.count(key) == 0) return std::nullopt;
  const std::optional<std::string> bytes = slurp(entry_path(key));
  if (bytes.has_value()) {
    // Header: "srrad-entry/v1 <key16> <payload bytes>\n".
    const std::size_t eol = bytes->find('\n');
    if (eol != std::string::npos) {
      std::istringstream header(bytes->substr(0, eol));
      std::string stamp, stored_key;
      unsigned long long size = 0;
      header >> stamp >> stored_key >> size;
      if (header && stamp == kEntryFormat && stored_key == key &&
          bytes->size() == eol + 1 + size) {
        return bytes->substr(eol + 1);
      }
    }
  }
  // Unreadable, torn, or mislabeled: a miss, never a crash.
  ++corrupt_dropped_;
  drop(key);
  return std::nullopt;
}

void ResultStore::put(const std::string& key, const std::string& payload) {
  if (!enabled()) return;
  check(valid_key(key), "ResultStore::put: malformed key");
  const bool existed = keys_.count(key) != 0;
  if (!existed) {
    while (static_cast<std::int64_t>(keys_.size()) >= max_entries_ && !order_.empty()) {
      const std::string victim = order_.front();
      drop(victim);
      ++evictions_;
    }
  }
  const std::string bytes =
      cat(kEntryFormat, ' ', key, ' ', payload.size(), '\n', payload);
  if (!write_then_rename(entry_path(key), bytes)) return;  // degrade, don't throw
  if (!existed) {
    keys_.insert(key);
    order_.push_back(key);
  }
}

}  // namespace srra::service
