#include "service/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <system_error>
#include <unordered_set>
#include <utility>

#include "support/error.h"
#include "support/faultio.h"
#include "support/str.h"

namespace fs = std::filesystem;

namespace srra::service {

namespace {

// INDEX snapshot cadence: often enough that a kill -9 costs at most this
// many journal records of replay at the next open, rare enough that the
// snapshot write is noise against the entry writes it rides along with.
constexpr std::int64_t kSnapshotEvery = 256;

bool valid_key(const std::string& key) {
  return key.size() == 16 &&
         key.find_first_not_of("0123456789abcdef") == std::string::npos;
}

// Reads a whole file through the fault-injection shim; nullopt on any I/O
// problem. Short reads append and continue; EINTR retries; anything else
// (including an injected EAGAIN/EIO) degrades to a miss.
std::optional<std::string> slurp(const fs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::string text;
  char chunk[65536];
  for (;;) {
    const ssize_t n = faultio::read(faultio::Site::kStoreRead, fd, chunk, sizeof chunk);
    if (n > 0) {
      text.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    return std::nullopt;
  }
  ::close(fd);
  return text;
}

// Writes [data, data+size) to fd through the shim at `site`, riding out
// EINTR and short writes. False on any other failure (ENOSPC, EIO, ...).
bool write_all(faultio::Site site, int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = faultio::write(site, fd, data + off, size - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

// Crash-safe write: temp file in the same directory, then rename into
// place (atomic within one filesystem). Returns false on any I/O failure,
// leaving errno describing it and no temp debris behind. The named crash
// points cover every state a power cut could freeze: empty tmp, torn tmp,
// unsynced tmp, un-renamed tmp, renamed-but-unjournaled entry — the torture
// suite (test_fault.cc) relaunches from each and proves recovery.
bool write_then_rename(const fs::path& path, const std::string& bytes, bool durable) {
  const std::string tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  faultio::crash_point("store.write.open");

  const auto give_up = [&](int why) {
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = why;
    return false;
  };

  const std::size_t half = bytes.size() / 2;
  if (!write_all(faultio::Site::kStoreWrite, fd, bytes.data(), half)) {
    return give_up(errno);
  }
  faultio::crash_point("store.write.partial");
  if (!write_all(faultio::Site::kStoreWrite, fd, bytes.data() + half,
                 bytes.size() - half)) {
    return give_up(errno);
  }
  faultio::crash_point("store.write.sync");
  if (durable && faultio::fsync(faultio::Site::kStoreFlush, fd) != 0) {
    return give_up(errno);
  }
  if (::close(fd) != 0) {
    const int why = errno;
    ::unlink(tmp.c_str());
    errno = why;
    return false;
  }
  faultio::crash_point("store.write.rename");
  if (faultio::rename(faultio::Site::kStoreRename, tmp.c_str(), path.c_str()) != 0) {
    // Keep the rename's errno as the diagnostic; the cleanup must not
    // clobber it (a failed remove of the tmp file is best-effort anyway).
    const int why = errno;
    ::unlink(tmp.c_str());
    errno = why;
    return false;
  }
  faultio::crash_point("store.write.publish");
  if (durable) {
    // The rename is only durable once the *directory* entry is on disk.
    const int dir_fd = ::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0) return false;
    const int rc = faultio::fsync(faultio::Site::kStoreFlush, dir_fd);
    const int why = errno;
    ::close(dir_fd);
    if (rc != 0) {
      errno = why;
      return false;
    }
  }
  return true;
}

double entry_score(std::int64_t cost, std::int64_t bytes) {
  return static_cast<double>(cost) /
         static_cast<double>(std::max<std::int64_t>(1, bytes));
}

}  // namespace

// The cross-process mutation lease: flock(LOCK_EX) on <dir>/LOCK for the
// duration of one put / eviction / drop / snapshot. flock is per open file
// description, so two ResultStore instances in one process exclude each
// other too, and the kernel releases the lease when a holder crashes.
// Taking the lease replays the journal suffix first, so every mutation
// starts from the globally latest index state.
class StoreLease {
 public:
  explicit StoreLease(ResultStore& store) : store_(store) {
    if (store_.lock_fd_ >= 0) {
      while (::flock(store_.lock_fd_, LOCK_EX) != 0) {
        if (errno != EINTR) return;
      }
      held_ = true;
    }
    store_.replay_journal();
  }
  ~StoreLease() {
    if (held_) ::flock(store_.lock_fd_, LOCK_UN);
  }
  StoreLease(const StoreLease&) = delete;
  StoreLease& operator=(const StoreLease&) = delete;

 private:
  ResultStore& store_;
  bool held_ = false;
};

ResultStore::ResultStore(std::string dir, std::int64_t max_entries)
    : ResultStore(std::move(dir), StoreOptions{max_entries, false}) {}

ResultStore::ResultStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  check(options_.max_entries >= 1,
        cat("ResultStore: max_entries must be >= 1 (got ", options_.max_entries,
            ")"));
  if (dir_.empty()) return;

  std::error_code ec;
  fs::create_directories(dir_, ec);
  check(!ec, cat("cannot create store directory '", dir_, "': ", ec.message()));

  // Version stamp: a store written by a different format version is cleared
  // — stale payload shapes (and the index/journal describing them) must
  // degrade to cold misses, not be served.
  const fs::path format_path = fs::path(dir_) / "FORMAT";
  const std::optional<std::string> stamp = slurp(format_path);
  const std::string want = cat(kStoreFormat, "\n");
  if (stamp.has_value() && *stamp != want) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
      if (entry.path().extension() == ".entry") fs::remove(entry.path(), ec);
    }
    fs::remove(fs::path(dir_) / "INDEX", ec);
    fs::remove(fs::path(dir_) / "JOURNAL", ec);
  }
  if (!stamp.has_value() || *stamp != want) {
    if (!write_then_rename(format_path, want, options_.fsync)) {
      // A store that cannot even be stamped (full disk, read-only mount)
      // degrades to disabled — the daemon keeps computing without it.
      last_write_error_ = std::strerror(errno);
      open_failed_ = true;
      dir_.clear();
      return;
    }
  }

  lock_fd_ =
      ::open((fs::path(dir_) / "LOCK").c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  journal_fd_ = ::open(journal_path().c_str(),
                       O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (lock_fd_ < 0 || journal_fd_ < 0) {
    last_write_error_ = std::strerror(errno);
    open_failed_ = true;
    if (lock_fd_ >= 0) ::close(lock_fd_);
    if (journal_fd_ >= 0) ::close(journal_fd_);
    lock_fd_ = journal_fd_ = -1;
    dir_.clear();
    return;
  }

  std::int64_t journal_size = 0;
  {
    struct stat st {};
    if (::fstat(journal_fd_, &st) == 0) journal_size = st.st_size;
  }
  const bool index_ok = load_index();
  if (!index_ok) {
    // No usable snapshot: replaying the whole journal reconstructs the
    // index exactly (every put and delete is a record, in order).
    index_.clear();
    journal_offset_ = 0;
  }
  // Clean fast path note: when the snapshot is current, the lease below
  // replays zero bytes and reconcile finds nothing to fix — the open
  // performs no write at all, so an armed crash plan cannot fire before
  // the first real put (CrashTorture pins this).
  StoreLease lease(*this);
  const bool adopted = reconcile_with_directory();
  if (!index_ok && (journal_size > 0 || adopted)) ++index_rebuilds_;
}

ResultStore::~ResultStore() {
  if (enabled()) {
    StoreLease lease(*this);
    write_index_snapshot();  // best effort: a lost snapshot only costs replay
  }
  if (lock_fd_ >= 0) ::close(lock_fd_);
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

std::string ResultStore::entry_path(const std::string& key) const {
  return (fs::path(dir_) / cat("k", key, ".entry")).string();
}

std::string ResultStore::index_path() const {
  return (fs::path(dir_) / "INDEX").string();
}

std::string ResultStore::journal_path() const {
  return (fs::path(dir_) / "JOURNAL").string();
}

bool ResultStore::load_index() {
  const std::optional<std::string> text = slurp(index_path());
  if (!text.has_value()) return false;
  std::istringstream in(*text);
  std::string header_line;
  if (!std::getline(in, header_line)) return false;
  std::istringstream header(header_line);
  std::string format;
  std::int64_t covered = -1;
  std::int64_t next_seq = 0;
  std::int64_t epoch = -1;
  header >> format >> covered >> next_seq >> epoch;
  if (!header || format != kIndexFormat || covered < 0 || next_seq < 1 ||
      epoch < 0) {
    return false;
  }
  // A snapshot claiming to cover more journal than exists means the
  // journal was wiped or truncated behind it: distrust the snapshot.
  struct stat st {};
  if (::fstat(journal_fd_, &st) != 0 || st.st_size < covered) return false;
  std::unordered_map<std::string, Meta> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string key;
    Meta meta;
    row >> key >> meta.bytes >> meta.cost >> meta.seq;
    if (!row || !valid_key(key) || meta.bytes < 0 || meta.cost < 1 ||
        meta.seq < 1) {
      return false;
    }
    next_seq = std::max(next_seq, meta.seq + 1);
    rows[key] = meta;
  }
  index_ = std::move(rows);
  journal_offset_ = covered;
  next_seq_ = next_seq;
  epoch_ = epoch;
  return true;
}

void ResultStore::replay_journal() {
  if (!enabled() || journal_fd_ < 0) return;
  struct stat st {};
  if (::fstat(journal_fd_, &st) != 0) return;
  const std::int64_t size = st.st_size;
  if (size <= journal_offset_) return;
  if (::lseek(journal_fd_, journal_offset_, SEEK_SET) < 0) return;
  std::string tail;
  tail.reserve(static_cast<std::size_t>(size - journal_offset_));
  while (static_cast<std::int64_t>(tail.size()) < size - journal_offset_) {
    char chunk[65536];
    const ssize_t n =
        faultio::read(faultio::Site::kStoreJournal, journal_fd_, chunk, sizeof chunk);
    if (n > 0) {
      tail.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // injected failure or early EOF: apply what we have, retry later
  }
  std::size_t pos = 0;
  while (pos < tail.size()) {
    const std::size_t eol = tail.find('\n', pos);
    // A torn tail (a peer crashed mid-append) stays unapplied; the next
    // leased append seals it into a complete — and skipped — line.
    if (eol == std::string::npos) break;
    apply_journal_line(tail.substr(pos, eol - pos));
    pos = eol + 1;
  }
  journal_offset_ += static_cast<std::int64_t>(pos);
}

void ResultStore::apply_journal_line(const std::string& line) {
  std::istringstream in(line);
  std::string op;
  in >> op;
  if (op == "P") {
    std::string key;
    Meta meta;
    in >> key >> meta.bytes >> meta.cost >> meta.seq;
    if (!in || !valid_key(key) || meta.bytes < 0 || meta.cost < 1 || meta.seq < 1) {
      return;
    }
    meta.last_use = 0;
    index_[key] = meta;
    next_seq_ = std::max(next_seq_, meta.seq + 1);
  } else if (op == "D") {
    std::string key;
    std::int64_t epoch = -1;
    in >> key >> epoch;
    if (!in || !valid_key(key) || epoch < 0) return;
    index_.erase(key);
    epoch_ = std::max(epoch_, epoch);
  }
  // Anything else — a sealed torn line, a future record type — is skipped.
}

bool ResultStore::journal_append(const std::string& line) {
  if (journal_fd_ < 0) return false;
  struct stat st {};
  if (::fstat(journal_fd_, &st) != 0) return false;
  std::string record = line;
  record.push_back('\n');
  if (st.st_size > journal_offset_) {
    // Torn tail from a crashed peer append: seal it with a newline so
    // replayers see one complete (and skipped) junk line instead of the
    // debris glued onto our record.
    record.insert(record.begin(), '\n');
  }
  std::size_t off = 0;
  while (off < record.size()) {
    const ssize_t n = faultio::write(faultio::Site::kStoreJournal, journal_fd_,
                                     record.data() + off, record.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Keep our own partial bytes out of the next replay.
    journal_offset_ = st.st_size + static_cast<std::int64_t>(off);
    return false;
  }
  journal_offset_ = st.st_size + static_cast<std::int64_t>(record.size());
  return true;
}

bool ResultStore::reconcile_with_directory() {
  bool adopted = false;
  std::error_code ec;
  std::unordered_set<std::string> on_disk;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    const fs::path& path = entry.path();
    if (path.extension() == ".tmp") {
      std::error_code rm_ec;
      if (fs::remove(path, rm_ec)) ++tmp_swept_;
      continue;
    }
    const std::string name = path.filename().string();
    if (name.size() != 1 + 16 + 6 || name[0] != 'k' ||
        path.extension() != ".entry") {
      continue;
    }
    const std::string key = name.substr(1, 16);
    if (!valid_key(key)) continue;
    on_disk.insert(key);
    if (index_.count(key) != 0) continue;
    // Orphan entry: a crash between the rename and the journal append
    // (store.write.publish). Adopt it from its own header, and journal the
    // put the crash owed, so live peers converge too.
    Meta meta;
    if (read_entry_meta(key, &meta)) {
      index_[key] = meta;
      next_seq_ = std::max(next_seq_, meta.seq + 1);
      journal_append(cat("P ", key, ' ', meta.bytes, ' ', meta.cost, ' ', meta.seq));
      adopted = true;
    } else {
      // Unreadable orphan: debris, not data.
      std::error_code rm_ec;
      fs::remove(path, rm_ec);
      ++corrupt_dropped_;
    }
  }
  check(!ec, cat("cannot scan store directory '", dir_, "': ", ec.message()));
  // Index rows whose file vanished (a peer's eviction whose D record was
  // lost to a crash): drop them, writing the D record the crash owed.
  std::vector<std::string> missing;
  for (const auto& [key, meta] : index_) {
    if (on_disk.count(key) == 0) missing.push_back(key);
  }
  for (const std::string& key : missing) {
    index_.erase(key);
    journal_append(cat("D ", key, ' ', epoch_));
  }
  return adopted;
}

bool ResultStore::read_entry_meta(const std::string& key, Meta* meta) const {
  const int fd = ::open(entry_path(key).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  char buf[160];  // a v2 header line is < 100 bytes
  std::size_t got = 0;
  while (got < sizeof buf) {
    const ssize_t n =
        faultio::read(faultio::Site::kStoreRead, fd, buf + got, sizeof buf - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    return false;
  }
  struct stat st {};
  const bool stat_ok = ::fstat(fd, &st) == 0;
  ::close(fd);
  if (!stat_ok) return false;
  const std::string head(buf, got);
  const std::size_t eol = head.find('\n');
  if (eol == std::string::npos) return false;
  std::istringstream header(head.substr(0, eol));
  std::string format;
  std::string stored_key;
  std::int64_t bytes = -1;
  std::int64_t cost = 0;
  std::int64_t seq = 0;
  header >> format >> stored_key >> bytes >> cost >> seq;
  if (!header || format != kEntryFormat || stored_key != key || bytes < 0 ||
      cost < 1 || seq < 1) {
    return false;
  }
  if (st.st_size != static_cast<off_t>(eol + 1 + static_cast<std::size_t>(bytes))) {
    return false;
  }
  *meta = Meta{bytes, cost, seq, 0};
  return true;
}

void ResultStore::write_index_snapshot() {
  if (!enabled()) return;
  std::vector<const std::pair<const std::string, Meta>*> rows;
  rows.reserve(index_.size());
  for (const auto& row : index_) rows.push_back(&row);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    return a->second.seq < b->second.seq;
  });
  std::string text =
      cat(kIndexFormat, ' ', journal_offset_, ' ', next_seq_, ' ', epoch_, '\n');
  for (const auto* row : rows) {
    text += cat(row->first, ' ', row->second.bytes, ' ', row->second.cost, ' ',
                row->second.seq, '\n');
  }
  write_then_rename(index_path(), text, options_.fsync);  // best effort
  mutations_ = 0;
}

std::optional<std::string> ResultStore::get(const std::string& key,
                                            std::int64_t* cost_out) {
  if (!enabled()) return std::nullopt;
  auto it = index_.find(key);
  if (it == index_.end()) {
    // Maybe a peer published it: one journal refresh (a single fstat when
    // nothing changed), then the miss stands.
    replay_journal();
    it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
  }
  const std::optional<std::string> bytes = slurp(entry_path(key));
  if (bytes.has_value()) {
    // Header: "srrad-entry/v2 <key16> <payload bytes> <cost> <seq>\n".
    // Validated against the header itself, not the index row — a peer may
    // have just overwritten the entry, and the file is the truth.
    const std::size_t eol = bytes->find('\n');
    if (eol != std::string::npos) {
      std::istringstream header(bytes->substr(0, eol));
      std::string format;
      std::string stored_key;
      std::int64_t size = -1;
      std::int64_t cost = 0;
      std::int64_t seq = 0;
      header >> format >> stored_key >> size >> cost >> seq;
      if (header && format == kEntryFormat && stored_key == key && size >= 0 &&
          cost >= 1 && seq >= 1 &&
          bytes->size() == eol + 1 + static_cast<std::size_t>(size)) {
        it->second.last_use = ++tick_;
        if (cost_out != nullptr) *cost_out = cost;
        return bytes->substr(eol + 1);
      }
    }
  }
  // Unreadable, torn, or mislabeled. A peer may have evicted the file
  // between our lookup and the read — after a leased refresh that is a
  // plain miss; only a key still indexed with a bad file is corruption.
  {
    StoreLease lease(*this);
    if (index_.count(key) == 0) return std::nullopt;
    ++corrupt_dropped_;
    remove_entry(key);
    ++mutations_;
  }
  return std::nullopt;
}

bool ResultStore::put(const std::string& key, const std::string& payload,
                      std::int64_t cost) {
  if (!enabled()) return false;
  check(valid_key(key), "ResultStore::put: malformed key");
  cost = std::max<std::int64_t>(1, cost);
  StoreLease lease(*this);
  if (index_.count(key) == 0) evict_for_insert();
  const std::int64_t seq = next_seq_;
  const std::string bytes = cat(kEntryFormat, ' ', key, ' ', payload.size(), ' ',
                                cost, ' ', seq, '\n', payload);
  if (!write_then_rename(entry_path(key), bytes, options_.fsync)) {
    // Degrade, don't throw — but keep the evidence for health reporting.
    ++write_failures_;
    last_write_error_ = std::strerror(errno);
    return false;
  }
  next_seq_ = seq + 1;
  // The P record *after* the rename is the commit: a crash in between
  // leaves an orphan entry that the next open adopts. A failed append is
  // tolerated — the entry still serves locally, and peers adopt it at
  // their next open.
  journal_append(cat("P ", key, ' ', payload.size(), ' ', cost, ' ', seq));
  index_[key] =
      Meta{static_cast<std::int64_t>(payload.size()), cost, seq, ++tick_};
  if (++mutations_ >= kSnapshotEvery) write_index_snapshot();
  return true;
}

void ResultStore::evict_for_insert() {
  while (static_cast<std::int64_t>(index_.size()) >= options_.max_entries &&
         !index_.empty()) {
    auto victim = index_.begin();
    double max_score = entry_score(victim->second.cost, victim->second.bytes);
    for (auto it = std::next(index_.begin()); it != index_.end(); ++it) {
      const double score = entry_score(it->second.cost, it->second.bytes);
      max_score = std::max(max_score, score);
      const double victim_score =
          entry_score(victim->second.cost, victim->second.bytes);
      if (score < victim_score ||
          (score == victim_score &&
           (it->second.last_use < victim->second.last_use ||
            (it->second.last_use == victim->second.last_use &&
             it->second.seq < victim->second.seq)))) {
        victim = it;
      }
    }
    // Classification: did the cost/bytes score single this victim out, or
    // did recency break a tie between equals?
    if (entry_score(victim->second.cost, victim->second.bytes) < max_score) {
      ++evicted_by_cost_;
    } else {
      ++evicted_lru_;
    }
    const std::string key = victim->first;
    remove_entry(key);
    ++evictions_;
    ++mutations_;
  }
}

void ResultStore::remove_entry(const std::string& key) {
  // Unlink *before* the D record: a crash in between leaves a gone file
  // with a stale row — reconciled at the next open — instead of a D for a
  // live file, which could resurrect nothing but confuse replayers.
  std::error_code ec;
  fs::remove(entry_path(key), ec);  // best effort
  ++epoch_;
  journal_append(cat("D ", key, ' ', epoch_));
  index_.erase(key);
}

std::vector<StoreEntryInfo> ResultStore::snapshot() {
  std::vector<StoreEntryInfo> out;
  if (!enabled()) return out;
  replay_journal();
  out.reserve(index_.size());
  for (const auto& [key, meta] : index_) {
    out.push_back(StoreEntryInfo{key, meta.bytes, meta.cost, meta.seq});
  }
  std::sort(out.begin(), out.end(),
            [](const StoreEntryInfo& a, const StoreEntryInfo& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace srra::service
