// srrad wire protocol (DESIGN.md §12): length-prefixed JSON frames carrying
// allocation queries against the full pipeline. One frame is
//
//   <decimal payload byte count> '\n' <payload bytes>
//
// in both directions, over a Unix/TCP socket or a stdin/stdout pipe. The
// payload is one JSON object. Everything here is shared between the daemon
// (service/server.h), the client (service/client.h) and the `srra run
// --format=json` CLI path, so the two frontends serialize query results
// through literally the same code and can never drift.
//
// Request object ("op" defaults to "query"):
//   {"op": "query", "id": "tag",            -- id echoed verbatim
//    "kernel": "fir" | "kernel k { ... }",  -- builtin name or inline DSL
//    "transforms": "i(1,0);t(1,8)",         -- canonical encoding, "" = none
//    "algorithm": "cpa",                    -- any registry spelling
//    "mode": "budget" | "frontier",
//    "budget": 64,                          -- budget mode
//    "budgets": "8:128",                    -- frontier mode axis spec
//    "fetch": true,                         -- concurrent operand fetch
//    "probe": false,                        -- cache-only: never compute
//    "key": "0123456789abcdef",             -- probe an exact cache key
//    "timing": false}                       -- include elapsed_us
//   {"op": "stats"}    -- server counters (hits/misses/coalesced/...)
//   {"op": "health"}   -- store mode (ok|degraded|disabled), store/failure
//                         counters, hit rate, eviction-policy counters
//                         (DESIGN.md §14, §15)
//   {"op": "pull", "limit": 256, "offset": 0}
//                      -- page of stored entries, top recompute-cost-per-
//                         byte score first: a cold daemon's warmup stream
//                         (DESIGN.md §15); payloads travel as JSON strings
//                         so the cached bytes survive verbatim
//   {"op": "shutdown"} -- respond, then stop the serve loop
//
// Response envelope:
//   {"schema": "srra-service/v1", "id": ..., "ok": true,
//    "cache": {"status": "hit"|"miss", "key": "..."},
//    "elapsed_us": 123,                     -- only when the request asked
//    "query": { ...srra-query/v1 object... }}
// or {"schema": "srra-service/v1", "id": ..., "ok": false, "error": "..."}.
//
// The "query" member — the srra-query/v1 single-object report — is the unit
// the persistent store caches, a pure function of the cache key: byte-
// identical for any --jobs value, request arrival order, or store state
// (tested in test_service.cc).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "driver/pipeline.h"
#include "support/json.h"

namespace srra::service {

inline constexpr const char kServiceSchema[] = "srra-service/v1";
inline constexpr const char kQuerySchema[] = "srra-query/v1";

// ------------------------------------------------------------------ framing

/// Upper bound on one frame's payload (a kernel DSL text or a frontier
/// report; 16 MiB is orders of magnitude above both). read_frame rejects
/// larger announcements instead of allocating attacker-controlled sizes.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{16} << 20;

/// Writes one frame (length line + payload). Does not flush.
void write_frame(std::ostream& os, std::string_view payload);

/// Reads one frame. Returns std::nullopt on clean end-of-stream (EOF before
/// the first length byte); throws srra::Error on a malformed length line,
/// an oversized announcement, or a payload truncated mid-frame.
std::optional<std::string> read_frame(std::istream& is);

/// Cuts one complete frame off the front of `buffer` (the socket-side
/// incremental variant of read_frame). Returns 1 and fills `payload` when a
/// whole frame was available, 0 when more bytes are needed, -1 on malformed
/// framing (non-digit length bytes, oversized announcement).
int extract_frame(std::string& buffer, std::string& payload);

// ----------------------------------------------------------------- requests

enum class RequestOp { kQuery, kStats, kHealth, kShutdown, kPull };

/// One parsed request. Defaults reproduce the paper's setup (CPA-RA at
/// budget 64, concurrent fetch), matching the `srra run` CLI defaults.
struct Request {
  RequestOp op = RequestOp::kQuery;
  std::string id;                 ///< echoed verbatim; empty = omitted
  std::string kernel;             ///< builtin name or inline DSL text
  std::string key;                ///< probe an exact cache key (cache-only)
  std::string transforms;         ///< canonical transform encoding, "" = none
  std::string algorithm = "cpa";  ///< registry spelling
  bool frontier = false;          ///< mode: false = budget, true = frontier
  std::int64_t budget = 64;       ///< budget mode
  std::string budgets = "8:128";  ///< frontier mode axis spec
  bool fetch = true;              ///< concurrent operand fetch
  bool probe = false;             ///< cache-only: report miss, never compute
  bool timing = false;            ///< include elapsed_us in the envelope
  std::int64_t limit = 256;       ///< pull op: max entries per page
  std::int64_t offset = 0;        ///< pull op: entries to skip (paging)
};

/// Parses and validates one request payload. Unknown members, wrong types,
/// and inconsistent field combinations throw srra::Error (the server turns
/// that into an ok:false response, not a dropped connection).
Request parse_request(const std::string& payload);

/// The cache key of a query: FNV-1a over the structural hash of the
/// *transformed* kernel, the kernel's display name (structural_hash is
/// name-insensitive, but the cached payload names the kernel), the
/// transform encoding, algorithm, mode, budget axis and fetch mode, plus a
/// format-version salt — bump kKeyVersion whenever the payload schema or
/// any model semantics change, and a warm store degrades to misses instead
/// of serving stale shapes. 16 lowercase hex characters.
inline constexpr const char kKeyVersion[] = "srrad-key/v1";
std::string cache_key(std::uint64_t kernel_hash, std::string_view kernel_name,
                      const Request& request);

/// FNV-1a content hash of a stored payload, 16 lowercase hex characters —
/// the integrity stamp in `srrad --export-manifest` output and the pull
/// op's entries, so a warmed shard can prove it holds the peer's bytes.
std::string payload_hash(std::string_view payload);

// ------------------------------------------------- query report (cached unit)

/// A fully evaluated query: identity plus per-budget design points.
struct QueryReport {
  std::string kernel_name;
  std::string transforms;        ///< canonical encoding, "" = none
  std::uint64_t kernel_hash = 0; ///< structural hash of the transformed kernel
  std::string algorithm;         ///< display name, e.g. "CPA-RA"
  bool fetch = true;
  bool frontier = false;
  std::int64_t budget = 0;       ///< budget mode only
  std::int64_t outer_trip = 1;   ///< outermost trip count (Tmem/outer column)
  bool feasible = true;          ///< budget mode: budget covers feasibility
  std::string error;             ///< diagnostic when infeasible
  /// (budget, design) rows: exactly one when feasible in budget mode; one
  /// per feasible budget of the axis in frontier mode.
  std::vector<std::pair<std::int64_t, DesignPoint>> points;
};

/// A resolved, canonicalized query ready to evaluate: identity (for the
/// report header) plus the evaluation axis.
struct QueryInput {
  std::string kernel_name;
  std::string transforms;         ///< canonical encoding, "" = none
  std::uint64_t kernel_hash = 0;  ///< structural hash of the transformed kernel
  Algorithm algorithm = Algorithm::kCpaRa;
  bool fetch = true;
  bool frontier = false;
  std::int64_t budget = 64;             ///< budget mode
  std::vector<std::int64_t> budgets;    ///< frontier mode
};

/// Evaluates one query against the pipeline: budget mode runs run_pipeline
/// (an infeasible budget degrades to feasible:false with the diagnostic,
/// like dse/explore); frontier mode runs run_budget_sweep, keeping one row
/// per feasible budget. Shared by the server's compute jobs and the
/// `srra run --format=json` CLI path, so the two can never drift.
QueryReport evaluate_query(const RefModel& model, const QueryInput& input);

/// Emits the numeric design-point fields (registers ... block_rams) of one
/// evaluated design — the exact field set and formatting of the DSE points
/// report (dse/report.cc calls this too, so the schemas cannot drift).
void write_design_point_fields(JsonWriter& json, const DesignPoint& design,
                               std::int64_t outer_trip);

/// Emits the srra-query/v1 single-object report.
void write_query_report(JsonWriter& json, const QueryReport& report);

/// write_query_report rendered standalone (what the store persists).
std::string query_payload(const QueryReport& report);

// ---------------------------------------------------------------- responses

/// Envelope metadata the server attaches around a cached payload.
struct ResponseMeta {
  std::string id;
  std::string cache_status;        ///< "hit" | "miss" (empty = no cache line)
  std::string key;
  std::int64_t elapsed_us = -1;    ///< < 0 = omit
};

/// Assembles the success envelope around a query payload (parsed and
/// re-emitted so the envelope stays one well-indented document).
std::string make_query_response(const ResponseMeta& meta, const std::string& payload);

/// Assembles an ok:false envelope.
std::string make_error_response(const std::string& id, const std::string& message);

/// Assembles an ok:true envelope with one extra object member (stats,
/// shutdown acknowledgements): {"schema", "id"?, "ok": true, <member>: value}.
std::string make_value_response(const std::string& id, const std::string& member,
                                const JsonValue& value);

}  // namespace srra::service
