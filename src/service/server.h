// srrad server core (DESIGN.md §12): evaluates batches of wire-protocol
// requests over the allocation engine, with two cache layers (an in-memory
// payload map and the persistent ResultStore) and in-flight coalescing.
//
// Batch semantics are what make responses deterministic: every request of a
// batch is keyed, looked up against the cache state *at batch start*, and
// unique missing keys are computed exactly once on the thread pool — a
// thundering herd of identical queries computes once and every duplicate
// reports the same cache status ("miss" when the key was absent, "hit" when
// present). Compute jobs that share a kernel variant also share one
// RefModel, so a batch mixing algorithms/budgets of one kernel pays for its
// analysis once (the dse/explore sharding idea, applied across requests).
// Responses are therefore byte-identical for any jobs value and any
// arrival order of the same request multiset against the same starting
// store (tested in test_service.cc); only the opt-in "timing" field and the
// stats op break that, by design.
//
// The serve loops (stdio frames, Unix socket, TCP) all feed handle_batch:
// one readiness sweep = one batch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/proto.h"
#include "service/store.h"
#include "support/thread_pool.h"

namespace srra::service {

struct ServerOptions {
  /// Thread-pool lanes for batch compute (<= 0 = all cores).
  int jobs = 1;
  /// Persistent store directory; empty = in-memory caching only.
  std::string store_dir;
  /// Eviction cap of the persistent store.
  std::int64_t store_max_entries = 4096;
  /// Durability: fsync store entries (StoreOptions::fsync).
  bool store_fsync = false;
  /// Eviction cap of the in-memory payload cache.
  std::int64_t memory_max_entries = 1 << 16;
  /// Consecutive store-write failures before the server flips to
  /// compute-only mode (skips the store entirely; <= 0 disables the
  /// breaker and every put keeps hitting the failing disk).
  int store_failure_threshold = 3;
  /// While compute-only: every Nth would-be put goes through as a probe;
  /// one success flips the store back to normal service.
  int store_probe_every = 16;
  /// Socket serve loops: a connection holding a *partial* frame longer
  /// than this is sent an error and closed, so one stalled client cannot
  /// pin buffer memory forever (0 = no deadline).
  int read_deadline_ms = 30000;
};

/// Store service state (the "health" op reports this).
enum class StoreMode {
  kDisabled,  ///< no store configured (or it failed to open)
  kOk,        ///< store serving reads and writes
  kDegraded,  ///< compute-only after repeated failures; probing its way back
};

/// Monotonic service counters (the "stats" and "health" ops report these).
struct ServerStats {
  std::int64_t requests = 0;   ///< frames handled (all ops)
  std::int64_t queries = 0;    ///< query-op requests
  std::int64_t hits = 0;       ///< served from memory or store
  std::int64_t misses = 0;     ///< absent at batch start (computed or probed)
  std::int64_t computed = 0;   ///< unique evaluations actually run
  std::int64_t coalesced = 0;  ///< duplicate in-batch queries folded away
  std::int64_t errors = 0;     ///< ok:false responses
  std::int64_t store_put_failures = 0;  ///< failed persistent writes
  std::int64_t store_degraded = 0;      ///< times the breaker opened
  std::int64_t store_probes = 0;        ///< probe puts while degraded
  std::int64_t deadline_closes = 0;     ///< connections closed by deadline
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one batch of request payloads; returns one response payload
  /// per request, in request order. Never throws on bad requests — those
  /// become ok:false responses.
  std::vector<std::string> handle_batch(const std::vector<std::string>& requests);

  /// handle_batch of one.
  std::string handle(const std::string& request);

  /// True once a shutdown request has been served (serve loops exit).
  bool shutdown_requested() const { return shutdown_; }

  /// Frame loop over a stream pair (`srrad --stdio`, tests): reads one
  /// frame, then greedily drains whatever is already buffered into the
  /// same batch; writes response frames in request order and flushes per
  /// batch. Returns the process exit code (0 on EOF or shutdown, 2 on a
  /// torn/malformed frame, after sending an error response).
  int serve_stream(std::istream& in, std::ostream& out);

  /// Poll-based socket accept loops (one batch per readiness sweep).
  /// serve_unix binds `path` (unlinking a stale socket first); serve_tcp
  /// binds 127.0.0.1:`port`. Both return the process exit code.
  int serve_unix(const std::string& path);
  int serve_tcp(int port);

  /// Streams the peer's stored entries into this daemon's store and memory
  /// cache via paged `op:"pull"` requests, best-scoring entries first, so a
  /// fresh shard answers warm from its first request (DESIGN.md §15).
  /// `endpoint` is a Unix socket path (contains '/') or "host:port".
  /// Returns the number of entries adopted; throws srra::Error when the
  /// peer cannot be reached (callers typically warn and serve cold).
  int warm_from_peer(const std::string& endpoint);

  const ServerStats& stats() const { return stats_; }
  const ResultStore& store() const { return store_; }
  ResultStore& store() { return store_; }
  StoreMode store_mode() const { return store_mode_; }

 private:
  struct ResolvedVariant;  // memoized (kernel text, transforms) resolution
  struct Slot;             // per-request batch state

  /// One in-memory payload-cache entry; evicted by the same
  /// recompute-cost-per-byte policy as the persistent store.
  struct MemEntry {
    std::string payload;
    std::int64_t cost = 1;
    std::int64_t last_use = 0;
    std::int64_t seq = 0;
  };

  const ResolvedVariant& resolve_variant(const std::string& kernel_field,
                                         const std::string& transforms);
  void cache_insert(const std::string& key, const std::string& payload,
                    std::int64_t cost);
  /// Store read honoring the health state machine (degraded = skip).
  std::optional<std::string> store_get(const std::string& key,
                                       std::int64_t* cost_out);
  /// Store write through the health state machine: failures count toward
  /// the breaker; while degraded, only every Nth put probes the disk, and
  /// one probe success closes the breaker again.
  void store_put(const std::string& key, const std::string& payload,
                 std::int64_t cost);
  std::string health_response(const std::string& id);
  /// One `op:"pull"` page: stored entries ordered best-score-first, each
  /// payload carried as a JSON string (verbatim bytes) with its hash.
  std::string pull_response(const Request& request);
  int serve_fd(int listen_fd);

  ServerOptions options_;
  ResultStore store_;
  ThreadPool pool_;
  bool shutdown_ = false;
  ServerStats stats_;
  StoreMode store_mode_ = StoreMode::kDisabled;
  int consecutive_store_failures_ = 0;
  int puts_since_probe_ = 0;

  std::unordered_map<std::string, MemEntry> memory_cache_;
  std::int64_t memory_tick_ = 0;  ///< LRU clock of the payload cache
  std::int64_t memory_seq_ = 0;   ///< arrival order of the payload cache

  std::unordered_map<std::string, std::unique_ptr<ResolvedVariant>> variants_;
};

}  // namespace srra::service
