// Blocking srrad client connection: one socket, frames out, frames in.
// Used by the `srra client` subcommand, bench_service's load threads and
// test_service.cc. For pipe mode there is no connection object — clients
// write request frames to srrad's stdin and read response frames from its
// stdout (`srra client --emit` / `--decode` produce and consume exactly
// those byte streams).
#pragma once

#include <string>
#include <vector>

namespace srra::service {

class Client {
 public:
  /// Connect to a daemon on a Unix socket / loopback TCP port. Throws
  /// srra::Error when the connection fails.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one request frame. Throws on a broken connection.
  void send(const std::string& payload);

  /// Reads one response frame, blocking. Throws on EOF or torn framing.
  std::string receive();

  /// send + receive.
  std::string roundtrip(const std::string& payload);

  /// Sends every request back-to-back, then collects the responses — the
  /// whole burst tends to land in one server batch, which is how a client
  /// opts into coalescing.
  std::vector<std::string> roundtrip_batch(const std::vector<std::string>& payloads);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last complete frame
};

}  // namespace srra::service
