// Blocking srrad client connection: one socket, frames out, frames in.
// Used by the `srra client` subcommand, bench_service's load threads and
// test_service.cc / test_fault.cc. For pipe mode there is no connection
// object — clients write request frames to srrad's stdin and read response
// frames from its stdout (`srra client --emit` / `--decode` produce and
// consume exactly those byte streams).
//
// Robustness (DESIGN.md §14): connects, sends and receives all carry
// deadlines, and roundtrips retry with deterministic exponential backoff
// plus seeded jitter. Retrying is safe by construction — a query is a pure
// function of its cache key, so a re-sent request whose first attempt
// already computed is answered from the daemon's store, never recomputed
// (the structural-hash key is the idempotency token). All raw socket I/O
// goes through support/faultio, so fault plans can deterministically
// starve, tear, or stall a client under test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srra::service {

struct ClientOptions {
  /// Deadline for connect() to complete (0 = wait forever).
  int connect_timeout_ms = 5000;
  /// Per-call deadline for one send() or receive() to make progress to
  /// completion (0 = wait forever).
  int io_timeout_ms = 30000;
  /// Extra attempts after a failed roundtrip (0 = fail fast). Each retry
  /// reconnects and re-sends every unanswered request of the batch.
  int retries = 0;
  /// Base backoff before retry k (0-based): backoff_ms << k, plus a seeded
  /// uniform jitter in [0, backoff_ms) — deterministic for a fixed seed.
  int backoff_ms = 20;
  std::uint64_t backoff_seed = 0;
};

/// The exact delay before retry `attempt` (0-based) under `options`:
/// (backoff_ms << attempt) + jitter drawn from the attempt-indexed seeded
/// stream. Exposed so tests pin the schedule.
std::int64_t retry_delay_ms(int attempt, const ClientOptions& options);

class Client {
 public:
  /// Connect to a daemon on a Unix socket / loopback TCP port. Throws
  /// srra::Error when the connection fails (after the connect deadline).
  static Client connect_unix(const std::string& path, ClientOptions options = {});
  static Client connect_tcp(const std::string& host, int port,
                            ClientOptions options = {});
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one request frame. Throws on a broken connection or a send
  /// deadline; does NOT retry (retries need the receive side — use
  /// roundtrip/roundtrip_batch).
  void send(const std::string& payload);

  /// Reads one response frame, blocking up to the I/O deadline. Throws on
  /// EOF, torn framing, or deadline.
  std::string receive();

  /// send + receive, with up to options.retries reconnect-and-resend
  /// attempts under the deterministic backoff schedule.
  std::string roundtrip(const std::string& payload);

  /// Sends every request back-to-back, then collects the responses — the
  /// whole burst tends to land in one server batch, which is how a client
  /// opts into coalescing. On a mid-batch failure, reconnects and re-sends
  /// only the unanswered suffix (answered responses are kept).
  std::vector<std::string> roundtrip_batch(const std::vector<std::string>& payloads);

  /// Retries performed so far (test/bench observability).
  int retries_used() const { return retries_used_; }

 private:
  Client(int fd, ClientOptions options) : fd_(fd), options_(options) {}

  void reconnect();
  void close_fd();

  int fd_ = -1;
  ClientOptions options_;
  std::string buffer_;  ///< bytes received past the last complete frame
  int retries_used_ = 0;
  /// Reconnect identity: kind 0 = unix(path in host_), kind 1 = tcp.
  int endpoint_kind_ = 0;
  std::string host_;
  int port_ = 0;
};

}  // namespace srra::service
