// Persistent result store for the srrad daemon (DESIGN.md §12): an on-disk
// cache of srra-query/v1 payloads keyed by the proto cache key. Layout:
//
//   <dir>/FORMAT            version stamp ("srrad-store/v1\n")
//   <dir>/k<key16>.entry    one entry per key:
//                           "srrad-entry/v1 <key16> <payload bytes>\n<payload>"
//
// Properties the tests pin (test_service.cc):
//  * crash safety — entries are written to a temp file and renamed into
//    place, so a torn write can only ever produce a *corrupt* entry, never
//    a half-visible one;
//  * corrupt tolerance — an entry that fails validation (bad stamp, wrong
//    key, short payload) reads as a miss and is dropped, never a crash;
//  * version migration — a FORMAT stamp from another version clears the
//    store (cold restart) instead of serving payloads of a stale schema;
//  * bounded size — at most max_entries entries; inserting past the cap
//    evicts the oldest entry (startup order = file mtime, then key).
//
// Not thread-safe: the server serializes all store access on its loop
// thread (compute runs on the pool, store I/O does not).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace srra::service {

inline constexpr const char kStoreFormat[] = "srrad-store/v1";
inline constexpr const char kEntryFormat[] = "srrad-entry/v1";

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `dir`; empty `dir` disables
  /// persistence (every get misses, every put is a no-op). Throws
  /// srra::Error when the directory cannot be created or scanned.
  explicit ResultStore(std::string dir, std::int64_t max_entries = 4096);

  bool enabled() const { return !dir_.empty(); }

  /// The payload stored under `key`, or nullopt. A corrupt entry is
  /// dropped (counted in corrupt_dropped()) and reported as a miss.
  std::optional<std::string> get(const std::string& key);

  /// Inserts or overwrites `key`, evicting the oldest entries beyond the
  /// cap. I/O failures degrade to "not stored" rather than throwing — a
  /// full disk must not take the daemon down.
  void put(const std::string& key, const std::string& payload);

  std::int64_t entries() const { return static_cast<std::int64_t>(keys_.size()); }
  std::int64_t evictions() const { return evictions_; }
  std::int64_t corrupt_dropped() const { return corrupt_dropped_; }

 private:
  std::string entry_path(const std::string& key) const;
  void drop(const std::string& key);

  std::string dir_;
  std::int64_t max_entries_ = 4096;
  std::unordered_set<std::string> keys_;
  std::vector<std::string> order_;  ///< eviction order, oldest first
  std::int64_t evictions_ = 0;
  std::int64_t corrupt_dropped_ = 0;
};

}  // namespace srra::service
