// Persistent result store for the srrad daemon (DESIGN.md §12, §15): an
// on-disk cache of srra-query/v1 payloads keyed by the proto cache key,
// safe to share between several daemon processes. Layout:
//
//   <dir>/FORMAT            version stamp ("srrad-store/v2\n")
//   <dir>/LOCK              flock target: the cross-process mutation lease
//   <dir>/JOURNAL           append-only mutation log (replayed by peers)
//   <dir>/INDEX             crash-safe snapshot of the in-memory index
//   <dir>/k<key16>.entry    one entry per key:
//                           "srrad-entry/v2 <key16> <bytes> <cost> <seq>\n<payload>"
//
// Properties the tests pin (test_service.cc, test_fault.cc, test_shared.cc):
//  * crash safety — entries are written to a temp file and renamed into
//    place, so a torn write can only ever produce a *corrupt* entry, never
//    a half-visible one; every crash point of the write path (see
//    support/faultio.h) recovers to a store that answers byte-identically;
//  * corrupt tolerance — an entry that fails validation (bad stamp, wrong
//    key, short payload) reads as a miss and is dropped, never a crash;
//  * version migration — a FORMAT stamp from another version clears the
//    store (cold restart) instead of serving payloads of a stale schema;
//  * bounded size — at most max_entries entries; inserting past the cap
//    evicts the entry with the lowest recompute-cost-per-byte score
//    (`score = cost / bytes`), ties broken least-recently-used first, then
//    by arrival sequence number — so a frontier or BB-RA entry (~100x the
//    recompute cost of a single-budget point) outlives cheap entries;
//  * deterministic order — arrival sequence numbers are persisted in the
//    entry header and the index, so eviction order survives restarts
//    regardless of filesystem timestamp resolution (no mtime involved);
//  * multi-process sharing — every mutation (put, evict, corrupt drop)
//    happens under an flock lease on <dir>/LOCK and is logged to the
//    append-only JOURNAL; peers discover each other's entries by replaying
//    the journal suffix (one stat per cold lookup, no readdir), and
//    eviction is epoch-stamped so two daemons never double-evict or
//    resurrect a condemned key;
//  * read-mostly index — the INDEX snapshot (rewritten under the lease on
//    clean close and every few hundred mutations) makes warm startup a
//    single small file read plus a name-only tmp sweep; the expensive
//    directory scan that reads every entry header runs only when the
//    index or journal is missing or corrupt (counted in index_rebuilds());
//  * debris-free startup — stale *.tmp files left by a crash are swept
//    (and counted) when the store opens;
//  * graceful I/O degradation — a failed write (ENOSPC, EIO, torn disk)
//    reads as "not stored" with the errno kept for health reporting; a
//    store directory that cannot even be stamped degrades to disabled
//    instead of taking the daemon down.
//
// All raw I/O goes through support/faultio, so a fault plan can
// deterministically inject short reads, EINTR storms, ENOSPC/EIO and
// mid-write crashes (DESIGN.md §14).
//
// Not thread-safe within one process: the server serializes all store
// access on its loop thread (compute runs on the pool, store I/O does
// not). Cross-process safety is the flock lease's job.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace srra::service {

inline constexpr const char kStoreFormat[] = "srrad-store/v2";
inline constexpr const char kEntryFormat[] = "srrad-entry/v2";
inline constexpr const char kIndexFormat[] = "srrad-index/v1";

struct StoreOptions {
  /// Eviction cap, in entries. Must be >= 1 — the constructor throws on a
  /// smaller value (CLI layers validate first, naming the flag).
  std::int64_t max_entries = 4096;
  /// Durability: fsync every entry file (and its directory after the
  /// rename) before reporting it stored. Off by default — the store is a
  /// cache, and a lost entry is only a recompute; turn it on when the
  /// store must survive power loss, not just process crashes.
  bool fsync = false;
};

/// One index row, as exposed to manifests and the pull op.
struct StoreEntryInfo {
  std::string key;
  std::int64_t bytes = 0;  ///< payload bytes (header excluded)
  std::int64_t cost = 1;   ///< recompute cost estimate, abstract units
  std::int64_t seq = 0;    ///< arrival sequence number (eviction tie-break)
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `dir`; empty `dir` disables
  /// persistence (every get misses, every put is a no-op). Throws
  /// srra::Error when the directory cannot be created or scanned, or when
  /// options.max_entries < 1; a directory that cannot be *stamped* (e.g.
  /// disk full) degrades to a disabled store instead (open_failed()
  /// reports why).
  explicit ResultStore(std::string dir, StoreOptions options = {});
  /// Convenience: options with just the eviction cap set.
  ResultStore(std::string dir, std::int64_t max_entries);
  /// Writes a final INDEX snapshot (best effort) and releases the lock fd.
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  bool enabled() const { return !dir_.empty(); }

  /// The payload stored under `key`, or nullopt. A corrupt entry is
  /// dropped (counted in corrupt_dropped()) and reported as a miss. A key
  /// this process has never seen triggers one journal-suffix replay before
  /// the miss is declared — that is how a daemon discovers entries a peer
  /// published (one fstat when the journal is unchanged). `cost_out`, when
  /// non-null, receives the entry's recompute cost estimate on a hit.
  std::optional<std::string> get(const std::string& key,
                                 std::int64_t* cost_out = nullptr);

  /// Inserts or overwrites `key`, evicting the lowest-scoring entries
  /// beyond the cap first. `cost` is the recompute cost estimate carried
  /// in the entry header (>= 1; the eviction score is cost/bytes). Returns
  /// false when the entry was NOT persisted — disabled store, or an I/O
  /// failure (a full disk must not take the daemon down; the server's
  /// health state machine watches this signal).
  bool put(const std::string& key, const std::string& payload,
           std::int64_t cost = 1);

  /// The current index, sorted by key (deterministic manifests). Replays
  /// any outstanding journal suffix first, so peers' entries are included.
  std::vector<StoreEntryInfo> snapshot();

  std::int64_t entries() const { return static_cast<std::int64_t>(index_.size()); }
  std::int64_t evictions() const { return evictions_; }
  /// Evictions where the cost/bytes score singled the victim out vs. ties
  /// broken by recency (evictions() == evicted_by_cost() + evicted_lru()).
  std::int64_t evicted_by_cost() const { return evicted_by_cost_; }
  std::int64_t evicted_lru() const { return evicted_lru_; }
  std::int64_t corrupt_dropped() const { return corrupt_dropped_; }
  /// Stale *.tmp crash leftovers removed by the startup sweep.
  std::int64_t tmp_swept() const { return tmp_swept_; }
  /// put() calls that failed on I/O (not counting disabled-store no-ops).
  std::int64_t write_failures() const { return write_failures_; }
  /// Full directory scans (every entry header read) because the INDEX or
  /// JOURNAL was missing or corrupt — the slow path the index exists to
  /// avoid.
  std::int64_t index_rebuilds() const { return index_rebuilds_; }
  /// strerror of the most recent failed write, "" when none.
  const std::string& last_write_error() const { return last_write_error_; }
  /// True when the store directory existed but could not be stamped; the
  /// store then behaves as disabled.
  bool open_failed() const { return open_failed_; }

 private:
  struct Meta {
    std::int64_t bytes = 0;
    std::int64_t cost = 1;
    std::int64_t seq = 0;
    std::int64_t last_use = 0;  ///< process-local LRU tick (not persisted)
  };

  std::string entry_path(const std::string& key) const;
  std::string index_path() const;
  std::string journal_path() const;
  /// Loads the INDEX snapshot; false when missing, corrupt, or covering
  /// more journal than exists (wiped journal behind it).
  bool load_index();
  /// Applies complete journal lines past journal_offset_. A torn tail (a
  /// peer mid-append or crashed mid-append) stays unapplied until sealed.
  void replay_journal();
  void apply_journal_line(const std::string& line);
  /// Appends one record under the (held) lease, sealing any torn tail.
  bool journal_append(const std::string& line);
  /// Directory pass at open (under the lease): sweeps *.tmp, adopts orphan
  /// entries (file without an index row — a crash between rename and
  /// journal append), and drops index rows whose file is gone. True when
  /// it adopted at least one orphan.
  bool reconcile_with_directory();
  /// Reads and validates one entry header; fills `meta` (last_use = 0).
  bool read_entry_meta(const std::string& key, Meta* meta) const;
  void write_index_snapshot();
  /// Evicts until one insert fits; under the held lease.
  void evict_for_insert();
  /// Unlinks + journals the removal of `key` (corrupt drop or eviction).
  void remove_entry(const std::string& key);

  std::string dir_;
  StoreOptions options_;
  std::unordered_map<std::string, Meta> index_;
  int lock_fd_ = -1;
  int journal_fd_ = -1;
  std::int64_t journal_offset_ = 0;  ///< journal bytes already applied
  std::int64_t next_seq_ = 1;
  std::int64_t epoch_ = 0;  ///< eviction epoch (max seen across daemons)
  std::int64_t tick_ = 0;   ///< process-local LRU clock
  std::int64_t mutations_ = 0;  ///< since the last INDEX snapshot
  std::int64_t evictions_ = 0;
  std::int64_t evicted_by_cost_ = 0;
  std::int64_t evicted_lru_ = 0;
  std::int64_t corrupt_dropped_ = 0;
  std::int64_t tmp_swept_ = 0;
  std::int64_t write_failures_ = 0;
  std::int64_t index_rebuilds_ = 0;
  std::string last_write_error_;
  bool open_failed_ = false;

  friend class StoreLease;
};

}  // namespace srra::service
