// Persistent result store for the srrad daemon (DESIGN.md §12): an on-disk
// cache of srra-query/v1 payloads keyed by the proto cache key. Layout:
//
//   <dir>/FORMAT            version stamp ("srrad-store/v1\n")
//   <dir>/k<key16>.entry    one entry per key:
//                           "srrad-entry/v1 <key16> <payload bytes>\n<payload>"
//
// Properties the tests pin (test_service.cc, test_fault.cc):
//  * crash safety — entries are written to a temp file and renamed into
//    place, so a torn write can only ever produce a *corrupt* entry, never
//    a half-visible one; every crash point of the write path (see
//    support/faultio.h) recovers to a store that answers byte-identically;
//  * corrupt tolerance — an entry that fails validation (bad stamp, wrong
//    key, short payload) reads as a miss and is dropped, never a crash;
//  * version migration — a FORMAT stamp from another version clears the
//    store (cold restart) instead of serving payloads of a stale schema;
//  * bounded size — at most max_entries entries; inserting past the cap
//    evicts the oldest entry (startup order = file mtime, then key);
//  * debris-free startup — stale *.tmp files left by a crash are swept
//    (and counted) when the store opens;
//  * graceful I/O degradation — a failed write (ENOSPC, EIO, torn disk)
//    reads as "not stored" with the errno kept for health reporting; a
//    store directory that cannot even be stamped degrades to disabled
//    instead of taking the daemon down.
//
// All raw I/O goes through support/faultio, so a fault plan can
// deterministically inject short reads, EINTR storms, ENOSPC/EIO and
// mid-write crashes (DESIGN.md §14).
//
// Not thread-safe: the server serializes all store access on its loop
// thread (compute runs on the pool, store I/O does not).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace srra::service {

inline constexpr const char kStoreFormat[] = "srrad-store/v1";
inline constexpr const char kEntryFormat[] = "srrad-entry/v1";

struct StoreOptions {
  /// Eviction cap, in entries.
  std::int64_t max_entries = 4096;
  /// Durability: fsync every entry file (and its directory after the
  /// rename) before reporting it stored. Off by default — the store is a
  /// cache, and a lost entry is only a recompute; turn it on when the
  /// store must survive power loss, not just process crashes.
  bool fsync = false;
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `dir`; empty `dir` disables
  /// persistence (every get misses, every put is a no-op). Throws
  /// srra::Error when the directory cannot be created or scanned; a
  /// directory that cannot be *stamped* (e.g. disk full) degrades to a
  /// disabled store instead (open_failed() reports why).
  explicit ResultStore(std::string dir, StoreOptions options = {});
  /// Convenience: options with just the eviction cap set.
  ResultStore(std::string dir, std::int64_t max_entries);

  bool enabled() const { return !dir_.empty(); }

  /// The payload stored under `key`, or nullopt. A corrupt entry is
  /// dropped (counted in corrupt_dropped()) and reported as a miss.
  std::optional<std::string> get(const std::string& key);

  /// Inserts or overwrites `key`, evicting the oldest entries beyond the
  /// cap. Returns false when the entry was NOT persisted — disabled store,
  /// or an I/O failure (a full disk must not take the daemon down; the
  /// server's health state machine watches this signal).
  bool put(const std::string& key, const std::string& payload);

  std::int64_t entries() const { return static_cast<std::int64_t>(keys_.size()); }
  std::int64_t evictions() const { return evictions_; }
  std::int64_t corrupt_dropped() const { return corrupt_dropped_; }
  /// Stale *.tmp crash leftovers removed by the startup sweep.
  std::int64_t tmp_swept() const { return tmp_swept_; }
  /// put() calls that failed on I/O (not counting disabled-store no-ops).
  std::int64_t write_failures() const { return write_failures_; }
  /// strerror of the most recent failed write, "" when none.
  const std::string& last_write_error() const { return last_write_error_; }
  /// True when the store directory existed but could not be stamped; the
  /// store then behaves as disabled.
  bool open_failed() const { return open_failed_; }

 private:
  std::string entry_path(const std::string& key) const;
  void drop(const std::string& key);

  std::string dir_;
  StoreOptions options_;
  std::unordered_set<std::string> keys_;
  std::vector<std::string> order_;  ///< eviction order, oldest first
  std::int64_t evictions_ = 0;
  std::int64_t corrupt_dropped_ = 0;
  std::int64_t tmp_swept_ = 0;
  std::int64_t write_failures_ = 0;
  std::string last_write_error_;
  bool open_failed_ = false;
};

}  // namespace srra::service
