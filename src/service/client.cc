#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "service/proto.h"
#include "support/error.h"
#include "support/faultio.h"
#include "support/rng.h"
#include "support/str.h"

namespace srra::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Absolute deadline for one logical operation; timeout_ms == 0 waits
/// forever.
Clock::time_point deadline_from(int timeout_ms) {
  if (timeout_ms <= 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

/// Remaining poll() timeout: -1 = forever, 0 = already expired.
int poll_timeout(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
          .count();
  if (left <= 0) return 0;
  return left > 60000 ? 60000 : static_cast<int>(left);
}

/// Waits for `events` (POLLIN/POLLOUT) on fd up to the deadline. Throws on
/// deadline expiry; returns normally when the fd is ready (or has an
/// error/hangup pending — the following I/O call reports it precisely).
void wait_ready(int fd, short events, Clock::time_point deadline, const char* doing) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int timeout = poll_timeout(deadline);
    check(timeout != 0, cat("srrad client deadline exceeded while ", doing));
    const int rc = ::poll(&p, 1, timeout);
    if (rc > 0) return;
    if (rc == 0) fail(cat("srrad client deadline exceeded while ", doing));
    if (errno == EINTR) continue;
    fail(cat("poll() while ", doing, ": ", std::strerror(errno)));
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  check(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
        cat("fcntl(O_NONBLOCK): ", std::strerror(errno)));
}

/// Non-blocking connect with a deadline: initiate, poll for writability,
/// then read SO_ERROR for the actual outcome. The socket stays non-blocking
/// for the client's deadline-driven send/receive loops. EINTR/EAGAIN from
/// connect() (real or injected) retry the initiation within the deadline.
int dial(int fd, const sockaddr* addr, socklen_t len, const ClientOptions& options,
         const std::string& where) {
  set_nonblocking(fd);
  const Clock::time_point deadline = deadline_from(options.connect_timeout_ms);
  for (;;) {
    if (faultio::connect(faultio::Site::kClientConnect, fd, addr, len) == 0) return fd;
    if (errno == EINPROGRESS || errno == EALREADY) break;
    if (errno == EISCONN) return fd;
    if (errno == EINTR || errno == EAGAIN) {
      const int timeout = poll_timeout(deadline);
      if (timeout == 0) {
        ::close(fd);
        fail(cat("cannot connect to srrad at ", where, ": deadline exceeded"));
      }
      continue;
    }
    const std::string why = std::strerror(errno);
    ::close(fd);
    fail(cat("cannot connect to srrad at ", where, ": ", why));
  }
  try {
    wait_ready(fd, POLLOUT, deadline, "connecting");
  } catch (const Error&) {
    ::close(fd);
    fail(cat("cannot connect to srrad at ", where, ": deadline exceeded"));
  }
  int err = 0;
  socklen_t err_len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) err = errno;
  if (err != 0) {
    ::close(fd);
    fail(cat("cannot connect to srrad at ", where, ": ", std::strerror(err)));
  }
  return fd;
}

int dial_unix(const std::string& path, const ClientOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  check(path.size() < sizeof addr.sun_path,
        cat("socket path too long (max ", sizeof addr.sun_path - 1, "): ", path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  check(fd >= 0, cat("socket(): ", std::strerror(errno)));
  return dial(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr, options,
              cat("'", path, "'"));
}

int dial_tcp(const std::string& host, int port, const ClientOptions& options) {
  check(port > 0 && port < 65536, cat("bad TCP port: ", port));
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &found);
  check(rc == 0 && found != nullptr,
        cat("cannot resolve '", host, "': ", ::gai_strerror(rc)));
  const int fd = ::socket(found->ai_family, found->ai_socktype, found->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(found);
    fail(cat("socket(): ", std::strerror(errno)));
  }
  try {
    dial(fd, found->ai_addr, found->ai_addrlen, options, cat(host, ":", port));
  } catch (...) {
    ::freeaddrinfo(found);
    throw;
  }
  ::freeaddrinfo(found);
  return fd;
}

}  // namespace

std::int64_t retry_delay_ms(int attempt, const ClientOptions& options) {
  if (options.backoff_ms <= 0) return 0;
  const int shift = attempt < 20 ? attempt : 20;  // cap the exponent
  // One jitter stream per attempt index: retry k's delay never depends on
  // how many draws earlier attempts made, so schedules are pinnable.
  Rng rng(options.backoff_seed ^
          (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt + 1)));
  const std::int64_t jitter =
      static_cast<std::int64_t>(rng.next() % static_cast<std::uint64_t>(options.backoff_ms));
  return (static_cast<std::int64_t>(options.backoff_ms) << shift) + jitter;
}

Client Client::connect_unix(const std::string& path, ClientOptions options) {
  Client client(dial_unix(path, options), options);
  client.endpoint_kind_ = 0;
  client.host_ = path;
  return client;
}

Client Client::connect_tcp(const std::string& host, int port, ClientOptions options) {
  Client client(dial_tcp(host, port, options), options);
  client.endpoint_kind_ = 1;
  client.host_ = host;
  client.port_ = port;
  return client;
}

Client::~Client() { close_fd(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      buffer_(std::move(other.buffer_)),
      retries_used_(other.retries_used_),
      endpoint_kind_(other.endpoint_kind_),
      host_(std::move(other.host_)),
      port_(other.port_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    buffer_ = std::move(other.buffer_);
    retries_used_ = other.retries_used_;
    endpoint_kind_ = other.endpoint_kind_;
    host_ = std::move(other.host_);
    port_ = other.port_;
  }
  return *this;
}

void Client::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::reconnect() {
  close_fd();
  buffer_.clear();  // a torn partial frame from the dead connection is garbage
  fd_ = endpoint_kind_ == 0 ? dial_unix(host_, options_)
                            : dial_tcp(host_, port_, options_);
}

void Client::send(const std::string& payload) {
  check(fd_ >= 0, "srrad client is not connected");
  std::ostringstream frame;
  write_frame(frame, payload);
  const std::string bytes = frame.str();
  const Clock::time_point deadline = deadline_from(options_.io_timeout_ms);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = faultio::send(faultio::Site::kClientWrite, fd_,
                                    bytes.data() + off, bytes.size() - off,
                                    MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLOUT, deadline, "sending a request");
      continue;
    }
    fail(cat("srrad connection lost while sending: ", std::strerror(errno)));
  }
}

std::string Client::receive() {
  check(fd_ >= 0, "srrad client is not connected");
  const Clock::time_point deadline = deadline_from(options_.io_timeout_ms);
  for (;;) {
    std::string payload;
    const int got = extract_frame(buffer_, payload);
    check(got >= 0, "malformed frame from srrad");
    if (got == 1) return payload;
    char chunk[65536];
    const ssize_t n =
        faultio::recv(faultio::Site::kClientRead, fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLIN, deadline, "waiting for a response");
      continue;
    }
    check(n != 0, "srrad closed the connection mid-response");
    fail(cat("srrad connection lost while receiving: ", std::strerror(errno)));
  }
}

std::string Client::roundtrip(const std::string& payload) {
  return roundtrip_batch({payload}).front();
}

std::vector<std::string> Client::roundtrip_batch(const std::vector<std::string>& payloads) {
  std::vector<std::string> responses;
  responses.reserve(payloads.size());
  int attempt = 0;
  for (;;) {
    try {
      if (fd_ < 0) reconnect();
      // Re-send only the unanswered suffix. Safe even when the daemon DID
      // process a lost-response request: queries are pure functions of their
      // cache key, so the re-send is answered from the store/cache — the
      // structural-hash key is the idempotency token (DESIGN.md §14).
      for (std::size_t i = responses.size(); i < payloads.size(); ++i) send(payloads[i]);
      while (responses.size() < payloads.size()) responses.push_back(receive());
      return responses;
    } catch (const Error&) {
      close_fd();
      if (attempt >= options_.retries) throw;
      const std::int64_t delay = retry_delay_ms(attempt, options_);
      ++attempt;
      ++retries_used_;
      if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

}  // namespace srra::service
