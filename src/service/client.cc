#include "service/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "service/proto.h"
#include "support/error.h"
#include "support/str.h"

namespace srra::service {

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  check(path.size() < sizeof addr.sun_path,
        cat("socket path too long (max ", sizeof addr.sun_path - 1, "): ", path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  check(fd >= 0, cat("socket(): ", std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    fail(cat("cannot connect to srrad at '", path, "': ", why));
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  check(port > 0 && port < 65536, cat("bad TCP port: ", port));
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &found);
  check(rc == 0 && found != nullptr,
        cat("cannot resolve '", host, "': ", ::gai_strerror(rc)));

  const int fd = ::socket(found->ai_family, found->ai_socktype, found->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(found);
    fail(cat("socket(): ", std::strerror(errno)));
  }
  if (::connect(fd, found->ai_addr, found->ai_addrlen) != 0) {
    const std::string why = std::strerror(errno);
    ::freeaddrinfo(found);
    ::close(fd);
    fail(cat("cannot connect to srrad at ", host, ":", port, ": ", why));
  }
  ::freeaddrinfo(found);
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::send(const std::string& payload) {
  std::ostringstream frame;
  write_frame(frame, payload);
  const std::string bytes = frame.str();
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail(cat("srrad connection lost while sending: ", std::strerror(errno)));
  }
}

std::string Client::receive() {
  for (;;) {
    std::string payload;
    const int got = extract_frame(buffer_, payload);
    check(got >= 0, "malformed frame from srrad");
    if (got == 1) return payload;
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    check(n != 0, "srrad closed the connection mid-response");
    fail(cat("srrad connection lost while receiving: ", std::strerror(errno)));
  }
}

std::string Client::roundtrip(const std::string& payload) {
  send(payload);
  return receive();
}

std::vector<std::string> Client::roundtrip_batch(const std::vector<std::string>& payloads) {
  for (const std::string& payload : payloads) send(payload);
  std::vector<std::string> responses;
  responses.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) responses.push_back(receive());
  return responses;
}

}  // namespace srra::service
