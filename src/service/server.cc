#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "dse/space.h"
#include "ir/parser.h"
#include "service/client.h"
#include "ir/transform.h"
#include "kernels/kernels.h"
#include "support/error.h"
#include "support/faultio.h"
#include "support/str.h"

namespace srra::service {

namespace {

// Canonical kernel-name key, matching the CLI's spelling rules: lower-case,
// '-' folded to '_', "mmt" aliased to "mat".
std::string canon_name(std::string_view name) {
  std::string key;
  for (const char c : name) {
    key += c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (key == "mmt") key = "mat";
  return key;
}

std::string join_int64(const std::vector<std::int64_t>& values) {
  std::string out;
  for (const std::int64_t v : values) {
    if (!out.empty()) out += ',';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

// (kernel text, transform encoding) resolved once and memoized across
// batches: display name, canonical transforms, the transformed kernel and
// its structural hash — everything the cache key and a compute job need.
struct Server::ResolvedVariant {
  std::string display_name;
  std::string transforms;  ///< canonical encoding ("" = none)
  std::uint64_t hash = 0;
  Kernel kernel;  ///< transformed
};

// Per-request batch state.
struct Server::Slot {
  Request request;
  bool ok = false;     ///< parsed and (for queries) resolved
  std::string error;   ///< parse/resolve diagnostic when !ok
  const ResolvedVariant* variant = nullptr;  ///< null for key-only probes
  Algorithm algorithm = Algorithm::kCpaRa;
  std::string algorithm_display;
  std::vector<std::int64_t> budgets;  ///< frontier-mode canonical axis
  std::string key;
  bool hit = false;
  std::string payload;  ///< served payload (cached)
  int job = -1;         ///< compute-job index, -1 = none
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      store_(options_.store_dir,
             StoreOptions{options_.store_max_entries, options_.store_fsync}),
      pool_(options_.jobs) {
  store_mode_ = store_.enabled() ? StoreMode::kOk : StoreMode::kDisabled;
}

Server::~Server() = default;

std::optional<std::string> Server::store_get(const std::string& key,
                                             std::int64_t* cost_out) {
  // Compute-only mode skips reads too: a disk that fails writes is not a
  // disk to trust for reads, and every skipped call is latency saved.
  if (store_mode_ != StoreMode::kOk) return std::nullopt;
  return store_.get(key, cost_out);
}

void Server::store_put(const std::string& key, const std::string& payload,
                       std::int64_t cost) {
  if (store_mode_ == StoreMode::kDisabled) return;
  if (store_mode_ == StoreMode::kDegraded) {
    if (++puts_since_probe_ < options_.store_probe_every) return;
    puts_since_probe_ = 0;
    ++stats_.store_probes;
  }
  if (store_.put(key, payload, cost)) {
    consecutive_store_failures_ = 0;
    store_mode_ = StoreMode::kOk;  // probe (or ordinary put) succeeded
    return;
  }
  ++stats_.store_put_failures;
  ++consecutive_store_failures_;
  if (store_mode_ == StoreMode::kOk && options_.store_failure_threshold > 0 &&
      consecutive_store_failures_ >= options_.store_failure_threshold) {
    store_mode_ = StoreMode::kDegraded;
    puts_since_probe_ = 0;
    ++stats_.store_degraded;
  }
}

std::string Server::health_response(const std::string& id) {
  const char* mode = store_mode_ == StoreMode::kOk         ? "ok"
                     : store_mode_ == StoreMode::kDegraded ? "degraded"
                                                           : "disabled";
  JsonValue health = JsonValue::make_object();
  health.set("store_mode", JsonValue::make_string(mode));
  health.set("store_entries", JsonValue::make_int(store_.entries()));
  health.set("store_evictions", JsonValue::make_int(store_.evictions()));
  health.set("evicted_by_cost", JsonValue::make_int(store_.evicted_by_cost()));
  health.set("evicted_lru", JsonValue::make_int(store_.evicted_lru()));
  health.set("index_rebuilds", JsonValue::make_int(store_.index_rebuilds()));
  health.set("store_corrupt_dropped", JsonValue::make_int(store_.corrupt_dropped()));
  health.set("store_tmp_swept", JsonValue::make_int(store_.tmp_swept()));
  health.set("store_put_failures", JsonValue::make_int(stats_.store_put_failures));
  health.set("store_consecutive_failures",
             JsonValue::make_int(consecutive_store_failures_));
  health.set("store_degraded", JsonValue::make_int(stats_.store_degraded));
  health.set("store_probes", JsonValue::make_int(stats_.store_probes));
  if (!store_.last_write_error().empty()) {
    health.set("store_last_error", JsonValue::make_string(store_.last_write_error()));
  }
  health.set("hits", JsonValue::make_int(stats_.hits));
  health.set("misses", JsonValue::make_int(stats_.misses));
  const std::int64_t looked_up = stats_.hits + stats_.misses;
  health.set("store_hit_rate",
             JsonValue::make_double(
                 looked_up == 0 ? 0.0
                                : static_cast<double>(stats_.hits) /
                                      static_cast<double>(looked_up)));
  health.set("computed", JsonValue::make_int(stats_.computed));
  health.set("coalesced", JsonValue::make_int(stats_.coalesced));
  health.set("errors", JsonValue::make_int(stats_.errors));
  health.set("deadline_closes", JsonValue::make_int(stats_.deadline_closes));
  health.set("fault_plan", JsonValue::make_bool(faultio::plan_installed()));
  return make_value_response(id, "health", health);
}

namespace {

/// Per-page payload byte budget of the pull op: several pages stream a big
/// store without ever approaching the 16 MiB frame cap.
constexpr std::int64_t kMaxPullBytes = std::int64_t{4} << 20;

}  // namespace

std::string Server::pull_response(const Request& request) {
  // Stored entries, highest recompute-cost-per-byte score first (ties:
  // oldest arrival, then key) — the same ordering eviction respects, so a
  // cold peer pulling a prefix adopts exactly the entries most worth
  // keeping. Paged by entry count (limit/offset) and a payload byte cap.
  std::vector<StoreEntryInfo> rows = store_.snapshot();
  std::sort(rows.begin(), rows.end(),
            [](const StoreEntryInfo& a, const StoreEntryInfo& b) {
              const double sa = static_cast<double>(a.cost) /
                                static_cast<double>(std::max<std::int64_t>(1, a.bytes));
              const double sb = static_cast<double>(b.cost) /
                                static_cast<double>(std::max<std::int64_t>(1, b.bytes));
              if (sa != sb) return sa > sb;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.key < b.key;
            });

  JsonValue page = JsonValue::make_object();
  page.set("total", JsonValue::make_int(static_cast<std::int64_t>(rows.size())));
  JsonValue entries = JsonValue::make_array();
  std::int64_t consumed = request.offset;
  std::int64_t page_bytes = 0;
  std::int64_t emitted = 0;
  for (std::size_t i = static_cast<std::size_t>(std::min<std::int64_t>(
           request.offset, static_cast<std::int64_t>(rows.size())));
       i < rows.size(); ++i) {
    if (emitted >= request.limit) break;
    // Always make progress: the first entry of a page ignores the byte cap.
    if (emitted > 0 && page_bytes + rows[i].bytes > kMaxPullBytes) break;
    ++consumed;
    std::optional<std::string> payload = store_.get(rows[i].key);
    if (!payload.has_value()) continue;  // evicted or corrupt since snapshot
    JsonValue entry = JsonValue::make_object();
    entry.set("key", JsonValue::make_string(rows[i].key));
    entry.set("cost", JsonValue::make_int(rows[i].cost));
    entry.set("hash", JsonValue::make_string(payload_hash(*payload)));
    // The payload travels as a JSON string: escaped on the wire, decoded
    // back to the exact stored bytes, so warmed answers stay byte-identical.
    entry.set("payload", JsonValue::make_string(*payload));
    page_bytes += static_cast<std::int64_t>(payload->size());
    ++emitted;
    entries.push_back(std::move(entry));
  }
  page.set("next_offset", JsonValue::make_int(consumed));
  page.set("entries", std::move(entries));
  return make_value_response(request.id, "pull", page);
}

int Server::warm_from_peer(const std::string& endpoint) {
  ClientOptions copts;
  copts.retries = 2;
  Client client = [&] {
    if (endpoint.find('/') != std::string::npos) {
      return Client::connect_unix(endpoint, copts);
    }
    const std::size_t colon = endpoint.rfind(':');
    check(colon != std::string::npos && colon + 1 < endpoint.size(),
          cat("bad --warm-from endpoint '", endpoint,
              "' (want a socket path or host:port)"));
    int port = 0;
    for (std::size_t i = colon + 1; i < endpoint.size(); ++i) {
      check(std::isdigit(static_cast<unsigned char>(endpoint[i])) != 0,
            cat("bad --warm-from port in '", endpoint, "'"));
      port = port * 10 + (endpoint[i] - '0');
      check(port < 65536, cat("bad --warm-from port in '", endpoint, "'"));
    }
    return Client::connect_tcp(endpoint.substr(0, colon), port, copts);
  }();

  int adopted = 0;
  std::int64_t offset = 0;
  for (;;) {
    const std::string response = client.roundtrip(
        cat("{\"op\": \"pull\", \"offset\": ", offset, ", \"limit\": 256}"));
    const JsonValue doc = parse_json(response);
    const JsonValue* ok = doc.find("ok");
    if (ok == nullptr || !ok->as_bool()) {
      const JsonValue* error = doc.find("error");
      fail(cat("peer rejected pull: ",
               error != nullptr && error->is_string() ? error->as_string()
                                                      : response));
    }
    const JsonValue* page = doc.find("pull");
    check(page != nullptr && page->is_object(),
          "peer pull response has no 'pull' member");
    const JsonValue* total = page->find("total");
    const JsonValue* next_offset = page->find("next_offset");
    const JsonValue* entries = page->find("entries");
    check(total != nullptr && next_offset != nullptr && entries != nullptr &&
              entries->is_array(),
          "peer pull page is missing total/next_offset/entries");
    for (const JsonValue& entry : entries->items()) {
      const JsonValue* key = entry.find("key");
      const JsonValue* cost = entry.find("cost");
      const JsonValue* hash = entry.find("hash");
      const JsonValue* payload = entry.find("payload");
      check(key != nullptr && cost != nullptr && hash != nullptr &&
                payload != nullptr,
            "peer pull entry is missing key/cost/hash/payload");
      // Integrity gate: adopt only bytes that hash to what the peer
      // claimed — a torn frame or buggy peer must not seed this store.
      if (payload_hash(payload->as_string()) != hash->as_string()) continue;
      cache_insert(key->as_string(), payload->as_string(), cost->as_int());
      store_put(key->as_string(), payload->as_string(), cost->as_int());
      ++adopted;
    }
    if (entries->items().empty() || next_offset->as_int() >= total->as_int() ||
        next_offset->as_int() <= offset) {
      break;
    }
    offset = next_offset->as_int();
  }
  return adopted;
}

const Server::ResolvedVariant& Server::resolve_variant(const std::string& kernel_field,
                                                       const std::string& transforms) {
  const std::string memo_key = cat(kernel_field, '\x1f', transforms);
  const auto it = variants_.find(memo_key);
  if (it != variants_.end()) return *it->second;

  auto variant = std::make_unique<ResolvedVariant>();

  // Inline DSL text (it contains '{'; builtin names never do) or a builtin
  // name. File paths are deliberately not accepted — clients resolve files
  // to DSL text before sending, the daemon never reads client paths.
  Kernel base;
  if (kernel_field.find('{') != std::string::npos) {
    base = parse_kernel(kernel_field);
    variant->display_name = base.name();
  } else {
    const std::string key = canon_name(kernel_field);
    bool found = false;
    if (key == "example") {
      base = kernels::paper_example();
      variant->display_name = "example";
      found = true;
    } else {
      for (kernels::NamedKernel& nk : kernels::all_kernels()) {
        if (canon_name(nk.name) == key) {
          base = std::move(nk.kernel);
          variant->display_name = nk.name;
          found = true;
          break;
        }
      }
    }
    check(found, cat("unknown kernel '", kernel_field,
                     "' (want a builtin name or inline kernel-DSL text)"));
  }

  std::vector<LoopTransform> sequence;
  if (!trim(transforms).empty()) sequence = parse_transforms(transforms);
  if (!sequence.empty()) {
    variant->kernel = transform_for_pipeline(
        base, srra::span<const LoopTransform>(sequence.data(), sequence.size()));
    variant->transforms =
        to_string(srra::span<const LoopTransform>(sequence.data(), sequence.size()));
  } else {
    variant->kernel = std::move(base);
  }
  variant->hash = structural_hash(variant->kernel);

  const ResolvedVariant& ref = *variant;
  variants_.emplace(memo_key, std::move(variant));
  return ref;
}

void Server::cache_insert(const std::string& key, const std::string& payload,
                          std::int64_t cost) {
  if (memory_cache_.count(key) != 0) return;
  // Same eviction policy as the persistent store: lowest recompute-cost-
  // per-byte score first, ties least-recently-used, then oldest arrival —
  // so an expensive frontier/BB-RA payload outlives cheap budget points in
  // memory too.
  while (static_cast<std::int64_t>(memory_cache_.size()) >=
             options_.memory_max_entries &&
         !memory_cache_.empty()) {
    auto victim = memory_cache_.begin();
    double victim_score = 0.0;
    bool first = true;
    for (auto it = memory_cache_.begin(); it != memory_cache_.end(); ++it) {
      const MemEntry& e = it->second;
      const double score =
          static_cast<double>(e.cost) /
          static_cast<double>(std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                                            e.payload.size())));
      const bool better =
          first || score < victim_score ||
          (score == victim_score &&
           (e.last_use < victim->second.last_use ||
            (e.last_use == victim->second.last_use && e.seq < victim->second.seq)));
      if (better) {
        victim = it;
        victim_score = score;
        first = false;
      }
    }
    memory_cache_.erase(victim);
  }
  MemEntry entry;
  entry.payload = payload;
  entry.cost = std::max<std::int64_t>(1, cost);
  entry.last_use = ++memory_tick_;
  entry.seq = ++memory_seq_;
  memory_cache_.emplace(key, std::move(entry));
}

std::vector<std::string> Server::handle_batch(const std::vector<std::string>& requests) {
  const auto t0 = std::chrono::steady_clock::now();

  // The variant memo hands out stable pointers for the duration of one
  // batch; trim it only between batches.
  if (variants_.size() > 512) variants_.clear();

  // Phase 1 — parse, resolve and key every request (serial; kernel
  // resolution is memoized, so repeated texts cost one lookup).
  std::vector<Slot> slots(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Slot& slot = slots[i];
    try {
      slot.request = parse_request(requests[i]);
      if (slot.request.op != RequestOp::kQuery) {
        slot.ok = true;
        continue;
      }
      if (!slot.request.key.empty()) {
        slot.key = slot.request.key;  // probe an exact key, nothing to resolve
        slot.ok = true;
        continue;
      }
      const ResolvedVariant& variant =
          resolve_variant(slot.request.kernel, slot.request.transforms);
      slot.variant = &variant;
      slot.algorithm = parse_algorithm(slot.request.algorithm);
      slot.algorithm_display = algorithm_name(slot.algorithm);

      // The key is computed over *canonical* spellings, so "cpa" and
      // "CPA-RA", or "8:32" and "8,16,32", share one cache entry.
      Request canonical = slot.request;
      canonical.transforms = variant.transforms;
      canonical.algorithm = slot.algorithm_display;
      if (slot.request.frontier) {
        slot.budgets = dse::parse_budget_spec(slot.request.budgets);
        canonical.budgets = join_int64(slot.budgets);
      }
      slot.key = cache_key(variant.hash, variant.display_name, canonical);
      slot.ok = true;
    } catch (const Error& e) {
      slot.error = e.what();
      // Salvage the id for the error response when the document itself was
      // well-formed JSON (validation failures usually are).
      try {
        const JsonValue doc = parse_json(requests[i]);
        if (const JsonValue* id = doc.find("id"); id && id->is_string()) {
          slot.request.id = id->as_string();
        }
      } catch (const Error&) {
      }
    }
  }

  // Phase 2 — look every query up against the cache state at batch start;
  // unique missing keys become compute jobs, duplicates coalesce.
  std::vector<int> job_slots;  // slot index that first demanded each job
  std::unordered_map<std::string, int> job_by_key;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    if (!slot.ok || slot.request.op != RequestOp::kQuery) continue;
    const auto mem = memory_cache_.find(slot.key);
    if (mem != memory_cache_.end()) {
      slot.hit = true;
      slot.payload = mem->second.payload;
      mem->second.last_use = ++memory_tick_;
      continue;
    }
    std::int64_t stored_cost = 1;
    if (std::optional<std::string> stored = store_get(slot.key, &stored_cost)) {
      slot.hit = true;
      slot.payload = *stored;
      // Promote with the persisted cost; already persistent.
      cache_insert(slot.key, slot.payload, stored_cost);
      continue;
    }
    if (slot.request.probe) continue;  // cache-only: report the miss
    const auto [it, inserted] =
        job_by_key.emplace(slot.key, static_cast<int>(job_slots.size()));
    if (inserted) {
      job_slots.push_back(static_cast<int>(i));
    } else {
      ++stats_.coalesced;
    }
    slot.job = it->second;
  }

  // Phase 3 — compute unique jobs on the pool, grouped by kernel variant:
  // jobs of one variant share one RefModel (and therefore one analysis
  // pass), exactly like dse/explore's per-variant sharding. Each job
  // writes only its own slot, so results are identical for any lane count.
  std::vector<std::vector<int>> groups;
  {
    std::unordered_map<const ResolvedVariant*, std::size_t> group_of;
    for (std::size_t j = 0; j < job_slots.size(); ++j) {
      const ResolvedVariant* variant = slots[static_cast<std::size_t>(job_slots[j])].variant;
      const auto [it, inserted] = group_of.emplace(variant, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(static_cast<int>(j));
    }
  }
  std::vector<std::string> computed(job_slots.size());
  std::vector<std::string> compute_errors(job_slots.size());
  pool_.parallel_for(static_cast<std::int64_t>(groups.size()), [&](std::int64_t g) {
    const std::vector<int>& jobs = groups[static_cast<std::size_t>(g)];
    const ResolvedVariant& variant =
        *slots[static_cast<std::size_t>(job_slots[static_cast<std::size_t>(jobs.front())])]
             .variant;
    const RefModel model(variant.kernel.clone());
    for (const int j : jobs) {
      const Slot& slot = slots[static_cast<std::size_t>(job_slots[static_cast<std::size_t>(j)])];
      try {
        QueryInput input;
        input.kernel_name = variant.display_name;
        input.transforms = variant.transforms;
        input.kernel_hash = variant.hash;
        input.algorithm = slot.algorithm;
        input.fetch = slot.request.fetch;
        input.frontier = slot.request.frontier;
        input.budget = slot.request.budget;
        input.budgets = slot.budgets;
        computed[static_cast<std::size_t>(j)] = query_payload(evaluate_query(model, input));
      } catch (const Error& e) {
        compute_errors[static_cast<std::size_t>(j)] = e.what();
      }
    }
  });

  // Phase 4 — publish computed payloads (serial, first-occurrence order,
  // so the store's eviction order is arrival-deterministic too). The
  // recompute cost estimate drives eviction in both cache layers: a
  // frontier sweep evaluates the whole budget axis and BB-RA certifies an
  // optimum, each roughly two orders of magnitude more work than one
  // single-budget heuristic point — those entries should be the last out.
  for (std::size_t j = 0; j < job_slots.size(); ++j) {
    if (!compute_errors[j].empty()) continue;
    const Slot& slot = slots[static_cast<std::size_t>(job_slots[j])];
    std::int64_t cost = 1;
    if (slot.request.frontier) cost *= 100;
    if (slot.algorithm == Algorithm::kBnbOptimal) cost *= 100;
    cache_insert(slot.key, computed[j], cost);
    store_put(slot.key, computed[j], cost);
    ++stats_.computed;
  }

  // Phase 5 — assemble responses in request order.
  const std::int64_t elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count();
  std::vector<std::string> responses(requests.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& slot = slots[i];
    ++stats_.requests;
    if (!slot.ok) {
      ++stats_.errors;
      responses[i] = make_error_response(slot.request.id, slot.error);
      continue;
    }
    if (slot.request.op == RequestOp::kStats) {
      JsonValue stats = JsonValue::make_object();
      stats.set("jobs", JsonValue::make_int(pool_.jobs()));
      stats.set("requests", JsonValue::make_int(stats_.requests));
      stats.set("queries", JsonValue::make_int(stats_.queries));
      stats.set("hits", JsonValue::make_int(stats_.hits));
      stats.set("misses", JsonValue::make_int(stats_.misses));
      stats.set("computed", JsonValue::make_int(stats_.computed));
      stats.set("coalesced", JsonValue::make_int(stats_.coalesced));
      stats.set("errors", JsonValue::make_int(stats_.errors));
      stats.set("store_enabled", JsonValue::make_bool(store_.enabled()));
      stats.set("store_entries", JsonValue::make_int(store_.entries()));
      stats.set("store_evictions", JsonValue::make_int(store_.evictions()));
      stats.set("store_corrupt_dropped", JsonValue::make_int(store_.corrupt_dropped()));
      responses[i] = make_value_response(slot.request.id, "stats", stats);
      continue;
    }
    if (slot.request.op == RequestOp::kHealth) {
      responses[i] = health_response(slot.request.id);
      continue;
    }
    if (slot.request.op == RequestOp::kPull) {
      responses[i] = pull_response(slot.request);
      continue;
    }
    if (slot.request.op == RequestOp::kShutdown) {
      shutdown_ = true;
      responses[i] =
          make_value_response(slot.request.id, "shutdown", JsonValue::make_bool(true));
      continue;
    }
    ++stats_.queries;
    if (slot.job >= 0 && !compute_errors[static_cast<std::size_t>(slot.job)].empty()) {
      ++stats_.errors;
      responses[i] = make_error_response(
          slot.request.id, compute_errors[static_cast<std::size_t>(slot.job)]);
      continue;
    }
    ResponseMeta meta;
    meta.id = slot.request.id;
    meta.key = slot.key;
    meta.elapsed_us = slot.request.timing ? elapsed_us : -1;
    if (slot.hit) {
      ++stats_.hits;
      meta.cache_status = "hit";
      responses[i] = make_query_response(meta, slot.payload);
    } else if (slot.job >= 0) {
      ++stats_.misses;
      meta.cache_status = "miss";
      responses[i] = make_query_response(meta, computed[static_cast<std::size_t>(slot.job)]);
    } else {
      ++stats_.misses;  // cache-only probe that found nothing
      meta.cache_status = "miss";
      responses[i] = make_query_response(meta, "");
    }
  }
  return responses;
}

std::string Server::handle(const std::string& request) {
  return handle_batch({request}).front();
}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  for (;;) {
    std::vector<std::string> batch;
    try {
      std::optional<std::string> first = read_frame(in);
      if (!first.has_value()) return 0;  // clean EOF
      batch.push_back(std::move(*first));
      // Greedily drain already-buffered frames into the same batch, so a
      // pipelining client gets request batching (and coalescing) for free.
      while (in.rdbuf() != nullptr && in.rdbuf()->in_avail() > 0) {
        std::optional<std::string> more = read_frame(in);
        if (!more.has_value()) break;
        batch.push_back(std::move(*more));
      }
    } catch (const Error& e) {
      // Framing is broken — there is no way to resync a length-prefixed
      // stream. Report and exit.
      write_frame(out, make_error_response("", e.what()));
      out.flush();
      return 2;
    }
    for (const std::string& response : handle_batch(batch)) {
      write_frame(out, response);
    }
    out.flush();
    if (shutdown_) return 0;
  }
}

// --------------------------------------------------------------- socket loop

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Sends all bytes on a (nonblocking) socket, poll-waiting on short writes.
// Goes through the fault shim so a plan can inject short writes, EINTR
// storms and torn frames; MSG_NOSIGNAL (not a SIGPIPE handler) keeps a
// peer that hung up mid-response from killing the daemon.
bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = faultio::send(faultio::Site::kServerWrite, fd,
                                    bytes.data() + off, bytes.size() - off,
                                    MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    return false;  // peer went away
  }
  return true;
}

struct Conn {
  int fd = -1;
  std::string buffer;
  bool dead = false;
  /// Set while `buffer` holds a *partial* frame: the moment the deadline
  /// clock started for this connection.
  std::chrono::steady_clock::time_point partial_since{};
  bool has_partial = false;
};

}  // namespace

int Server::serve_fd(int listen_fd) {
  std::vector<Conn> conns;
  const auto close_all = [&] {
    for (Conn& conn : conns) ::close(conn.fd);
    conns.clear();
    ::close(listen_fd);
  };

  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    for (const Conn& conn : conns) fds.push_back({conn.fd, POLLIN, 0});
    // Sleep forever unless some connection is sitting on a partial frame —
    // then wake in time to enforce its read deadline.
    int timeout_ms = -1;
    if (options_.read_deadline_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      for (const Conn& conn : conns) {
        if (!conn.has_partial) continue;
        const auto deadline =
            conn.partial_since + std::chrono::milliseconds(options_.read_deadline_ms);
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - now)
                              .count();
        const int bounded = left < 1 ? 1 : static_cast<int>(std::min<long long>(left, 60000));
        if (timeout_ms < 0 || bounded < timeout_ms) timeout_ms = bounded;
      }
    }
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      close_all();
      return 2;
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;
        if (!set_nonblocking(fd)) {
          ::close(fd);
          continue;
        }
        Conn conn;
        conn.fd = fd;
        conns.push_back(std::move(conn));
      }
    }

    // Drain every readable connection, then cut complete frames — one
    // readiness sweep builds one batch, which is what coalesces a
    // thundering herd of concurrent identical queries into one compute.
    const std::size_t polled = fds.size() - 1;
    for (std::size_t k = 0; k < polled; ++k) {
      Conn& conn = conns[k];
      if (!(fds[k + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      for (;;) {
        char chunk[65536];
        const ssize_t n =
            faultio::recv(faultio::Site::kServerRead, conn.fd, chunk, sizeof chunk, 0);
        if (n > 0) {
          conn.buffer.append(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        conn.dead = true;  // peer closed (n == 0) or hard error
        break;
      }
    }

    std::vector<std::pair<std::size_t, std::string>> batch;  // (conn, payload)
    for (std::size_t k = 0; k < conns.size(); ++k) {
      Conn& conn = conns[k];
      for (;;) {
        std::string payload;
        const int got = extract_frame(conn.buffer, payload);
        if (got == 0) break;
        if (got < 0) {
          send_all(conn.fd, [&] {
            std::ostringstream frame;
            write_frame(frame, make_error_response("", "malformed frame"));
            return frame.str();
          }());
          conn.dead = true;
          break;
        }
        batch.emplace_back(k, std::move(payload));
      }
      // Track whether leftover bytes form a partial frame; the deadline
      // clock starts when one appears and resets when it completes.
      if (conn.buffer.empty()) {
        conn.has_partial = false;
      } else if (!conn.has_partial) {
        conn.has_partial = true;
        conn.partial_since = std::chrono::steady_clock::now();
      }
    }

    // Read deadlines: a connection stuck mid-frame past the deadline gets
    // one error frame and the door — one stalled (or malicious) client
    // must not pin buffer memory or a server slot forever.
    if (options_.read_deadline_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      for (Conn& conn : conns) {
        if (conn.dead || !conn.has_partial) continue;
        if (now - conn.partial_since <
            std::chrono::milliseconds(options_.read_deadline_ms)) {
          continue;
        }
        std::ostringstream frame;
        write_frame(frame, make_error_response(
                               "", cat("read deadline exceeded after ",
                                       options_.read_deadline_ms,
                                       " ms with a partial frame buffered")));
        send_all(conn.fd, frame.str());
        conn.dead = true;
        ++stats_.deadline_closes;
      }
    }

    if (!batch.empty()) {
      std::vector<std::string> payloads;
      payloads.reserve(batch.size());
      for (auto& [k, payload] : batch) payloads.push_back(std::move(payload));
      const std::vector<std::string> responses = handle_batch(payloads);
      for (std::size_t b = 0; b < batch.size(); ++b) {
        Conn& conn = conns[batch[b].first];
        if (conn.dead) continue;
        std::ostringstream frame;
        write_frame(frame, responses[b]);
        if (!send_all(conn.fd, frame.str())) conn.dead = true;
      }
    }

    for (std::size_t k = conns.size(); k-- > 0;) {
      if (conns[k].dead) {
        ::close(conns[k].fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }

    if (shutdown_) {
      close_all();
      return 0;
    }
  }
}

int Server::serve_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  check(path.size() < sizeof addr.sun_path,
        cat("socket path too long (max ", sizeof addr.sun_path - 1, "): ", path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  check(fd >= 0, cat("socket(): ", std::strerror(errno)));
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    fail(cat("cannot listen on unix socket '", path, "': ", why));
  }
  const int code = serve_fd(fd);
  ::unlink(path.c_str());
  return code;
}

int Server::serve_tcp(int port) {
  check(port > 0 && port < 65536, cat("bad TCP port: ", port));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  check(fd >= 0, cat("socket(): ", std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    fail(cat("cannot listen on 127.0.0.1:", port, ": ", why));
  }
  return serve_fd(fd);
}

}  // namespace srra::service
