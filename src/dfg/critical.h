// Critical path and Critical Graph extraction (paper §3): the CG is the
// subgraph of the DFG formed by all maximal-latency source-to-sink paths.
#pragma once

#include <cstdint>
#include "support/span.h"
#include <vector>

#include "dfg/dfg.h"

namespace srra {

/// Critical-path summary under node weights.
struct CriticalGraph {
  std::int64_t length = 0;       ///< latency of the critical path(s)
  std::vector<bool> in_cg;       ///< node id -> lies on some critical path
  std::vector<std::int64_t> dist_from_source;  ///< inclusive longest distance
  std::vector<std::int64_t> dist_to_sink;      ///< inclusive longest distance

  /// Node ids in the CG, ascending.
  std::vector<int> cg_nodes() const;
};

/// Computes the critical graph for node weights `weights` (node-weighted
/// longest paths; ids are already topologically ordered).
CriticalGraph critical_graph(const Dfg& dfg, srra::span<const std::int64_t> weights);

/// Enumerates all source-to-sink paths of the critical graph (paths whose
/// every node is critical and whose total weight equals the CP length).
/// Bounded by `max_paths`; throws if the bound is exceeded.
std::vector<std::vector<int>> critical_paths(const Dfg& dfg, const CriticalGraph& cg,
                                             srra::span<const std::int64_t> weights,
                                             int max_paths = 1024);

}  // namespace srra
