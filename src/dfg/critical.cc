#include "dfg/critical.h"

#include <algorithm>

#include "support/error.h"

namespace srra {

std::vector<int> CriticalGraph::cg_nodes() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < in_cg.size(); ++i) {
    if (in_cg[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

CriticalGraph critical_graph(const Dfg& dfg, srra::span<const std::int64_t> weights) {
  const int n = dfg.node_count();
  check(static_cast<int>(weights.size()) == n, "weights size mismatch");

  CriticalGraph cg;
  cg.dist_from_source.assign(static_cast<std::size_t>(n), 0);
  cg.dist_to_sink.assign(static_cast<std::size_t>(n), 0);
  cg.in_cg.assign(static_cast<std::size_t>(n), false);

  // Node ids are topological by construction.
  for (int id = 0; id < n; ++id) {
    const DfgNode& node = dfg.node(id);
    std::int64_t best = 0;
    for (int p : node.preds) best = std::max(best, cg.dist_from_source[static_cast<std::size_t>(p)]);
    cg.dist_from_source[static_cast<std::size_t>(id)] = best + weights[static_cast<std::size_t>(id)];
  }
  for (int id = n - 1; id >= 0; --id) {
    const DfgNode& node = dfg.node(id);
    std::int64_t best = 0;
    for (int s : node.succs) best = std::max(best, cg.dist_to_sink[static_cast<std::size_t>(s)]);
    cg.dist_to_sink[static_cast<std::size_t>(id)] = best + weights[static_cast<std::size_t>(id)];
  }
  for (int id = 0; id < n; ++id) {
    cg.length = std::max(cg.length, cg.dist_from_source[static_cast<std::size_t>(id)]);
  }
  for (int id = 0; id < n; ++id) {
    const std::int64_t through = cg.dist_from_source[static_cast<std::size_t>(id)] +
                                 cg.dist_to_sink[static_cast<std::size_t>(id)] -
                                 weights[static_cast<std::size_t>(id)];
    cg.in_cg[static_cast<std::size_t>(id)] = through == cg.length;
  }
  return cg;
}

namespace {

void extend_paths(const Dfg& dfg, const CriticalGraph& cg,
                  srra::span<const std::int64_t> weights, std::vector<int>& prefix,
                  std::vector<std::vector<int>>& out, int max_paths) {
  const int id = prefix.back();
  const DfgNode& node = dfg.node(id);
  bool extended = false;
  for (int succ : node.succs) {
    if (!cg.in_cg[static_cast<std::size_t>(succ)]) continue;
    // Stay on a critical path: the successor must continue the longest chain.
    if (cg.dist_from_source[static_cast<std::size_t>(succ)] !=
        cg.dist_from_source[static_cast<std::size_t>(id)] + weights[static_cast<std::size_t>(succ)]) {
      continue;
    }
    if (cg.dist_to_sink[static_cast<std::size_t>(id)] !=
        cg.dist_to_sink[static_cast<std::size_t>(succ)] + weights[static_cast<std::size_t>(id)]) {
      continue;
    }
    prefix.push_back(succ);
    extend_paths(dfg, cg, weights, prefix, out, max_paths);
    prefix.pop_back();
    extended = true;
  }
  if (!extended) {
    check(static_cast<int>(out.size()) < max_paths, "too many critical paths");
    out.push_back(prefix);
  }
}

}  // namespace

std::vector<std::vector<int>> critical_paths(const Dfg& dfg, const CriticalGraph& cg,
                                             srra::span<const std::int64_t> weights,
                                             int max_paths) {
  std::vector<std::vector<int>> out;
  for (int id = 0; id < dfg.node_count(); ++id) {
    if (!cg.in_cg[static_cast<std::size_t>(id)]) continue;
    if (!dfg.node(id).preds.empty()) continue;
    // Source on a critical path: its inclusive distance equals its weight.
    if (cg.dist_from_source[static_cast<std::size_t>(id)] != weights[static_cast<std::size_t>(id)]) {
      continue;
    }
    std::vector<int> prefix{id};
    extend_paths(dfg, cg, weights, prefix, out, max_paths);
  }
  return out;
}

}  // namespace srra
