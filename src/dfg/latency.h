// Latency model for DFG nodes (paper §3: operation latencies are known; a
// memory access costs mu cycles from RAM and ~0 from a register).
#pragma once

#include <cstdint>
#include "support/span.h"
#include <vector>

#include "dfg/dfg.h"

namespace srra {

class RefModel;  // analysis/model.h

/// Datapath and memory latencies in cycles.
struct LatencyModel {
  std::int64_t mem_read = 1;   ///< RAM read (mu)
  std::int64_t mem_write = 1;  ///< RAM write (mu)
  std::int64_t add = 1;        ///< add/sub/compare/logic/shift/min/max
  std::int64_t mul = 2;
  std::int64_t div = 4;

  /// Latency of an op node.
  std::int64_t op_latency(const DfgNode& node) const;
};

/// Per-node weights for critical-path computation under a register
/// assignment: a reference node weighs its memory latency while the group
/// still performs steady-state RAM accesses, 0 once fully covered.
std::vector<std::int64_t> node_weights(const Dfg& dfg, const RefModel& model,
                                       srra::span<const std::int64_t> regs,
                                       const LatencyModel& latency);

}  // namespace srra
