#include "dfg/dfg.h"

#include <map>

#include "ir/printer.h"
#include "support/error.h"
#include "support/str.h"

namespace srra {

const DfgNode& Dfg::node(int id) const {
  check(id >= 0 && id < node_count(), "dfg node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

int Dfg::add_node(DfgNode node) {
  node.id = node_count();
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void Dfg::add_edge(int from, int to) {
  nodes_[static_cast<std::size_t>(from)].succs.push_back(to);
  nodes_[static_cast<std::size_t>(to)].preds.push_back(from);
}

namespace {

// Group lookup by access identity (the RefGroup list is authoritative).
int group_of(const std::vector<RefGroup>& groups, const ArrayAccess& access) {
  for (const RefGroup& g : groups) {
    if (g.access == access) return g.id;
  }
  fail("access has no reference group");
}

}  // namespace

int Dfg::build_expr(const Kernel& kernel, const std::vector<RefGroup>& groups,
                    const Expr& expr, int stmt_index, int& order) {
  switch (expr.kind()) {
    case ExprKind::kConst: {
      DfgNode n;
      n.kind = DfgNodeKind::kConst;
      n.const_value = expr.const_value();
      n.label = std::to_string(expr.const_value());
      return add_node(std::move(n));
    }
    case ExprKind::kLoopVar: {
      DfgNode n;
      n.kind = DfgNodeKind::kLoopVar;
      n.loop_level = expr.loop_level();
      n.label = kernel.loop(expr.loop_level()).var;
      return add_node(std::move(n));
    }
    case ExprKind::kRef: {
      const int group = group_of(groups, expr.access());
      const int my_order = order++;
      // Forwarded from an earlier same-iteration write?
      for (int id = node_count() - 1; id >= 0; --id) {
        const DfgNode& n = nodes_[static_cast<std::size_t>(id)];
        if (n.kind == DfgNodeKind::kWrite && n.group == group) {
          occurrence_node_[static_cast<std::size_t>(my_order)] = id;
          return id;
        }
      }
      // Reads of the same group share one read node (one latch).
      for (int id = 0; id < node_count(); ++id) {
        const DfgNode& n = nodes_[static_cast<std::size_t>(id)];
        if (n.kind == DfgNodeKind::kRead && n.group == group) {
          occurrence_node_[static_cast<std::size_t>(my_order)] = id;
          return id;
        }
      }
      DfgNode n;
      n.kind = DfgNodeKind::kRead;
      n.group = group;
      n.label = groups[static_cast<std::size_t>(group)].display;
      const int id = add_node(std::move(n));
      occurrence_node_[static_cast<std::size_t>(my_order)] = id;
      return id;
    }
    case ExprKind::kUnOp: {
      const int operand = build_expr(kernel, groups, expr.operand(), stmt_index, order);
      DfgNode n;
      n.kind = DfgNodeKind::kOp;
      n.stmt = stmt_index;
      n.is_unary = true;
      n.un_op = expr.un_op();
      n.label = cat("op", stmt_index, ":", un_op_name(expr.un_op()));
      const int id = add_node(std::move(n));
      add_edge(operand, id);
      return id;
    }
    case ExprKind::kBinOp: {
      const int lhs = build_expr(kernel, groups, expr.lhs(), stmt_index, order);
      const int rhs = build_expr(kernel, groups, expr.rhs(), stmt_index, order);
      DfgNode n;
      n.kind = DfgNodeKind::kOp;
      n.stmt = stmt_index;
      n.is_unary = false;
      n.bin_op = expr.bin_op();
      n.label = cat("op", stmt_index, ":", bin_op_name(expr.bin_op()));
      const int id = add_node(std::move(n));
      add_edge(lhs, id);
      add_edge(rhs, id);
      return id;
    }
  }
  fail("unknown ExprKind");
}

Dfg Dfg::build(const Kernel& kernel, const std::vector<RefGroup>& groups) {
  Dfg dfg;
  dfg.occurrence_node_.assign(static_cast<std::size_t>(total_occurrences(groups)), -1);
  int order = 0;
  for (int s = 0; s < static_cast<int>(kernel.body().size()); ++s) {
    const Stmt& stmt = kernel.body()[static_cast<std::size_t>(s)];
    const int rhs = dfg.build_expr(kernel, groups, *stmt.rhs, s, order);
    DfgNode w;
    w.kind = DfgNodeKind::kWrite;
    w.group = group_of(groups, stmt.lhs);
    w.stmt = s;
    w.label = groups[static_cast<std::size_t>(w.group)].display;
    const int write_id = dfg.add_node(std::move(w));
    dfg.add_edge(rhs, write_id);
    dfg.occurrence_node_[static_cast<std::size_t>(order++)] = write_id;
  }
  return dfg;
}

std::vector<int> Dfg::sources() const {
  std::vector<int> out;
  for (const DfgNode& n : nodes_) {
    if (n.preds.empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<int> Dfg::sinks() const {
  std::vector<int> out;
  for (const DfgNode& n : nodes_) {
    if (n.succs.empty()) out.push_back(n.id);
  }
  return out;
}

int Dfg::node_for_occurrence(int order) const {
  check(order >= 0 && order < static_cast<int>(occurrence_node_.size()),
        "occurrence order out of range");
  return occurrence_node_[static_cast<std::size_t>(order)];
}

int Dfg::consumer_op(int order) const {
  const DfgNode& n = node(node_for_occurrence(order));
  for (int succ : n.succs) {
    if (node(succ).kind == DfgNodeKind::kOp) return succ;
  }
  return -1;
}

std::vector<int> Dfg::ref_nodes(int group) const {
  std::vector<int> out;
  for (const DfgNode& n : nodes_) {
    if (n.is_ref() && n.group == group) out.push_back(n.id);
  }
  return out;
}

}  // namespace srra
