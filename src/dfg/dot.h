// Graphviz export of DFGs (and highlighted critical graphs) for
// documentation and debugging.
#pragma once

#include <string>

#include "dfg/critical.h"
#include "dfg/dfg.h"

namespace srra {

/// Renders the DFG in DOT syntax. When `cg` is non-null, critical nodes are
/// drawn bold/red.
std::string to_dot(const Dfg& dfg, const CriticalGraph* cg = nullptr);

}  // namespace srra
