// Data-flow graph of one loop-body iteration (paper §3, Figure 2(a)).
// Nodes: constant/loop-counter leaves, one read node per reference group
// that is read before any same-iteration write, one op node per expression
// operation, and one write node per statement LHS. A read that is forwarded
// from a same-iteration write (e.g. d[i][k] in the example) becomes an edge
// out of the write node — exactly the d[i][k] node the paper draws between
// op1 and op2.
#pragma once

#include <string>
#include <vector>

#include "analysis/refs.h"
#include "ir/kernel.h"

namespace srra {

/// Node kinds of the body DFG.
enum class DfgNodeKind { kConst, kLoopVar, kRead, kOp, kWrite };

/// One DFG node. Ids are assigned in construction order, which is a
/// topological order (operands are always created before their consumers).
struct DfgNode {
  int id = -1;
  DfgNodeKind kind = DfgNodeKind::kConst;
  int group = -1;   ///< reference group (kRead/kWrite)
  int stmt = -1;    ///< statement index (kOp/kWrite)
  bool is_unary = false;
  BinOpKind bin_op = BinOpKind::kAdd;  ///< valid when kind==kOp && !is_unary
  UnOpKind un_op = UnOpKind::kNeg;     ///< valid when kind==kOp && is_unary
  Value const_value = 0;               ///< valid when kind==kConst
  int loop_level = -1;                 ///< valid when kind==kLoopVar
  std::vector<int> preds;              ///< operand nodes, in operand order
  std::vector<int> succs;
  std::string label;                   ///< display, e.g. "b[k][j]" or "op1:*"

  bool is_ref() const { return kind == DfgNodeKind::kRead || kind == DfgNodeKind::kWrite; }
};

/// The body data-flow graph.
class Dfg {
 public:
  /// Builds the DFG for `kernel` using its reference groups.
  static Dfg build(const Kernel& kernel, const std::vector<RefGroup>& groups);

  const std::vector<DfgNode>& nodes() const { return nodes_; }
  const DfgNode& node(int id) const;
  int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Nodes with no predecessors / successors.
  std::vector<int> sources() const;
  std::vector<int> sinks() const;

  /// DFG node consumed by occurrence `order` of the iteration body (reads
  /// map to their read node, or to the forwarding write node; writes map to
  /// their write node).
  int node_for_occurrence(int order) const;

  /// The op node that consumes occurrence `order` (for a read occurrence):
  /// the unique successor op; -1 when the value flows directly to a write.
  int consumer_op(int order) const;

  /// Read/write nodes of a reference group (empty if the group only appears
  /// forwarded). A group has at most one read node and one write node.
  std::vector<int> ref_nodes(int group) const;

 private:
  int add_node(DfgNode node);
  void add_edge(int from, int to);
  int build_expr(const Kernel& kernel, const std::vector<RefGroup>& groups, const Expr& expr,
                 int stmt_index, int& order);

  std::vector<DfgNode> nodes_;
  std::vector<int> occurrence_node_;  // occurrence order -> node id
};

}  // namespace srra
