#include "dfg/latency.h"

#include "analysis/model.h"
#include "support/error.h"

namespace srra {

std::int64_t LatencyModel::op_latency(const DfgNode& node) const {
  check(node.kind == DfgNodeKind::kOp, "op_latency needs an op node");
  if (node.is_unary) return add;
  switch (node.bin_op) {
    case BinOpKind::kMul: return mul;
    case BinOpKind::kDiv: return div;
    default: return add;
  }
}

std::vector<std::int64_t> node_weights(const Dfg& dfg, const RefModel& model,
                                       srra::span<const std::int64_t> regs,
                                       const LatencyModel& latency) {
  check(static_cast<int>(regs.size()) == model.group_count(), "regs size mismatch");
  std::vector<std::int64_t> weights(static_cast<std::size_t>(dfg.node_count()), 0);
  for (const DfgNode& n : dfg.nodes()) {
    switch (n.kind) {
      case DfgNodeKind::kConst:
      case DfgNodeKind::kLoopVar:
        break;
      case DfgNodeKind::kOp:
        weights[static_cast<std::size_t>(n.id)] = latency.op_latency(n);
        break;
      case DfgNodeKind::kRead: {
        const GroupCounts& c = model.counts(n.group, regs[static_cast<std::size_t>(n.group)]);
        const bool ram = c.miss_reads + c.steady_fills > 0;
        weights[static_cast<std::size_t>(n.id)] = ram ? latency.mem_read : 0;
        break;
      }
      case DfgNodeKind::kWrite: {
        const GroupCounts& c = model.counts(n.group, regs[static_cast<std::size_t>(n.group)]);
        const bool ram = c.miss_writes + c.steady_flushes > 0;
        weights[static_cast<std::size_t>(n.id)] = ram ? latency.mem_write : 0;
        break;
      }
    }
  }
  return weights;
}

}  // namespace srra
