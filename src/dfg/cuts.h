// Cut enumeration over the Critical Graph (paper §3): a cut is a minimal
// set of reference nodes whose removal disconnects every source-to-sink
// path of the CG. CPA-RA allocates registers to the members of the cheapest
// cut, shortening every critical path at once.
#pragma once

#include <vector>

#include "dfg/critical.h"
#include "dfg/dfg.h"

namespace srra {

/// Bounds and filters for cut enumeration.
struct CutOptions {
  int max_paths = 1024;  ///< abort if the CG has more paths than this
  int max_cuts = 256;    ///< abort if more minimal cuts than this
  /// Node filter: only nodes with candidate[id] true may appear in cuts
  /// (empty = every reference node is a candidate).
  std::vector<bool> candidates;
};

/// Enumerates all minimal cuts of the critical graph, each sorted by node
/// id; the list is sorted by (size, lexicographic ids). Returns an empty
/// list when some CG path contains no candidate reference node (no cut can
/// disconnect it).
std::vector<std::vector<int>> find_cuts(const Dfg& dfg, const CriticalGraph& cg,
                                        srra::span<const std::int64_t> weights,
                                        const CutOptions& options = {});

}  // namespace srra
