#include "dfg/dot.h"

#include <sstream>

namespace srra {

namespace {

const char* shape(DfgNodeKind kind) {
  switch (kind) {
    case DfgNodeKind::kConst:
    case DfgNodeKind::kLoopVar:
      return "plaintext";
    case DfgNodeKind::kRead:
    case DfgNodeKind::kWrite:
      return "box";
    case DfgNodeKind::kOp:
      return "ellipse";
  }
  return "ellipse";
}

}  // namespace

std::string to_dot(const Dfg& dfg, const CriticalGraph* cg) {
  std::ostringstream os;
  os << "digraph dfg {\n  rankdir=TB;\n";
  for (const DfgNode& n : dfg.nodes()) {
    os << "  n" << n.id << " [label=\"" << n.label << "\", shape=" << shape(n.kind);
    if (cg != nullptr && cg->in_cg[static_cast<std::size_t>(n.id)]) {
      os << ", color=red, penwidth=2";
    }
    os << "];\n";
  }
  for (const DfgNode& n : dfg.nodes()) {
    for (int succ : n.succs) {
      os << "  n" << n.id << " -> n" << succ;
      if (cg != nullptr && cg->in_cg[static_cast<std::size_t>(n.id)] &&
          cg->in_cg[static_cast<std::size_t>(succ)]) {
        os << " [color=red, penwidth=2]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace srra
