#include "dfg/cuts.h"

#include <algorithm>
#include <set>

#include "support/error.h"

namespace srra {

namespace {

using Paths = std::vector<std::vector<int>>;

// Recursive minimal-hitting-set enumeration: branch on the candidates of the
// first path not yet hit.
void enumerate(const Paths& paths, const std::vector<bool>& is_candidate,
               std::set<int>& chosen, std::set<std::vector<int>>& out, int max_cuts) {
  // Find the first path not hit by `chosen`.
  const std::vector<int>* open = nullptr;
  for (const auto& path : paths) {
    bool hit = false;
    for (int id : path) {
      if (chosen.count(id) != 0) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      open = &path;
      break;
    }
  }
  if (open == nullptr) {
    check(static_cast<int>(out.size()) < max_cuts, "too many cuts");
    out.insert(std::vector<int>(chosen.begin(), chosen.end()));
    return;
  }
  for (int id : *open) {
    if (!is_candidate[static_cast<std::size_t>(id)]) continue;
    if (chosen.count(id) != 0) continue;
    chosen.insert(id);
    enumerate(paths, is_candidate, chosen, out, max_cuts);
    chosen.erase(id);
  }
}

bool hits_all(const Paths& paths, const std::vector<int>& cut, int skip) {
  for (const auto& path : paths) {
    bool hit = false;
    for (int id : path) {
      if (id == skip) continue;
      if (std::find(cut.begin(), cut.end(), id) != cut.end() && id != skip) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

}  // namespace

std::vector<std::vector<int>> find_cuts(const Dfg& dfg, const CriticalGraph& cg,
                                        srra::span<const std::int64_t> weights,
                                        const CutOptions& options) {
  const Paths all_paths = critical_paths(dfg, cg, weights, options.max_paths);

  // Restrict paths to candidate reference nodes.
  std::vector<bool> is_candidate(static_cast<std::size_t>(dfg.node_count()), false);
  for (const DfgNode& n : dfg.nodes()) {
    if (!n.is_ref()) continue;
    if (!options.candidates.empty() && !options.candidates[static_cast<std::size_t>(n.id)]) {
      continue;
    }
    is_candidate[static_cast<std::size_t>(n.id)] = true;
  }

  Paths ref_paths;
  bool any_skipped = false;
  for (const auto& path : all_paths) {
    std::vector<int> refs;
    for (int id : path) {
      if (is_candidate[static_cast<std::size_t>(id)]) refs.push_back(id);
    }
    if (refs.empty()) {
      // A critical path with no candidate reference (e.g. it runs through
      // loop counters or non-reducible accesses) puts a floor under the CP
      // length, but cutting the remaining paths still removes their memory
      // accesses — skip it rather than giving up (cf. CPA-RA on IMI).
      any_skipped = true;
      continue;
    }
    ref_paths.push_back(std::move(refs));
  }
  if (ref_paths.empty()) return {};
  (void)any_skipped;

  std::set<std::vector<int>> raw;
  std::set<int> chosen;
  enumerate(ref_paths, is_candidate, chosen, raw, options.max_cuts);

  // Keep only minimal sets (no member removable).
  std::vector<std::vector<int>> cuts;
  for (const auto& cut : raw) {
    bool minimal = true;
    for (int member : cut) {
      if (hits_all(ref_paths, cut, member)) {
        minimal = false;
        break;
      }
    }
    if (minimal) cuts.push_back(cut);
  }
  std::sort(cuts.begin(), cuts.end(), [](const std::vector<int>& a, const std::vector<int>& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return cuts;
}

}  // namespace srra
