// Whole-nest cycle estimation under a register allocation (DESIGN.md §6).
//
// Tmem — the paper's memory-cycle metric: the steady-state RAM accesses of
// every iteration, where reads feeding the *same operation* from *distinct*
// RAM blocks proceed concurrently and cost a single access latency (paper
// §3). This model reproduces Figure 2(c)'s 1800 / 1560 / 1184 exactly.
//
// Texec — execution cycles: every iteration is ASAP-scheduled (sched/
// schedule.h) under per-array port constraints plus a per-iteration control
// overhead; identical memory profiles are scheduled once and multiplied.
#pragma once

#include <cstdint>

#include "analysis/model.h"
#include "core/allocation.h"
#include "dfg/latency.h"

namespace srra {

/// Cycle model switches.
struct CycleOptions {
  LatencyModel latency;
  /// Operand fetches of one operation from distinct RAM blocks overlap
  /// (paper §3). Disable for the serial-accounting ablation (Ext. C).
  bool concurrent_operand_fetch = true;
  /// Paper-faithful execution model: the synthesized FSM serializes memory
  /// states with the computation, so an iteration costs
  /// overhead + compute critical path + that iteration's memory cycles.
  /// Disable to use the overlapped port-constrained list schedule instead
  /// (an idealized spatial datapath; ablation).
  bool fsm_serial_memory = true;
  /// Control (FSM) cycles per loop iteration.
  std::int64_t loop_overhead = 1;
  /// Evaluate with the reference full-iteration-space walk instead of the
  /// periodic collapse (DESIGN.md §8). Bit-identical results (cross-checked
  /// in test_periodic); the full walk also bypasses the per-model report
  /// memo, so it is the oracle for both layers.
  bool full_iteration_walk = false;
};

/// Cycle totals for a kernel under an allocation.
struct CycleReport {
  std::int64_t mem_cycles = 0;    ///< Tmem: memory cycles, steady accounting
  std::int64_t ram_accesses = 0;  ///< steady RAM accesses (serial count)
  std::int64_t exec_cycles = 0;   ///< Texec: scheduled cycles incl. overhead
  std::int64_t iterations = 0;

  /// Tmem normalized per outermost-loop iteration (the paper reports the
  /// worked example this way).
  double mem_cycles_per_outer(std::int64_t outer_trip) const {
    return outer_trip > 0 ? static_cast<double>(mem_cycles) / static_cast<double>(outer_trip)
                          : 0.0;
  }
};

/// Tmem / Texec for `allocation`. Evaluates the window policy over one
/// periodic instance and scales (O(window); see analysis/periodic.h), and
/// memoizes the report on `model` keyed by (per-group strategy vector,
/// options) — budget sweeps whose allocations saturate hit the memo. Set
/// options.full_iteration_walk for the whole-space reference walk.
CycleReport estimate_cycles(const RefModel& model, const Allocation& allocation,
                            const CycleOptions& options = {});

}  // namespace srra
