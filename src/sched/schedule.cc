#include "sched/schedule.h"

#include <algorithm>
#include <map>

#include "support/error.h"

namespace srra {

std::int64_t schedule_iteration(const Dfg& dfg, const IterationProfile& profile,
                                srra::span<const int> array_of_group,
                                const LatencyModel& latency) {
  check(static_cast<int>(profile.ram_access.size()) == dfg.node_count(),
        "profile size mismatch");

  std::vector<std::int64_t> finish(static_cast<std::size_t>(dfg.node_count()), 0);
  std::map<int, std::int64_t> port_free;  // RAM block -> next free cycle
  std::int64_t makespan = 0;

  // Node ids are topological; ASAP with port reservations.
  for (const DfgNode& n : dfg.nodes()) {
    std::int64_t ready = 0;
    for (int p : n.preds) ready = std::max(ready, finish[static_cast<std::size_t>(p)]);

    std::int64_t duration = 0;
    bool uses_port = false;
    int port = -1;
    switch (n.kind) {
      case DfgNodeKind::kConst:
      case DfgNodeKind::kLoopVar:
        break;
      case DfgNodeKind::kOp:
        duration = latency.op_latency(n);
        break;
      case DfgNodeKind::kRead:
        if (profile.ram_access[static_cast<std::size_t>(n.id)]) {
          duration = latency.mem_read;
          uses_port = true;
          port = array_of_group[static_cast<std::size_t>(n.group)];
        }
        break;
      case DfgNodeKind::kWrite:
        if (profile.ram_access[static_cast<std::size_t>(n.id)]) {
          duration = latency.mem_write;
          uses_port = true;
          port = array_of_group[static_cast<std::size_t>(n.group)];
        }
        break;
    }

    std::int64_t start = ready;
    if (uses_port) {
      auto& free_at = port_free[port];
      start = std::max(start, free_at);
      free_at = start + duration;
    }
    // A write's value is forwarded to same-iteration consumers as soon as it
    // is produced; the RAM store itself overlaps the remaining computation
    // and only extends the iteration via the makespan.
    const bool forwards_early = n.kind == DfgNodeKind::kWrite;
    finish[static_cast<std::size_t>(n.id)] = forwards_early ? ready : start + duration;
    makespan = std::max(makespan, start + duration);
  }

  // Boundary flushes (register spills between iterations) serialize on their
  // RAM ports after the body completes; conservatively add their cycles.
  return makespan + static_cast<std::int64_t>(profile.boundary_flushes) * latency.mem_write;
}

}  // namespace srra
