#include "sched/cycle_model.h"

#include <algorithm>
#include <map>

#include "analysis/periodic.h"
#include "analysis/walker.h"
#include "sched/schedule.h"
#include "support/error.h"

namespace srra {

namespace {

// Flat evaluation-ordered occurrence list.
struct FlatOccurrence {
  int group = 0;
  int stmt = 0;
  int order = 0;
  bool is_write = false;
};

std::vector<FlatOccurrence> flatten(const std::vector<RefGroup>& groups) {
  std::vector<FlatOccurrence> flat;
  for (const RefGroup& g : groups) {
    for (const RefOccurrence& occ : g.occurrences) {
      flat.push_back(FlatOccurrence{g.id, occ.stmt, occ.order, occ.is_write});
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const FlatOccurrence& a, const FlatOccurrence& b) { return a.order < b.order; });
  return flat;
}

// Hashed flat schedule cache: open addressing with linear probing over
// contiguous arrays. Keys are the iteration profile's RAM bits packed into
// words plus the boundary-flush count; values are schedule lengths. The
// tree-map this replaces paid a node allocation plus O(log n) vector<bool>
// comparisons per iteration of the nest.
class ScheduleCache {
 public:
  explicit ScheduleCache(int node_count)
      : words_(static_cast<std::size_t>(node_count + 63) / 64 + 1) {
    rehash(64);
  }

  // Packs `profile` into the reusable probe key.
  void pack(const IterationProfile& profile) {
    probe_.assign(words_, 0);
    for (std::size_t n = 0; n < profile.ram_access.size(); ++n) {
      if (profile.ram_access[n]) probe_[n / 64] |= std::uint64_t{1} << (n % 64);
    }
    probe_.back() = static_cast<std::uint64_t>(profile.boundary_flushes);
  }

  /// Looks up the packed probe key; false on miss.
  bool lookup(std::int64_t& out) const {
    std::size_t slot = hash(probe_) & mask_;
    while (used_[slot]) {
      if (key_equals(slot)) {
        out = values_[slot];
        return true;
      }
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  /// Inserts the packed probe key (must not be present).
  void insert(std::int64_t value) {
    if ((size_ + 1) * 10 >= capacity() * 7) rehash(capacity() * 2);
    insert_key(probe_, value);
    ++size_;
  }

 private:
  std::size_t capacity() const { return mask_ + 1; }

  static std::uint64_t hash(const std::vector<std::uint64_t>& key) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the words
    for (const std::uint64_t w : key) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return h;
  }

  bool key_equals(std::size_t slot) const {
    const std::uint64_t* stored = &keys_[slot * words_];
    for (std::size_t w = 0; w < words_; ++w) {
      if (stored[w] != probe_[w]) return false;
    }
    return true;
  }

  void insert_key(const std::vector<std::uint64_t>& key, std::int64_t value) {
    std::size_t slot = hash(key) & mask_;
    while (used_[slot]) slot = (slot + 1) & mask_;
    std::copy(key.begin(), key.end(), keys_.begin() + static_cast<std::ptrdiff_t>(slot * words_));
    values_[slot] = value;
    used_[slot] = 1;
  }

  void rehash(std::size_t new_capacity) {
    const std::vector<std::uint64_t> old_keys = std::move(keys_);
    const std::vector<std::int64_t> old_values = std::move(values_);
    const std::vector<std::uint8_t> old_used = std::move(used_);
    const std::size_t old_capacity = old_used.size();
    mask_ = new_capacity - 1;
    keys_.assign(new_capacity * words_, 0);
    values_.assign(new_capacity, 0);
    used_.assign(new_capacity, 0);
    std::vector<std::uint64_t> key(words_);
    for (std::size_t slot = 0; slot < old_capacity; ++slot) {
      if (!old_used[slot]) continue;
      std::copy(old_keys.begin() + static_cast<std::ptrdiff_t>(slot * words_),
                old_keys.begin() + static_cast<std::ptrdiff_t>((slot + 1) * words_),
                key.begin());
      insert_key(key, old_values[slot]);
    }
  }

  std::size_t words_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> probe_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::int64_t> values_;
  std::vector<std::uint8_t> used_;
};

// Shared per-iteration evaluation machinery of the reference and collapsed
// walks: classifies one iteration's accesses through the window trackers
// and charges its memory and schedule cycles to the report.
class CycleWalker {
 public:
  CycleWalker(const RefModel& model, const std::vector<RefStrategy>& strategies,
              const CycleOptions& options)
      : kernel_(model.kernel()),
        groups_(model.groups()),
        options_(options),
        dfg_(Dfg::build(kernel_, groups_)),
        cache_(dfg_.node_count()) {
    array_of_group_.resize(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      array_of_group_[g] = groups_[g].access.array_id;
    }
    trackers_.reserve(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      trackers_.emplace_back(kernel_, groups_[g], strategies[g]);
    }
    flat_ = flatten(groups_);
    profile_.ram_access.assign(static_cast<std::size_t>(dfg_.node_count()), false);
    sink_ = EventSink(on_event_fn_);
    report_.iterations = kernel_.iteration_count();
  }

  /// Runs one iteration of the nest and charges it to the report.
  void run_iteration(srra::span<const std::int64_t> iter) {
    reads_.clear();
    writes_ = 0;
    flushes_ = 0;
    std::fill(profile_.ram_access.begin(), profile_.ram_access.end(), false);

    for (WindowTracker& t : trackers_) t.begin_iteration(iter, sink_);
    for (const FlatOccurrence& occ : flat_) {
      trackers_[static_cast<std::size_t>(occ.group)].on_access(iter, occ.is_write, occ.stmt,
                                                               occ.order, sink_);
    }
    charge();
  }

  /// Trailing flushes: every event is back-peeled (never steady), so this
  /// cannot change the report — called for model fidelity only.
  void finish() {
    for (WindowTracker& t : trackers_) t.finish(sink_);
  }

  std::vector<WindowTracker>& trackers() { return trackers_; }
  CycleReport& report() { return report_; }

 private:
  void on_event(const AccessEvent& e) {
    if (!is_ram_access(e.kind) || !e.steady) return;
    ++report_.ram_accesses;
    if (e.order < 0) {  // boundary flush
      ++flushes_;
      return;
    }
    const int node = dfg_.node_for_occurrence(e.order);
    switch (e.kind) {
      case AccessKind::kMissRead:
      case AccessKind::kFill:
        reads_.push_back(PendingRead{dfg_.consumer_op(e.order),
                                     array_of_group_[static_cast<std::size_t>(e.group)]});
        profile_.ram_access[static_cast<std::size_t>(node)] = true;
        break;
      case AccessKind::kMissWrite:
      case AccessKind::kFlush:
        ++writes_;
        profile_.ram_access[static_cast<std::size_t>(node)] = true;
        break;
      default:
        break;
    }
  }

  void charge() {
    const LatencyModel& lat = options_.latency;

    // ---- Tmem ----
    std::int64_t read_cycles = 0;
    if (options_.concurrent_operand_fetch) {
      // Group by consuming op; within a group, fetches from distinct RAM
      // blocks overlap, same-block fetches serialize. The handful of reads
      // per iteration is sorted into (op, array) runs in a reused scratch
      // vector — this used to build two levels of std::map per iteration
      // of the nest.
      std::int64_t solo = 0;
      op_reads_.clear();
      for (const PendingRead& r : reads_) {
        if (r.consumer < 0) {
          ++solo;
        } else {
          op_reads_.emplace_back(r.consumer, r.array);
        }
      }
      std::sort(op_reads_.begin(), op_reads_.end());
      std::size_t i = 0;
      while (i < op_reads_.size()) {
        const int op = op_reads_[i].first;
        std::int64_t worst = 0;
        while (i < op_reads_.size() && op_reads_[i].first == op) {
          const int array = op_reads_[i].second;
          std::int64_t count = 0;
          while (i < op_reads_.size() && op_reads_[i].first == op &&
                 op_reads_[i].second == array) {
            ++count;
            ++i;
          }
          worst = std::max(worst, count);
        }
        read_cycles += worst * lat.mem_read;
      }
      read_cycles += solo * lat.mem_read;
    } else {
      read_cycles = static_cast<std::int64_t>(reads_.size()) * lat.mem_read;
    }
    const std::int64_t iter_mem =
        read_cycles + writes_ * lat.mem_write + flushes_ * lat.mem_write;
    report_.mem_cycles += iter_mem;

    // ---- Texec ----
    std::int64_t length = 0;
    if (options_.fsm_serial_memory) {
      // Monet-style FSM: memory states serialize with the datapath; the
      // compute critical path is iteration-invariant and cached.
      if (compute_only_length_ < 0) {
        IterationProfile compute_profile;
        compute_profile.ram_access.assign(static_cast<std::size_t>(dfg_.node_count()), false);
        compute_only_length_ =
            schedule_iteration(dfg_, compute_profile, array_of_group_, lat);
      }
      length = compute_only_length_ + iter_mem;
    } else {
      profile_.boundary_flushes = static_cast<int>(flushes_);
      cache_.pack(profile_);
      if (!cache_.lookup(length)) {
        length = schedule_iteration(dfg_, profile_, array_of_group_, lat);
        cache_.insert(length);
      }
    }
    report_.exec_cycles += length + options_.loop_overhead;
  }

  struct PendingRead {
    int consumer = -1;  // op node id, -1 = direct-to-write copy
    int array = -1;
  };

  // Named callable the non-owning sink_ references (never moved: the
  // walker is constructed in place and lives for the whole walk).
  struct OnEventFn {
    CycleWalker* walker;
    void operator()(const AccessEvent& e) const { walker->on_event(e); }
  };

  const Kernel& kernel_;
  const std::vector<RefGroup>& groups_;
  const CycleOptions& options_;
  const Dfg dfg_;
  ScheduleCache cache_;
  std::vector<int> array_of_group_;
  std::vector<WindowTracker> trackers_;
  std::vector<FlatOccurrence> flat_;
  OnEventFn on_event_fn_{this};
  EventSink sink_;

  // Per-iteration scratch.
  std::vector<PendingRead> reads_;
  std::vector<std::pair<int, int>> op_reads_;  // (consumer op, array) runs
  std::int64_t writes_ = 0;
  std::int64_t flushes_ = 0;
  IterationProfile profile_;
  std::int64_t compute_only_length_ = -1;
  CycleReport report_;
};

// Reference walk: the whole iteration space, one iteration at a time. In
// the original formulation finish() ran before the last iteration's charge;
// its events are all back-peeled and dropped by the sink, so charging the
// last iteration first is equivalent.
CycleReport walk_full(CycleWalker& walker, const Kernel& kernel) {
  std::vector<std::int64_t> iter = first_iteration(kernel);
  do {
    walker.run_iteration(iter);
  } while (next_iteration(kernel, iter));
  walker.finish();
  return walker.report();
}

// Collapsed walk (DESIGN.md §8): steady-state detection applied at *every*
// loop level at and below the outermost carrying one, with the loops above
// it scaled as identical instances. Exact for the same reason the access
// counters collapse: element indices are affine, so advancing any single
// loop by one step shifts every group's elements by a constant — once the
// trackers' combined normalized state repeats across two successive values
// of a loop (its first and last values walked concretely for the peeled
// fill/flush accounting), the remaining middle values replay the same
// charges translated. Collapsing recursively level by level makes the walk
// cost a product of per-level repeat-detection lengths (typically 3-4)
// instead of the full sub-space below the carrying level.
class CollapsedWalk {
 public:
  CollapsedWalk(CycleWalker& walker, const RefModel& model, int top_level)
      : walker_(walker), kernel_(model.kernel()), top_level_(top_level) {
    const std::size_t groups = model.groups().size();
    deltas_.resize(static_cast<std::size_t>(kernel_.depth()));
    collapsible_.assign(static_cast<std::size_t>(kernel_.depth()), true);
    for (int l = top_level_; l < kernel_.depth(); ++l) {
      deltas_[static_cast<std::size_t>(l)].resize(groups);
      for (std::size_t g = 0; g < groups; ++g) {
        deltas_[static_cast<std::size_t>(l)][g] =
            element_shift_per_step(kernel_, model.groups()[g], l);
        // A group mid-carry at this level (its carrying loop is outer) pins
        // a fixed first-touch window: its state can only repeat under
        // translation when the level does not move its elements at all.
        // One moving mid-carry group makes detection at this level
        // impossible, so don't pay for signatures there.
        const RefStrategy& s = walker.trackers()[g].strategy();
        if (s.holds() && s.carry_level < l &&
            deltas_[static_cast<std::size_t>(l)][g] != 0) {
          collapsible_[static_cast<std::size_t>(l)] = false;
        }
      }
    }
    iter_ = first_iteration(kernel_);
  }

  void run() { walk_level(top_level_); }

 private:
  void walk_level(int level) {
    if (level == kernel_.depth()) {
      walker_.run_iteration(iter_);
      return;
    }
    const Loop& loop = kernel_.loop(level);
    const std::int64_t trip = loop.trip_count();
    if (trip <= 3 || !collapsible_[static_cast<std::size_t>(level)]) {
      // Nothing to gain: either detection could at best elide zero middle
      // values, or a moving mid-carry window makes a repeat impossible —
      // the signature bookkeeping would be pure overhead.
      for (std::int64_t k = 0; k < trip; ++k) {
        iter_[static_cast<std::size_t>(level)] = loop.value_at(k);
        walk_level(level + 1);
      }
      return;
    }
    CycleReport& report = walker_.report();
    const std::vector<std::int64_t>& deltas = deltas_[static_cast<std::size_t>(level)];
    // This level's per-value charges, stashed by the walk for the
    // fast-forward (locals, so every recursion depth has its own).
    std::int64_t mem_k = 0;
    std::int64_t exec_k = 0;
    std::int64_t ram_k = 0;
    collapse_carry_loop(
        trip,
        [&](std::int64_t k) {
          iter_[static_cast<std::size_t>(level)] = loop.value_at(k);
          const std::int64_t mem0 = report.mem_cycles;
          const std::int64_t exec0 = report.exec_cycles;
          const std::int64_t ram0 = report.ram_accesses;
          walk_level(level + 1);
          mem_k = report.mem_cycles - mem0;
          exec_k = report.exec_cycles - exec0;
          ram_k = report.ram_accesses - ram0;
        },
        [&](std::int64_t k) {
          // Joint strict state signature of every tracker, normalized by
          // this level's per-step element shifts (walker.h): equality
          // certifies that the remaining middle values replay translated.
          std::vector<std::int64_t> state;
          for (std::size_t g = 0; g < walker_.trackers().size(); ++g) {
            walker_.trackers()[g].append_state_signature(k * deltas[g], state);
          }
          return state;
        },
        [&](std::int64_t, std::int64_t repeats) {
          report.mem_cycles += mem_k * repeats;
          report.exec_cycles += exec_k * repeats;
          report.ram_accesses += ram_k * repeats;
          for (std::size_t g = 0; g < walker_.trackers().size(); ++g) {
            walker_.trackers()[g].translate_held(repeats * deltas[g]);
          }
        });
  }

  CycleWalker& walker_;
  const Kernel& kernel_;
  int top_level_;
  std::vector<std::vector<std::int64_t>> deltas_;  ///< per level: per-group shift
  std::vector<bool> collapsible_;  ///< per level: repeat detection can fire
  std::vector<std::int64_t> iter_;
};

CycleReport walk_collapsed(CycleWalker& walker, const RefModel& model,
                           const std::vector<RefStrategy>& strategies) {
  const Kernel& kernel = model.kernel();
  for (int l = 0; l < kernel.depth(); ++l) {
    if (kernel.loop(l).trip_count() <= 0) return walk_full(walker, kernel);
  }

  // The instance-scaling level: every group's stream repeats identically
  // across instances of the loops above its own carrying level, hence
  // across instances of the loops above the outermost one. Groups that
  // hold nothing repeat every iteration and do not constrain the level.
  int level = kernel.depth();
  for (const RefStrategy& s : strategies) {
    if (s.holds()) level = std::min(level, s.carry_level);
  }
  std::int64_t instances = 1;
  for (int l = 0; l < level; ++l) instances *= kernel.loop(l).trip_count();

  CycleReport& report = walker.report();

  if (level == kernel.depth()) {
    // No cross-iteration state anywhere: one iteration stands for all.
    std::vector<std::int64_t> iter = first_iteration(kernel);
    walker.run_iteration(iter);
  } else {
    CollapsedWalk(walker, model, level).run();
  }
  walker.finish();

  report.mem_cycles *= instances;
  report.exec_cycles *= instances;
  report.ram_accesses *= instances;
  return report;
}

// Memo key: every cycle-model knob plus the per-group strategies — the
// only inputs the report depends on besides the model itself.
std::vector<std::int64_t> memo_key(const std::vector<RefStrategy>& strategies,
                                   const CycleOptions& options) {
  std::vector<std::int64_t> key;
  key.reserve(8 + 2 * strategies.size());
  key.push_back(options.concurrent_operand_fetch ? 1 : 0);
  key.push_back(options.fsm_serial_memory ? 1 : 0);
  key.push_back(options.loop_overhead);
  key.push_back(options.latency.mem_read);
  key.push_back(options.latency.mem_write);
  key.push_back(options.latency.add);
  key.push_back(options.latency.mul);
  key.push_back(options.latency.div);
  for (const RefStrategy& s : strategies) {
    key.push_back(s.carry_level);
    key.push_back(s.held_limit);
  }
  return key;
}

}  // namespace

CycleReport estimate_cycles(const RefModel& model, const Allocation& allocation,
                            const CycleOptions& options) {
  check(static_cast<int>(allocation.regs.size()) == model.group_count(),
        "allocation size mismatch");

  // The report is a function of the chosen strategies, not the raw register
  // counts: saturated budgets collapse onto one memo entry. The batched
  // lookup takes the model's cache lock once for the whole vector (or none
  // at all when a published access curve covers the allocation).
  const std::vector<RefStrategy> strategies = model.strategies(allocation.regs);

  const bool collapse = !options.full_iteration_walk;
  std::vector<std::int64_t> key;
  if (collapse) {
    key = memo_key(strategies, options);
    std::vector<std::int64_t> record;
    if (model.cycle_memo().lookup(key, record) && record.size() == 4) {
      CycleReport report;
      report.mem_cycles = record[0];
      report.ram_accesses = record[1];
      report.exec_cycles = record[2];
      report.iterations = record[3];
      return report;
    }
  }

  CycleWalker walker(model, strategies, options);
  const CycleReport report = collapse ? walk_collapsed(walker, model, strategies)
                                      : walk_full(walker, model.kernel());
  if (collapse) {
    model.cycle_memo().store(
        key, {report.mem_cycles, report.ram_accesses, report.exec_cycles, report.iterations});
  }
  return report;
}

}  // namespace srra
