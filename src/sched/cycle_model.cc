#include "sched/cycle_model.h"

#include <algorithm>
#include <map>

#include "analysis/walker.h"
#include "sched/schedule.h"
#include "support/error.h"

namespace srra {

namespace {

// Flat evaluation-ordered occurrence list.
struct FlatOccurrence {
  int group = 0;
  int stmt = 0;
  int order = 0;
  bool is_write = false;
};

std::vector<FlatOccurrence> flatten(const std::vector<RefGroup>& groups) {
  std::vector<FlatOccurrence> flat;
  for (const RefGroup& g : groups) {
    for (const RefOccurrence& occ : g.occurrences) {
      flat.push_back(FlatOccurrence{g.id, occ.stmt, occ.order, occ.is_write});
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const FlatOccurrence& a, const FlatOccurrence& b) { return a.order < b.order; });
  return flat;
}

}  // namespace

CycleReport estimate_cycles(const RefModel& model, const Allocation& allocation,
                            const CycleOptions& options) {
  const Kernel& kernel = model.kernel();
  const auto& groups = model.groups();
  check(static_cast<int>(allocation.regs.size()) == model.group_count(),
        "allocation size mismatch");

  const Dfg dfg = Dfg::build(kernel, groups);
  const LatencyModel& lat = options.latency;

  std::vector<int> array_of_group(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    array_of_group[g] = groups[g].access.array_id;
  }

  std::vector<WindowTracker> trackers;
  trackers.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    trackers.emplace_back(kernel, groups[g],
                          select_strategy(kernel, groups[g], model.reuse()[g],
                                          allocation.regs[g], model.options()));
  }
  const std::vector<FlatOccurrence> flat = flatten(groups);

  CycleReport report;
  report.iterations = kernel.iteration_count();

  // Per-iteration scratch: steady RAM reads grouped by consuming op, steady
  // writes, boundary flushes, and the schedule profile.
  struct PendingRead {
    int consumer = -1;  // op node id, -1 = direct-to-write copy
    int array = -1;
  };
  std::vector<PendingRead> reads;
  std::int64_t writes = 0;
  std::int64_t flushes = 0;
  IterationProfile profile;
  profile.ram_access.assign(static_cast<std::size_t>(dfg.node_count()), false);
  std::map<IterationProfile, std::int64_t> schedule_cache;
  std::int64_t compute_only_length = -1;

  const EventSink sink = [&](const AccessEvent& e) {
    if (!is_ram_access(e.kind) || !e.steady) return;
    ++report.ram_accesses;
    if (e.order < 0) {  // boundary flush
      ++flushes;
      return;
    }
    const int node = dfg.node_for_occurrence(e.order);
    switch (e.kind) {
      case AccessKind::kMissRead:
      case AccessKind::kFill:
        reads.push_back(PendingRead{dfg.consumer_op(e.order),
                                    array_of_group[static_cast<std::size_t>(e.group)]});
        profile.ram_access[static_cast<std::size_t>(node)] = true;
        break;
      case AccessKind::kMissWrite:
      case AccessKind::kFlush:
        ++writes;
        profile.ram_access[static_cast<std::size_t>(node)] = true;
        break;
      default:
        break;
    }
  };

  std::vector<std::int64_t> iter = first_iteration(kernel);
  bool more = true;
  while (more) {
    reads.clear();
    writes = 0;
    flushes = 0;
    std::fill(profile.ram_access.begin(), profile.ram_access.end(), false);

    for (WindowTracker& t : trackers) t.begin_iteration(iter, sink);
    for (const FlatOccurrence& occ : flat) {
      trackers[static_cast<std::size_t>(occ.group)].on_access(iter, occ.is_write, occ.stmt,
                                                              occ.order, sink);
    }
    more = next_iteration(kernel, iter);
    if (!more) {
      for (WindowTracker& t : trackers) t.finish(sink);
    }

    // ---- Tmem ----
    std::int64_t read_cycles = 0;
    if (options.concurrent_operand_fetch) {
      // Group by consuming op; within a group, fetches from distinct RAM
      // blocks overlap, same-block fetches serialize.
      std::map<int, std::map<int, std::int64_t>> per_op_array_counts;
      std::int64_t solo = 0;
      for (const PendingRead& r : reads) {
        if (r.consumer < 0) {
          ++solo;
        } else {
          ++per_op_array_counts[r.consumer][r.array];
        }
      }
      for (const auto& [op, array_counts] : per_op_array_counts) {
        std::int64_t worst = 0;
        for (const auto& [array, count] : array_counts) worst = std::max(worst, count);
        read_cycles += worst * lat.mem_read;
      }
      read_cycles += solo * lat.mem_read;
    } else {
      read_cycles = static_cast<std::int64_t>(reads.size()) * lat.mem_read;
    }
    const std::int64_t iter_mem =
        read_cycles + writes * lat.mem_write + flushes * lat.mem_write;
    report.mem_cycles += iter_mem;

    // ---- Texec ----
    std::int64_t length = 0;
    if (options.fsm_serial_memory) {
      // Monet-style FSM: memory states serialize with the datapath; the
      // compute critical path is iteration-invariant and cached.
      if (compute_only_length < 0) {
        IterationProfile compute_profile;
        compute_profile.ram_access.assign(static_cast<std::size_t>(dfg.node_count()), false);
        compute_only_length =
            schedule_iteration(dfg, compute_profile, array_of_group, lat);
      }
      length = compute_only_length + iter_mem;
    } else {
      profile.boundary_flushes = static_cast<int>(flushes);
      const auto cached = schedule_cache.find(profile);
      if (cached != schedule_cache.end()) {
        length = cached->second;
      } else {
        length = schedule_iteration(dfg, profile, array_of_group, lat);
        schedule_cache.emplace(profile, length);
      }
    }
    report.exec_cycles += length + options.loop_overhead;
  }
  return report;
}

}  // namespace srra
