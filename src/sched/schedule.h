// Per-iteration list scheduler: ASAP scheduling of the body DFG under
// single-ported per-array RAM constraints, used by the cycle model to turn
// an iteration's RAM-access pattern into a cycle count. FPGAs provide
// spatial ALUs, so computation is unconstrained; only RAM ports serialize.
#pragma once

#include <cstdint>
#include "support/span.h"
#include <vector>

#include "dfg/dfg.h"
#include "dfg/latency.h"

namespace srra {

/// One iteration's memory behaviour: whether each reference node performs a
/// RAM access this iteration.
struct IterationProfile {
  /// Per DFG node: true if the node's access goes to RAM this iteration.
  std::vector<bool> ram_access;
  /// Steady-counted boundary flushes (RAM writes between iterations).
  int boundary_flushes = 0;

  bool operator<(const IterationProfile& other) const {
    if (ram_access != other.ram_access) return ram_access < other.ram_access;
    return boundary_flushes < other.boundary_flushes;
  }
};

/// ASAP list schedule of one iteration; returns its cycle count.
/// `array_of_group[g]` identifies the RAM block (per-array single port).
std::int64_t schedule_iteration(const Dfg& dfg, const IterationProfile& profile,
                                srra::span<const int> array_of_group,
                                const LatencyModel& latency);

}  // namespace srra
