#include "driver/pipeline.h"

#include "support/str.h"

namespace srra {

DesignPoint run_pipeline(const RefModel& model, Algorithm algorithm,
                         const PipelineOptions& options) {
  DesignPoint point;
  point.algorithm = algorithm;
  point.allocation = allocate(algorithm, model, options.budget);
  point.allocation.validate(model);
  point.cycles = estimate_cycles(model, point.allocation, options.cycles);
  point.hw = estimate_hw(model, point.allocation, options.device, options.area,
                         options.clock);
  return point;
}

std::vector<DesignPoint> run_paper_variants(const RefModel& model,
                                            const PipelineOptions& options) {
  std::vector<DesignPoint> points;
  for (Algorithm alg : paper_variants()) {
    points.push_back(run_pipeline(model, alg, options));
  }
  return points;
}

std::vector<DesignPoint> run_budget_sweep(const RefModel& model,
                                          const std::vector<Algorithm>& algorithms,
                                          const std::vector<std::int64_t>& budgets,
                                          const PipelineOptions& options) {
  std::vector<DesignPoint> points;
  points.reserve(algorithms.size() * budgets.size());
  for (const Algorithm algorithm : algorithms) {
    for (const std::int64_t budget : budgets) {
      if (budget < model.group_count()) continue;  // below feasibility
      PipelineOptions point_options = options;
      point_options.budget = budget;
      points.push_back(run_pipeline(model, algorithm, point_options));
    }
  }
  return points;
}

std::string required_registers_string(const RefModel& model) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<std::size_t>(model.group_count()));
  for (int g = 0; g < model.group_count(); ++g) {
    parts.push_back(std::to_string(model.beta_full(g)));
  }
  return join(parts, "/");
}

}  // namespace srra
