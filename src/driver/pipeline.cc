#include "driver/pipeline.h"

#include <algorithm>

#include "core/frontier.h"
#include "support/str.h"

namespace srra {

DesignPoint evaluate_design(const RefModel& model, Algorithm algorithm,
                            Allocation allocation, const PipelineOptions& options) {
  DesignPoint point;
  point.algorithm = algorithm;
  point.allocation = std::move(allocation);
  point.allocation.validate(model);
  point.cycles = estimate_cycles(model, point.allocation, options.cycles);
  point.hw = estimate_hw(model, point.allocation, options.device, options.area,
                         options.clock);
  return point;
}

DesignPoint run_pipeline(const RefModel& model, Algorithm algorithm,
                         const PipelineOptions& options) {
  return evaluate_design(model, algorithm, allocate(algorithm, model, options.budget),
                         options);
}

Kernel transform_for_pipeline(const Kernel& kernel,
                              srra::span<const LoopTransform> transforms) {
  PeeledNest nest = transform_nest_for_pipeline(kernel, transforms);
  check(!nest.peeled(),
        cat("transform sequence '", to_string(transforms),
            "' needs remainder peeling on kernel ", kernel.name(),
            " (multi-piece nest); this entry point takes single nests only"));
  return std::move(nest.main);
}

PeeledNest transform_nest_for_pipeline(const Kernel& kernel,
                                       srra::span<const LoopTransform> transforms) {
  check(is_safe(kernel, transforms),
        cat("transform sequence '", to_string(transforms), "' is illegal for kernel ",
            kernel.name()));
  return apply_peeled(kernel, transforms);
}

DesignPoint combine_pieces(std::vector<DesignPoint> pieces) {
  check(!pieces.empty(), "combine_pieces: no pieces");
  std::size_t widest = 0;
  CycleReport total = pieces.front().cycles;
  for (std::size_t p = 1; p < pieces.size(); ++p) {
    const CycleReport& c = pieces[p].cycles;
    total.mem_cycles += c.mem_cycles;
    total.ram_accesses += c.ram_accesses;
    total.exec_cycles += c.exec_cycles;
    total.iterations += c.iterations;
    if (pieces[p].allocation.total() > pieces[widest].allocation.total()) widest = p;
  }
  DesignPoint out = std::move(pieces[widest]);
  out.cycles = total;
  return out;
}

std::vector<DesignPoint> run_paper_variants(const RefModel& model,
                                            const PipelineOptions& options) {
  std::vector<DesignPoint> points;
  for (Algorithm alg : paper_variants()) {
    points.push_back(run_pipeline(model, alg, options));
  }
  return points;
}

std::vector<DesignPoint> run_budget_sweep(const RefModel& model,
                                          const std::vector<Algorithm>& algorithms,
                                          const std::vector<std::int64_t>& budgets,
                                          const PipelineOptions& options) {
  std::vector<DesignPoint> points;
  points.reserve(algorithms.size() * budgets.size());
  std::int64_t max_budget = -1;
  for (const std::int64_t budget : budgets) {
    if (budget >= model.group_count()) max_budget = std::max(max_budget, budget);
  }
  if (max_budget < 0) return points;  // every budget is below feasibility

  for (const Algorithm algorithm : algorithms) {
    // One frontier evaluation covers the whole budget axis; each point is a
    // slice (byte-identical to a per-budget allocator run).
    const AllocationFrontier frontier = allocate_frontier(algorithm, model, max_budget);
    for (const std::int64_t budget : budgets) {
      if (budget < model.group_count()) continue;  // below feasibility
      PipelineOptions point_options = options;
      point_options.budget = budget;
      points.push_back(
          evaluate_design(model, algorithm, frontier.at(budget), point_options));
    }
  }
  return points;
}

std::string required_registers_string(const RefModel& model) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<std::size_t>(model.group_count()));
  for (int g = 0; g < model.group_count(); ++g) {
    parts.push_back(std::to_string(model.beta_full(g)));
  }
  return join(parts, "/");
}

}  // namespace srra
