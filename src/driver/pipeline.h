// One-call pipeline: kernel -> reuse analysis -> allocation -> cycle model
// -> hardware estimate -> design report. This is the API the examples and
// the Table-1 bench drive.
#pragma once

#include <string>
#include <vector>

#include "core/registry.h"
#include "hw/estimate.h"
#include "ir/transform.h"
#include "sched/cycle_model.h"

namespace srra {

/// Pipeline configuration (register budget + model knobs).
struct PipelineOptions {
  std::int64_t budget = 64;   ///< register budget (paper: 64, cf. DESIGN.md)
  CycleOptions cycles;
  VirtexDevice device = xcv1000();
  AreaModel area;
  ClockModel clock;
};

/// One fully evaluated design (a row of Table 1).
struct DesignPoint {
  Algorithm algorithm = Algorithm::kFrRa;
  Allocation allocation;
  CycleReport cycles;
  HwEstimate hw;

  /// Wall-clock execution time in microseconds (cycles x clock period).
  double time_us() const {
    return static_cast<double>(cycles.exec_cycles) * hw.clock_ns / 1000.0;
  }
};

/// Runs the full pipeline for one algorithm.
DesignPoint run_pipeline(const RefModel& model, Algorithm algorithm,
                         const PipelineOptions& options = {});

/// Applies a loop-transform sequence (ir/transform.h) to `kernel` after
/// checking its legality, returning the rewritten nest that feeds
/// RefModel/run_pipeline like any source kernel — the driver-level entry
/// behind single-nest consumers (the srrad service). Throws srra::Error
/// naming the offending sequence when it is illegal or malformed for the
/// kernel, or when it needs remainder peeling (those sequences produce a
/// multi-piece nest; use transform_nest_for_pipeline).
Kernel transform_for_pipeline(const Kernel& kernel,
                              srra::span<const LoopTransform> transforms);

/// Peel-aware counterpart of transform_for_pipeline: applies the sequence
/// with remainder peeling (ir/transform.h apply_peeled) after checking its
/// legality — the entry behind the CLI's --transforms flag and the DSE
/// transform axis. Sequences that need no peeling return an empty-epilogue
/// nest whose main equals transform_for_pipeline's result.
PeeledNest transform_nest_for_pipeline(const Kernel& kernel,
                                       srra::span<const LoopTransform> transforms);

/// Combines the per-piece design points of one peeled nest (main first,
/// epilogues after, each evaluated like a standalone kernel) into the
/// variant's reported point: cycle totals are summed — the pieces execute
/// back to back — and the allocation / hardware columns come from the piece
/// with the largest register total, since the datapath must provision for
/// the widest piece. A single piece passes through unchanged.
DesignPoint combine_pieces(std::vector<DesignPoint> pieces);

/// The tail of run_pipeline for an already-computed allocation: validate,
/// cycle model, hardware estimate. Frontier-based sweeps (run_budget_sweep,
/// dse/explore.cc) slice per-budget allocations out of one
/// AllocationFrontier and feed them here.
DesignPoint evaluate_design(const RefModel& model, Algorithm algorithm,
                            Allocation allocation, const PipelineOptions& options = {});

/// Runs v1/v2/v3 (FR-RA, PR-RA, CPA-RA), the paper's three design versions.
std::vector<DesignPoint> run_paper_variants(const RefModel& model,
                                            const PipelineOptions& options = {});

/// Evaluates every (algorithm, budget) pair against one shared RefModel, so
/// the analysis stage (grouping, reuse, access-count cache) is computed once
/// and amortized across the whole sweep — the per-variant inner loop the DSE
/// engine builds on (src/dse/explore.h). The whole budget axis of each
/// algorithm collapses into one AllocationFrontier evaluation; per-budget
/// results are slices of it (byte-identical to per-point allocator runs).
/// Results are in (algorithm, budget) row-major order; budgets too small
/// for the feasibility assignment are skipped (their DesignPoints are
/// simply absent).
std::vector<DesignPoint> run_budget_sweep(const RefModel& model,
                                          const std::vector<Algorithm>& algorithms,
                                          const std::vector<std::int64_t>& budgets,
                                          const PipelineOptions& options = {});

/// Per-reference full-scalar-replacement requirements as "30/600/30/20/1"
/// (Table 1's "Required S.R. Registers" column, in group order).
std::string required_registers_string(const RefModel& model);

}  // namespace srra
