// Expression trees for kernel loop bodies. Leaves are integer constants and
// affine array references; interior nodes are arithmetic/logic operations.
// Expressions are immutable after construction and owned via unique_ptr
// (Core Guidelines R.20/R.21: unique ownership, no shared state).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ir/affine.h"
#include "ir/types.h"

namespace srra {

/// An occurrence of an array access: which array and with which affine
/// subscripts. Used both for reads (inside Expr) and writes (Stmt LHS).
struct ArrayAccess {
  int array_id = -1;                  ///< index into Kernel::arrays()
  std::vector<AffineExpr> subscripts; ///< one per array dimension

  bool operator==(const ArrayAccess& other) const {
    return array_id == other.array_id && subscripts == other.subscripts;
  }
  bool operator!=(const ArrayAccess& other) const { return !(*this == other); }
};

/// Expression node kinds.
enum class ExprKind { kConst, kLoopVar, kRef, kBinOp, kUnOp };

/// Binary operators supported by the datapath.
enum class BinOpKind {
  kAdd, kSub, kMul, kDiv,
  kAnd, kOr, kXor,
  kShl, kShr,
  kEq, kNe, kLt, kLe,
  kMin, kMax,
};

/// Unary operators supported by the datapath.
enum class UnOpKind { kNeg, kNot, kAbs };

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Immutable expression tree node.
class Expr {
 public:
  static ExprPtr make_const(Value value);
  static ExprPtr make_loop_var(int level);
  static ExprPtr make_ref(ArrayAccess access);
  static ExprPtr make_bin(BinOpKind op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr make_un(UnOpKind op, ExprPtr operand);

  ExprKind kind() const { return kind_; }

  // Accessors; each checks the node kind.
  Value const_value() const;
  int loop_level() const;
  const ArrayAccess& access() const;
  BinOpKind bin_op() const;
  const Expr& lhs() const;
  const Expr& rhs() const;
  UnOpKind un_op() const;
  const Expr& operand() const;

  /// Deep copy.
  ExprPtr clone() const;

  /// Calls `fn` for every kRef node, in left-to-right evaluation order.
  void for_each_ref(const std::function<void(const ArrayAccess&)>& fn) const;

  /// Number of operation nodes (kBinOp + kUnOp) in the tree.
  int op_count() const;

  /// Structural equality.
  bool equals(const Expr& other) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kConst;
  Value value_ = 0;          // kConst
  int loop_level_ = -1;      // kLoopVar
  ArrayAccess access_;       // kRef
  BinOpKind bin_op_ = BinOpKind::kAdd;  // kBinOp
  UnOpKind un_op_ = UnOpKind::kNeg;     // kUnOp
  ExprPtr child0_;           // lhs / operand
  ExprPtr child1_;           // rhs
};

/// Evaluates a binary op on 64-bit values (division by zero yields 0, which
/// models a don't-care hardware lane and keeps the simulators total).
Value eval_bin_op(BinOpKind op, Value a, Value b);

/// Evaluates a unary op on a 64-bit value.
Value eval_un_op(UnOpKind op, Value a);

/// Datapath latency class / printable name for an operator.
const char* bin_op_name(BinOpKind op);   ///< e.g. "+", "*"
const char* un_op_name(UnOpKind op);     ///< e.g. "-", "~"

}  // namespace srra
