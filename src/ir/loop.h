// Loop descriptors for perfectly nested loops with compile-time bounds, the
// program shape the paper's analysis targets (image/signal kernels).
#pragma once

#include <cstdint>
#include <string>

#include "support/error.h"

namespace srra {

/// One loop of a perfect nest: `for (var = lower; var < upper; var += step)`.
struct Loop {
  std::string var;
  std::int64_t lower = 0;
  std::int64_t upper = 0;  ///< exclusive
  std::int64_t step = 1;

  /// Number of iterations executed.
  std::int64_t trip_count() const {
    check(step > 0, "loop step must be positive");
    if (upper <= lower) return 0;
    return (upper - lower + step - 1) / step;
  }

  /// Iteration value for normalized index k in [0, trip_count()).
  std::int64_t value_at(std::int64_t k) const { return lower + k * step; }
};

}  // namespace srra
