// Kernel: a perfectly nested loop with compile-time bounds over declared
// arrays, plus an ordered list of body statements. This is the unit the
// whole pipeline operates on (analysis -> DFG -> allocation -> schedule ->
// hardware estimate).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/array.h"
#include "ir/loop.h"
#include "ir/stmt.h"

namespace srra {

/// A perfectly nested loop kernel. Invariants (enforced by validate()):
/// * at least one loop and one statement;
/// * every subscript's affine depth equals the nest depth;
/// * subscript counts match array ranks;
/// * array ids are in range.
class Kernel {
 public:
  Kernel() = default;
  explicit Kernel(std::string name) : name_(std::move(name)) {}

  Kernel(Kernel&&) = default;
  Kernel& operator=(Kernel&&) = default;

  /// Deep copy (kernels own expression trees, so copying is explicit).
  Kernel clone() const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Declares an array; returns its id.
  int add_array(ArrayDecl decl);
  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  const ArrayDecl& array(int id) const;
  /// Id of the array with `name`, or nullopt.
  std::optional<int> find_array(const std::string& name) const;

  /// Appends a loop at the innermost position; returns its level.
  int add_loop(Loop loop);
  const std::vector<Loop>& loops() const { return loops_; }
  const Loop& loop(int level) const;
  int depth() const { return static_cast<int>(loops_.size()); }

  /// Appends a body statement.
  void add_stmt(Stmt stmt);
  const std::vector<Stmt>& body() const { return body_; }

  /// Trip counts for all loops, outermost first.
  std::vector<std::int64_t> trip_counts() const;

  /// Product of all trip counts.
  std::int64_t iteration_count() const;

  /// Loop variable names, outermost first.
  std::vector<std::string> loop_names() const;

  /// Checks all structural invariants; throws srra::Error on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<ArrayDecl> arrays_;
  std::vector<Loop> loops_;
  std::vector<Stmt> body_;
};

/// Name-insensitive structural fingerprint of a kernel: loop bounds/steps in
/// nest order, array shapes/types in declaration order, and the full body
/// (statement structure, operators, affine coefficients). Kernel, array and
/// loop-variable *names* do not participate, so two kernels that differ only
/// in spelling — e.g. a loop permutation that is a no-op on a symmetric nest
/// — hash (and compare) equal. Used by the DSE transform axis to deduplicate
/// variants (dse/space.cc).
std::uint64_t structural_hash(const Kernel& kernel);

}  // namespace srra
