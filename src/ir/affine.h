// Affine index functions over the enclosing loop variables. Every array
// subscript in a kernel is an AffineExpr: sum(coeff[l] * iv[l]) + constant,
// where l ranges over loop levels (0 = outermost). All of the paper's reuse
// analysis operates on these.
#pragma once

#include <cstdint>
#include "support/span.h"
#include <string>
#include <vector>

namespace srra {

/// Affine function of the loop induction variables.
class AffineExpr {
 public:
  AffineExpr() = default;

  /// Creates an affine function of `depth` loop variables, all coefficients
  /// zero, constant zero.
  explicit AffineExpr(int depth) : coeffs_(static_cast<std::size_t>(depth), 0) {}

  /// Builds coeff * iv[level] (with given nest depth).
  static AffineExpr loop_var(int depth, int level, std::int64_t coeff = 1);

  /// Builds a constant.
  static AffineExpr constant(int depth, std::int64_t value);

  int depth() const { return static_cast<int>(coeffs_.size()); }
  std::int64_t coeff(int level) const;
  void set_coeff(int level, std::int64_t value);
  std::int64_t constant_term() const { return constant_; }
  void set_constant_term(std::int64_t value) { constant_ = value; }

  /// Evaluates at a concrete iteration vector (size must equal depth()).
  std::int64_t evaluate(srra::span<const std::int64_t> iteration) const;

  /// True if coeff(level) == 0, i.e. the subscript does not depend on the
  /// loop at `level`.
  bool invariant_in(int level) const { return coeff(level) == 0; }

  /// True if all coefficients are zero.
  bool is_constant() const;

  AffineExpr operator+(const AffineExpr& other) const;
  AffineExpr operator-(const AffineExpr& other) const;
  AffineExpr scaled(std::int64_t factor) const;
  bool operator==(const AffineExpr& other) const {
    return coeffs_ == other.coeffs_ && constant_ == other.constant_;
  }
  bool operator!=(const AffineExpr& other) const { return !(*this == other); }

  /// Pretty form using the given loop variable names, e.g. "2*i + j + 3".
  std::string to_string(srra::span<const std::string> loop_names) const;

 private:
  std::vector<std::int64_t> coeffs_;
  std::int64_t constant_ = 0;
};

}  // namespace srra
