#include "ir/expr.h"

#include <cstdlib>

#include "support/error.h"

namespace srra {

ExprPtr Expr::make_const(Value value) {
  auto node = ExprPtr(new Expr());
  node->kind_ = ExprKind::kConst;
  node->value_ = value;
  return node;
}

ExprPtr Expr::make_loop_var(int level) {
  check(level >= 0, "loop level must be non-negative");
  auto node = ExprPtr(new Expr());
  node->kind_ = ExprKind::kLoopVar;
  node->loop_level_ = level;
  return node;
}

ExprPtr Expr::make_ref(ArrayAccess access) {
  check(access.array_id >= 0, "array reference needs a valid array id");
  auto node = ExprPtr(new Expr());
  node->kind_ = ExprKind::kRef;
  node->access_ = std::move(access);
  return node;
}

ExprPtr Expr::make_bin(BinOpKind op, ExprPtr lhs, ExprPtr rhs) {
  check(lhs != nullptr && rhs != nullptr, "binary op needs two operands");
  auto node = ExprPtr(new Expr());
  node->kind_ = ExprKind::kBinOp;
  node->bin_op_ = op;
  node->child0_ = std::move(lhs);
  node->child1_ = std::move(rhs);
  return node;
}

ExprPtr Expr::make_un(UnOpKind op, ExprPtr operand) {
  check(operand != nullptr, "unary op needs an operand");
  auto node = ExprPtr(new Expr());
  node->kind_ = ExprKind::kUnOp;
  node->un_op_ = op;
  node->child0_ = std::move(operand);
  return node;
}

Value Expr::const_value() const {
  check(kind_ == ExprKind::kConst, "not a constant node");
  return value_;
}

int Expr::loop_level() const {
  check(kind_ == ExprKind::kLoopVar, "not a loop variable node");
  return loop_level_;
}

const ArrayAccess& Expr::access() const {
  check(kind_ == ExprKind::kRef, "not a reference node");
  return access_;
}

BinOpKind Expr::bin_op() const {
  check(kind_ == ExprKind::kBinOp, "not a binary op node");
  return bin_op_;
}

const Expr& Expr::lhs() const {
  check(kind_ == ExprKind::kBinOp, "not a binary op node");
  return *child0_;
}

const Expr& Expr::rhs() const {
  check(kind_ == ExprKind::kBinOp, "not a binary op node");
  return *child1_;
}

UnOpKind Expr::un_op() const {
  check(kind_ == ExprKind::kUnOp, "not a unary op node");
  return un_op_;
}

const Expr& Expr::operand() const {
  check(kind_ == ExprKind::kUnOp, "not a unary op node");
  return *child0_;
}

ExprPtr Expr::clone() const {
  switch (kind_) {
    case ExprKind::kConst: return make_const(value_);
    case ExprKind::kLoopVar: return make_loop_var(loop_level_);
    case ExprKind::kRef: return make_ref(access_);
    case ExprKind::kBinOp: return make_bin(bin_op_, child0_->clone(), child1_->clone());
    case ExprKind::kUnOp: return make_un(un_op_, child0_->clone());
  }
  fail("unknown ExprKind");
}

void Expr::for_each_ref(const std::function<void(const ArrayAccess&)>& fn) const {
  switch (kind_) {
    case ExprKind::kConst:
    case ExprKind::kLoopVar:
      return;
    case ExprKind::kRef:
      fn(access_);
      return;
    case ExprKind::kBinOp:
      child0_->for_each_ref(fn);
      child1_->for_each_ref(fn);
      return;
    case ExprKind::kUnOp:
      child0_->for_each_ref(fn);
      return;
  }
}

int Expr::op_count() const {
  switch (kind_) {
    case ExprKind::kConst:
    case ExprKind::kLoopVar:
    case ExprKind::kRef:
      return 0;
    case ExprKind::kBinOp:
      return 1 + child0_->op_count() + child1_->op_count();
    case ExprKind::kUnOp:
      return 1 + child0_->op_count();
  }
  fail("unknown ExprKind");
}

bool Expr::equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kConst: return value_ == other.value_;
    case ExprKind::kLoopVar: return loop_level_ == other.loop_level_;
    case ExprKind::kRef: return access_ == other.access_;
    case ExprKind::kBinOp:
      return bin_op_ == other.bin_op_ && child0_->equals(*other.child0_) &&
             child1_->equals(*other.child1_);
    case ExprKind::kUnOp:
      return un_op_ == other.un_op_ && child0_->equals(*other.child0_);
  }
  fail("unknown ExprKind");
}

Value eval_bin_op(BinOpKind op, Value a, Value b) {
  switch (op) {
    case BinOpKind::kAdd: return a + b;
    case BinOpKind::kSub: return a - b;
    case BinOpKind::kMul: return a * b;
    case BinOpKind::kDiv: return b == 0 ? 0 : a / b;
    case BinOpKind::kAnd: return a & b;
    case BinOpKind::kOr: return a | b;
    case BinOpKind::kXor: return a ^ b;
    case BinOpKind::kShl: return b < 0 || b > 62 ? 0 : a << b;
    case BinOpKind::kShr: return b < 0 || b > 62 ? 0 : a >> b;
    case BinOpKind::kEq: return a == b ? 1 : 0;
    case BinOpKind::kNe: return a != b ? 1 : 0;
    case BinOpKind::kLt: return a < b ? 1 : 0;
    case BinOpKind::kLe: return a <= b ? 1 : 0;
    case BinOpKind::kMin: return a < b ? a : b;
    case BinOpKind::kMax: return a > b ? a : b;
  }
  fail("unknown BinOpKind");
}

Value eval_un_op(UnOpKind op, Value a) {
  switch (op) {
    case UnOpKind::kNeg: return -a;
    case UnOpKind::kNot: return ~a;
    case UnOpKind::kAbs: return a < 0 ? -a : a;
  }
  fail("unknown UnOpKind");
}

const char* bin_op_name(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd: return "+";
    case BinOpKind::kSub: return "-";
    case BinOpKind::kMul: return "*";
    case BinOpKind::kDiv: return "/";
    case BinOpKind::kAnd: return "&";
    case BinOpKind::kOr: return "|";
    case BinOpKind::kXor: return "^";
    case BinOpKind::kShl: return "<<";
    case BinOpKind::kShr: return ">>";
    case BinOpKind::kEq: return "==";
    case BinOpKind::kNe: return "!=";
    case BinOpKind::kLt: return "<";
    case BinOpKind::kLe: return "<=";
    case BinOpKind::kMin: return "min";
    case BinOpKind::kMax: return "max";
  }
  fail("unknown BinOpKind");
}

const char* un_op_name(UnOpKind op) {
  switch (op) {
    case UnOpKind::kNeg: return "-";
    case UnOpKind::kNot: return "~";
    case UnOpKind::kAbs: return "abs";
  }
  fail("unknown UnOpKind");
}

}  // namespace srra
