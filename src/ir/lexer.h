// Lexer for the kernel DSL (see ir/parser.h for the grammar). Produces a
// token stream with line/column positions for error reporting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace srra {

/// Token kinds of the kernel DSL.
enum class TokKind {
  kIdent, kInt,
  kLBrace, kRBrace, kLBracket, kRBracket, kLParen, kRParen,
  kColon, kSemi, kComma,
  kAssign,      // =
  kPlusAssign,  // +=
  kDotDot,      // ..
  kPlus, kMinus, kStar, kSlash,
  kAmp, kPipe, kCaret, kTilde,
  kShl, kShr,
  kEqEq, kNotEq, kLess, kLessEq,
  kEnd,
};

/// One token with its source position (1-based line/column).
struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::int64_t int_value = 0;
  int line = 0;
  int column = 0;
};

/// Printable token kind name for diagnostics.
const char* tok_kind_name(TokKind kind);

/// Tokenizes `source`; throws srra::Error with position info on bad input.
/// `#`-to-end-of-line and `//` comments are skipped.
std::vector<Token> tokenize(std::string_view source);

}  // namespace srra
