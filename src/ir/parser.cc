#include "ir/parser.h"

#include <map>

#include "ir/lexer.h"
#include "support/error.h"
#include "support/str.h"

namespace srra {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  Kernel run() {
    expect_keyword("kernel");
    Kernel kernel(expect(TokKind::kIdent).text);
    expect(TokKind::kLBrace);
    while (at_keyword("array")) parse_array(kernel);
    check_here(at_keyword("for"), "expected a 'for' loop after array declarations");
    parse_loops(kernel);
    parse_stmts(kernel);
    for (int i = 0; i < kernel.depth(); ++i) expect(TokKind::kRBrace);
    expect(TokKind::kRBrace);
    expect(TokKind::kEnd);
    kernel.validate();
    return kernel;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t at = pos_ + ahead;
    return at < tokens_.size() ? tokens_[at] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }

  [[noreturn]] void error_here(std::string_view message) const {
    const Token& tok = peek();
    fail(cat("parse error at ", tok.line, ":", tok.column, ": ", message, " (found ",
             tok_kind_name(tok.kind), tok.kind == TokKind::kIdent ? cat(" '", tok.text, "'") : "",
             ")"));
  }
  void check_here(bool ok, std::string_view message) const {
    if (!ok) error_here(message);
  }

  const Token& expect(TokKind kind) {
    check_here(peek().kind == kind, cat("expected ", tok_kind_name(kind)));
    return advance();
  }
  bool at_keyword(std::string_view word) const {
    return peek().kind == TokKind::kIdent && peek().text == word;
  }
  void expect_keyword(std::string_view word) {
    check_here(at_keyword(word), cat("expected keyword '", word, "'"));
    advance();
  }
  bool accept(TokKind kind) {
    if (peek().kind != kind) return false;
    advance();
    return true;
  }

  void parse_array(Kernel& kernel) {
    expect_keyword("array");
    ArrayDecl decl;
    decl.name = expect(TokKind::kIdent).text;
    while (peek().kind == TokKind::kLBracket) {
      advance();
      decl.dims.push_back(expect(TokKind::kInt).int_value);
      expect(TokKind::kRBracket);
    }
    check_here(!decl.dims.empty(), "array needs at least one dimension");
    if (accept(TokKind::kColon)) decl.type = parse_type(expect(TokKind::kIdent).text);
    expect(TokKind::kSemi);
    kernel.add_array(std::move(decl));
  }

  void parse_loops(Kernel& kernel) {
    while (at_keyword("for")) {
      advance();
      Loop loop;
      loop.var = expect(TokKind::kIdent).text;
      expect_keyword("in");
      loop.lower = parse_signed_int();
      expect(TokKind::kDotDot);
      loop.upper = parse_signed_int();
      if (at_keyword("step")) {
        advance();
        loop.step = expect(TokKind::kInt).int_value;
      }
      expect(TokKind::kLBrace);
      const int level = kernel.add_loop(std::move(loop));
      level_by_var_[kernel.loop(level).var] = level;
    }
  }

  std::int64_t parse_signed_int() {
    const bool negative = accept(TokKind::kMinus);
    const std::int64_t magnitude = expect(TokKind::kInt).int_value;
    return negative ? -magnitude : magnitude;
  }

  void parse_stmts(Kernel& kernel) {
    check_here(peek().kind == TokKind::kIdent, "expected at least one assignment");
    while (peek().kind == TokKind::kIdent) {
      ArrayAccess lhs = parse_access(kernel);
      const bool accumulate = peek().kind == TokKind::kPlusAssign;
      check_here(accumulate || peek().kind == TokKind::kAssign, "expected '=' or '+='");
      advance();
      ExprPtr rhs = parse_expr(kernel);
      expect(TokKind::kSemi);
      if (accumulate) rhs = Expr::make_bin(BinOpKind::kAdd, Expr::make_ref(lhs), std::move(rhs));
      kernel.add_stmt(Stmt(std::move(lhs), std::move(rhs)));
    }
  }

  ArrayAccess parse_access(Kernel& kernel) {
    const std::string name = expect(TokKind::kIdent).text;
    const auto id = kernel.find_array(name);
    check_here(id.has_value(), cat("unknown array '", name, "'"));
    ArrayAccess access;
    access.array_id = *id;
    check_here(peek().kind == TokKind::kLBracket, "expected subscript");
    while (accept(TokKind::kLBracket)) {
      access.subscripts.push_back(parse_affine(kernel));
      expect(TokKind::kRBracket);
    }
    return access;
  }

  // affine := ["-"] affterm (("+" | "-") affterm)*
  AffineExpr parse_affine(const Kernel& kernel) {
    AffineExpr sum(kernel.depth());
    std::int64_t sign = accept(TokKind::kMinus) ? -1 : 1;
    while (true) {
      sum = sum + parse_affine_term(kernel).scaled(sign);
      if (accept(TokKind::kPlus)) sign = 1;
      else if (accept(TokKind::kMinus)) sign = -1;
      else return sum;
    }
  }

  // affterm := INT ["*" IDENT] | IDENT ["*" INT]
  AffineExpr parse_affine_term(const Kernel& kernel) {
    if (peek().kind == TokKind::kInt) {
      const std::int64_t coeff = advance().int_value;
      if (accept(TokKind::kStar)) {
        return AffineExpr::loop_var(kernel.depth(), loop_level(expect(TokKind::kIdent).text), coeff);
      }
      return AffineExpr::constant(kernel.depth(), coeff);
    }
    const int level = loop_level(expect(TokKind::kIdent).text);
    if (accept(TokKind::kStar)) {
      return AffineExpr::loop_var(kernel.depth(), level, expect(TokKind::kInt).int_value);
    }
    return AffineExpr::loop_var(kernel.depth(), level);
  }

  int loop_level(const std::string& var) const {
    const auto it = level_by_var_.find(var);
    check_here(it != level_by_var_.end(), cat("unknown loop variable '", var, "'"));
    return it->second;
  }

  // expr := bit (("&" | "|" | "^") bit)*
  ExprPtr parse_expr(Kernel& kernel) {
    ExprPtr node = parse_cmp(kernel);
    while (true) {
      BinOpKind op;
      if (peek().kind == TokKind::kAmp) op = BinOpKind::kAnd;
      else if (peek().kind == TokKind::kPipe) op = BinOpKind::kOr;
      else if (peek().kind == TokKind::kCaret) op = BinOpKind::kXor;
      else return node;
      advance();
      node = Expr::make_bin(op, std::move(node), parse_cmp(kernel));
    }
  }

  ExprPtr parse_cmp(Kernel& kernel) {
    ExprPtr node = parse_shift(kernel);
    while (true) {
      BinOpKind op;
      if (peek().kind == TokKind::kEqEq) op = BinOpKind::kEq;
      else if (peek().kind == TokKind::kNotEq) op = BinOpKind::kNe;
      else if (peek().kind == TokKind::kLess) op = BinOpKind::kLt;
      else if (peek().kind == TokKind::kLessEq) op = BinOpKind::kLe;
      else return node;
      advance();
      node = Expr::make_bin(op, std::move(node), parse_shift(kernel));
    }
  }

  ExprPtr parse_shift(Kernel& kernel) {
    ExprPtr node = parse_sum(kernel);
    while (true) {
      BinOpKind op;
      if (peek().kind == TokKind::kShl) op = BinOpKind::kShl;
      else if (peek().kind == TokKind::kShr) op = BinOpKind::kShr;
      else return node;
      advance();
      node = Expr::make_bin(op, std::move(node), parse_sum(kernel));
    }
  }

  ExprPtr parse_sum(Kernel& kernel) {
    ExprPtr node = parse_term(kernel);
    while (true) {
      BinOpKind op;
      if (peek().kind == TokKind::kPlus) op = BinOpKind::kAdd;
      else if (peek().kind == TokKind::kMinus) op = BinOpKind::kSub;
      else return node;
      advance();
      node = Expr::make_bin(op, std::move(node), parse_term(kernel));
    }
  }

  ExprPtr parse_term(Kernel& kernel) {
    ExprPtr node = parse_factor(kernel);
    while (true) {
      BinOpKind op;
      if (peek().kind == TokKind::kStar) op = BinOpKind::kMul;
      else if (peek().kind == TokKind::kSlash) op = BinOpKind::kDiv;
      else return node;
      advance();
      node = Expr::make_bin(op, std::move(node), parse_factor(kernel));
    }
  }

  ExprPtr parse_factor(Kernel& kernel) {
    if (peek().kind == TokKind::kInt) return Expr::make_const(advance().int_value);
    if (accept(TokKind::kMinus)) return Expr::make_un(UnOpKind::kNeg, parse_factor(kernel));
    if (accept(TokKind::kTilde)) return Expr::make_un(UnOpKind::kNot, parse_factor(kernel));
    if (accept(TokKind::kLParen)) {
      ExprPtr inner = parse_expr(kernel);
      expect(TokKind::kRParen);
      return inner;
    }
    if (at_keyword("abs")) {
      advance();
      expect(TokKind::kLParen);
      ExprPtr inner = parse_expr(kernel);
      expect(TokKind::kRParen);
      return Expr::make_un(UnOpKind::kAbs, std::move(inner));
    }
    if (at_keyword("min") || at_keyword("max")) {
      const BinOpKind op = at_keyword("min") ? BinOpKind::kMin : BinOpKind::kMax;
      advance();
      expect(TokKind::kLParen);
      ExprPtr a = parse_expr(kernel);
      expect(TokKind::kComma);
      ExprPtr b = parse_expr(kernel);
      expect(TokKind::kRParen);
      return Expr::make_bin(op, std::move(a), std::move(b));
    }
    if (peek().kind == TokKind::kIdent) {
      // A bare loop variable is a datapath input (the loop counter wire).
      const auto lv = level_by_var_.find(peek().text);
      if (lv != level_by_var_.end() && peek(1).kind != TokKind::kLBracket) {
        advance();
        return Expr::make_loop_var(lv->second);
      }
      return Expr::make_ref(parse_access(kernel));
    }
    error_here("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, int> level_by_var_;
};

}  // namespace

Kernel parse_kernel(std::string_view source) { return Parser(source).run(); }

}  // namespace srra
