// Fluent construction API for kernels. Usage:
//
//   KernelBuilder b("example");
//   b.array("a", {30}).array("b", {30, 20}).array("d", {1, 30});
//   b.loop("i", 0, 1).loop("j", 0, 20).loop("k", 0, 30);
//   b.assign("d", {b.var("i"), b.var("k")},
//            mul(b.ref("a", {b.var("k")}), b.ref("b", {b.var("k"), b.var("j")})));
//   Kernel k = b.build();
//
// Loops/arrays must all be declared before the first expression is built
// (affine expressions are sized to the final nest depth).
#pragma once

#include <string>
#include <vector>

#include "ir/kernel.h"

namespace srra {

/// Builds Kernel objects incrementally; build() validates the result.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) : kernel_(std::move(name)) {}

  /// Declares an array.
  KernelBuilder& array(const std::string& name, std::vector<std::int64_t> dims,
                       ScalarType type = ScalarType::kS32);

  /// Appends a loop at the innermost position.
  KernelBuilder& loop(const std::string& var, std::int64_t lower, std::int64_t upper,
                      std::int64_t step = 1);

  /// Affine expression `1 * var` (freezes the loop structure).
  AffineExpr var(const std::string& name);

  /// Affine constant (freezes the loop structure).
  AffineExpr lit(std::int64_t value);

  /// Read reference expression.
  ExprPtr ref(const std::string& array, std::vector<AffineExpr> subscripts);

  /// Integer literal expression.
  ExprPtr num(Value value) const { return Expr::make_const(value); }

  /// Loop counter as a datapath input expression.
  ExprPtr loop_expr(const std::string& name);

  /// Appends `array[subscripts] = rhs`.
  KernelBuilder& assign(const std::string& array, std::vector<AffineExpr> subscripts,
                        ExprPtr rhs);

  /// Finalizes and validates; the builder is left empty afterwards.
  Kernel build();

 private:
  ArrayAccess make_access(const std::string& array, std::vector<AffineExpr> subscripts);

  Kernel kernel_;
  bool frozen_ = false;  ///< loops frozen once expressions are being built
};

// Expression combinators (free functions so client code reads like math).
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr div_op(ExprPtr a, ExprPtr b);
ExprPtr band(ExprPtr a, ExprPtr b);
ExprPtr bor(ExprPtr a, ExprPtr b);
ExprPtr bxor(ExprPtr a, ExprPtr b);
ExprPtr shl(ExprPtr a, ExprPtr b);
ExprPtr shr(ExprPtr a, ExprPtr b);
ExprPtr eq(ExprPtr a, ExprPtr b);
ExprPtr ne(ExprPtr a, ExprPtr b);
ExprPtr lt(ExprPtr a, ExprPtr b);
ExprPtr le(ExprPtr a, ExprPtr b);
ExprPtr min_op(ExprPtr a, ExprPtr b);
ExprPtr max_op(ExprPtr a, ExprPtr b);
ExprPtr neg(ExprPtr a);
ExprPtr bnot(ExprPtr a);
ExprPtr abs_op(ExprPtr a);

}  // namespace srra
