// Pretty-printer for kernels. The output syntax is exactly the kernel DSL
// accepted by ir/parser.h, so print -> parse round-trips (tested).
#pragma once

#include <string>

#include "ir/kernel.h"

namespace srra {

/// Renders an expression as DSL/C-like text with minimal parentheses.
std::string expr_to_string(const Kernel& kernel, const Expr& expr);

/// Renders an array access, e.g. "b[k][j]".
std::string access_to_string(const Kernel& kernel, const ArrayAccess& access);

/// Renders the whole kernel in DSL syntax.
std::string kernel_to_string(const Kernel& kernel);

}  // namespace srra
