// Recursive-descent parser for the kernel DSL. Grammar (EBNF):
//
//   kernel   := "kernel" IDENT "{" array* loop "}"
//   array    := "array" IDENT ("[" INT "]")+ [":" TYPE] ";"
//   loop     := "for" IDENT "in" INT ".." INT ["step" INT] "{" (loop | stmt+) "}"
//   stmt     := access ("=" | "+=") expr ";"
//   access   := IDENT ("[" affine "]")+
//   expr     := bit  (("&" | "|" | "^") bit)*          -- lowest precedence
//   bit      := cmp  (("==" | "!=" | "<" | "<=") cmp)*
//   cmp      := shift (("<<" | ">>") shift)*
//   shift    := sum
//   sum      := term (("+" | "-") term)*
//   term     := factor (("*" | "/") factor)*
//   factor   := INT | access | "(" expr ")" | "-" factor | "~" factor
//             | "abs" "(" expr ")" | ("min"|"max") "(" expr "," expr ")"
//   affine   := ["-"] affterm (("+" | "-") affterm)*
//   affterm  := INT ["*" IDENT] | IDENT ["*" INT]
//
// Loops must be perfectly nested (one loop or a statement list inside each
// body); subscripts must be affine in the loop variables. `x += e` is sugar
// for `x = x + e`. Default element type is s32.
#pragma once

#include <string_view>

#include "ir/kernel.h"

namespace srra {

/// Parses one kernel from DSL text; throws srra::Error with source position
/// on any syntax or semantic problem.
Kernel parse_kernel(std::string_view source);

}  // namespace srra
