#include "ir/transform.h"

#include <algorithm>

#include "support/error.h"

namespace srra {

namespace {

AffineExpr permute_affine(const AffineExpr& e, int a, int b) {
  AffineExpr out = e;
  const std::int64_t ca = e.coeff(a);
  const std::int64_t cb = e.coeff(b);
  out.set_coeff(a, cb);
  out.set_coeff(b, ca);
  return out;
}

ArrayAccess permute_access(const ArrayAccess& access, int a, int b) {
  ArrayAccess out;
  out.array_id = access.array_id;
  for (const AffineExpr& sub : access.subscripts) {
    out.subscripts.push_back(permute_affine(sub, a, b));
  }
  return out;
}

ExprPtr permute_expr(const Expr& e, int a, int b) {
  switch (e.kind()) {
    case ExprKind::kConst:
      return Expr::make_const(e.const_value());
    case ExprKind::kLoopVar: {
      int level = e.loop_level();
      if (level == a) level = b;
      else if (level == b) level = a;
      return Expr::make_loop_var(level);
    }
    case ExprKind::kRef:
      return Expr::make_ref(permute_access(e.access(), a, b));
    case ExprKind::kBinOp:
      return Expr::make_bin(e.bin_op(), permute_expr(e.lhs(), a, b),
                            permute_expr(e.rhs(), a, b));
    case ExprKind::kUnOp:
      return Expr::make_un(e.un_op(), permute_expr(e.operand(), a, b));
  }
  fail("unknown ExprKind");
}

// True when `expr` is `lhs + rest` or `rest + lhs` with no other occurrence
// of lhs inside rest (a commutative accumulator update).
bool is_accumulator_update(const ArrayAccess& lhs, const Expr& expr) {
  if (expr.kind() != ExprKind::kBinOp || expr.bin_op() != BinOpKind::kAdd) return false;
  const auto counts_lhs = [&](const Expr& e) {
    int n = 0;
    e.for_each_ref([&](const ArrayAccess& access) {
      if (access == lhs) ++n;
    });
    return n;
  };
  const bool left_is_lhs =
      expr.lhs().kind() == ExprKind::kRef && expr.lhs().access() == lhs;
  const bool right_is_lhs =
      expr.rhs().kind() == ExprKind::kRef && expr.rhs().access() == lhs;
  if (left_is_lhs) return counts_lhs(expr.rhs()) == 0;
  if (right_is_lhs) return counts_lhs(expr.lhs()) == 0;
  return false;
}

}  // namespace

Kernel interchange_loops(const Kernel& kernel, int level_a, int level_b) {
  check(level_a >= 0 && level_a < kernel.depth(), "interchange level out of range");
  check(level_b >= 0 && level_b < kernel.depth(), "interchange level out of range");

  Kernel out(kernel.name());
  for (const ArrayDecl& array : kernel.arrays()) out.add_array(array);
  for (int l = 0; l < kernel.depth(); ++l) {
    int source = l;
    if (l == level_a) source = level_b;
    else if (l == level_b) source = level_a;
    out.add_loop(kernel.loop(source));
  }
  for (const Stmt& stmt : kernel.body()) {
    out.add_stmt(Stmt(permute_access(stmt.lhs, level_a, level_b),
                      permute_expr(*stmt.rhs, level_a, level_b)));
  }
  out.validate();
  return out;
}

bool interchange_is_safe(const Kernel& kernel) {
  // Sufficient condition: every statement either writes an element that is
  // never re-read in other iterations (all its loop-variant subscripts are
  // injective per iteration -> only the same-iteration forwarding exists),
  // or is a commutative accumulator update x = x + e where e does not read
  // x at another subscript.
  for (const Stmt& stmt : kernel.body()) {
    // Other statements must not read this statement's target array with a
    // *different* subscript pattern (a loop-carried flow we do not model).
    for (const Stmt& other : kernel.body()) {
      bool bad = false;
      other.rhs->for_each_ref([&](const ArrayAccess& access) {
        if (access.array_id == stmt.lhs.array_id && !(access == stmt.lhs)) bad = true;
      });
      if (bad) return false;
    }
    bool reads_own_target = false;
    stmt.rhs->for_each_ref([&](const ArrayAccess& access) {
      if (access == stmt.lhs) reads_own_target = true;
    });
    if (reads_own_target && !is_accumulator_update(stmt.lhs, *stmt.rhs)) return false;
  }
  return true;
}

}  // namespace srra
