#include "ir/transform.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "support/error.h"
#include "support/str.h"

namespace srra {

namespace {

// ---- Generic expression rewriting -----------------------------------------
// Every transform is a pair of maps: one over affine subscripts, one over
// loop-variable leaves (which may expand to a small expression tree, e.g.
// `it + ii` after tiling).

using AffineFn = std::function<AffineExpr(const AffineExpr&)>;
using LoopVarFn = std::function<ExprPtr(int)>;

ArrayAccess rewrite_access(const ArrayAccess& access, const AffineFn& affine) {
  ArrayAccess out;
  out.array_id = access.array_id;
  out.subscripts.reserve(access.subscripts.size());
  for (const AffineExpr& sub : access.subscripts) out.subscripts.push_back(affine(sub));
  return out;
}

ExprPtr rewrite_expr(const Expr& e, const AffineFn& affine, const LoopVarFn& loop_var) {
  switch (e.kind()) {
    case ExprKind::kConst:
      return Expr::make_const(e.const_value());
    case ExprKind::kLoopVar:
      return loop_var(e.loop_level());
    case ExprKind::kRef:
      return Expr::make_ref(rewrite_access(e.access(), affine));
    case ExprKind::kBinOp:
      return Expr::make_bin(e.bin_op(), rewrite_expr(e.lhs(), affine, loop_var),
                            rewrite_expr(e.rhs(), affine, loop_var));
    case ExprKind::kUnOp:
      return Expr::make_un(e.un_op(), rewrite_expr(e.operand(), affine, loop_var));
  }
  fail("unknown ExprKind");
}

Kernel rewrite_body(const Kernel& kernel, Kernel out, const AffineFn& affine,
                    const LoopVarFn& loop_var) {
  for (const Stmt& stmt : kernel.body()) {
    out.add_stmt(Stmt(rewrite_access(stmt.lhs, affine),
                      rewrite_expr(*stmt.rhs, affine, loop_var)));
  }
  out.validate();
  return out;
}

// A loop-variable name not already used by the nest: `base`, else base + a
// small integer suffix (tile loops of `i` become `it`/`ii`; a nest that
// already owns those names gets `it1`/`ii1`, ...).
std::string unique_loop_name(const Kernel& kernel, const std::string& base) {
  const auto taken = [&](const std::string& name) {
    for (const Loop& loop : kernel.loops()) {
      if (loop.var == name) return true;
    }
    return false;
  };
  if (!taken(base)) return base;
  for (int n = 1;; ++n) {
    const std::string candidate = cat(base, n);
    if (!taken(candidate)) return candidate;
  }
}

bool is_permutation(const std::vector<int>& perm, int depth) {
  if (static_cast<int>(perm.size()) != depth) return false;
  std::vector<bool> seen(static_cast<std::size_t>(depth), false);
  for (const int level : perm) {
    if (level < 0 || level >= depth || seen[static_cast<std::size_t>(level)]) return false;
    seen[static_cast<std::size_t>(level)] = true;
  }
  return true;
}

// ---- The three rewrites ---------------------------------------------------

Kernel apply_interchange(const Kernel& kernel, const std::vector<int>& perm) {
  check(is_permutation(perm, kernel.depth()),
        cat("interchange permutation is not a permutation of the ", kernel.depth(),
            " loop levels"));
  const int depth = kernel.depth();
  std::vector<int> inverse(static_cast<std::size_t>(depth), 0);
  for (int l = 0; l < depth; ++l) inverse[static_cast<std::size_t>(perm[static_cast<std::size_t>(l)])] = l;

  Kernel out(kernel.name());
  for (const ArrayDecl& array : kernel.arrays()) out.add_array(array);
  for (int l = 0; l < depth; ++l) out.add_loop(kernel.loop(perm[static_cast<std::size_t>(l)]));

  const AffineFn affine = [&](const AffineExpr& e) {
    AffineExpr mapped(depth);
    for (int l = 0; l < depth; ++l) mapped.set_coeff(l, e.coeff(perm[static_cast<std::size_t>(l)]));
    mapped.set_constant_term(e.constant_term());
    return mapped;
  };
  const LoopVarFn loop_var = [&](int level) {
    return Expr::make_loop_var(inverse[static_cast<std::size_t>(level)]);
  };
  return rewrite_body(kernel, std::move(out), affine, loop_var);
}

Kernel apply_tile(const Kernel& kernel, int level, std::int64_t size) {
  check(level >= 0 && level < kernel.depth(), "tile level out of range");
  const Loop& target = kernel.loop(level);
  check(size >= 2, "tile size must be at least 2");
  check(target.trip_count() % size == 0,
        cat("tile size ", size, " does not divide the trip count ", target.trip_count(),
            " of loop ", target.var, " (full-tile precondition)"));

  const int depth = kernel.depth();
  Kernel out(kernel.name());
  for (const ArrayDecl& array : kernel.arrays()) out.add_array(array);
  // v = vt + vi exactly: the tile loop keeps v's bounds with the step scaled
  // by the tile size; the point loop spans one tile's worth of steps.
  Loop tile_loop{unique_loop_name(kernel, target.var + "t"), target.lower, target.upper,
                 target.step * size};
  Loop point_loop{unique_loop_name(kernel, target.var + "i"), 0, target.step * size,
                  target.step};
  for (int l = 0; l < depth; ++l) {
    if (l == level) {
      out.add_loop(tile_loop);
      out.add_loop(point_loop);
    } else {
      out.add_loop(kernel.loop(l));
    }
  }

  // Old level l maps to l (below `level`) or l+1 (above); the tiled level's
  // coefficient appears at both new levels since v = vt + vi.
  const AffineFn affine = [&](const AffineExpr& e) {
    AffineExpr mapped(depth + 1);
    for (int l = 0; l < depth; ++l) {
      const int target_level = l <= level ? l : l + 1;
      mapped.set_coeff(target_level, e.coeff(l));
    }
    mapped.set_coeff(level + 1, e.coeff(level));
    mapped.set_constant_term(e.constant_term());
    return mapped;
  };
  const LoopVarFn loop_var = [&](int l) {
    if (l == level) {
      return Expr::make_bin(BinOpKind::kAdd, Expr::make_loop_var(level),
                            Expr::make_loop_var(level + 1));
    }
    return Expr::make_loop_var(l < level ? l : l + 1);
  };
  return rewrite_body(kernel, std::move(out), affine, loop_var);
}

Kernel apply_unroll_jam(const Kernel& kernel, int level, std::int64_t factor) {
  check(level >= 0 && level < kernel.depth(), "unroll-and-jam level out of range");
  const Loop& target = kernel.loop(level);
  check(factor >= 2, "unroll factor must be at least 2");
  check(target.trip_count() % factor == 0,
        cat("unroll factor ", factor, " does not divide the trip count ",
            target.trip_count(), " of loop ", target.var, " (full-tile precondition)"));

  Kernel out(kernel.name());
  for (const ArrayDecl& array : kernel.arrays()) out.add_array(array);
  for (int l = 0; l < kernel.depth(); ++l) {
    Loop loop = kernel.loop(l);
    if (l == level) loop.step *= factor;
    out.add_loop(loop);
  }

  // Copy u substitutes v -> v + u*step: a constant offset in every affine
  // subscript and an explicit add on loop-variable leaves. The whole body is
  // replicated per copy (jam order), so constant-offset neighbours of one
  // source reference appear together in one iteration and their reuse
  // becomes same-iteration forward wiring.
  for (std::int64_t u = 0; u < factor; ++u) {
    const std::int64_t offset = u * target.step;
    const AffineFn affine = [&](const AffineExpr& e) {
      AffineExpr mapped = e;
      mapped.set_constant_term(e.constant_term() + e.coeff(level) * offset);
      return mapped;
    };
    const LoopVarFn loop_var = [&](int l) {
      if (l == level && offset != 0) {
        return Expr::make_bin(BinOpKind::kAdd, Expr::make_loop_var(l),
                              Expr::make_const(offset));
      }
      return Expr::make_loop_var(l);
    };
    for (const Stmt& stmt : kernel.body()) {
      out.add_stmt(Stmt(rewrite_access(stmt.lhs, affine),
                        rewrite_expr(*stmt.rhs, affine, loop_var)));
    }
  }
  out.validate();
  return out;
}

// The kernel with loop `level`'s range replaced by [lower, upper) — the
// splitting primitive behind remainder peeling. Bodies are deep-copied via
// the identity rewrite.
Kernel with_loop_bounds(const Kernel& kernel, int level, std::int64_t lower,
                        std::int64_t upper) {
  Kernel out(kernel.name());
  for (const ArrayDecl& array : kernel.arrays()) out.add_array(array);
  for (int l = 0; l < kernel.depth(); ++l) {
    Loop loop = kernel.loop(l);
    if (l == level) {
      loop.lower = lower;
      loop.upper = upper;
    }
    out.add_loop(loop);
  }
  const AffineFn affine = [](const AffineExpr& e) { return e; };
  const LoopVarFn loop_var = [](int l) { return Expr::make_loop_var(l); };
  return rewrite_body(kernel, std::move(out), affine, loop_var);
}

// ---- Dependence condition -------------------------------------------------

// True when `expr` is `lhs + rest` or `rest + lhs` with no other occurrence
// of lhs inside rest (a commutative accumulator update).
bool is_accumulator_update(const ArrayAccess& lhs, const Expr& expr) {
  if (expr.kind() != ExprKind::kBinOp || expr.bin_op() != BinOpKind::kAdd) return false;
  const auto counts_lhs = [&](const Expr& e) {
    int n = 0;
    e.for_each_ref([&](const ArrayAccess& access) {
      if (access == lhs) ++n;
    });
    return n;
  };
  const bool left_is_lhs =
      expr.lhs().kind() == ExprKind::kRef && expr.lhs().access() == lhs;
  const bool right_is_lhs =
      expr.rhs().kind() == ExprKind::kRef && expr.rhs().access() == lhs;
  if (left_is_lhs) return counts_lhs(expr.rhs()) == 0;
  if (right_is_lhs) return counts_lhs(expr.lhs()) == 0;
  return false;
}

// ---- Canonical encoding helpers -------------------------------------------

const char* kind_tag(TransformKind kind) {
  switch (kind) {
    case TransformKind::kInterchange: return "i";
    case TransformKind::kTile: return "t";
    case TransformKind::kUnrollJam: return "uj";
  }
  fail("unknown TransformKind");
}

// Bounded non-negative integer parse for transform arguments; the bound
// keeps std::stoll total and is far beyond any sane level/size/factor.
std::int64_t parse_arg(std::string_view token, const std::string& text) {
  const std::string value(trim(token));
  check(!value.empty() && value.size() <= 7 &&
            value.find_first_not_of("0123456789") == std::string::npos,
        cat("bad transform spec '", text, "': '", value,
            "' is not a non-negative integer"));
  return std::stoll(value);
}

}  // namespace

LoopTransform LoopTransform::interchange(std::vector<int> perm) {
  LoopTransform t;
  t.kind = TransformKind::kInterchange;
  t.perm = std::move(perm);
  return t;
}

LoopTransform LoopTransform::tile(int level, std::int64_t size) {
  LoopTransform t;
  t.kind = TransformKind::kTile;
  t.level = level;
  t.amount = size;
  return t;
}

LoopTransform LoopTransform::unroll_jam(int level, std::int64_t factor) {
  LoopTransform t;
  t.kind = TransformKind::kUnrollJam;
  t.level = level;
  t.amount = factor;
  return t;
}

Kernel apply_transform(const Kernel& kernel, const LoopTransform& t) {
  switch (t.kind) {
    case TransformKind::kInterchange: return apply_interchange(kernel, t.perm);
    case TransformKind::kTile: return apply_tile(kernel, t.level, t.amount);
    case TransformKind::kUnrollJam: return apply_unroll_jam(kernel, t.level, t.amount);
  }
  fail("unknown TransformKind");
}

Kernel apply(const Kernel& kernel, srra::span<const LoopTransform> transforms) {
  Kernel out = kernel.clone();
  for (const LoopTransform& t : transforms) out = apply_transform(out, t);
  return out;
}

PeeledNest apply_peeled(const Kernel& kernel, srra::span<const LoopTransform> transforms) {
  PeeledNest out;
  out.main = kernel.clone();
  int peels = 0;
  for (const LoopTransform& t : transforms) {
    if (t.kind == TransformKind::kTile) {
      check(t.level >= 0 && t.level < out.main.depth(), "tile level out of range");
      const Loop target = out.main.loop(t.level);
      const std::int64_t trip = target.trip_count();
      if (trip % t.amount != 0) {
        check(t.amount >= 2 && t.amount < trip,
              cat("tile size ", t.amount, " cannot peel loop ", target.var,
                  " with trip count ", trip));
        // Split at the last full-tile boundary: the main range keeps trip
        // - trip % size iterations (a multiple of the size, so the tile
        // below is full-tile), the remainder becomes an untiled epilogue.
        const std::int64_t split =
            target.lower + (trip - trip % t.amount) * target.step;
        Kernel epilogue = with_loop_bounds(out.main, t.level, split, target.upper);
        epilogue.set_name(cat(kernel.name(), "__peel", ++peels));
        out.epilogues.push_back(std::move(epilogue));
        out.main = with_loop_bounds(out.main, t.level, target.lower, split);
      }
    }
    out.main = apply_transform(out.main, t);
  }
  return out;
}

bool is_safe(const Kernel& kernel, const LoopTransform& t) {
  switch (t.kind) {
    case TransformKind::kInterchange: {
      if (!is_permutation(t.perm, kernel.depth())) return false;
      const bool identity = std::is_sorted(t.perm.begin(), t.perm.end());
      return identity || reorder_is_safe(kernel);
    }
    case TransformKind::kTile: {
      // Full-tile strip-mining replays the exact source iteration sequence,
      // so well-formedness is legality. A non-dividing size is applied with
      // remainder peeling (apply_peeled): main range first, remainder after.
      // At level 0 that *is* the source order (the outer ranges execute
      // back-to-back with their inner nests complete); at inner levels the
      // epilogue of an outer iteration runs after every outer iteration's
      // main range — a cross-iteration reorder needing reorder_is_safe.
      if (t.level < 0 || t.level >= kernel.depth() || t.amount < 2) return false;
      const std::int64_t trip = kernel.loop(t.level).trip_count();
      if (trip % t.amount == 0) return true;
      return t.amount < trip && (t.level == 0 || reorder_is_safe(kernel));
    }
    case TransformKind::kUnrollJam: {
      if (t.level < 0 || t.level >= kernel.depth() || t.amount < 2) return false;
      if (kernel.loop(t.level).trip_count() % t.amount != 0) return false;
      // Every access to a *written* array must be invariant in the unrolled
      // level: offset copies of such accesses would otherwise materialize
      // distinct, aliasing subscript patterns on one array, which the
      // group-based register model (one window per syntactic pattern, no
      // cross-group coherence) cannot represent — a held copy in one group
      // would go stale when another group writes the same element. Offset
      // copies of *read-only* arrays are exactly the forward-wire reuse the
      // transform exists to expose, and are harmless.
      std::vector<bool> written(kernel.arrays().size(), false);
      for (const Stmt& stmt : kernel.body()) {
        written[static_cast<std::size_t>(stmt.lhs.array_id)] = true;
      }
      const auto variant_in_level = [&](const ArrayAccess& access) {
        if (!written[static_cast<std::size_t>(access.array_id)]) return false;
        for (const AffineExpr& sub : access.subscripts) {
          if (!sub.invariant_in(t.level)) return true;
        }
        return false;
      };
      for (const Stmt& stmt : kernel.body()) {
        if (variant_in_level(stmt.lhs)) return false;
        bool bad = false;
        stmt.rhs->for_each_ref([&](const ArrayAccess& access) {
          if (variant_in_level(access)) bad = true;
        });
        if (bad) return false;
      }
      // Innermost unroll-and-jam concatenates adjacent iterations in source
      // order — always safe; outer levels interleave iterations of the
      // nested loops and need the dependence condition.
      return t.level == kernel.depth() - 1 || reorder_is_safe(kernel);
    }
  }
  fail("unknown TransformKind");
}

bool is_safe(const Kernel& kernel, srra::span<const LoopTransform> transforms) {
  // Later transforms apply to the peeled *main* nest (apply_peeled), so the
  // legality walk advances through the main piece of every peeled Tile.
  Kernel current = kernel.clone();
  for (const LoopTransform& t : transforms) {
    if (!is_safe(current, t)) return false;
    current = std::move(
        apply_peeled(current, srra::span<const LoopTransform>(&t, 1)).main);
  }
  return true;
}

std::string to_string(const LoopTransform& t) {
  std::vector<std::string> args;
  if (t.kind == TransformKind::kInterchange) {
    args.reserve(t.perm.size());
    for (const int level : t.perm) args.push_back(std::to_string(level));
  } else {
    args.push_back(std::to_string(t.level));
    args.push_back(std::to_string(t.amount));
  }
  return cat(kind_tag(t.kind), "(", join(args, ","), ")");
}

std::string to_string(srra::span<const LoopTransform> transforms) {
  std::vector<std::string> parts;
  parts.reserve(transforms.size());
  for (const LoopTransform& t : transforms) parts.push_back(to_string(t));
  return join(parts, ";");
}

std::vector<LoopTransform> parse_transforms(const std::string& text) {
  std::vector<LoopTransform> out;
  if (trim(text).empty()) return out;
  for (const std::string& token : split(text, ';')) {
    const std::string_view item = trim(token);
    check(!item.empty(), cat("bad transform spec '", text, "': empty transform"));
    const std::size_t open = item.find('(');
    check(open != std::string_view::npos && item.back() == ')',
          cat("bad transform spec '", text, "': want tag(args) in '", item, "'"));
    const std::string_view tag = trim(item.substr(0, open));
    const std::string args_text(item.substr(open + 1, item.size() - open - 2));
    std::vector<std::int64_t> args;
    for (const std::string& arg : split(args_text, ',')) {
      args.push_back(parse_arg(arg, text));
    }
    if (tag == "i") {
      check(args.size() >= 2, cat("bad transform spec '", text,
                                  "': i(...) needs at least two levels"));
      std::vector<int> perm;
      perm.reserve(args.size());
      for (const std::int64_t level : args) perm.push_back(static_cast<int>(level));
      out.push_back(LoopTransform::interchange(std::move(perm)));
    } else if (tag == "t" || tag == "uj") {
      check(args.size() == 2, cat("bad transform spec '", text, "': ", tag,
                                  "(...) takes (level, ", tag == "t" ? "size" : "factor",
                                  ")"));
      out.push_back(tag == "t"
                        ? LoopTransform::tile(static_cast<int>(args[0]), args[1])
                        : LoopTransform::unroll_jam(static_cast<int>(args[0]), args[1]));
    } else {
      fail(cat("bad transform spec '", text, "': unknown transform '", tag,
               "' (want i, t or uj)"));
    }
  }
  return out;
}

bool reorder_is_safe(const Kernel& kernel) {
  // Sufficient condition for every reordering our transform class performs.
  // Interchange, full tiling and unroll-and-jam all keep each loop counting
  // upward, so they preserve the relative order of any two iterations that
  // are componentwise comparable; only *incomparable* colliding iterations
  // can observe a reorder. Per written subscript pattern W we therefore
  // require:
  //
  //  1. no access to W's array under a different pattern (a loop-carried
  //     flow we do not model), and no second write pattern on the array;
  //  2. W injective over its non-free levels (mixed-radix digit condition
  //     on the linearized element index) — collisions then form a full box
  //     over the free levels (levels W does not depend on), whose
  //     componentwise-max corner is the last writer under every transform;
  //  3. when free levels exist (the element is touched by many iterations):
  //     a self-reading writer must be a commutative accumulator update
  //     `x = x + e` with no other reader (partial sums are order-sensitive),
  //     a non-self-reading writer admits readers only in *later* statements
  //     (same-iteration forwarding, which every reorder preserves), and
  //     multiple writer statements admit no readers at all.
  const std::vector<Stmt>& body = kernel.body();
  const int depth = kernel.depth();

  for (const Stmt& stmt : body) {
    for (const Stmt& other : body) {
      bool bad = false;
      other.rhs->for_each_ref([&](const ArrayAccess& access) {
        if (access.array_id == stmt.lhs.array_id && !(access == stmt.lhs)) bad = true;
      });
      if (bad) return false;
      if (&other != &stmt && other.lhs.array_id == stmt.lhs.array_id &&
          !(other.lhs == stmt.lhs)) {
        return false;  // two distinct write patterns on one array
      }
    }
  }

  for (std::size_t s = 0; s < body.size(); ++s) {
    const ArrayAccess& w = body[s].lhs;
    bool first = true;
    for (std::size_t t = 0; t < s && first; ++t) first = !(body[t].lhs == w);
    if (!first) continue;  // pattern group already analyzed

    // Linearized element index as a function of the normalized iteration
    // counters (loop steps folded into the coefficients).
    const ArrayDecl& decl = kernel.array(w.array_id);
    std::vector<std::int64_t> coeffs(static_cast<std::size_t>(depth), 0);
    std::int64_t stride = 1;
    for (int d = decl.rank() - 1; d >= 0; --d) {
      const AffineExpr& sub = w.subscripts[static_cast<std::size_t>(d)];
      for (int l = 0; l < depth; ++l) {
        coeffs[static_cast<std::size_t>(l)] += stride * sub.coeff(l) * kernel.loop(l).step;
      }
      stride *= decl.dims[static_cast<std::size_t>(d)];
    }

    // Digit condition over the varying non-free levels: sorted by
    // magnitude, every coefficient must exceed the total span of the
    // smaller ones, making the element index injective in those counters.
    std::vector<std::pair<std::int64_t, std::int64_t>> varying;  // (|coeff|, range)
    bool has_free = false;
    for (int l = 0; l < depth; ++l) {
      const std::int64_t range = kernel.loop(l).trip_count() - 1;
      if (range == 0) continue;  // single-trip level: no collisions along it
      const std::int64_t c = coeffs[static_cast<std::size_t>(l)];
      if (c == 0) {
        has_free = true;
      } else {
        varying.push_back({c < 0 ? -c : c, range});
      }
    }
    std::sort(varying.begin(), varying.end());
    std::int64_t span = 0;
    for (const auto& [magnitude, range] : varying) {
      if (magnitude <= span) return false;  // possible incomparable collision
      span += magnitude * range;
    }
    if (!has_free) continue;  // fully injective: one toucher per element

    std::vector<std::size_t> writers;
    for (std::size_t t = 0; t < body.size(); ++t) {
      if (body[t].lhs == w) writers.push_back(t);
    }
    const auto reads_pattern = [&](std::size_t t) {
      bool reads = false;
      body[t].rhs->for_each_ref([&](const ArrayAccess& access) {
        if (access == w) reads = true;
      });
      return reads;
    };
    if (writers.size() == 1) {
      const std::size_t writer = writers.front();
      if (reads_pattern(writer)) {
        if (!is_accumulator_update(w, *body[writer].rhs)) return false;
        for (std::size_t t = 0; t < body.size(); ++t) {
          if (t != writer && reads_pattern(t)) return false;
        }
      } else {
        for (std::size_t t = 0; t < writer; ++t) {
          if (reads_pattern(t)) return false;  // read-before-write chain
        }
      }
    } else {
      for (std::size_t t = 0; t < body.size(); ++t) {
        if (reads_pattern(t)) return false;
      }
    }
  }
  return true;
}

Kernel interchange_loops(const Kernel& kernel, int level_a, int level_b) {
  check(level_a >= 0 && level_a < kernel.depth(), "interchange level out of range");
  check(level_b >= 0 && level_b < kernel.depth(), "interchange level out of range");
  std::vector<int> perm(static_cast<std::size_t>(kernel.depth()));
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[static_cast<std::size_t>(level_a)], perm[static_cast<std::size_t>(level_b)]);
  return apply_interchange(kernel, perm);
}

bool interchange_is_safe(const Kernel& kernel) { return reorder_is_safe(kernel); }

}  // namespace srra
