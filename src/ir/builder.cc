#include "ir/builder.h"

#include "support/error.h"
#include "support/str.h"

namespace srra {

KernelBuilder& KernelBuilder::array(const std::string& name, std::vector<std::int64_t> dims,
                                    ScalarType type) {
  kernel_.add_array(ArrayDecl{name, std::move(dims), type});
  return *this;
}

KernelBuilder& KernelBuilder::loop(const std::string& var, std::int64_t lower,
                                   std::int64_t upper, std::int64_t step) {
  check(!frozen_, "all loops must be declared before building expressions");
  kernel_.add_loop(Loop{var, lower, upper, step});
  return *this;
}

AffineExpr KernelBuilder::var(const std::string& name) {
  frozen_ = true;
  for (int level = 0; level < kernel_.depth(); ++level) {
    if (kernel_.loop(level).var == name) {
      return AffineExpr::loop_var(kernel_.depth(), level);
    }
  }
  fail(cat("unknown loop variable: ", name));
}

AffineExpr KernelBuilder::lit(std::int64_t value) {
  frozen_ = true;
  return AffineExpr::constant(kernel_.depth(), value);
}

ArrayAccess KernelBuilder::make_access(const std::string& array,
                                       std::vector<AffineExpr> subscripts) {
  const auto id = kernel_.find_array(array);
  check(id.has_value(), cat("unknown array: ", array));
  return ArrayAccess{*id, std::move(subscripts)};
}

ExprPtr KernelBuilder::loop_expr(const std::string& name) {
  frozen_ = true;
  for (int level = 0; level < kernel_.depth(); ++level) {
    if (kernel_.loop(level).var == name) return Expr::make_loop_var(level);
  }
  fail(cat("unknown loop variable: ", name));
}

ExprPtr KernelBuilder::ref(const std::string& array, std::vector<AffineExpr> subscripts) {
  frozen_ = true;
  return Expr::make_ref(make_access(array, std::move(subscripts)));
}

KernelBuilder& KernelBuilder::assign(const std::string& array,
                                     std::vector<AffineExpr> subscripts, ExprPtr rhs) {
  frozen_ = true;
  kernel_.add_stmt(Stmt(make_access(array, std::move(subscripts)), std::move(rhs)));
  return *this;
}

Kernel KernelBuilder::build() {
  kernel_.validate();
  Kernel out = std::move(kernel_);
  kernel_ = Kernel();
  frozen_ = false;
  return out;
}

ExprPtr add(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kAdd, std::move(a), std::move(b)); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kSub, std::move(a), std::move(b)); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kMul, std::move(a), std::move(b)); }
ExprPtr div_op(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kDiv, std::move(a), std::move(b)); }
ExprPtr band(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kAnd, std::move(a), std::move(b)); }
ExprPtr bor(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kOr, std::move(a), std::move(b)); }
ExprPtr bxor(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kXor, std::move(a), std::move(b)); }
ExprPtr shl(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kShl, std::move(a), std::move(b)); }
ExprPtr shr(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kShr, std::move(a), std::move(b)); }
ExprPtr eq(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kEq, std::move(a), std::move(b)); }
ExprPtr ne(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kNe, std::move(a), std::move(b)); }
ExprPtr lt(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kLt, std::move(a), std::move(b)); }
ExprPtr le(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kLe, std::move(a), std::move(b)); }
ExprPtr min_op(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kMin, std::move(a), std::move(b)); }
ExprPtr max_op(ExprPtr a, ExprPtr b) { return Expr::make_bin(BinOpKind::kMax, std::move(a), std::move(b)); }
ExprPtr neg(ExprPtr a) { return Expr::make_un(UnOpKind::kNeg, std::move(a)); }
ExprPtr bnot(ExprPtr a) { return Expr::make_un(UnOpKind::kNot, std::move(a)); }
ExprPtr abs_op(ExprPtr a) { return Expr::make_un(UnOpKind::kAbs, std::move(a)); }

}  // namespace srra
