// Loop-body statements: assignments whose left-hand side is an affine array
// access and whose right-hand side is an expression tree. Accumulations such
// as `c[i][j] += a[i][k]*b[k][j]` are represented with the read of the LHS
// appearing inside the RHS.
#pragma once

#include "ir/expr.h"

namespace srra {

/// One assignment in the loop body.
struct Stmt {
  ArrayAccess lhs;
  ExprPtr rhs;

  Stmt() = default;
  Stmt(ArrayAccess lhs_access, ExprPtr rhs_expr)
      : lhs(std::move(lhs_access)), rhs(std::move(rhs_expr)) {}

  Stmt(Stmt&&) = default;
  Stmt& operator=(Stmt&&) = default;

  /// Deep copy (Stmt is move-only by default because of the ExprPtr).
  Stmt clone() const { return Stmt(lhs, rhs->clone()); }
};

}  // namespace srra
