#include "ir/lexer.h"

#include <cctype>

#include "support/error.h"
#include "support/str.h"

namespace srra {

const char* tok_kind_name(TokKind kind) {
  switch (kind) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "integer";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kColon: return "':'";
    case TokKind::kSemi: return "';'";
    case TokKind::kComma: return "','";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlusAssign: return "'+='";
    case TokKind::kDotDot: return "'..'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kAmp: return "'&'";
    case TokKind::kPipe: return "'|'";
    case TokKind::kCaret: return "'^'";
    case TokKind::kTilde: return "'~'";
    case TokKind::kShl: return "'<<'";
    case TokKind::kShr: return "'>>'";
    case TokKind::kEqEq: return "'=='";
    case TokKind::kNotEq: return "'!='";
    case TokKind::kLess: return "'<'";
    case TokKind::kLessEq: return "'<='";
    case TokKind::kEnd: return "end of input";
  }
  fail("unknown TokKind");
}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  bool done() const { return pos_ >= source_.size(); }
  char peek(std::size_t ahead = 0) const {
    const std::size_t at = pos_ + ahead;
    return at < source_.size() ? source_[at] : '\0';
  }
  char advance() {
    const char ch = source_[pos_++];
    if (ch == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return ch;
  }
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

[[noreturn]] void lex_error(const Cursor& cursor, std::string_view message) {
  fail(cat("lex error at ", cursor.line(), ":", cursor.column(), ": ", message));
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  const auto push = [&](TokKind kind, std::string text, int line, int column) {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.line = line;
    tok.column = column;
    tokens.push_back(std::move(tok));
  };

  while (!cur.done()) {
    const char ch = cur.peek();
    const int line = cur.line();
    const int column = cur.column();

    if (std::isspace(static_cast<unsigned char>(ch))) {
      cur.advance();
      continue;
    }
    if (ch == '#' || (ch == '/' && cur.peek(1) == '/')) {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      std::string text;
      while (!cur.done() && (std::isalnum(static_cast<unsigned char>(cur.peek())) || cur.peek() == '_')) {
        text.push_back(cur.advance());
      }
      push(TokKind::kIdent, std::move(text), line, column);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      std::string text;
      while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
        text.push_back(cur.advance());
      }
      Token tok;
      tok.kind = TokKind::kInt;
      tok.int_value = std::stoll(text);
      tok.text = std::move(text);
      tok.line = line;
      tok.column = column;
      tokens.push_back(std::move(tok));
      continue;
    }

    cur.advance();
    switch (ch) {
      case '{': push(TokKind::kLBrace, "{", line, column); break;
      case '}': push(TokKind::kRBrace, "}", line, column); break;
      case '[': push(TokKind::kLBracket, "[", line, column); break;
      case ']': push(TokKind::kRBracket, "]", line, column); break;
      case '(': push(TokKind::kLParen, "(", line, column); break;
      case ')': push(TokKind::kRParen, ")", line, column); break;
      case ':': push(TokKind::kColon, ":", line, column); break;
      case ';': push(TokKind::kSemi, ";", line, column); break;
      case ',': push(TokKind::kComma, ",", line, column); break;
      case '+':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokKind::kPlusAssign, "+=", line, column);
        } else {
          push(TokKind::kPlus, "+", line, column);
        }
        break;
      case '-': push(TokKind::kMinus, "-", line, column); break;
      case '*': push(TokKind::kStar, "*", line, column); break;
      case '/': push(TokKind::kSlash, "/", line, column); break;
      case '&': push(TokKind::kAmp, "&", line, column); break;
      case '|': push(TokKind::kPipe, "|", line, column); break;
      case '^': push(TokKind::kCaret, "^", line, column); break;
      case '~': push(TokKind::kTilde, "~", line, column); break;
      case '.':
        if (cur.peek() == '.') {
          cur.advance();
          push(TokKind::kDotDot, "..", line, column);
        } else {
          lex_error(cur, "expected '..'");
        }
        break;
      case '=':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokKind::kEqEq, "==", line, column);
        } else {
          push(TokKind::kAssign, "=", line, column);
        }
        break;
      case '!':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokKind::kNotEq, "!=", line, column);
        } else {
          lex_error(cur, "expected '!='");
        }
        break;
      case '<':
        if (cur.peek() == '<') {
          cur.advance();
          push(TokKind::kShl, "<<", line, column);
        } else if (cur.peek() == '=') {
          cur.advance();
          push(TokKind::kLessEq, "<=", line, column);
        } else {
          push(TokKind::kLess, "<", line, column);
        }
        break;
      case '>':
        if (cur.peek() == '>') {
          cur.advance();
          push(TokKind::kShr, ">>", line, column);
        } else {
          lex_error(cur, "expected '>>'");
        }
        break;
      default:
        lex_error(cur, cat("unexpected character '", std::string(1, ch), "'"));
    }
  }

  Token end;
  end.kind = TokKind::kEnd;
  end.line = cur.line();
  end.column = cur.column();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace srra
