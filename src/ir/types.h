// Scalar element types for arrays and datapath values. The paper's kernels
// operate on 8/16/32-bit fixed-point data; the simulator computes in 64-bit
// and narrows on store, which matches a hardware datapath of the declared
// width with wrap-around semantics.
#pragma once

#include <cstdint>
#include <string>

namespace srra {

/// 64-bit value type used by the interpreter and machine simulator.
using Value = std::int64_t;

/// Element type of an array (bit width + signedness).
enum class ScalarType { kU8, kS8, kU16, kS16, kU32, kS32 };

/// Number of bits in a ScalarType.
int bit_width(ScalarType type);

/// True for signed types.
bool is_signed(ScalarType type);

/// Wraps `value` to the range representable by `type` (two's complement).
Value truncate_to(ScalarType type, Value value);

/// Short name, e.g. "u8" / "s16"; matches the kernel DSL spelling.
std::string type_name(ScalarType type);

/// Parses a DSL type name; throws srra::Error on unknown names.
ScalarType parse_type(const std::string& name);

}  // namespace srra
