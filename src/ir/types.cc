#include "ir/types.h"

#include "support/error.h"
#include "support/str.h"

namespace srra {

int bit_width(ScalarType type) {
  switch (type) {
    case ScalarType::kU8:
    case ScalarType::kS8:
      return 8;
    case ScalarType::kU16:
    case ScalarType::kS16:
      return 16;
    case ScalarType::kU32:
    case ScalarType::kS32:
      return 32;
  }
  fail("unknown ScalarType");
}

bool is_signed(ScalarType type) {
  switch (type) {
    case ScalarType::kS8:
    case ScalarType::kS16:
    case ScalarType::kS32:
      return true;
    default:
      return false;
  }
}

Value truncate_to(ScalarType type, Value value) {
  const int bits = bit_width(type);
  const auto raw = static_cast<std::uint64_t>(value);
  const std::uint64_t mask = (bits == 64) ? ~0ULL : ((1ULL << bits) - 1);
  std::uint64_t narrowed = raw & mask;
  if (is_signed(type)) {
    const std::uint64_t sign_bit = 1ULL << (bits - 1);
    if (narrowed & sign_bit) narrowed |= ~mask;
  }
  return static_cast<Value>(narrowed);
}

std::string type_name(ScalarType type) {
  switch (type) {
    case ScalarType::kU8: return "u8";
    case ScalarType::kS8: return "s8";
    case ScalarType::kU16: return "u16";
    case ScalarType::kS16: return "s16";
    case ScalarType::kU32: return "u32";
    case ScalarType::kS32: return "s32";
  }
  fail("unknown ScalarType");
}

ScalarType parse_type(const std::string& name) {
  if (name == "u8") return ScalarType::kU8;
  if (name == "s8") return ScalarType::kS8;
  if (name == "u16") return ScalarType::kU16;
  if (name == "s16") return ScalarType::kS16;
  if (name == "u32") return ScalarType::kU32;
  if (name == "s32") return ScalarType::kS32;
  fail(cat("unknown scalar type name: ", name));
}

}  // namespace srra
