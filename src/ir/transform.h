// Composable loop-nest transformations. A LoopTransform is a value
// describing one rewrite of a perfect nest; sequences of them compose with
// apply() and are what the DSE engine enumerates as its transform axis
// (dse/space.h). Three kinds are supported:
//
//  * Interchange{perm} — permutes the loops (new level l holds source level
//    perm[l]), remapping every affine subscript and loop-variable
//    expression. Reuse-carrying levels move with it, which changes every
//    allocator's behaviour — exercised by bench_transforms.
//  * Tile{level, size} — strip-mines loop `level` into a tile loop `vt`
//    (same bounds, step scaled by `size`) and a point loop `vi`
//    (0..step*size by step) inserted directly below, with v = vt + vi.
//    Subscripts stay affine (the coefficient of v appears at both new
//    levels). The full-tile precondition (`size` divides the trip count)
//    keeps the nest perfect — no remainder peeling — and makes pure
//    strip-mining an exact reordering of nothing: the iteration sequence is
//    unchanged, only the *level structure* the register-window policy sees.
//    That is the Domagała-style lever: a window that fits nowhere in the
//    source nest fits at the point loop of a small tile.
//  * UnrollJam{level, factor} — advances loop `level` by `factor` steps at
//    a time and jams the unrolled bodies: the statement list is replicated
//    `factor` times with constant-offset subscripts (v -> v + u*step), so
//    cross-iteration reuse at `level` becomes same-iteration forward wiring
//    visible to the walker.
//
// Legality (is_safe): tiling is always semantics-preserving under the
// full-tile precondition; interchange and unroll-and-jam reorder cross-
// iteration execution and additionally require the conservative dependence
// condition of reorder_is_safe — every statement either writes an element
// never re-read across iterations, or is a commutative accumulator update
// `x = x + e` (whose arithmetic commutes under the wrap-around semantics of
// the datapath). Unroll-and-jam of the *innermost* loop only concatenates
// adjacent iterations in source order, so it is exempt.
//
// Canonical text encoding, parsed and printed for reports and the CLI:
//   i(2,0,1);t(1,8);uj(0,2)
// applies the interchange first, then the tile, then the unroll-and-jam;
// levels always refer to the nest produced by the previous transform.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/kernel.h"
#include "support/span.h"

namespace srra {

/// Transform kinds, in canonical-encoding tag order.
enum class TransformKind { kInterchange, kTile, kUnrollJam };

/// One loop-nest rewrite (see header comment for semantics and legality).
struct LoopTransform {
  TransformKind kind = TransformKind::kInterchange;
  std::vector<int> perm;      ///< kInterchange: perm[new level] = source level
  int level = 0;              ///< kTile / kUnrollJam: target loop level
  std::int64_t amount = 0;    ///< kTile: tile size; kUnrollJam: unroll factor

  static LoopTransform interchange(std::vector<int> perm);
  static LoopTransform tile(int level, std::int64_t size);
  static LoopTransform unroll_jam(int level, std::int64_t factor);

  bool operator==(const LoopTransform& other) const {
    return kind == other.kind && perm == other.perm && level == other.level &&
           amount == other.amount;
  }
  bool operator!=(const LoopTransform& other) const { return !(*this == other); }
};

/// Applies one transform; throws srra::Error when it is malformed for the
/// kernel (bad level/permutation, non-dividing tile size or unroll factor).
/// Semantic legality is is_safe's job — apply() performs the rewrite even
/// when the dependence condition does not hold (the fuzz suites rely on
/// that to cross-check the analyzers on reordered kernels).
Kernel apply_transform(const Kernel& kernel, const LoopTransform& t);

/// Applies a sequence left to right.
Kernel apply(const Kernel& kernel, srra::span<const LoopTransform> transforms);

/// Per-transform legality: well-formed for this kernel AND semantics-
/// preserving (see header comment).
bool is_safe(const Kernel& kernel, const LoopTransform& t);

/// Sequence legality: every prefix transform is safe on the kernel produced
/// by the transforms before it.
bool is_safe(const Kernel& kernel, srra::span<const LoopTransform> transforms);

/// Canonical encoding of one transform, e.g. "i(2,0,1)", "t(1,8)", "uj(0,2)".
std::string to_string(const LoopTransform& t);

/// Canonical encoding of a sequence, ";"-joined; "" for the empty sequence.
std::string to_string(srra::span<const LoopTransform> transforms);

/// Parses the canonical encoding ("" -> empty sequence). Whitespace around
/// tokens is ignored. Throws srra::Error on malformed input.
std::vector<LoopTransform> parse_transforms(const std::string& text);

/// The conservative dependence condition shared by interchange and
/// unroll-and-jam (see header comment): true when reordering the kernel's
/// cross-iteration execution cannot change its results.
bool reorder_is_safe(const Kernel& kernel);

/// Returns the kernel with loops `level_a` and `level_b` swapped — the
/// pairwise special case of Interchange{perm}, kept for callers that think
/// in swaps (tests, examples).
Kernel interchange_loops(const Kernel& kernel, int level_a, int level_b);

/// Legality of interchange_loops: alias of reorder_is_safe.
bool interchange_is_safe(const Kernel& kernel);

}  // namespace srra
