// Composable loop-nest transformations. A LoopTransform is a value
// describing one rewrite of a perfect nest; sequences of them compose with
// apply() and are what the DSE engine enumerates as its transform axis
// (dse/space.h). Three kinds are supported:
//
//  * Interchange{perm} — permutes the loops (new level l holds source level
//    perm[l]), remapping every affine subscript and loop-variable
//    expression. Reuse-carrying levels move with it, which changes every
//    allocator's behaviour — exercised by bench_transforms.
//  * Tile{level, size} — strip-mines loop `level` into a tile loop `vt`
//    (same bounds, step scaled by `size`) and a point loop `vi`
//    (0..step*size by step) inserted directly below, with v = vt + vi.
//    Subscripts stay affine (the coefficient of v appears at both new
//    levels). When `size` divides the trip count the nest stays perfect and
//    pure strip-mining is an exact reordering of nothing: the iteration
//    sequence is unchanged, only the *level structure* the register-window
//    policy sees. That is the Domagała-style lever: a window that fits
//    nowhere in the source nest fits at the point loop of a small tile.
//    Non-dividing sizes are handled by *remainder peeling* (apply_peeled):
//    the loop is split at the last full-tile boundary into a main range
//    (tiled, still perfect) and an untiled epilogue nest covering the
//    remaining trip % size iterations — together a PeeledNest, the repo's
//    representation of an imperfect nest as a sequence of perfect ones.
//  * UnrollJam{level, factor} — advances loop `level` by `factor` steps at
//    a time and jams the unrolled bodies: the statement list is replicated
//    `factor` times with constant-offset subscripts (v -> v + u*step), so
//    cross-iteration reuse at `level` becomes same-iteration forward wiring
//    visible to the walker.
//
// Legality (is_safe): a full tile is always semantics-preserving; a peeled
// tile executes the whole main range before the whole remainder range, which
// is the source order when the peeled loop is outermost (level 0) and a
// cross-iteration reorder otherwise, so outer-level peeling is always legal
// and inner-level peeling requires reorder_is_safe. Interchange and
// unroll-and-jam reorder cross-iteration execution and require the
// conservative dependence condition of reorder_is_safe — every statement either writes an element
// never re-read across iterations, or is a commutative accumulator update
// `x = x + e` (whose arithmetic commutes under the wrap-around semantics of
// the datapath). Unroll-and-jam of the *innermost* loop only concatenates
// adjacent iterations in source order, so it is exempt.
//
// Canonical text encoding, parsed and printed for reports and the CLI:
//   i(2,0,1);t(1,8);uj(0,2)
// applies the interchange first, then the tile, then the unroll-and-jam;
// levels always refer to the nest produced by the previous transform.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/kernel.h"
#include "support/span.h"

namespace srra {

/// Transform kinds, in canonical-encoding tag order.
enum class TransformKind { kInterchange, kTile, kUnrollJam };

/// One loop-nest rewrite (see header comment for semantics and legality).
struct LoopTransform {
  TransformKind kind = TransformKind::kInterchange;
  std::vector<int> perm;      ///< kInterchange: perm[new level] = source level
  int level = 0;              ///< kTile / kUnrollJam: target loop level
  std::int64_t amount = 0;    ///< kTile: tile size; kUnrollJam: unroll factor

  static LoopTransform interchange(std::vector<int> perm);
  static LoopTransform tile(int level, std::int64_t size);
  static LoopTransform unroll_jam(int level, std::int64_t factor);

  bool operator==(const LoopTransform& other) const {
    return kind == other.kind && perm == other.perm && level == other.level &&
           amount == other.amount;
  }
  bool operator!=(const LoopTransform& other) const { return !(*this == other); }
};

/// Applies one transform; throws srra::Error when it is malformed for the
/// kernel (bad level/permutation, non-dividing tile size or unroll factor).
/// Semantic legality is is_safe's job — apply() performs the rewrite even
/// when the dependence condition does not hold (the fuzz suites rely on
/// that to cross-check the analyzers on reordered kernels).
Kernel apply_transform(const Kernel& kernel, const LoopTransform& t);

/// Applies a sequence left to right.
Kernel apply(const Kernel& kernel, srra::span<const LoopTransform> transforms);

/// A transformed nest with remainder epilogues: `main` is the (still
/// perfect) transformed kernel covering the full-tile range of every peeled
/// Tile, and `epilogues` are the peeled-off remainder nests, in peel order.
/// Executing main then every epilogue in order computes exactly what the
/// source kernel computes (when the sequence is_safe). Most sequences peel
/// nothing and epilogues is empty.
struct PeeledNest {
  Kernel main;
  std::vector<Kernel> epilogues;

  bool peeled() const { return !epilogues.empty(); }
};

/// Applies a sequence left to right with remainder peeling: a Tile whose
/// size does not divide the target trip count first splits the loop at the
/// last full-tile boundary — the main range keeps the tile (full-tile by
/// construction), the remainder becomes an untiled epilogue kernel. Later
/// transforms apply to the main nest only; epilogues accumulate in peel
/// order. Throws srra::Error on malformed transforms (size >= trip, bad
/// levels, non-dividing unroll factors).
PeeledNest apply_peeled(const Kernel& kernel, srra::span<const LoopTransform> transforms);

/// Per-transform legality: well-formed for this kernel AND semantics-
/// preserving (see header comment).
bool is_safe(const Kernel& kernel, const LoopTransform& t);

/// Sequence legality: every prefix transform is safe on the kernel produced
/// by the transforms before it.
bool is_safe(const Kernel& kernel, srra::span<const LoopTransform> transforms);

/// Canonical encoding of one transform, e.g. "i(2,0,1)", "t(1,8)", "uj(0,2)".
std::string to_string(const LoopTransform& t);

/// Canonical encoding of a sequence, ";"-joined; "" for the empty sequence.
std::string to_string(srra::span<const LoopTransform> transforms);

/// Parses the canonical encoding ("" -> empty sequence). Whitespace around
/// tokens is ignored. Throws srra::Error on malformed input.
std::vector<LoopTransform> parse_transforms(const std::string& text);

/// The conservative dependence condition shared by interchange and
/// unroll-and-jam (see header comment): true when reordering the kernel's
/// cross-iteration execution cannot change its results.
bool reorder_is_safe(const Kernel& kernel);

/// Returns the kernel with loops `level_a` and `level_b` swapped — the
/// pairwise special case of Interchange{perm}, kept for callers that think
/// in swaps (tests, examples).
Kernel interchange_loops(const Kernel& kernel, int level_a, int level_b);

/// Legality of interchange_loops: alias of reorder_is_safe.
bool interchange_is_safe(const Kernel& kernel);

}  // namespace srra
