// Loop-nest transformations. Interchange permutes the loops of a perfect
// nest (remapping every affine subscript and loop-variable expression);
// reuse-carrying levels move with it, which changes every allocator's
// behaviour — exercised by bench_interchange.
//
// Interchange is only semantics-preserving when the loop-carried
// dependences allow it; `interchange_is_safe` implements a conservative
// sufficient condition (all writes either have no cross-iteration reuse, or
// are pure accumulator updates of the form `x = x + ...` whose arithmetic
// commutes under the wrap-around semantics of the datapath).
#pragma once

#include "ir/kernel.h"

namespace srra {

/// Returns the kernel with loops `level_a` and `level_b` swapped.
Kernel interchange_loops(const Kernel& kernel, int level_a, int level_b);

/// Conservative legality check for interchange_loops (see header comment).
bool interchange_is_safe(const Kernel& kernel);

}  // namespace srra
