#include "ir/affine.h"

#include "support/error.h"
#include "support/str.h"

namespace srra {

AffineExpr AffineExpr::loop_var(int depth, int level, std::int64_t coeff) {
  AffineExpr expr(depth);
  expr.set_coeff(level, coeff);
  return expr;
}

AffineExpr AffineExpr::constant(int depth, std::int64_t value) {
  AffineExpr expr(depth);
  expr.constant_ = value;
  return expr;
}

std::int64_t AffineExpr::coeff(int level) const {
  check(level >= 0 && level < depth(), "affine coefficient level out of range");
  return coeffs_[static_cast<std::size_t>(level)];
}

void AffineExpr::set_coeff(int level, std::int64_t value) {
  check(level >= 0 && level < depth(), "affine coefficient level out of range");
  coeffs_[static_cast<std::size_t>(level)] = value;
}

std::int64_t AffineExpr::evaluate(srra::span<const std::int64_t> iteration) const {
  check(static_cast<int>(iteration.size()) == depth(),
        "iteration vector size must match affine depth");
  std::int64_t sum = constant_;
  for (int l = 0; l < depth(); ++l) sum += coeffs_[static_cast<std::size_t>(l)] * iteration[static_cast<std::size_t>(l)];
  return sum;
}

bool AffineExpr::is_constant() const {
  for (std::int64_t c : coeffs_)
    if (c != 0) return false;
  return true;
}

AffineExpr AffineExpr::operator+(const AffineExpr& other) const {
  check(depth() == other.depth(), "affine depth mismatch");
  AffineExpr out(depth());
  for (int l = 0; l < depth(); ++l) out.set_coeff(l, coeff(l) + other.coeff(l));
  out.constant_ = constant_ + other.constant_;
  return out;
}

AffineExpr AffineExpr::operator-(const AffineExpr& other) const {
  return *this + other.scaled(-1);
}

AffineExpr AffineExpr::scaled(std::int64_t factor) const {
  AffineExpr out(depth());
  for (int l = 0; l < depth(); ++l) out.set_coeff(l, coeff(l) * factor);
  out.constant_ = constant_ * factor;
  return out;
}

std::string AffineExpr::to_string(srra::span<const std::string> loop_names) const {
  check(static_cast<int>(loop_names.size()) == depth(), "loop name count mismatch");
  std::string out;
  for (int l = 0; l < depth(); ++l) {
    const std::int64_t c = coeff(l);
    if (c == 0) continue;
    if (!out.empty()) out += c > 0 ? " + " : " - ";
    else if (c < 0) out += "-";
    const std::int64_t mag = c > 0 ? c : -c;
    if (mag != 1) out += cat(mag, "*");
    out += loop_names[static_cast<std::size_t>(l)];
  }
  if (constant_ != 0 || out.empty()) {
    if (out.empty()) {
      out = std::to_string(constant_);
    } else {
      out += constant_ > 0 ? " + " : " - ";
      out += std::to_string(constant_ > 0 ? constant_ : -constant_);
    }
  }
  return out;
}

}  // namespace srra
