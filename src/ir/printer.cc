#include "ir/printer.h"

#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace srra {

namespace {

// Binding strength for minimal parenthesization (higher binds tighter).
int precedence(BinOpKind op) {
  switch (op) {
    case BinOpKind::kMul:
    case BinOpKind::kDiv:
      return 5;
    case BinOpKind::kAdd:
    case BinOpKind::kSub:
      return 4;
    case BinOpKind::kShl:
    case BinOpKind::kShr:
      return 3;
    case BinOpKind::kEq:
    case BinOpKind::kNe:
    case BinOpKind::kLt:
    case BinOpKind::kLe:
      return 2;
    case BinOpKind::kAnd:
    case BinOpKind::kOr:
    case BinOpKind::kXor:
      return 1;
    case BinOpKind::kMin:
    case BinOpKind::kMax:
      return 6;  // printed as calls, never need parens
  }
  fail("unknown BinOpKind");
}

bool is_call_style(BinOpKind op) {
  return op == BinOpKind::kMin || op == BinOpKind::kMax;
}

std::string render(const Kernel& kernel, const Expr& expr, int parent_prec) {
  switch (expr.kind()) {
    case ExprKind::kConst:
      return std::to_string(expr.const_value());
    case ExprKind::kLoopVar:
      return kernel.loop(expr.loop_level()).var;
    case ExprKind::kRef:
      return access_to_string(kernel, expr.access());
    case ExprKind::kUnOp: {
      const std::string inner = render(kernel, expr.operand(), 7);
      if (expr.un_op() == UnOpKind::kAbs) return cat("abs(", inner, ")");
      return cat(un_op_name(expr.un_op()), inner);
    }
    case ExprKind::kBinOp: {
      const BinOpKind op = expr.bin_op();
      if (is_call_style(op)) {
        return cat(op == BinOpKind::kMin ? "min" : "max", "(",
                   render(kernel, expr.lhs(), 0), ", ", render(kernel, expr.rhs(), 0), ")");
      }
      const int prec = precedence(op);
      // Right operand gets prec+1 so non-associative chains stay explicit.
      const std::string body = cat(render(kernel, expr.lhs(), prec), " ", bin_op_name(op),
                                   " ", render(kernel, expr.rhs(), prec + 1));
      if (prec < parent_prec) return cat("(", body, ")");
      return body;
    }
  }
  fail("unknown ExprKind");
}

}  // namespace

std::string expr_to_string(const Kernel& kernel, const Expr& expr) {
  return render(kernel, expr, 0);
}

std::string access_to_string(const Kernel& kernel, const ArrayAccess& access) {
  const std::vector<std::string> names = kernel.loop_names();
  std::string out = kernel.array(access.array_id).name;
  for (const AffineExpr& sub : access.subscripts) {
    out += cat("[", sub.to_string(names), "]");
  }
  return out;
}

std::string kernel_to_string(const Kernel& kernel) {
  std::ostringstream os;
  os << "kernel " << kernel.name() << " {\n";
  for (const ArrayDecl& a : kernel.arrays()) {
    os << "  array " << a.name;
    for (std::int64_t d : a.dims) os << '[' << d << ']';
    os << " : " << type_name(a.type) << ";\n";
  }
  std::string indent = "  ";
  for (int level = 0; level < kernel.depth(); ++level) {
    const Loop& l = kernel.loop(level);
    os << indent << "for " << l.var << " in " << l.lower << ".." << l.upper;
    if (l.step != 1) os << " step " << l.step;
    os << " {\n";
    indent += "  ";
  }
  for (const Stmt& s : kernel.body()) {
    os << indent << access_to_string(kernel, s.lhs) << " = "
       << expr_to_string(kernel, *s.rhs) << ";\n";
  }
  for (int level = kernel.depth() - 1; level >= 0; --level) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace srra
