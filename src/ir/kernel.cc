#include "ir/kernel.h"

#include <set>

#include "support/error.h"
#include "support/str.h"

namespace srra {

Kernel Kernel::clone() const {
  Kernel out(name_);
  out.arrays_ = arrays_;
  out.loops_ = loops_;
  out.body_.reserve(body_.size());
  for (const Stmt& s : body_) out.body_.push_back(s.clone());
  return out;
}

int Kernel::add_array(ArrayDecl decl) {
  check(!decl.name.empty(), "array needs a name");
  check(!find_array(decl.name).has_value(), cat("duplicate array name: ", decl.name));
  for (std::int64_t d : decl.dims) check(d > 0, "array dimensions must be positive");
  arrays_.push_back(std::move(decl));
  return static_cast<int>(arrays_.size()) - 1;
}

const ArrayDecl& Kernel::array(int id) const {
  check(id >= 0 && id < static_cast<int>(arrays_.size()), "array id out of range");
  return arrays_[static_cast<std::size_t>(id)];
}

std::optional<int> Kernel::find_array(const std::string& name) const {
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    if (arrays_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

int Kernel::add_loop(Loop loop) {
  check(!loop.var.empty(), "loop needs a variable name");
  for (const Loop& existing : loops_) {
    check(existing.var != loop.var, cat("duplicate loop variable: ", loop.var));
  }
  check(loop.step > 0, "loop step must be positive");
  loops_.push_back(std::move(loop));
  return static_cast<int>(loops_.size()) - 1;
}

const Loop& Kernel::loop(int level) const {
  check(level >= 0 && level < depth(), "loop level out of range");
  return loops_[static_cast<std::size_t>(level)];
}

void Kernel::add_stmt(Stmt stmt) {
  check(stmt.rhs != nullptr, "statement needs a right-hand side");
  body_.push_back(std::move(stmt));
}

std::vector<std::int64_t> Kernel::trip_counts() const {
  std::vector<std::int64_t> trips;
  trips.reserve(loops_.size());
  for (const Loop& l : loops_) trips.push_back(l.trip_count());
  return trips;
}

std::int64_t Kernel::iteration_count() const {
  std::int64_t total = 1;
  for (const Loop& l : loops_) total *= l.trip_count();
  return total;
}

std::vector<std::string> Kernel::loop_names() const {
  std::vector<std::string> names;
  names.reserve(loops_.size());
  for (const Loop& l : loops_) names.push_back(l.var);
  return names;
}

namespace {

void validate_access(const Kernel& kernel, const ArrayAccess& access) {
  const ArrayDecl& decl = kernel.array(access.array_id);
  check(static_cast<int>(access.subscripts.size()) == decl.rank(),
        cat("subscript count mismatch for array ", decl.name));
  for (const AffineExpr& sub : access.subscripts) {
    check(sub.depth() == kernel.depth(),
          cat("subscript depth mismatch for array ", decl.name));
  }
}

void validate_expr(const Kernel& kernel, const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kConst:
      return;
    case ExprKind::kLoopVar:
      check(expr.loop_level() < kernel.depth(), "loop variable level out of range");
      return;
    case ExprKind::kRef:
      validate_access(kernel, expr.access());
      return;
    case ExprKind::kBinOp:
      validate_expr(kernel, expr.lhs());
      validate_expr(kernel, expr.rhs());
      return;
    case ExprKind::kUnOp:
      validate_expr(kernel, expr.operand());
      return;
  }
}

}  // namespace

namespace {

// FNV-1a-style mixing; the odd multiplier plus xor-shift keeps short integer
// sequences from colliding on their sums.
void hash_mix(std::uint64_t& h, std::uint64_t value) {
  h ^= value + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0x100000001B3ull;
}

void hash_affine(std::uint64_t& h, const AffineExpr& e) {
  hash_mix(h, 0xA11);
  for (int l = 0; l < e.depth(); ++l) hash_mix(h, static_cast<std::uint64_t>(e.coeff(l)));
  hash_mix(h, static_cast<std::uint64_t>(e.constant_term()));
}

void hash_access(std::uint64_t& h, const ArrayAccess& access) {
  hash_mix(h, 0xACC);
  hash_mix(h, static_cast<std::uint64_t>(access.array_id));
  for (const AffineExpr& sub : access.subscripts) hash_affine(h, sub);
}

void hash_expr(std::uint64_t& h, const Expr& e) {
  hash_mix(h, static_cast<std::uint64_t>(e.kind()));
  switch (e.kind()) {
    case ExprKind::kConst:
      hash_mix(h, static_cast<std::uint64_t>(e.const_value()));
      return;
    case ExprKind::kLoopVar:
      hash_mix(h, static_cast<std::uint64_t>(e.loop_level()));
      return;
    case ExprKind::kRef:
      hash_access(h, e.access());
      return;
    case ExprKind::kBinOp:
      hash_mix(h, static_cast<std::uint64_t>(e.bin_op()));
      hash_expr(h, e.lhs());
      hash_expr(h, e.rhs());
      return;
    case ExprKind::kUnOp:
      hash_mix(h, static_cast<std::uint64_t>(e.un_op()));
      hash_expr(h, e.operand());
      return;
  }
}

}  // namespace

std::uint64_t structural_hash(const Kernel& kernel) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  hash_mix(h, static_cast<std::uint64_t>(kernel.depth()));
  for (const Loop& loop : kernel.loops()) {
    hash_mix(h, static_cast<std::uint64_t>(loop.lower));
    hash_mix(h, static_cast<std::uint64_t>(loop.upper));
    hash_mix(h, static_cast<std::uint64_t>(loop.step));
  }
  hash_mix(h, static_cast<std::uint64_t>(kernel.arrays().size()));
  for (const ArrayDecl& array : kernel.arrays()) {
    hash_mix(h, static_cast<std::uint64_t>(array.type));
    for (const std::int64_t dim : array.dims) hash_mix(h, static_cast<std::uint64_t>(dim));
  }
  hash_mix(h, static_cast<std::uint64_t>(kernel.body().size()));
  for (const Stmt& stmt : kernel.body()) {
    hash_access(h, stmt.lhs);
    hash_expr(h, *stmt.rhs);
  }
  return h;
}

void Kernel::validate() const {
  check(!loops_.empty(), "kernel needs at least one loop");
  check(!body_.empty(), "kernel needs at least one statement");
  for (const Loop& l : loops_) {
    check(l.trip_count() > 0, cat("loop ", l.var, " has zero trip count"));
  }
  for (const Stmt& s : body_) {
    validate_access(*this, s.lhs);
    validate_expr(*this, *s.rhs);
  }
}

}  // namespace srra
