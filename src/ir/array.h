// Array declarations. Every high-level program variable in a kernel is an
// array (scalars are 1-element arrays); the compiler decides which elements
// live in registers and which in RAM blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.h"

namespace srra {

/// Declaration of one array variable in a kernel.
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> dims;  ///< extent per dimension, all > 0
  ScalarType type = ScalarType::kS32;

  /// Total number of elements.
  std::int64_t element_count() const {
    std::int64_t n = 1;
    for (std::int64_t d : dims) n *= d;
    return n;
  }

  /// Total storage in bits (elements * element width).
  std::int64_t bit_count() const { return element_count() * bit_width(type); }

  int rank() const { return static_cast<int>(dims.size()); }
};

}  // namespace srra
