// Small integer linear algebra for reuse analysis: the integer nullspace of
// an access matrix yields the candidate reuse distance vectors (iteration
// differences that touch the same array element).
#pragma once

#include <cstdint>
#include <vector>

namespace srra {

/// Dense integer matrix, row-major.
struct IntMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<std::int64_t> data;

  IntMatrix() = default;
  IntMatrix(int r, int c) : rows(r), cols(c), data(static_cast<std::size_t>(r) * c, 0) {}

  std::int64_t& at(int r, int c) { return data[static_cast<std::size_t>(r) * cols + c]; }
  std::int64_t at(int r, int c) const { return data[static_cast<std::size_t>(r) * cols + c]; }
};

/// gcd of two values (non-negative result, gcd(0,0) == 0).
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Divides a vector by the gcd of its entries (no-op for the zero vector).
void normalize_primitive(std::vector<std::int64_t>& v);

/// Integer basis of the nullspace of `m` (vectors x with m*x == 0), computed
/// by fraction-free Gaussian elimination. Each basis vector is primitive
/// (entries have gcd 1). The basis size equals cols - rank(m).
std::vector<std::vector<std::int64_t>> integer_nullspace(const IntMatrix& m);

}  // namespace srra
