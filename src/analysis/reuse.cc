#include "analysis/reuse.h"

#include <algorithm>
#include <unordered_set>

#include "analysis/intlin.h"
#include "support/error.h"

namespace srra {

std::int64_t ReuseInfo::beta_at(int level) const {
  for (const CarryLevel& cl : levels) {
    if (cl.level == level) return cl.beta;
  }
  return -1;
}

std::int64_t element_at(const Kernel& kernel, const ArrayAccess& access,
                        srra::span<const std::int64_t> iteration) {
  const ArrayDecl& decl = kernel.array(access.array_id);
  std::int64_t flat = 0;
  for (int d = 0; d < decl.rank(); ++d) {
    const std::int64_t idx = access.subscripts[static_cast<std::size_t>(d)].evaluate(iteration);
    flat = flat * decl.dims[static_cast<std::size_t>(d)] + idx;
  }
  return flat;
}

AffineExpr linearize_access(const Kernel& kernel, const ArrayAccess& access) {
  const ArrayDecl& decl = kernel.array(access.array_id);
  AffineExpr flat(kernel.depth());
  for (int d = 0; d < decl.rank(); ++d) {
    flat = flat.scaled(decl.dims[static_cast<std::size_t>(d)]) +
           access.subscripts[static_cast<std::size_t>(d)];
  }
  return flat;
}

std::vector<std::int64_t> access_shift_profile(const Kernel& kernel,
                                               const ArrayAccess& access) {
  const AffineExpr flat = linearize_access(kernel, access);
  std::vector<std::int64_t> shifts(static_cast<std::size_t>(kernel.depth()), 0);
  for (int l = 0; l < kernel.depth(); ++l) {
    shifts[static_cast<std::size_t>(l)] = flat.coeff(l) * kernel.loop(l).step;
  }
  return shifts;
}

namespace {

// Builds the access matrix: one row per array dimension, one column per loop
// level; entry = subscript coefficient scaled by the loop step, so that
// distance vectors (measured in iteration steps, the unit `feasible`
// compares against trip counts) map to subscript deltas. The scaling only
// matters for non-unit steps — the tile loops ir/transform.h introduces;
// on unit-step nests it is the plain coefficient matrix.
IntMatrix access_matrix(const Kernel& kernel, const ArrayAccess& access) {
  const int rank = static_cast<int>(access.subscripts.size());
  IntMatrix m(rank, kernel.depth());
  for (int r = 0; r < rank; ++r) {
    for (int l = 0; l < kernel.depth(); ++l) {
      m.at(r, l) =
          access.subscripts[static_cast<std::size_t>(r)].coeff(l) * kernel.loop(l).step;
    }
  }
  return m;
}

// A distance vector is feasible if some pair of iterations in the space is
// separated by it: |d_l| must be at most trip_l - 1 at every level.
bool feasible(srra::span<const std::int64_t> d, srra::span<const std::int64_t> trips) {
  for (std::size_t l = 0; l < d.size(); ++l) {
    const std::int64_t mag = d[l] < 0 ? -d[l] : d[l];
    if (mag > trips[l] - 1) return false;
  }
  return true;
}

// Lexicographically positive: first nonzero entry is positive.
int first_nonzero(srra::span<const std::int64_t> d) {
  for (std::size_t l = 0; l < d.size(); ++l) {
    if (d[l] != 0) return static_cast<int>(l);
  }
  return -1;
}

}  // namespace

std::int64_t window_size(const Kernel& kernel, const ArrayAccess& access, int level) {
  const int depth = kernel.depth();
  std::vector<std::int64_t> iter(static_cast<std::size_t>(depth));
  for (int l = 0; l <= level; ++l) iter[static_cast<std::size_t>(l)] = kernel.loop(l).value_at(0);

  std::unordered_set<std::int64_t> elements;
  // Odometer over levels level+1 .. depth-1.
  std::vector<std::int64_t> counter(static_cast<std::size_t>(depth), 0);
  while (true) {
    for (int l = level + 1; l < depth; ++l) {
      iter[static_cast<std::size_t>(l)] = kernel.loop(l).value_at(counter[static_cast<std::size_t>(l)]);
    }
    elements.insert(element_at(kernel, access, iter));
    int l = depth - 1;
    for (; l > level; --l) {
      auto& c = counter[static_cast<std::size_t>(l)];
      if (++c < kernel.loop(l).trip_count()) break;
      c = 0;
    }
    if (l <= level) break;
  }
  return static_cast<std::int64_t>(elements.size());
}

ReuseInfo analyze_reuse(const Kernel& kernel, const RefGroup& group) {
  ReuseInfo info;
  info.group = group.id;

  const IntMatrix a = access_matrix(kernel, group.access);
  const auto basis = integer_nullspace(a);
  if (basis.empty()) return info;

  const std::vector<std::int64_t> trips = kernel.trip_counts();
  const int depth = kernel.depth();

  // Enumerate small integer combinations of basis vectors and keep the
  // feasible, lexicographically positive distance vectors. Coefficients in
  // [-4, 4] cover every access pattern arising from practical affine
  // subscripts (coefficients are small integers after normalization).
  constexpr std::int64_t kCoeffRange = 4;
  const std::size_t k = basis.size();
  std::vector<std::int64_t> coeff(k, -kCoeffRange);
  std::vector<std::vector<std::int64_t>> candidates;
  while (true) {
    std::vector<std::int64_t> d(static_cast<std::size_t>(depth), 0);
    for (std::size_t b = 0; b < k; ++b) {
      for (int l = 0; l < depth; ++l) {
        d[static_cast<std::size_t>(l)] += coeff[b] * basis[b][static_cast<std::size_t>(l)];
      }
    }
    normalize_primitive(d);
    const int fn = first_nonzero(d);
    if (fn >= 0 && d[static_cast<std::size_t>(fn)] > 0 && feasible(d, trips)) {
      candidates.push_back(std::move(d));
    }
    // Odometer over coefficients.
    std::size_t b = 0;
    for (; b < k; ++b) {
      if (++coeff[b] <= kCoeffRange) break;
      coeff[b] = -kCoeffRange;
    }
    if (b == k) break;
  }
  if (candidates.empty()) return info;

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  // Mark carrying levels (outermost first) and pick the canonical distance:
  // the candidate with the outermost first-nonzero, smallest magnitudes.
  std::vector<bool> carries(static_cast<std::size_t>(depth), false);
  for (const auto& d : candidates) carries[static_cast<std::size_t>(first_nonzero(d))] = true;

  const auto magnitude_key = [](const std::vector<std::int64_t>& d) {
    std::vector<std::int64_t> key;
    key.reserve(d.size());
    for (std::int64_t v : d) key.push_back(v < 0 ? -v : v);
    return key;
  };
  const std::vector<std::int64_t>* best = nullptr;
  for (const auto& d : candidates) {
    if (best == nullptr) {
      best = &d;
      continue;
    }
    const int fd = first_nonzero(d);
    const int fb = first_nonzero(*best);
    if (fd < fb || (fd == fb && magnitude_key(d) < magnitude_key(*best))) best = &d;
  }
  info.distance = *best;

  for (int l = 0; l < depth; ++l) {
    if (!carries[static_cast<std::size_t>(l)]) continue;
    info.levels.push_back(CarryLevel{l, window_size(kernel, group.access, l)});
  }
  return info;
}

std::vector<ReuseInfo> analyze_all_reuse(const Kernel& kernel,
                                         const std::vector<RefGroup>& groups) {
  std::vector<ReuseInfo> infos;
  infos.reserve(groups.size());
  for (const RefGroup& g : groups) infos.push_back(analyze_reuse(kernel, g));
  return infos;
}

}  // namespace srra
