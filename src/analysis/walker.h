// The normative access model (DESIGN.md §6): a register-window policy shared
// by the access counters, the cycle model and the machine simulator, so all
// three agree by construction.
//
// A reference group with n registers picks a *strategy*:
//  * full exploitation at the outermost carrying level whose window fits in
//    n registers, or
//  * partial exploitation (hold the first n window elements by first-touch
//    rank) at the outermost carrying level, when n >= 2, or
//  * no holding (n < 2 and nothing fits; a single register is the operand
//    latch, it cannot also hold a live reuse value).
//
// The WindowTracker then classifies every access:
//  * kForward  - read of an element written earlier in the same iteration
//                (wired through the datapath, never a RAM access);
//  * kRegHit/kRegWrite - held element, register traffic only;
//  * kFill     - held element entering the register file (RAM read);
//                steady-state-excluded when it happens at the first value of
//                the carrying loop (it lives in pre-peeled code);
//  * kFlush    - dirty held element leaving the register file (RAM write);
//                steady-state-excluded at the last value of the carrying
//                loop (back-peeled code);
//  * kMissRead/kMissWrite - RAM access, always counted.
#pragma once

#include <cstdint>
#include <functional>
#include "support/span.h"
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/refs.h"
#include "analysis/reuse.h"
#include "ir/kernel.h"

namespace srra {

/// Classification of one access under the window policy.
enum class AccessKind { kRegHit, kRegWrite, kFill, kMissRead, kMissWrite, kForward, kFlush };

/// True for kinds that touch RAM (fill/flush/miss).
bool is_ram_access(AccessKind kind);

/// One classified access (or boundary flush).
struct AccessEvent {
  AccessKind kind = AccessKind::kMissRead;
  int group = -1;
  std::int64_t element = 0;
  bool steady = true;   ///< counted under steady-state accounting
  int stmt = -1;        ///< statement index (-1 for boundary flushes)
  int order = -1;       ///< occurrence order within the iteration (-1: flush)
};

using EventSink = std::function<void(const AccessEvent&)>;

/// How a reference group uses its registers.
struct RefStrategy {
  int carry_level = -1;        ///< reuse-carrying loop level; -1 = no holding
  std::int64_t held_limit = 0; ///< how many window elements can be held

  bool holds() const { return carry_level >= 0 && held_limit > 0; }
};

/// Model switches (see DESIGN.md §6).
struct ModelOptions {
  /// Allow a single register to act as a holding register even when no
  /// carrying level fully fits (default off: it is the operand latch).
  bool single_register_holding = false;
};

/// Heuristic strategy choice for `regs` registers: full exploitation at the
/// outermost carrying level that fits, else a partial window at the
/// outermost level. Exact for invariance reuse; sliding *write* windows can
/// do better at an inner level — use select_strategy for those.
RefStrategy choose_strategy(const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options = {});

/// Empirical strategy selection: evaluates every candidate (no holding,
/// full at each fitting carrying level, partial at each non-fitting level)
/// with the window tracker and returns the one with the fewest steady-state
/// accesses (ties: fewest total accesses, then outermost level). This is
/// the selection the counters, cycle model, machine simulator and code
/// generators all use.
RefStrategy select_strategy(const Kernel& kernel, const RefGroup& group,
                            const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options = {});

/// Stateful classifier for the accesses of one reference group, driven in
/// lexicographic iteration order.
class WindowTracker {
 public:
  WindowTracker(const Kernel& kernel, const RefGroup& group, RefStrategy strategy);

  /// Must be called once per iteration before any on_access of the
  /// iteration; emits eviction flushes for crossed window boundaries.
  void begin_iteration(srra::span<const std::int64_t> iteration, const EventSink& sink);

  /// Classifies one access of the group at the current iteration. May first
  /// emit a capacity-eviction kFlush through `sink`; the access's own event
  /// is both returned and sent to `sink`.
  AccessEvent on_access(srra::span<const std::int64_t> iteration, bool is_write, int stmt,
                        int order, const EventSink& sink);

  /// Emits trailing flushes after the last iteration.
  void finish(const EventSink& sink);

  const RefStrategy& strategy() const { return strategy_; }

 private:
  struct Held {
    bool dirty = false;
    std::uint64_t last_touch = 0;
  };

  bool at_first_carry_value() const;
  bool at_last_carry_value() const;
  void flush_all(const EventSink& sink, bool steady);
  void emit(const EventSink& sink, const AccessEvent& event);

  const Kernel& kernel_;
  const RefGroup& group_;
  RefStrategy strategy_;

  bool initialized_ = false;
  std::vector<std::int64_t> cur_iter_;
  std::unordered_map<std::int64_t, int> rank_;       // per carry-iteration touch ranks
  int touch_count_ = 0;
  std::unordered_map<std::int64_t, Held> held_;      // resident elements
  std::unordered_set<std::int64_t> wrote_this_iter_; // forwarding info
  std::uint64_t seq_ = 0;
};

/// Per-group access counters.
struct GroupCounts {
  std::int64_t miss_reads = 0;
  std::int64_t miss_writes = 0;
  std::int64_t fills = 0;
  std::int64_t steady_fills = 0;
  std::int64_t flushes = 0;
  std::int64_t steady_flushes = 0;
  std::int64_t reg_hits = 0;
  std::int64_t reg_writes = 0;
  std::int64_t forwards = 0;

  /// RAM accesses under steady-state accounting (peeled fill/flush excluded).
  std::int64_t steady_total() const {
    return miss_reads + miss_writes + steady_fills + steady_flushes;
  }
  /// All RAM accesses, including window fill/flush traffic.
  std::int64_t total() const { return miss_reads + miss_writes + fills + flushes; }
};

/// Runs the window policy over the whole iteration space for all groups with
/// the given per-group register counts; streams every event to `sink`
/// (pass nullptr to only count) and returns per-group counters.
std::vector<GroupCounts> simulate_accesses(const Kernel& kernel,
                                           const std::vector<RefGroup>& groups,
                                           const std::vector<ReuseInfo>& reuse,
                                           srra::span<const std::int64_t> regs,
                                           const ModelOptions& options = {},
                                           const EventSink& sink = nullptr);

/// Single-group convenience: counters for `group` with `regs` registers.
GroupCounts count_group_accesses(const Kernel& kernel, const RefGroup& group,
                                 const ReuseInfo& reuse, std::int64_t regs,
                                 const ModelOptions& options = {});

/// Advances `iter` (normalized loop positions are recomputed from values) to
/// the next lexicographic iteration; returns false when the space is
/// exhausted. `iter` holds loop *values* (lower + k*step).
bool next_iteration(const Kernel& kernel, std::vector<std::int64_t>& iter);

/// First iteration vector (all loops at their lower bounds).
std::vector<std::int64_t> first_iteration(const Kernel& kernel);

}  // namespace srra
