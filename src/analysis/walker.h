// The normative access model (DESIGN.md §6): a register-window policy shared
// by the access counters, the cycle model and the machine simulator, so all
// three agree by construction.
//
// A reference group with n registers picks a *strategy*:
//  * full exploitation at the outermost carrying level whose window fits in
//    n registers, or
//  * partial exploitation (hold the first n window elements by first-touch
//    rank) at the outermost carrying level, when n >= 2, or
//  * no holding (n < 2 and nothing fits; a single register is the operand
//    latch, it cannot also hold a live reuse value).
//
// The WindowTracker then classifies every access:
//  * kForward  - read of an element written earlier in the same iteration
//                (wired through the datapath, never a RAM access);
//  * kRegHit/kRegWrite - held element, register traffic only;
//  * kFill     - held element entering the register file (RAM read);
//                steady-state-excluded when it happens at the first value of
//                the carrying loop (it lives in pre-peeled code);
//  * kFlush    - dirty held element leaving the register file (RAM write);
//                steady-state-excluded at the last value of the carrying
//                loop (back-peeled code);
//  * kMissRead/kMissWrite - RAM access, always counted.
#pragma once

#include <cstdint>
#include <functional>
#include "support/span.h"
#include <vector>

#include "analysis/refs.h"
#include "analysis/reuse.h"
#include "ir/kernel.h"

namespace srra {

/// Classification of one access under the window policy.
enum class AccessKind { kRegHit, kRegWrite, kFill, kMissRead, kMissWrite, kForward, kFlush };

/// True for kinds that touch RAM (fill/flush/miss).
bool is_ram_access(AccessKind kind);

/// One classified access (or boundary flush).
struct AccessEvent {
  AccessKind kind = AccessKind::kMissRead;
  int group = -1;
  std::int64_t element = 0;
  bool steady = true;   ///< counted under steady-state accounting
  int stmt = -1;        ///< statement index (-1 for boundary flushes)
  int order = -1;       ///< occurrence order within the iteration (-1: flush)
};

using EventSink = std::function<void(const AccessEvent&)>;

/// How a reference group uses its registers.
struct RefStrategy {
  int carry_level = -1;        ///< reuse-carrying loop level; -1 = no holding
  std::int64_t held_limit = 0; ///< how many window elements can be held

  bool holds() const { return carry_level >= 0 && held_limit > 0; }
};

/// Model switches (see DESIGN.md §6).
struct ModelOptions {
  /// Allow a single register to act as a holding register even when no
  /// carrying level fully fits (default off: it is the operand latch).
  bool single_register_holding = false;
  /// Count accesses with the full iteration-space walk instead of the
  /// periodic collapse (analysis/periodic.h). The two are bit-identical
  /// (cross-checked in test_periodic); the full walk is the reference
  /// oracle and is O(iteration space) rather than O(window).
  bool full_walk_oracle = false;
};

/// Heuristic strategy choice for `regs` registers: full exploitation at the
/// outermost carrying level that fits, else a partial window at the
/// outermost level. Exact for invariance reuse; sliding *write* windows can
/// do better at an inner level — use select_strategy for those.
RefStrategy choose_strategy(const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options = {});

/// Empirical strategy selection: evaluates every candidate (no holding,
/// full at each fitting carrying level, partial at each non-fitting level)
/// with the window tracker and returns the one with the fewest steady-state
/// accesses (ties: fewest total accesses, then outermost level). This is
/// the selection the counters, cycle model, machine simulator and code
/// generators all use.
RefStrategy select_strategy(const Kernel& kernel, const RefGroup& group,
                            const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options = {});

/// Stateful classifier for the accesses of one reference group, driven in
/// lexicographic iteration order.
class WindowTracker {
 public:
  WindowTracker(const Kernel& kernel, const RefGroup& group, RefStrategy strategy);

  /// Must be called once per iteration before any on_access of the
  /// iteration; emits eviction flushes for crossed window boundaries.
  void begin_iteration(srra::span<const std::int64_t> iteration, const EventSink& sink);

  /// Classifies one access of the group at the current iteration. May first
  /// emit a capacity-eviction kFlush through `sink`; the access's own event
  /// is both returned and sent to `sink`.
  AccessEvent on_access(srra::span<const std::int64_t> iteration, bool is_write, int stmt,
                        int order, const EventSink& sink);

  /// Emits trailing flushes after the last iteration.
  void finish(const EventSink& sink);

  const RefStrategy& strategy() const { return strategy_; }

  /// One resident element in a normalized state snapshot.
  struct HeldElement {
    std::int64_t element = 0;  ///< element index minus the caller's offset
    bool dirty = false;
    int touch_rank = 0;  ///< recency rank among residents (0 = oldest)

    bool operator==(const HeldElement& other) const {
      return element == other.element && dirty == other.dirty &&
             touch_rank == other.touch_rank;
    }
  };

  /// Normalized snapshot of the cross-carry-iteration state (the resident
  /// elements; touch ranks and other per-carry-iteration state reset at
  /// every carry boundary). Entries are sorted by element, each shifted by
  /// -`offset`. Two trackers whose snapshots agree behave identically over
  /// any continuation whose accesses are shifted by the same offset — the
  /// periodicity test analysis/periodic.h relies on.
  std::vector<HeldElement> held_snapshot(std::int64_t offset) const;

  /// Shifts every resident element by `delta`: fast-forwards the tracker
  /// across carry iterations whose event streams are translations of each
  /// other (analysis/periodic.h).
  void translate_held(std::int64_t delta);

 private:
  struct Held {
    std::int64_t element = 0;
    bool dirty = false;
    std::uint64_t last_touch = 0;
  };

  bool at_first_carry_value() const;
  bool at_last_carry_value() const;
  void flush_all(const EventSink& sink, bool steady);
  void emit(const EventSink& sink, const AccessEvent& event);

  const Kernel& kernel_;
  const RefGroup& group_;
  RefStrategy strategy_;

  bool initialized_ = false;
  std::vector<std::int64_t> cur_iter_;
  // First <= held_limit distinct elements touched this carry iteration, in
  // touch order (rank = position). Elements past the list once it is full
  // have rank >= held_limit and always miss, so their exact ranks are never
  // needed — this keeps the hot lookup a short linear scan over a flat
  // vector instead of a hash probe.
  std::vector<std::int64_t> rank_order_;
  std::vector<Held> held_;                      // resident elements (<= held_limit)
  std::vector<std::int64_t> wrote_this_iter_;   // forwarding info
  std::uint64_t seq_ = 0;
};

/// Per-group access counters.
struct GroupCounts {
  std::int64_t miss_reads = 0;
  std::int64_t miss_writes = 0;
  std::int64_t fills = 0;
  std::int64_t steady_fills = 0;
  std::int64_t flushes = 0;
  std::int64_t steady_flushes = 0;
  std::int64_t reg_hits = 0;
  std::int64_t reg_writes = 0;
  std::int64_t forwards = 0;

  /// RAM accesses under steady-state accounting (peeled fill/flush excluded).
  std::int64_t steady_total() const {
    return miss_reads + miss_writes + steady_fills + steady_flushes;
  }
  /// All RAM accesses, including window fill/flush traffic.
  std::int64_t total() const { return miss_reads + miss_writes + fills + flushes; }
};

/// Applies one classified event to the counters — the single event-to-
/// counter mapping shared by every counting sink (full walk, periodic
/// collapse, simulate_accesses).
void record_event(GroupCounts& counts, const AccessEvent& event);

/// Runs the window policy over the whole iteration space for all groups with
/// the given per-group register counts; streams every event to `sink`
/// (pass nullptr to only count) and returns per-group counters.
std::vector<GroupCounts> simulate_accesses(const Kernel& kernel,
                                           const std::vector<RefGroup>& groups,
                                           const std::vector<ReuseInfo>& reuse,
                                           srra::span<const std::int64_t> regs,
                                           const ModelOptions& options = {},
                                           const EventSink& sink = nullptr);

/// Single-group convenience: counters for `group` with `regs` registers.
GroupCounts count_group_accesses(const Kernel& kernel, const RefGroup& group,
                                 const ReuseInfo& reuse, std::int64_t regs,
                                 const ModelOptions& options = {});

/// Reference oracle: one full iteration-space pass for a fixed strategy.
/// O(iteration space); the periodic collapse (analysis/periodic.h) must be
/// bit-identical to this.
GroupCounts count_group_accesses_full(const Kernel& kernel, const RefGroup& group,
                                      RefStrategy strategy);

/// Advances `iter` (normalized loop positions are recomputed from values) to
/// the next lexicographic iteration; returns false when the space is
/// exhausted. `iter` holds loop *values* (lower + k*step).
bool next_iteration(const Kernel& kernel, std::vector<std::int64_t>& iter);

/// First iteration vector (all loops at their lower bounds).
std::vector<std::int64_t> first_iteration(const Kernel& kernel);

}  // namespace srra
