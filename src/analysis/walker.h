// The normative access model (DESIGN.md §6): a register-window policy shared
// by the access counters, the cycle model and the machine simulator, so all
// three agree by construction.
//
// A reference group with n registers picks a *strategy*:
//  * full exploitation at the outermost carrying level whose window fits in
//    n registers, or
//  * partial exploitation (hold the first n window elements by first-touch
//    rank) at the outermost carrying level, when n >= 2, or
//  * no holding (n < 2 and nothing fits; a single register is the operand
//    latch, it cannot also hold a live reuse value).
//
// The WindowTracker then classifies every access:
//  * kForward  - read of an element written earlier in the same iteration
//                (wired through the datapath, never a RAM access);
//  * kRegHit/kRegWrite - held element, register traffic only;
//  * kFill     - held element entering the register file (RAM read);
//                steady-state-excluded when it happens at the first value of
//                the carrying loop (it lives in pre-peeled code);
//  * kFlush    - dirty held element leaving the register file (RAM write);
//                steady-state-excluded at the last value of the carrying
//                loop (back-peeled code);
//  * kMissRead/kMissWrite - RAM access, always counted.
#pragma once

#include <cstdint>
#include <cstddef>
#include <type_traits>
#include "support/span.h"
#include <vector>

#include "analysis/refs.h"
#include "analysis/reuse.h"
#include "ir/kernel.h"

namespace srra {

/// Classification of one access under the window policy.
enum class AccessKind { kRegHit, kRegWrite, kFill, kMissRead, kMissWrite, kForward, kFlush };

/// True for kinds that touch RAM (fill/flush/miss).
bool is_ram_access(AccessKind kind);

/// One classified access (or boundary flush).
struct AccessEvent {
  AccessKind kind = AccessKind::kMissRead;
  int group = -1;
  std::int64_t element = 0;
  bool steady = true;   ///< counted under steady-state accounting
  int stmt = -1;        ///< statement index (-1 for boundary flushes)
  int order = -1;       ///< occurrence order within the iteration (-1: flush)
};

/// Non-owning event callback (a function_ref): one raw indirect call on the
/// per-access hot path, no std::function construction or type-erasure
/// management. It only *references* the callable — bind named lambdas,
/// function objects or members that outlive every use, never temporaries
/// that die before the walk (the lvalue-reference constructor enforces
/// this at the construction site).
class EventSink {
 public:
  EventSink() = default;
  EventSink(std::nullptr_t) {}  // NOLINT: nullptr means "no sink"
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventSink>>>
  EventSink(F& callable)  // NOLINT: intentionally implicit, function_ref-style
      : ctx_(const_cast<void*>(static_cast<const void*>(&callable))),
        fn_([](void* ctx, const AccessEvent& event) {
          (*static_cast<F*>(ctx))(event);
        }) {}

  explicit operator bool() const { return fn_ != nullptr; }
  void operator()(const AccessEvent& event) const { fn_(ctx_, event); }

 private:
  void* ctx_ = nullptr;
  void (*fn_)(void*, const AccessEvent&) = nullptr;
};

/// How a reference group uses its registers.
struct RefStrategy {
  int carry_level = -1;        ///< reuse-carrying loop level; -1 = no holding
  std::int64_t held_limit = 0; ///< how many window elements can be held

  bool holds() const { return carry_level >= 0 && held_limit > 0; }
};

/// Model switches (see DESIGN.md §6).
struct ModelOptions {
  /// Allow a single register to act as a holding register even when no
  /// carrying level fully fits (default off: it is the operand latch).
  bool single_register_holding = false;
  /// Count accesses with the full iteration-space walk instead of the
  /// periodic collapse (analysis/periodic.h). The two are bit-identical
  /// (cross-checked in test_periodic); the full walk is the reference
  /// oracle and is O(iteration space) rather than O(window).
  bool full_walk_oracle = false;
};

/// Heuristic strategy choice for `regs` registers: full exploitation at the
/// outermost carrying level that fits, else a partial window at the
/// outermost level. Exact for invariance reuse; sliding *write* windows can
/// do better at an inner level — use select_strategy for those.
RefStrategy choose_strategy(const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options = {});

/// Empirical strategy selection: evaluates every candidate (no holding,
/// full at each fitting carrying level, partial at each non-fitting level)
/// with the window tracker and returns the one with the fewest steady-state
/// accesses (ties: fewest total accesses, then outermost level). This is
/// the selection the counters, cycle model, machine simulator and code
/// generators all use.
RefStrategy select_strategy(const Kernel& kernel, const RefGroup& group,
                            const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options = {});

/// Stateful classifier for the accesses of one reference group, driven in
/// lexicographic iteration order.
class WindowTracker {
 public:
  WindowTracker(const Kernel& kernel, const RefGroup& group, RefStrategy strategy);

  /// Must be called once per iteration before any on_access of the
  /// iteration; emits eviction flushes for crossed window boundaries.
  void begin_iteration(srra::span<const std::int64_t> iteration, const EventSink& sink);

  /// Classifies one access of the group at the current iteration. May first
  /// emit a capacity-eviction kFlush through `sink`; the access's own event
  /// is both returned and sent to `sink`.
  AccessEvent on_access(srra::span<const std::int64_t> iteration, bool is_write, int stmt,
                        int order, const EventSink& sink);

  /// Emits trailing flushes after the last iteration.
  void finish(const EventSink& sink);

  const RefStrategy& strategy() const { return strategy_; }

  /// One resident element in a normalized state snapshot.
  struct HeldElement {
    std::int64_t element = 0;  ///< element index minus the caller's offset
    bool dirty = false;
    int touch_rank = 0;  ///< recency rank among residents (0 = oldest)

    bool operator==(const HeldElement& other) const {
      return element == other.element && dirty == other.dirty &&
             touch_rank == other.touch_rank;
    }
  };

  /// Normalized snapshot of the cross-carry-iteration state (the resident
  /// elements; touch ranks and other per-carry-iteration state reset at
  /// every carry boundary). Entries are sorted by element, each shifted by
  /// -`offset`. Two trackers whose snapshots agree behave identically over
  /// any continuation whose accesses are shifted by the same offset — the
  /// periodicity test analysis/periodic.h relies on. Only valid at the
  /// tracker's own carry boundaries, where the first-touch membership list
  /// has just reset; mid-carry state comparisons need
  /// append_state_signature.
  std::vector<HeldElement> held_snapshot(std::int64_t offset) const;

  /// Appends a strict normalized signature of the *complete* classification
  /// state to `out`: the first-touch window membership and the residents
  /// (dirty flags, relative touch ranks), in storage order, every element
  /// shifted by -`offset`. Strictly finer than held_snapshot equality and
  /// valid between any two iterations — equal signatures imply identical
  /// behavior over offset-shifted continuations. Storage order makes it
  /// conservative: a repeat can be detected late (the walk then just keeps
  /// walking), never falsely. No sorting, no allocation beyond `out`.
  void append_state_signature(std::int64_t offset, std::vector<std::int64_t>& out) const;

  /// Shifts every element the state remembers (residents and the
  /// first-touch membership list) by `delta`: fast-forwards the tracker
  /// across iterations whose event streams are translations of each other
  /// (analysis/periodic.h, the cycle model's nested collapse).
  void translate_held(std::int64_t delta);

 private:
  struct Held {
    std::int64_t element = 0;
    bool dirty = false;
    std::uint64_t last_touch = 0;
  };

  // Epoch-stamped open-addressing membership set for the first-touch window
  // list: clear() is O(1) (bump the epoch), so the per-carry-iteration reset
  // costs nothing and the per-access membership probe is O(1) instead of a
  // linear scan over up to held_limit elements.
  class ElementSet {
   public:
    void reset(std::size_t expected_elements);
    bool contains(std::int64_t element) const {
      if (keys_.empty()) return false;
      std::size_t slot = hash(element);
      while (epochs_[slot] == epoch_) {
        if (keys_[slot] == element) return true;
        slot = (slot + 1) & mask_;
      }
      return false;
    }
    void insert(std::int64_t element) {
      std::size_t slot = hash(element);
      while (epochs_[slot] == epoch_) slot = (slot + 1) & mask_;
      keys_[slot] = element;
      epochs_[slot] = epoch_;
    }
    void clear() { ++epoch_; }

   private:
    std::size_t hash(std::int64_t element) const {
      return static_cast<std::size_t>(static_cast<std::uint64_t>(element) *
                                      0x9E3779B97F4A7C15ull >>
                                      33) &
             mask_;
    }
    std::vector<std::int64_t> keys_;
    std::vector<std::uint64_t> epochs_;
    std::size_t mask_ = 0;
    std::uint64_t epoch_ = 1;
  };

  bool at_first_carry_value() const;
  bool at_last_carry_value() const;
  void flush_all(const EventSink& sink, bool steady);
  void emit(const EventSink& sink, const AccessEvent& event);

  const Kernel& kernel_;
  const RefGroup& group_;
  RefStrategy strategy_;

  // The group's linearized element index as a flat affine form (constant +
  // per-level coefficients), so the hot on_access path is a short dot
  // product instead of an array lookup plus per-dimension AffineExpr walks.
  std::int64_t elem_const_ = 0;
  std::vector<std::int64_t> elem_coeffs_;

  bool initialized_ = false;
  std::vector<std::int64_t> cur_iter_;
  // First <= held_limit distinct elements touched this carry iteration, in
  // touch order (rank = position). Elements past the list once it is full
  // have rank >= held_limit and always miss, so their exact ranks are never
  // needed. rank_members_ mirrors the list as an O(1) membership probe (the
  // list itself stays the source of truth for signatures and translation).
  std::vector<std::int64_t> rank_order_;
  ElementSet rank_members_;
  std::vector<Held> held_;                      // resident elements (<= held_limit)
  std::vector<std::int64_t> wrote_this_iter_;   // forwarding info
  std::uint64_t seq_ = 0;
};

/// Per-group access counters.
struct GroupCounts {
  std::int64_t miss_reads = 0;
  std::int64_t miss_writes = 0;
  std::int64_t fills = 0;
  std::int64_t steady_fills = 0;
  std::int64_t flushes = 0;
  std::int64_t steady_flushes = 0;
  std::int64_t reg_hits = 0;
  std::int64_t reg_writes = 0;
  std::int64_t forwards = 0;

  /// RAM accesses under steady-state accounting (peeled fill/flush excluded).
  std::int64_t steady_total() const {
    return miss_reads + miss_writes + steady_fills + steady_flushes;
  }
  /// All RAM accesses, including window fill/flush traffic.
  std::int64_t total() const { return miss_reads + miss_writes + fills + flushes; }
};

/// Applies one classified event to the counters — the single event-to-
/// counter mapping shared by every counting sink (full walk, periodic
/// collapse, simulate_accesses).
void record_event(GroupCounts& counts, const AccessEvent& event);

/// A strategy selection together with the winner's counters — the selection
/// already evaluates every candidate, so returning both saves callers
/// (count_group_accesses, the access-curve tabulation) one redundant pass.
struct StrategyChoice {
  RefStrategy strategy;
  GroupCounts counts;
};

/// As select_strategy, also returning the winning candidate's counters.
StrategyChoice select_strategy_counted(const Kernel& kernel, const RefGroup& group,
                                       const ReuseInfo& info, std::int64_t regs,
                                       const ModelOptions& options = {});

/// Runs the window policy over the whole iteration space for all groups with
/// the given per-group register counts; streams every event to `sink`
/// (pass nullptr to only count) and returns per-group counters.
std::vector<GroupCounts> simulate_accesses(const Kernel& kernel,
                                           const std::vector<RefGroup>& groups,
                                           const std::vector<ReuseInfo>& reuse,
                                           srra::span<const std::int64_t> regs,
                                           const ModelOptions& options = {},
                                           const EventSink& sink = nullptr);

/// Single-group convenience: counters for `group` with `regs` registers.
GroupCounts count_group_accesses(const Kernel& kernel, const RefGroup& group,
                                 const ReuseInfo& reuse, std::int64_t regs,
                                 const ModelOptions& options = {});

/// One counting pass for a fixed strategy: the periodic collapse by
/// default, the full-walk oracle under options.full_walk_oracle. This is
/// the pass select_strategy runs per candidate; the access-curve build
/// (analysis/curve.cc) memoizes it per distinct strategy across register
/// counts.
GroupCounts count_group_accesses_strategy(const Kernel& kernel, const RefGroup& group,
                                          RefStrategy strategy,
                                          const ModelOptions& options = {});

/// The candidate strategies select_strategy evaluates for `regs` registers,
/// in evaluation order (no holding first, then per carrying level full or
/// partial). Exposed so the access-curve tabulation enumerates exactly the
/// same set.
std::vector<RefStrategy> strategy_candidates(const ReuseInfo& info, std::int64_t regs,
                                             const ModelOptions& options = {});

/// select_strategy's tie-break: true when (candidate, counts) beats the
/// incumbent (fewer steady accesses; ties by total accesses, then by
/// outermost level).
bool strategy_counts_better(const RefStrategy& candidate, const GroupCounts& counts,
                            const RefStrategy& best, const GroupCounts& best_counts);

/// Reference oracle: one full iteration-space pass for a fixed strategy.
/// O(iteration space); the periodic collapse (analysis/periodic.h) must be
/// bit-identical to this.
GroupCounts count_group_accesses_full(const Kernel& kernel, const RefGroup& group,
                                      RefStrategy strategy);

/// Advances `iter` (normalized loop positions are recomputed from values) to
/// the next lexicographic iteration; returns false when the space is
/// exhausted. `iter` holds loop *values* (lower + k*step).
bool next_iteration(const Kernel& kernel, std::vector<std::int64_t>& iter);

/// First iteration vector (all loops at their lower bounds).
std::vector<std::int64_t> first_iteration(const Kernel& kernel);

}  // namespace srra
