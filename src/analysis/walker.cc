#include "analysis/walker.h"

#include <algorithm>

#include "support/error.h"

namespace srra {

bool is_ram_access(AccessKind kind) {
  switch (kind) {
    case AccessKind::kFill:
    case AccessKind::kFlush:
    case AccessKind::kMissRead:
    case AccessKind::kMissWrite:
      return true;
    default:
      return false;
  }
}

RefStrategy choose_strategy(const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options) {
  RefStrategy strategy;
  if (!info.has_reuse() || regs <= 0) return strategy;

  // Full exploitation at the outermost carrying level that fits.
  for (const CarryLevel& cl : info.levels) {
    if (cl.beta <= regs) {
      strategy.carry_level = cl.level;
      strategy.held_limit = cl.beta;
      return strategy;
    }
  }
  // Partial exploitation at the outermost carrying level; a single register
  // is the operand latch and cannot hold a live value (unless overridden).
  const std::int64_t min_regs = options.single_register_holding ? 1 : 2;
  if (regs >= min_regs) {
    strategy.carry_level = info.levels.front().level;
    strategy.held_limit = regs;
  }
  return strategy;
}

WindowTracker::WindowTracker(const Kernel& kernel, const RefGroup& group,
                             RefStrategy strategy)
    : kernel_(kernel), group_(group), strategy_(strategy) {}

bool WindowTracker::at_first_carry_value() const {
  const int l = strategy_.carry_level;
  return cur_iter_[static_cast<std::size_t>(l)] == kernel_.loop(l).lower;
}

bool WindowTracker::at_last_carry_value() const {
  const int l = strategy_.carry_level;
  const Loop& loop = kernel_.loop(l);
  return cur_iter_[static_cast<std::size_t>(l)] == loop.value_at(loop.trip_count() - 1);
}

void WindowTracker::emit(const EventSink& sink, const AccessEvent& event) {
  if (sink) sink(event);
}

void WindowTracker::flush_all(const EventSink& sink, bool steady) {
  for (const auto& [element, held] : held_) {
    if (!held.dirty) continue;
    AccessEvent event;
    event.kind = AccessKind::kFlush;
    event.group = group_.id;
    event.element = element;
    event.steady = steady;
    emit(sink, event);
  }
  held_.clear();
}

void WindowTracker::begin_iteration(srra::span<const std::int64_t> iteration,
                                    const EventSink& sink) {
  wrote_this_iter_.clear();
  if (!initialized_) {
    initialized_ = true;
    cur_iter_.assign(iteration.begin(), iteration.end());
    return;
  }
  if (!strategy_.holds()) {
    cur_iter_.assign(iteration.begin(), iteration.end());
    return;
  }
  const int l = strategy_.carry_level;
  bool window_changed = false;
  for (int i = 0; i < l; ++i) {
    if (cur_iter_[static_cast<std::size_t>(i)] != iteration[static_cast<std::size_t>(i)]) {
      window_changed = true;
      break;
    }
  }
  const bool carry_changed =
      window_changed || cur_iter_[static_cast<std::size_t>(l)] != iteration[static_cast<std::size_t>(l)];
  if (window_changed) {
    // Window-instance boundary: the finishing carry iteration is the loop's
    // last value (lexicographic order), so these flushes live in back-peeled
    // code and are steady-state-excluded.
    flush_all(sink, /*steady=*/!at_last_carry_value());
    rank_.clear();
    touch_count_ = 0;
  } else if (carry_changed) {
    rank_.clear();
    touch_count_ = 0;
  }
  cur_iter_.assign(iteration.begin(), iteration.end());
}

AccessEvent WindowTracker::on_access(srra::span<const std::int64_t> iteration, bool is_write,
                                     int stmt, int order, const EventSink& sink) {
  const std::int64_t element = element_at(kernel_, group_.access, iteration);

  AccessEvent event;
  event.group = group_.id;
  event.element = element;
  event.stmt = stmt;
  event.order = order;

  // Same-iteration read-after-write is forwarded through the datapath.
  if (!is_write && wrote_this_iter_.count(element) != 0) {
    event.kind = AccessKind::kForward;
    event.steady = false;
    emit(sink, event);
    return event;
  }
  if (is_write) wrote_this_iter_.insert(element);

  if (!strategy_.holds()) {
    event.kind = is_write ? AccessKind::kMissWrite : AccessKind::kMissRead;
    event.steady = true;
    emit(sink, event);
    return event;
  }

  // Rank of the element in this carry-iteration's touch order.
  int rank = 0;
  const auto it = rank_.find(element);
  if (it != rank_.end()) {
    rank = it->second;
  } else {
    rank = touch_count_++;
    rank_.emplace(element, rank);
  }

  if (rank >= strategy_.held_limit) {
    event.kind = is_write ? AccessKind::kMissWrite : AccessKind::kMissRead;
    event.steady = true;
    emit(sink, event);
    return event;
  }

  ++seq_;
  const auto held_it = held_.find(element);
  if (held_it != held_.end()) {
    held_it->second.last_touch = seq_;
    if (is_write) held_it->second.dirty = true;
    event.kind = is_write ? AccessKind::kRegWrite : AccessKind::kRegHit;
    event.steady = false;
    emit(sink, event);
    return event;
  }

  // Element enters the register file. Evict the least recently used resident
  // if the file is full (it is dead in a sliding window).
  if (static_cast<std::int64_t>(held_.size()) >= strategy_.held_limit) {
    auto victim = held_.begin();
    for (auto h = held_.begin(); h != held_.end(); ++h) {
      if (h->second.last_touch < victim->second.last_touch) victim = h;
    }
    if (victim->second.dirty) {
      AccessEvent flush;
      flush.kind = AccessKind::kFlush;
      flush.group = group_.id;
      flush.element = victim->first;
      flush.steady = !at_last_carry_value();
      emit(sink, flush);
    }
    held_.erase(victim);
  }

  held_.emplace(element, Held{is_write, seq_});
  if (is_write) {
    // Whole-element overwrite: no fill needed.
    event.kind = AccessKind::kRegWrite;
    event.steady = false;
  } else {
    event.kind = AccessKind::kFill;
    event.steady = !at_first_carry_value();
  }
  emit(sink, event);
  return event;
}

void WindowTracker::finish(const EventSink& sink) {
  if (!initialized_ || !strategy_.holds()) return;
  flush_all(sink, /*steady=*/!at_last_carry_value());
}

std::vector<std::int64_t> first_iteration(const Kernel& kernel) {
  std::vector<std::int64_t> iter;
  iter.reserve(static_cast<std::size_t>(kernel.depth()));
  for (int l = 0; l < kernel.depth(); ++l) iter.push_back(kernel.loop(l).lower);
  return iter;
}

bool next_iteration(const Kernel& kernel, std::vector<std::int64_t>& iter) {
  for (int l = kernel.depth() - 1; l >= 0; --l) {
    const Loop& loop = kernel.loop(l);
    auto& v = iter[static_cast<std::size_t>(l)];
    v += loop.step;
    if (v < loop.upper) return true;
    v = loop.lower;
  }
  return false;
}

namespace {

// Flat evaluation-ordered list of occurrences across all groups.
struct FlatOccurrence {
  int group = 0;
  int stmt = 0;
  int order = 0;
  bool is_write = false;
};

std::vector<FlatOccurrence> flatten(const std::vector<RefGroup>& groups) {
  std::vector<FlatOccurrence> flat;
  for (const RefGroup& g : groups) {
    for (const RefOccurrence& occ : g.occurrences) {
      flat.push_back(FlatOccurrence{g.id, occ.stmt, occ.order, occ.is_write});
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const FlatOccurrence& a, const FlatOccurrence& b) { return a.order < b.order; });
  return flat;
}

}  // namespace

std::vector<GroupCounts> simulate_accesses(const Kernel& kernel,
                                           const std::vector<RefGroup>& groups,
                                           const std::vector<ReuseInfo>& reuse,
                                           srra::span<const std::int64_t> regs,
                                           const ModelOptions& options,
                                           const EventSink& sink) {
  check(groups.size() == reuse.size(), "groups/reuse size mismatch");
  check(groups.size() == regs.size(), "groups/regs size mismatch");

  std::vector<GroupCounts> counts(groups.size());
  const auto counting_sink = [&](const AccessEvent& e) {
    GroupCounts& c = counts[static_cast<std::size_t>(e.group)];
    switch (e.kind) {
      case AccessKind::kMissRead: ++c.miss_reads; break;
      case AccessKind::kMissWrite: ++c.miss_writes; break;
      case AccessKind::kFill:
        ++c.fills;
        if (e.steady) ++c.steady_fills;
        break;
      case AccessKind::kFlush:
        ++c.flushes;
        if (e.steady) ++c.steady_flushes;
        break;
      case AccessKind::kRegHit: ++c.reg_hits; break;
      case AccessKind::kRegWrite: ++c.reg_writes; break;
      case AccessKind::kForward: ++c.forwards; break;
    }
    if (sink) sink(e);
  };

  std::vector<WindowTracker> trackers;
  trackers.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    trackers.emplace_back(kernel, groups[g],
                          select_strategy(kernel, groups[g], reuse[g], regs[g], options));
  }
  const std::vector<FlatOccurrence> flat = flatten(groups);

  std::vector<std::int64_t> iter = first_iteration(kernel);
  do {
    for (WindowTracker& t : trackers) t.begin_iteration(iter, counting_sink);
    for (const FlatOccurrence& occ : flat) {
      trackers[static_cast<std::size_t>(occ.group)].on_access(iter, occ.is_write, occ.stmt,
                                                              occ.order, counting_sink);
    }
  } while (next_iteration(kernel, iter));
  for (WindowTracker& t : trackers) t.finish(counting_sink);
  return counts;
}

namespace {

// One tracker pass for a fixed strategy; returns the group's counters.
GroupCounts run_group_pass(const Kernel& kernel, const RefGroup& group,
                           RefStrategy strategy) {
  GroupCounts counts;
  const EventSink sink = [&](const AccessEvent& e) {
    switch (e.kind) {
      case AccessKind::kMissRead: ++counts.miss_reads; break;
      case AccessKind::kMissWrite: ++counts.miss_writes; break;
      case AccessKind::kFill:
        ++counts.fills;
        if (e.steady) ++counts.steady_fills;
        break;
      case AccessKind::kFlush:
        ++counts.flushes;
        if (e.steady) ++counts.steady_flushes;
        break;
      case AccessKind::kRegHit: ++counts.reg_hits; break;
      case AccessKind::kRegWrite: ++counts.reg_writes; break;
      case AccessKind::kForward: ++counts.forwards; break;
    }
  };
  WindowTracker tracker(kernel, group, strategy);
  std::vector<std::int64_t> iter = first_iteration(kernel);
  do {
    tracker.begin_iteration(iter, sink);
    for (const RefOccurrence& occ : group.occurrences) {
      tracker.on_access(iter, occ.is_write, occ.stmt, occ.order, sink);
    }
  } while (next_iteration(kernel, iter));
  tracker.finish(sink);
  return counts;
}

}  // namespace

RefStrategy select_strategy(const Kernel& kernel, const RefGroup& group,
                            const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options) {
  if (!info.has_reuse() || regs <= 0) return RefStrategy{};

  std::vector<RefStrategy> candidates;
  candidates.push_back(RefStrategy{});  // no holding
  const std::int64_t min_partial = options.single_register_holding ? 1 : 2;
  for (const CarryLevel& cl : info.levels) {
    if (cl.beta <= regs) {
      candidates.push_back(RefStrategy{cl.level, cl.beta});
    } else if (regs >= min_partial) {
      candidates.push_back(RefStrategy{cl.level, regs});
    }
  }

  RefStrategy best = candidates.front();
  GroupCounts best_counts = run_group_pass(kernel, group, best);
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    const GroupCounts counts = run_group_pass(kernel, group, candidates[c]);
    const bool better =
        counts.steady_total() < best_counts.steady_total() ||
        (counts.steady_total() == best_counts.steady_total() &&
         (counts.total() < best_counts.total() ||
          (counts.total() == best_counts.total() &&
           candidates[c].carry_level < best.carry_level)));
    if (better) {
      best = candidates[c];
      best_counts = counts;
    }
  }
  return best;
}

GroupCounts count_group_accesses(const Kernel& kernel, const RefGroup& group,
                                 const ReuseInfo& reuse, std::int64_t regs,
                                 const ModelOptions& options) {
  return run_group_pass(kernel, group, select_strategy(kernel, group, reuse, regs, options));
}

}  // namespace srra
