#include "analysis/walker.h"

#include <algorithm>

#include "analysis/periodic.h"
#include "support/error.h"

namespace srra {

void record_event(GroupCounts& counts, const AccessEvent& event) {
  switch (event.kind) {
    case AccessKind::kMissRead: ++counts.miss_reads; break;
    case AccessKind::kMissWrite: ++counts.miss_writes; break;
    case AccessKind::kFill:
      ++counts.fills;
      if (event.steady) ++counts.steady_fills;
      break;
    case AccessKind::kFlush:
      ++counts.flushes;
      if (event.steady) ++counts.steady_flushes;
      break;
    case AccessKind::kRegHit: ++counts.reg_hits; break;
    case AccessKind::kRegWrite: ++counts.reg_writes; break;
    case AccessKind::kForward: ++counts.forwards; break;
  }
}

bool is_ram_access(AccessKind kind) {
  switch (kind) {
    case AccessKind::kFill:
    case AccessKind::kFlush:
    case AccessKind::kMissRead:
    case AccessKind::kMissWrite:
      return true;
    default:
      return false;
  }
}

RefStrategy choose_strategy(const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options) {
  RefStrategy strategy;
  if (!info.has_reuse() || regs <= 0) return strategy;

  // Full exploitation at the outermost carrying level that fits.
  for (const CarryLevel& cl : info.levels) {
    if (cl.beta <= regs) {
      strategy.carry_level = cl.level;
      strategy.held_limit = cl.beta;
      return strategy;
    }
  }
  // Partial exploitation at the outermost carrying level; a single register
  // is the operand latch and cannot hold a live value (unless overridden).
  const std::int64_t min_regs = options.single_register_holding ? 1 : 2;
  if (regs >= min_regs) {
    strategy.carry_level = info.levels.front().level;
    strategy.held_limit = regs;
  }
  return strategy;
}

void WindowTracker::ElementSet::reset(std::size_t expected_elements) {
  std::size_t capacity = 8;
  while (capacity < expected_elements * 2) capacity *= 2;
  keys_.assign(capacity, 0);
  epochs_.assign(capacity, 0);
  mask_ = capacity - 1;
  epoch_ = 1;
}

WindowTracker::WindowTracker(const Kernel& kernel, const RefGroup& group,
                             RefStrategy strategy)
    : kernel_(kernel), group_(group), strategy_(strategy) {
  const AffineExpr flat = linearize_access(kernel, group.access);
  elem_const_ = flat.constant_term();
  elem_coeffs_.resize(static_cast<std::size_t>(flat.depth()));
  for (int l = 0; l < flat.depth(); ++l) {
    elem_coeffs_[static_cast<std::size_t>(l)] = flat.coeff(l);
  }
  if (strategy_.holds()) {
    rank_members_.reset(static_cast<std::size_t>(strategy_.held_limit));
  }
}

bool WindowTracker::at_first_carry_value() const {
  const int l = strategy_.carry_level;
  return cur_iter_[static_cast<std::size_t>(l)] == kernel_.loop(l).lower;
}

bool WindowTracker::at_last_carry_value() const {
  const int l = strategy_.carry_level;
  const Loop& loop = kernel_.loop(l);
  return cur_iter_[static_cast<std::size_t>(l)] == loop.value_at(loop.trip_count() - 1);
}

void WindowTracker::emit(const EventSink& sink, const AccessEvent& event) {
  if (sink) sink(event);
}

void WindowTracker::flush_all(const EventSink& sink, bool steady) {
  for (const Held& held : held_) {
    if (!held.dirty) continue;
    AccessEvent event;
    event.kind = AccessKind::kFlush;
    event.group = group_.id;
    event.element = held.element;
    event.steady = steady;
    emit(sink, event);
  }
  held_.clear();
}

std::vector<WindowTracker::HeldElement> WindowTracker::held_snapshot(
    std::int64_t offset) const {
  // Reduce last_touch to its rank among residents (absolute sequence
  // numbers grow forever; only the relative recency order matters).
  std::vector<std::size_t> by_touch(held_.size());
  for (std::size_t i = 0; i < held_.size(); ++i) by_touch[i] = i;
  std::sort(by_touch.begin(), by_touch.end(), [&](std::size_t a, std::size_t b) {
    return held_[a].last_touch < held_[b].last_touch;
  });
  std::vector<HeldElement> snapshot(held_.size());
  for (std::size_t r = 0; r < by_touch.size(); ++r) {
    const Held& held = held_[by_touch[r]];
    snapshot[by_touch[r]] =
        HeldElement{held.element - offset, held.dirty, static_cast<int>(r)};
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const HeldElement& a, const HeldElement& b) { return a.element < b.element; });
  return snapshot;
}

void WindowTracker::append_state_signature(std::int64_t offset,
                                           std::vector<std::int64_t>& out) const {
  out.push_back(static_cast<std::int64_t>(rank_order_.size()));
  for (const std::int64_t element : rank_order_) out.push_back(element - offset);
  out.push_back(static_cast<std::int64_t>(held_.size()));
  std::uint64_t base = 0;
  bool have_base = false;
  for (const Held& held : held_) {
    if (!have_base || held.last_touch < base) {
      base = held.last_touch;
      have_base = true;
    }
  }
  for (const Held& held : held_) {
    out.push_back(held.element - offset);
    out.push_back(held.dirty ? 1 : 0);
    out.push_back(static_cast<std::int64_t>(held.last_touch - base));
  }
}

void WindowTracker::translate_held(std::int64_t delta) {
  for (Held& held : held_) held.element += delta;
  if (!rank_order_.empty()) {
    rank_members_.clear();
    for (std::int64_t& element : rank_order_) {
      element += delta;
      rank_members_.insert(element);
    }
  }
}

void WindowTracker::begin_iteration(srra::span<const std::int64_t> iteration,
                                    const EventSink& sink) {
  wrote_this_iter_.clear();
  if (!initialized_) {
    initialized_ = true;
    cur_iter_.assign(iteration.begin(), iteration.end());
    return;
  }
  if (!strategy_.holds()) {
    cur_iter_.assign(iteration.begin(), iteration.end());
    return;
  }
  const int l = strategy_.carry_level;
  bool window_changed = false;
  for (int i = 0; i < l; ++i) {
    if (cur_iter_[static_cast<std::size_t>(i)] != iteration[static_cast<std::size_t>(i)]) {
      window_changed = true;
      break;
    }
  }
  const bool carry_changed =
      window_changed || cur_iter_[static_cast<std::size_t>(l)] != iteration[static_cast<std::size_t>(l)];
  if (window_changed) {
    // Window-instance boundary: the finishing carry iteration is the loop's
    // last value (lexicographic order), so these flushes live in back-peeled
    // code and are steady-state-excluded.
    flush_all(sink, /*steady=*/!at_last_carry_value());
    rank_order_.clear();
    rank_members_.clear();
  } else if (carry_changed) {
    rank_order_.clear();
    rank_members_.clear();
  }
  cur_iter_.assign(iteration.begin(), iteration.end());
}

AccessEvent WindowTracker::on_access(srra::span<const std::int64_t> iteration, bool is_write,
                                     int stmt, int order, const EventSink& sink) {
  std::int64_t element = elem_const_;
  for (std::size_t l = 0; l < elem_coeffs_.size(); ++l) {
    element += elem_coeffs_[l] * iteration[l];
  }

  AccessEvent event;
  event.group = group_.id;
  event.element = element;
  event.stmt = stmt;
  event.order = order;

  // Same-iteration read-after-write is forwarded through the datapath.
  const auto wrote = std::find(wrote_this_iter_.begin(), wrote_this_iter_.end(), element);
  if (!is_write && wrote != wrote_this_iter_.end()) {
    event.kind = AccessKind::kForward;
    event.steady = false;
    emit(sink, event);
    return event;
  }
  if (is_write && wrote == wrote_this_iter_.end()) wrote_this_iter_.push_back(element);

  if (!strategy_.holds()) {
    event.kind = is_write ? AccessKind::kMissWrite : AccessKind::kMissRead;
    event.steady = true;
    emit(sink, event);
    return event;
  }

  // Window membership by touch rank: the first held_limit distinct elements
  // of this carry iteration are in the window; everything later misses.
  bool in_window = rank_members_.contains(element);
  if (!in_window &&
      static_cast<std::int64_t>(rank_order_.size()) < strategy_.held_limit) {
    rank_order_.push_back(element);
    rank_members_.insert(element);
    in_window = true;
  }

  if (!in_window) {
    event.kind = is_write ? AccessKind::kMissWrite : AccessKind::kMissRead;
    event.steady = true;
    emit(sink, event);
    return event;
  }

  ++seq_;
  const auto held_it = std::find_if(held_.begin(), held_.end(),
                                    [&](const Held& h) { return h.element == element; });
  if (held_it != held_.end()) {
    held_it->last_touch = seq_;
    if (is_write) held_it->dirty = true;
    event.kind = is_write ? AccessKind::kRegWrite : AccessKind::kRegHit;
    event.steady = false;
    emit(sink, event);
    return event;
  }

  // Element enters the register file. Evict the least recently used resident
  // if the file is full (it is dead in a sliding window).
  if (static_cast<std::int64_t>(held_.size()) >= strategy_.held_limit) {
    auto victim = held_.begin();
    for (auto h = held_.begin(); h != held_.end(); ++h) {
      if (h->last_touch < victim->last_touch) victim = h;
    }
    if (victim->dirty) {
      AccessEvent flush;
      flush.kind = AccessKind::kFlush;
      flush.group = group_.id;
      flush.element = victim->element;
      flush.steady = !at_last_carry_value();
      emit(sink, flush);
    }
    held_.erase(victim);
  }

  held_.push_back(Held{element, is_write, seq_});
  if (is_write) {
    // Whole-element overwrite: no fill needed.
    event.kind = AccessKind::kRegWrite;
    event.steady = false;
  } else {
    event.kind = AccessKind::kFill;
    event.steady = !at_first_carry_value();
  }
  emit(sink, event);
  return event;
}

void WindowTracker::finish(const EventSink& sink) {
  if (!initialized_ || !strategy_.holds()) return;
  flush_all(sink, /*steady=*/!at_last_carry_value());
}

std::vector<std::int64_t> first_iteration(const Kernel& kernel) {
  std::vector<std::int64_t> iter;
  iter.reserve(static_cast<std::size_t>(kernel.depth()));
  for (int l = 0; l < kernel.depth(); ++l) iter.push_back(kernel.loop(l).lower);
  return iter;
}

bool next_iteration(const Kernel& kernel, std::vector<std::int64_t>& iter) {
  for (int l = kernel.depth() - 1; l >= 0; --l) {
    const Loop& loop = kernel.loop(l);
    auto& v = iter[static_cast<std::size_t>(l)];
    v += loop.step;
    if (v < loop.upper) return true;
    v = loop.lower;
  }
  return false;
}

namespace {

// Flat evaluation-ordered list of occurrences across all groups.
struct FlatOccurrence {
  int group = 0;
  int stmt = 0;
  int order = 0;
  bool is_write = false;
};

std::vector<FlatOccurrence> flatten(const std::vector<RefGroup>& groups) {
  std::vector<FlatOccurrence> flat;
  for (const RefGroup& g : groups) {
    for (const RefOccurrence& occ : g.occurrences) {
      flat.push_back(FlatOccurrence{g.id, occ.stmt, occ.order, occ.is_write});
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const FlatOccurrence& a, const FlatOccurrence& b) { return a.order < b.order; });
  return flat;
}

}  // namespace

std::vector<GroupCounts> simulate_accesses(const Kernel& kernel,
                                           const std::vector<RefGroup>& groups,
                                           const std::vector<ReuseInfo>& reuse,
                                           srra::span<const std::int64_t> regs,
                                           const ModelOptions& options,
                                           const EventSink& sink) {
  check(groups.size() == reuse.size(), "groups/reuse size mismatch");
  check(groups.size() == regs.size(), "groups/regs size mismatch");

  std::vector<GroupCounts> counts(groups.size());
  const auto count_event = [&](const AccessEvent& e) {
    record_event(counts[static_cast<std::size_t>(e.group)], e);
    if (sink) sink(e);
  };
  const EventSink counting_sink(count_event);

  std::vector<WindowTracker> trackers;
  trackers.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    trackers.emplace_back(kernel, groups[g],
                          select_strategy(kernel, groups[g], reuse[g], regs[g], options));
  }
  const std::vector<FlatOccurrence> flat = flatten(groups);

  std::vector<std::int64_t> iter = first_iteration(kernel);
  do {
    for (WindowTracker& t : trackers) t.begin_iteration(iter, counting_sink);
    for (const FlatOccurrence& occ : flat) {
      trackers[static_cast<std::size_t>(occ.group)].on_access(iter, occ.is_write, occ.stmt,
                                                              occ.order, counting_sink);
    }
  } while (next_iteration(kernel, iter));
  for (WindowTracker& t : trackers) t.finish(counting_sink);
  return counts;
}

GroupCounts count_group_accesses_full(const Kernel& kernel, const RefGroup& group,
                                      RefStrategy strategy) {
  GroupCounts counts;
  const auto count_event = [&](const AccessEvent& e) { record_event(counts, e); };
  const EventSink sink(count_event);
  WindowTracker tracker(kernel, group, strategy);
  std::vector<std::int64_t> iter = first_iteration(kernel);
  do {
    tracker.begin_iteration(iter, sink);
    for (const RefOccurrence& occ : group.occurrences) {
      tracker.on_access(iter, occ.is_write, occ.stmt, occ.order, sink);
    }
  } while (next_iteration(kernel, iter));
  tracker.finish(sink);
  return counts;
}

namespace {

// One counting pass for a fixed strategy: the periodic collapse by default,
// the full-walk oracle when requested.
GroupCounts run_group_pass(const Kernel& kernel, const RefGroup& group,
                           RefStrategy strategy, const ModelOptions& options) {
  if (options.full_walk_oracle) return count_group_accesses_full(kernel, group, strategy);
  return count_group_accesses_collapsed(kernel, group, strategy);
}

}  // namespace

GroupCounts count_group_accesses_strategy(const Kernel& kernel, const RefGroup& group,
                                          RefStrategy strategy,
                                          const ModelOptions& options) {
  return run_group_pass(kernel, group, strategy, options);
}

std::vector<RefStrategy> strategy_candidates(const ReuseInfo& info, std::int64_t regs,
                                             const ModelOptions& options) {
  std::vector<RefStrategy> candidates;
  candidates.push_back(RefStrategy{});  // no holding
  if (!info.has_reuse() || regs <= 0) return candidates;
  const std::int64_t min_partial = options.single_register_holding ? 1 : 2;
  for (const CarryLevel& cl : info.levels) {
    if (cl.beta <= regs) {
      candidates.push_back(RefStrategy{cl.level, cl.beta});
    } else if (regs >= min_partial) {
      candidates.push_back(RefStrategy{cl.level, regs});
    }
  }
  return candidates;
}

bool strategy_counts_better(const RefStrategy& candidate, const GroupCounts& counts,
                            const RefStrategy& best, const GroupCounts& best_counts) {
  return counts.steady_total() < best_counts.steady_total() ||
         (counts.steady_total() == best_counts.steady_total() &&
          (counts.total() < best_counts.total() ||
           (counts.total() == best_counts.total() &&
            candidate.carry_level < best.carry_level)));
}

StrategyChoice select_strategy_counted(const Kernel& kernel, const RefGroup& group,
                                       const ReuseInfo& info, std::int64_t regs,
                                       const ModelOptions& options) {
  StrategyChoice choice;
  if (!info.has_reuse() || regs <= 0) {
    choice.counts = run_group_pass(kernel, group, choice.strategy, options);
    return choice;
  }

  const std::vector<RefStrategy> candidates = strategy_candidates(info, regs, options);
  choice.strategy = candidates.front();
  choice.counts = run_group_pass(kernel, group, choice.strategy, options);
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    const GroupCounts counts = run_group_pass(kernel, group, candidates[c], options);
    if (strategy_counts_better(candidates[c], counts, choice.strategy, choice.counts)) {
      choice.strategy = candidates[c];
      choice.counts = counts;
    }
  }
  return choice;
}

RefStrategy select_strategy(const Kernel& kernel, const RefGroup& group,
                            const ReuseInfo& info, std::int64_t regs,
                            const ModelOptions& options) {
  if (!info.has_reuse() || regs <= 0) return RefStrategy{};
  return select_strategy_counted(kernel, group, info, regs, options).strategy;
}

GroupCounts count_group_accesses(const Kernel& kernel, const RefGroup& group,
                                 const ReuseInfo& reuse, std::int64_t regs,
                                 const ModelOptions& options) {
  return select_strategy_counted(kernel, group, reuse, regs, options).counts;
}

}  // namespace srra
