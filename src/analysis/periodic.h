// Periodic collapse of the window policy (DESIGN.md §8): access counting in
// O(window) instead of O(iteration space).
//
// The policy's event stream is periodic at two levels, both exactly:
//
//  * Across window instances. Element indices are affine in the iteration
//    vector, so fixing the loops above the carrying level only adds a
//    constant offset to every element a window instance touches. Identity
//    patterns — and therefore every classification the WindowTracker makes,
//    including the first/last-carry-value steady flags — are identical in
//    each instance. One instance is walked; its counts are scaled by the
//    instance count.
//
//  * Across carry iterations inside a window. Advancing the carrying loop
//    by one step shifts every element of the group by the same constant, so
//    once the tracker's resident-set state repeats modulo that shift, every
//    following carry iteration (until the back-peeled last one) replays the
//    same events. The walk detects the repeat with normalized state
//    snapshots, multiplies the steady carry iteration's counts, fast-
//    forwards the tracker by translation, and walks the last carry
//    iteration concretely for its excluded-flush accounting.
//
// The result is bit-identical to the reference oracle
// count_group_accesses_full (cross-checked exhaustively in test_periodic).
#pragma once

#include <cstdint>

#include "analysis/walker.h"

namespace srra {

/// Access counters of `group` under `strategy`, computed by walking one
/// window instance with steady-state detection and scaling. Bit-identical
/// to count_group_accesses_full; O(window) instead of O(iteration space).
GroupCounts count_group_accesses_collapsed(const Kernel& kernel, const RefGroup& group,
                                           RefStrategy strategy);

/// Element-index shift of `group` per single step of loop `level` (constant
/// because accesses are affine): the translation the periodic collapse
/// normalizes state snapshots by.
std::int64_t element_shift_per_step(const Kernel& kernel, const RefGroup& group,
                                    int level);

/// Advances only the loops strictly below `level` (the sub-space walked
/// inside one carry iteration); returns false once they wrap.
bool next_inner_iteration(const Kernel& kernel, int level,
                          std::vector<std::int64_t>& iter);

/// Shared driver of the carry-loop steady-state collapse, used by both the
/// access counters and the cycle model so their subtle invariants cannot
/// drift apart. Calls `walk(k)` for every carry iteration walked
/// concretely; after each non-final one, compares `snapshot(k)` (the
/// normalized tracker state) with the previous iteration's. On a repeat at
/// a middle iteration it calls `fast_forward(k, repeats)` exactly once —
/// the caller must scale the just-walked iteration's charges by `repeats`
/// (= the number of skipped middle iterations) and translate its trackers
/// by `repeats` carry steps — then walks the last iteration concretely for
/// its back-peeled flush accounting. If the state never repeats, every
/// carry iteration is walked: the collapse degrades to the oracle, never
/// to a wrong answer.
template <typename Walk, typename Snapshot, typename FastForward>
void collapse_carry_loop(std::int64_t trip, Walk&& walk, Snapshot&& snapshot,
                         FastForward&& fast_forward) {
  decltype(snapshot(std::int64_t{0})) prev_state{};
  bool have_prev = false;
  std::int64_t k = 0;
  while (k < trip) {
    walk(k);
    if (k == trip - 1) break;
    auto state = snapshot(k);
    if (have_prev && k >= 1 && state == prev_state) {
      fast_forward(k, trip - 2 - k);  // skips carry iterations k+1..trip-2
      k = trip - 1;
      continue;
    }
    prev_state = std::move(state);
    have_prev = true;
    ++k;
  }
}

}  // namespace srra
