#include "analysis/model.h"

#include <algorithm>

#include "support/error.h"

namespace srra {

RefModel::RefModel(Kernel kernel, ModelOptions options)
    : kernel_(std::move(kernel)), options_(options) {
  kernel_.validate();
  groups_ = collect_ref_groups(kernel_);
  reuse_ = analyze_all_reuse(kernel_, groups_);
}

std::int64_t RefModel::beta_full(int g) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  return reuse_[static_cast<std::size_t>(g)].beta_full();
}

const GroupCounts& RefModel::counts(int g, std::int64_t regs) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  const auto key = std::make_pair(g, regs);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  const GroupCounts counts = count_group_accesses(
      kernel_, groups_[static_cast<std::size_t>(g)], reuse_[static_cast<std::size_t>(g)],
      regs, options_);
  // std::map nodes are stable, so the reference survives later insertions;
  // a racing thread computed the same value and emplace keeps the first.
  std::unique_lock<std::shared_mutex> lock(mu_);
  return cache_.emplace(key, counts).first->second;
}

RefStrategy RefModel::strategy(int g, std::int64_t regs) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  const auto key = std::make_pair(g, regs);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = strategy_cache_.find(key);
    if (it != strategy_cache_.end()) return it->second;
  }
  const RefStrategy s =
      select_strategy(kernel_, groups_[static_cast<std::size_t>(g)],
                      reuse_[static_cast<std::size_t>(g)], regs, options_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  return strategy_cache_.emplace(key, s).first->second;
}

std::int64_t RefModel::accesses(int g, std::int64_t regs, CountMode mode) const {
  const GroupCounts& c = counts(g, regs);
  return mode == CountMode::kSteady ? c.steady_total() : c.total();
}

std::int64_t RefModel::saved(int g) const {
  const std::int64_t base = accesses(g, 0, CountMode::kTotal);
  const std::int64_t full = accesses(g, beta_full(g), CountMode::kTotal);
  return base - full;
}

double RefModel::bc_ratio(int g) const {
  const std::int64_t b = beta_full(g);
  if (b <= 0) return 0.0;
  return static_cast<double>(saved(g)) / static_cast<double>(b);
}

std::vector<int> RefModel::sorted_by_benefit() const {
  std::vector<int> order(groups_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = bc_ratio(a);
    const double rb = bc_ratio(b);
    if (ra != rb) return ra > rb;
    return groups_[static_cast<std::size_t>(a)].first_order <
           groups_[static_cast<std::size_t>(b)].first_order;
  });
  return order;
}

}  // namespace srra
