#include "analysis/model.h"

#include <algorithm>

#include "support/error.h"

namespace srra {

RefModel::RefModel(Kernel kernel, ModelOptions options)
    : kernel_(std::move(kernel)), options_(options) {
  kernel_.validate();
  groups_ = collect_ref_groups(kernel_);
  reuse_ = analyze_all_reuse(kernel_, groups_);
}

std::int64_t RefModel::beta_full(int g) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  return reuse_[static_cast<std::size_t>(g)].beta_full();
}

const GroupCounts& RefModel::counts(int g, std::int64_t regs) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  if (const AccessCurve* curve = covering_curve(g, regs)) return curve->counts(g, regs);
  const auto key = std::make_pair(g, regs);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  const GroupCounts counts = count_group_accesses(
      kernel_, groups_[static_cast<std::size_t>(g)], reuse_[static_cast<std::size_t>(g)],
      regs, options_);
  // std::map nodes are stable, so the reference survives later insertions;
  // a racing thread computed the same value and emplace keeps the first.
  std::unique_lock<std::shared_mutex> lock(mu_);
  return cache_.emplace(key, counts).first->second;
}

RefStrategy RefModel::strategy(int g, std::int64_t regs) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  if (const AccessCurve* curve = covering_curve(g, regs)) return curve->strategy(g, regs);
  const auto key = std::make_pair(g, regs);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = strategy_cache_.find(key);
    if (it != strategy_cache_.end()) return it->second;
  }
  const RefStrategy s =
      select_strategy(kernel_, groups_[static_cast<std::size_t>(g)],
                      reuse_[static_cast<std::size_t>(g)], regs, options_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  return strategy_cache_.emplace(key, s).first->second;
}

std::vector<RefStrategy> RefModel::strategies(srra::span<const std::int64_t> regs) const {
  check(static_cast<int>(regs.size()) == group_count(),
        "strategies() needs one register count per group");
  std::vector<RefStrategy> out(regs.size());
  std::vector<int> missing;

  // Lock-free curve slice first, then one shared-lock pass for the rest.
  const AccessCurve* curve = curve_.load(std::memory_order_acquire);
  std::vector<bool> resolved(regs.size(), false);
  for (std::size_t g = 0; g < regs.size(); ++g) {
    if (curve != nullptr && curve->covers(static_cast<int>(g), regs[g])) {
      out[g] = curve->strategy(static_cast<int>(g), regs[g]);
      resolved[g] = true;
    }
  }
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (std::size_t g = 0; g < regs.size(); ++g) {
      if (resolved[g]) continue;
      const auto it = strategy_cache_.find(std::make_pair(static_cast<int>(g), regs[g]));
      if (it != strategy_cache_.end()) {
        out[g] = it->second;
        resolved[g] = true;
      } else {
        missing.push_back(static_cast<int>(g));
      }
    }
  }
  if (missing.empty()) return out;

  // Compute the misses outside any lock; the selection's counters seed the
  // count cache too, so a later counts() for the same point is a hit.
  std::vector<StrategyChoice> computed;
  computed.reserve(missing.size());
  for (const int g : missing) {
    computed.push_back(select_strategy_counted(
        kernel_, groups_[static_cast<std::size_t>(g)],
        reuse_[static_cast<std::size_t>(g)], regs[static_cast<std::size_t>(g)], options_));
    out[static_cast<std::size_t>(g)] = computed.back().strategy;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    const auto key =
        std::make_pair(missing[i], regs[static_cast<std::size_t>(missing[i])]);
    strategy_cache_.emplace(key, computed[i].strategy);
    cache_.emplace(key, computed[i].counts);
  }
  return out;
}

const AccessCurve& RefModel::access_curve(std::int64_t max_regs) const {
  // A saturated table answers any register count by clamping, so growing
  // it would only rebuild an identical table.
  const AccessCurve* curve = curve_.load(std::memory_order_acquire);
  if (curve != nullptr && (curve->max_regs() >= max_regs || curve->saturated())) {
    return *curve;
  }
  std::lock_guard<std::mutex> lock(curve_mu_);
  curve = curve_.load(std::memory_order_relaxed);
  if (curve != nullptr && (curve->max_regs() >= max_regs || curve->saturated())) {
    return *curve;
  }
  curves_.push_back(
      std::make_unique<AccessCurve>(kernel_, groups_, reuse_, max_regs, options_));
  curve_.store(curves_.back().get(), std::memory_order_release);
  return *curves_.back();
}

std::int64_t RefModel::accesses(int g, std::int64_t regs, CountMode mode) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  if (const AccessCurve* curve = covering_curve(g, regs)) {
    return mode == CountMode::kSteady ? curve->steady(g, regs) : curve->total(g, regs);
  }
  const GroupCounts& c = counts(g, regs);
  return mode == CountMode::kSteady ? c.steady_total() : c.total();
}

std::int64_t RefModel::saved(int g) const {
  const std::int64_t base = accesses(g, 0, CountMode::kTotal);
  const std::int64_t full = accesses(g, beta_full(g), CountMode::kTotal);
  return base - full;
}

double RefModel::bc_ratio(int g) const {
  const std::int64_t b = beta_full(g);
  if (b <= 0) return 0.0;
  return static_cast<double>(saved(g)) / static_cast<double>(b);
}

std::vector<int> RefModel::sorted_by_benefit() const {
  std::vector<int> order(groups_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = bc_ratio(a);
    const double rb = bc_ratio(b);
    if (ra != rb) return ra > rb;
    return groups_[static_cast<std::size_t>(a)].first_order <
           groups_[static_cast<std::size_t>(b)].first_order;
  });
  return order;
}

}  // namespace srra
