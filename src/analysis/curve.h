// Dense access-curve tables (DESIGN.md §9): for every reference group the
// full registers -> accesses curve, tabulated once and read lock-free.
//
// A group's counters are a function of its selected strategy, which is a
// function of its own register count only — so the whole curve for regs in
// [0, min(saturation, max_regs)] can be computed in one pass per group and
// shared by every allocator query thereafter. `saturation` is the largest
// carrying-window requirement (the outermost level's beta): past it the
// candidate set select_strategy evaluates no longer changes, so every
// counter is constant and queries clamp to the last tabulated slot.
//
// The table is immutable after construction. The per-group curves live in
// flat structure-of-arrays planes (steady totals, full totals, strategy
// fields) indexed by one offset table, so the allocator hot loops — the
// DP-RA inner loop, CPA-RA's cut weighing — are plain array reads instead
// of the shared-mutex memo lookups RefModel::counts() pays (model.h keeps
// that memo for queries the curve does not cover).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/refs.h"
#include "analysis/reuse.h"
#include "analysis/walker.h"
#include "ir/kernel.h"

namespace srra {

class AccessCurve {
 public:
  /// Tabulates every group's curve up to min(saturation(g), max_regs).
  /// Each slot holds exactly what count_group_accesses / select_strategy
  /// return for that (group, regs) — the memo and the curve agree by
  /// construction (cross-checked in test_frontier.cc).
  AccessCurve(const Kernel& kernel, const std::vector<RefGroup>& groups,
              const std::vector<ReuseInfo>& reuse, std::int64_t max_regs,
              const ModelOptions& options = {});

  std::int64_t max_regs() const { return max_regs_; }
  int group_count() const { return static_cast<int>(saturation_.size()); }

  /// True when every group is tabulated all the way to its saturation
  /// point: the table then answers *any* register count by clamping, so a
  /// larger max_regs would rebuild an identical table.
  bool saturated() const {
    for (int g = 0; g < group_count(); ++g) {
      if (cap(g) < saturation_[static_cast<std::size_t>(g)]) return false;
    }
    return true;
  }

  /// Last tabulated register count of group `g`.
  std::int64_t cap(int g) const {
    return static_cast<std::int64_t>(offset_[static_cast<std::size_t>(g) + 1] -
                                     offset_[static_cast<std::size_t>(g)]) -
           1;
  }

  /// True when the curve answers queries for (g, regs): either regs is
  /// tabulated, or the group saturated inside the table so larger counts
  /// clamp to the saturation slot.
  bool covers(int g, std::int64_t regs) const {
    return regs >= 0 &&
           (regs <= cap(g) || cap(g) == saturation_[static_cast<std::size_t>(g)]);
  }

  std::int64_t steady(int g, std::int64_t regs) const { return steady_[slot(g, regs)]; }
  std::int64_t total(int g, std::int64_t regs) const { return total_[slot(g, regs)]; }
  const GroupCounts& counts(int g, std::int64_t regs) const { return detail_[slot(g, regs)]; }
  RefStrategy strategy(int g, std::int64_t regs) const {
    const std::size_t s = slot(g, regs);
    return RefStrategy{strategy_level_[s], strategy_held_[s]};
  }

 private:
  std::size_t slot(int g, std::int64_t regs) const;

  std::int64_t max_regs_ = 0;
  std::vector<std::int64_t> saturation_;  ///< per group: largest carrying beta
  std::vector<std::size_t> offset_;       ///< group -> first slot; back() = size
  // Flat per-slot planes (slot = offset_[g] + regs).
  std::vector<std::int64_t> steady_;
  std::vector<std::int64_t> total_;
  std::vector<std::int32_t> strategy_level_;
  std::vector<std::int64_t> strategy_held_;
  std::vector<GroupCounts> detail_;
};

}  // namespace srra
