#include "analysis/periodic.h"

#include "analysis/reuse.h"

namespace srra {

namespace {

void add_scaled(GroupCounts& into, const GroupCounts& delta, std::int64_t factor) {
  into.miss_reads += delta.miss_reads * factor;
  into.miss_writes += delta.miss_writes * factor;
  into.fills += delta.fills * factor;
  into.steady_fills += delta.steady_fills * factor;
  into.flushes += delta.flushes * factor;
  into.steady_flushes += delta.steady_flushes * factor;
  into.reg_hits += delta.reg_hits * factor;
  into.reg_writes += delta.reg_writes * factor;
  into.forwards += delta.forwards * factor;
}

}  // namespace

std::int64_t element_shift_per_step(const Kernel& kernel, const RefGroup& group,
                                    int level) {
  std::vector<std::int64_t> base = first_iteration(kernel);
  const std::int64_t at_base = element_at(kernel, group.access, base);
  base[static_cast<std::size_t>(level)] += kernel.loop(level).step;
  return element_at(kernel, group.access, base) - at_base;
}

bool next_inner_iteration(const Kernel& kernel, int level,
                          std::vector<std::int64_t>& iter) {
  for (int l = kernel.depth() - 1; l > level; --l) {
    const Loop& loop = kernel.loop(l);
    auto& v = iter[static_cast<std::size_t>(l)];
    v += loop.step;
    if (v < loop.upper) return true;
    v = loop.lower;
  }
  return false;
}

GroupCounts count_group_accesses_collapsed(const Kernel& kernel, const RefGroup& group,
                                           RefStrategy strategy) {
  // Degenerate spaces (a zero-trip loop still contributes one walked
  // iteration under the do/while walk) stay on the oracle.
  for (int l = 0; l < kernel.depth(); ++l) {
    if (kernel.loop(l).trip_count() <= 0) {
      return count_group_accesses_full(kernel, group, strategy);
    }
  }

  GroupCounts per_iter;
  const auto count_event = [&per_iter](const AccessEvent& e) { record_event(per_iter, e); };
  const EventSink sink(count_event);
  WindowTracker tracker(kernel, group, strategy);

  if (!strategy.holds()) {
    // No cross-iteration state: every iteration replays the same forwarding
    // and miss pattern. Walk the first one and scale.
    const std::vector<std::int64_t> iter = first_iteration(kernel);
    tracker.begin_iteration(iter, sink);
    for (const RefOccurrence& occ : group.occurrences) {
      tracker.on_access(iter, occ.is_write, occ.stmt, occ.order, sink);
    }
    GroupCounts total;
    add_scaled(total, per_iter, kernel.iteration_count());
    return total;
  }

  const int level = strategy.carry_level;
  std::int64_t windows = 1;
  for (int l = 0; l < level; ++l) windows *= kernel.loop(l).trip_count();
  const Loop& carry = kernel.loop(level);
  const std::int64_t trip = carry.trip_count();
  const std::int64_t delta = element_shift_per_step(kernel, group, level);

  GroupCounts window_counts;
  std::vector<std::int64_t> iter = first_iteration(kernel);
  collapse_carry_loop(
      trip,
      [&](std::int64_t k) {
        iter[static_cast<std::size_t>(level)] = carry.value_at(k);
        for (int l = level + 1; l < kernel.depth(); ++l) {
          iter[static_cast<std::size_t>(l)] = kernel.loop(l).lower;
        }
        per_iter = GroupCounts{};
        do {
          tracker.begin_iteration(iter, sink);
          for (const RefOccurrence& occ : group.occurrences) {
            tracker.on_access(iter, occ.is_write, occ.stmt, occ.order, sink);
          }
        } while (next_inner_iteration(kernel, level, iter));
        add_scaled(window_counts, per_iter, 1);
      },
      [&](std::int64_t k) { return tracker.held_snapshot(k * delta); },
      [&](std::int64_t, std::int64_t repeats) {
        add_scaled(window_counts, per_iter, repeats);
        tracker.translate_held(repeats * delta);
      });
  // Trailing window-boundary flushes. In the full walk these are emitted
  // once per instance (at the next instance's first begin_iteration, or by
  // finish() for the very last one), always back-peeled; here the single
  // walked instance ends with finish() and the flushes scale with it.
  per_iter = GroupCounts{};
  tracker.finish(sink);
  add_scaled(window_counts, per_iter, 1);

  GroupCounts total;
  add_scaled(total, window_counts, windows);
  return total;
}

}  // namespace srra
