#include "analysis/intlin.h"

#include <cstdlib>

#include "support/error.h"

namespace srra {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

void normalize_primitive(std::vector<std::int64_t>& v) {
  std::int64_t g = 0;
  for (std::int64_t x : v) g = gcd64(g, x);
  if (g <= 1) return;
  for (std::int64_t& x : v) x /= g;
}

std::vector<std::vector<std::int64_t>> integer_nullspace(const IntMatrix& m) {
  check(m.rows >= 0 && m.cols > 0, "nullspace needs a matrix with columns");
  // Fraction-free (Bareiss-style) row echelon form on a working copy.
  IntMatrix w = m;
  std::vector<int> pivot_col_of_row;  // echelon structure
  int row = 0;
  for (int col = 0; col < w.cols && row < w.rows; ++col) {
    // Find a pivot row.
    int pivot = -1;
    for (int r = row; r < w.rows; ++r) {
      if (w.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != row) {
      for (int c = 0; c < w.cols; ++c) std::swap(w.at(pivot, c), w.at(row, c));
    }
    // Eliminate below: r' = r * p - (r[col]) * pivot_row, then reduce by gcd
    // to keep entries small.
    const std::int64_t p = w.at(row, col);
    for (int r = row + 1; r < w.rows; ++r) {
      const std::int64_t f = w.at(r, col);
      if (f == 0) continue;
      std::int64_t g = 0;
      for (int c = 0; c < w.cols; ++c) {
        w.at(r, c) = w.at(r, c) * p - f * w.at(row, c);
        g = gcd64(g, w.at(r, c));
      }
      if (g > 1) {
        for (int c = 0; c < w.cols; ++c) w.at(r, c) /= g;
      }
    }
    pivot_col_of_row.push_back(col);
    ++row;
  }
  const int rank = row;

  // Free columns get one basis vector each, solved by back substitution over
  // rationals kept as integer numerators with a running scale.
  std::vector<bool> is_pivot_col(static_cast<std::size_t>(w.cols), false);
  for (int c : pivot_col_of_row) is_pivot_col[static_cast<std::size_t>(c)] = true;

  std::vector<std::vector<std::int64_t>> basis;
  for (int free_col = 0; free_col < w.cols; ++free_col) {
    if (is_pivot_col[static_cast<std::size_t>(free_col)]) continue;
    // Solve w * x = 0 with x[free_col] = D (a common denominator we grow as
    // needed) and all other free columns 0.
    std::vector<std::int64_t> x(static_cast<std::size_t>(w.cols), 0);
    x[static_cast<std::size_t>(free_col)] = 1;
    // Back-substitute pivot rows from bottom to top. Multiply the whole
    // vector when a division would not be exact.
    for (int r = rank - 1; r >= 0; --r) {
      const int pc = pivot_col_of_row[static_cast<std::size_t>(r)];
      std::int64_t sum = 0;
      for (int c = pc + 1; c < w.cols; ++c) sum += w.at(r, c) * x[static_cast<std::size_t>(c)];
      const std::int64_t p = w.at(r, pc);
      // Need x[pc] = -sum / p exactly; scale x if p does not divide sum.
      const std::int64_t g = gcd64(sum, p);
      const std::int64_t scale = (g == 0) ? 1 : (p < 0 ? -p : p) / g;
      if (scale != 1) {
        for (std::int64_t& v : x) v *= scale;
        sum *= scale;
      }
      x[static_cast<std::size_t>(pc)] = -sum / p;
    }
    normalize_primitive(x);
    basis.push_back(std::move(x));
  }
  return basis;
}

}  // namespace srra
