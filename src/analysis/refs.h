// Reference groups: all syntactic occurrences of the same (array, affine
// subscripts) pair form one allocation object — e.g. the write of d[i][k]
// in one statement and its read in the next are the same group, exactly as
// in the paper's DFG (Figure 2). The allocators assign registers per group.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/kernel.h"

namespace srra {

/// One syntactic occurrence of a group inside the loop body, in evaluation
/// order (per statement: RHS reads left-to-right, then the LHS write).
struct RefOccurrence {
  int stmt = 0;          ///< statement index in the body
  int order = 0;         ///< global evaluation order within the iteration
  bool is_write = false;
};

/// A group of identical array references.
struct RefGroup {
  int id = 0;
  ArrayAccess access;                    ///< representative access
  std::string display;                   ///< e.g. "b[k][j]"
  std::vector<RefOccurrence> occurrences;///< in evaluation order
  int reads_per_iter = 0;                ///< read occurrences per iteration
  int writes_per_iter = 0;               ///< write occurrences per iteration
  int forwarded_reads_per_iter = 0;      ///< reads preceded by a group write
                                         ///< in the same iteration (wired
                                         ///< through, never RAM accesses)
  int first_order = 0;                   ///< evaluation order of first occurrence

  bool has_write() const { return writes_per_iter > 0; }
  bool has_read() const { return reads_per_iter > 0; }
};

/// Collects the reference groups of a kernel body in first-occurrence order.
std::vector<RefGroup> collect_ref_groups(const Kernel& kernel);

/// Total number of reference occurrences per iteration across all groups.
int total_occurrences(const std::vector<RefGroup>& groups);

/// Finds the group with the given display name (convenience for tests and
/// benches); throws if absent.
const RefGroup& group_named(const std::vector<RefGroup>& groups, const std::string& display);

}  // namespace srra
