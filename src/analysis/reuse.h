// Data reuse analysis for affine array references (Callahan/Carr/Kennedy
// style, as used by So & Hall and the paper). For each reference group we
// compute:
//  * which loop levels carry temporal reuse (a feasible iteration-difference
//    vector in the nullspace of the access matrix, first nonzero at that
//    level), and
//  * beta(level): the number of registers needed to fully exploit the reuse
//    carried at that level = the number of distinct elements the reference
//    touches during one iteration of that loop.
// "Full scalar replacement" in the paper's sense uses the outermost carrying
// level; beta_full() is its beta.
#pragma once

#include <cstdint>
#include "support/span.h"
#include <vector>

#include "analysis/refs.h"
#include "ir/kernel.h"

namespace srra {

/// One loop level that carries temporal reuse for a reference group.
struct CarryLevel {
  int level = 0;            ///< loop level (0 = outermost)
  std::int64_t beta = 0;    ///< registers for full exploitation at this level
};

/// Reuse summary of one reference group.
struct ReuseInfo {
  int group = 0;
  /// Canonical reuse distance vector (smallest feasible, outermost-carrying
  /// first); empty when the reference has no temporal reuse.
  std::vector<std::int64_t> distance;
  /// Carrying levels, outermost first; empty when no reuse.
  std::vector<CarryLevel> levels;

  bool has_reuse() const { return !levels.empty(); }

  /// Registers required for full scalar replacement (outermost carrying
  /// level); 1 when the reference has no reuse (the feasibility register).
  std::int64_t beta_full() const { return levels.empty() ? 1 : levels.front().beta; }

  /// Outermost carrying level, or -1 when no reuse.
  int outermost_level() const { return levels.empty() ? -1 : levels.front().level; }

  /// beta at `level`, or -1 when that level carries no reuse.
  std::int64_t beta_at(int level) const;
};

/// Linearized (row-major) element index of `access` at `iteration`.
std::int64_t element_at(const Kernel& kernel, const ArrayAccess& access,
                        srra::span<const std::int64_t> iteration);

/// The linearized element index as a single affine function of the
/// iteration vector: element_at(kernel, access, it) ==
/// linearize_access(kernel, access).evaluate(it) for every iteration.
/// Hot walkers precompute this form once instead of re-composing the
/// per-dimension subscripts on every access.
AffineExpr linearize_access(const Kernel& kernel, const ArrayAccess& access);

/// Per-level linearized element shift of `access` per single step of each
/// loop: result[l] = linearize_access coefficient at l times the loop step.
/// This is the row of the (step-scaled) access matrix the analytic
/// transform-space bounds (dse/prune.h) act on: zero at a level means the
/// reference is invariant under that loop, the innermost nonzero entry
/// identifies the level whose stepping moves the element every iteration.
std::vector<std::int64_t> access_shift_profile(const Kernel& kernel,
                                               const ArrayAccess& access);

/// Number of distinct elements `access` touches during one iteration of
/// loop `level` (the register requirement of a window at that level).
std::int64_t window_size(const Kernel& kernel, const ArrayAccess& access, int level);

/// Analyzes one reference group.
ReuseInfo analyze_reuse(const Kernel& kernel, const RefGroup& group);

/// Analyzes every group of the kernel (index-aligned with `groups`).
std::vector<ReuseInfo> analyze_all_reuse(const Kernel& kernel,
                                         const std::vector<RefGroup>& groups);

}  // namespace srra
