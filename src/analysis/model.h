// RefModel: one-stop analysis facade for a kernel. Owns the reference
// groups, their reuse summaries, and cached access counts; provides the
// benefit/cost metric the greedy allocators sort by (paper §4):
//
//   B/C(ref) = saved(ref) / beta_full(ref)
//   saved(ref) = accesses(ref, no holding) - accesses(ref, beta_full),
//
// counted in "total" mode (window fill/flush traffic included), which makes
// a reference with no exploitable reuse worth exactly 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "analysis/curve.h"
#include "analysis/refs.h"
#include "analysis/reuse.h"
#include "analysis/walker.h"
#include "ir/kernel.h"
#include "support/memo.h"
#include "support/span.h"

namespace srra {

/// Counting mode for access totals.
enum class CountMode {
  kSteady,  ///< peeled fill/flush traffic excluded (execution accounting)
  kTotal,   ///< everything (benefit metric)
};

/// Analysis facade owning one kernel. All cached queries (accesses, counts,
/// strategy, the cycle-model memo) are thread-safe, so one RefModel can be
/// shared by every evaluation lane of a design-space sweep (dse/explore.h):
/// cache hits take a shared lock, misses compute outside any lock and
/// publish under an exclusive one — values are deterministic functions of
/// the key, so racing writers agree. Queries covered by a published
/// AccessCurve (access_curve()) bypass the memo locks entirely.
class RefModel {
 public:
  explicit RefModel(Kernel kernel, ModelOptions options = {});

  const Kernel& kernel() const { return kernel_; }
  const std::vector<RefGroup>& groups() const { return groups_; }
  const std::vector<ReuseInfo>& reuse() const { return reuse_; }
  const ModelOptions& options() const { return options_; }
  int group_count() const { return static_cast<int>(groups_.size()); }

  /// Registers for full scalar replacement of group `g`.
  std::int64_t beta_full(int g) const;

  /// RAM accesses of group `g` when it owns `regs` registers (cached).
  std::int64_t accesses(int g, std::int64_t regs, CountMode mode) const;

  /// Full counter detail (cached alongside accesses()).
  const GroupCounts& counts(int g, std::int64_t regs) const;

  /// The strategy select_strategy picks for group `g` at `regs` registers
  /// (cached; the empirical selection evaluates every candidate window).
  RefStrategy strategy(int g, std::int64_t regs) const;

  /// Batched strategy lookup for one whole allocation (regs[g] registers
  /// for group g): one shared-lock pass gathers the cache hits, the misses
  /// are computed outside any lock and published under a single exclusive
  /// lock — instead of one lock round-trip per group (sched/cycle_model.cc
  /// builds its memo key this way).
  std::vector<RefStrategy> strategies(srra::span<const std::int64_t> regs) const;

  /// The dense access-curve table covering register counts up to at least
  /// `max_regs`, built on first call (or grown if a smaller table was
  /// published earlier) and read lock-free afterwards. Slices every
  /// accesses()/counts()/strategy() query it covers without touching the
  /// memo locks; the returned reference stays valid for the model's
  /// lifetime.
  const AccessCurve& access_curve(std::int64_t max_regs) const;

  /// Accesses eliminated by full scalar replacement (total mode).
  std::int64_t saved(int g) const;

  /// Benefit/cost ratio used by the greedy allocators.
  double bc_ratio(int g) const;

  /// Group ids sorted by descending B/C, ties broken by first occurrence
  /// order in the body (the paper's sorted reference list).
  std::vector<int> sorted_by_benefit() const;

  /// Memo table for the cycle model (sched/cycle_model.cc): one report per
  /// (per-group strategy vector, CycleOptions knobs). Lives here so a
  /// budget sweep sharing this model reuses reports across saturated
  /// budgets and across evaluation lanes.
  MemoTable& cycle_memo() const { return cycle_memo_; }

 private:
  /// The published curve if it covers (g, regs), else nullptr. Lock-free:
  /// one acquire load; the curve itself is immutable.
  const AccessCurve* covering_curve(int g, std::int64_t regs) const {
    const AccessCurve* curve = curve_.load(std::memory_order_acquire);
    return curve != nullptr && curve->covers(g, regs) ? curve : nullptr;
  }

  Kernel kernel_;
  ModelOptions options_;
  std::vector<RefGroup> groups_;
  std::vector<ReuseInfo> reuse_;
  mutable std::shared_mutex mu_;
  mutable std::map<std::pair<int, std::int64_t>, GroupCounts> cache_;
  mutable std::map<std::pair<int, std::int64_t>, RefStrategy> strategy_cache_;
  mutable MemoTable cycle_memo_;
  // Access-curve publication: built under curve_mu_, then published through
  // the atomic for lock-free readers. Superseded (smaller) tables are kept
  // in curves_ so outstanding references never dangle.
  mutable std::mutex curve_mu_;
  mutable std::vector<std::unique_ptr<AccessCurve>> curves_;
  mutable std::atomic<const AccessCurve*> curve_{nullptr};
};

}  // namespace srra
