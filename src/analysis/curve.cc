#include "analysis/curve.h"

#include <algorithm>
#include <map>

#include "support/error.h"

namespace srra {

AccessCurve::AccessCurve(const Kernel& kernel, const std::vector<RefGroup>& groups,
                         const std::vector<ReuseInfo>& reuse, std::int64_t max_regs,
                         const ModelOptions& options)
    : max_regs_(max_regs) {
  check(groups.size() == reuse.size(), "groups/reuse size mismatch");
  check(max_regs >= 0, "access curve needs a non-negative register bound");

  saturation_.reserve(groups.size());
  offset_.reserve(groups.size() + 1);
  offset_.push_back(0);
  for (const ReuseInfo& info : reuse) {
    std::int64_t sat = 0;
    for (const CarryLevel& cl : info.levels) sat = std::max(sat, cl.beta);
    saturation_.push_back(sat);
    offset_.push_back(offset_.back() +
                      static_cast<std::size_t>(std::min(sat, max_regs)) + 1);
  }

  const std::size_t slots = offset_.back();
  steady_.reserve(slots);
  total_.reserve(slots);
  strategy_level_.reserve(slots);
  strategy_held_.reserve(slots);
  detail_.reserve(slots);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::int64_t cap = std::min(saturation_[g], max_regs);
    // Candidate passes memoized per distinct strategy across the whole
    // register range: the no-holding and full-exploitation candidates are
    // the same at every r, so each is walked once instead of cap times
    // (only the partial windows change per r).
    std::map<std::pair<int, std::int64_t>, GroupCounts> pass_memo;
    const auto pass = [&](const RefStrategy& s) -> const GroupCounts& {
      const auto key = std::make_pair(s.carry_level, s.held_limit);
      const auto it = pass_memo.find(key);
      if (it != pass_memo.end()) return it->second;
      return pass_memo
          .emplace(key, count_group_accesses_strategy(kernel, groups[g], s, options))
          .first->second;
    };
    for (std::int64_t r = 0; r <= cap; ++r) {
      const std::vector<RefStrategy> candidates =
          strategy_candidates(reuse[g], r, options);
      RefStrategy best = candidates.front();
      GroupCounts best_counts = pass(best);
      for (std::size_t c = 1; c < candidates.size(); ++c) {
        const GroupCounts& counts = pass(candidates[c]);
        if (strategy_counts_better(candidates[c], counts, best, best_counts)) {
          best = candidates[c];
          best_counts = counts;
        }
      }
      steady_.push_back(best_counts.steady_total());
      total_.push_back(best_counts.total());
      strategy_level_.push_back(best.carry_level);
      strategy_held_.push_back(best.held_limit);
      detail_.push_back(best_counts);
    }
  }
}

std::size_t AccessCurve::slot(int g, std::int64_t regs) const {
  check(g >= 0 && g < group_count(), "group id out of range");
  check(covers(g, regs), "access curve does not cover this register count");
  return offset_[static_cast<std::size_t>(g)] +
         static_cast<std::size_t>(std::min(regs, cap(g)));
}

}  // namespace srra
