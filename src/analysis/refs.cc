#include "analysis/refs.h"

#include "ir/printer.h"
#include "support/error.h"
#include "support/str.h"

namespace srra {

namespace {

int find_or_add_group(std::vector<RefGroup>& groups, const Kernel& kernel,
                      const ArrayAccess& access) {
  for (const RefGroup& g : groups) {
    if (g.access == access) return g.id;
  }
  RefGroup group;
  group.id = static_cast<int>(groups.size());
  group.access = access;
  group.display = access_to_string(kernel, access);
  groups.push_back(std::move(group));
  return groups.back().id;
}

}  // namespace

std::vector<RefGroup> collect_ref_groups(const Kernel& kernel) {
  std::vector<RefGroup> groups;
  int order = 0;
  for (int s = 0; s < static_cast<int>(kernel.body().size()); ++s) {
    const Stmt& stmt = kernel.body()[static_cast<std::size_t>(s)];
    // Track which groups have been written earlier in the iteration so the
    // forwarding rule (same-iteration read-after-write is a wire) is known.
    stmt.rhs->for_each_ref([&](const ArrayAccess& access) {
      const int id = find_or_add_group(groups, kernel, access);
      RefGroup& g = groups[static_cast<std::size_t>(id)];
      if (g.occurrences.empty()) g.first_order = order;
      g.occurrences.push_back(RefOccurrence{s, order, false});
      ++g.reads_per_iter;
      ++order;
    });
    const int id = find_or_add_group(groups, kernel, stmt.lhs);
    RefGroup& g = groups[static_cast<std::size_t>(id)];
    if (g.occurrences.empty()) g.first_order = order;
    g.occurrences.push_back(RefOccurrence{s, order, true});
    ++g.writes_per_iter;
    ++order;
  }

  // Count forwarded reads: a read occurrence that has an earlier write
  // occurrence of the same group within the iteration body.
  for (RefGroup& g : groups) {
    int first_write_order = -1;
    for (const RefOccurrence& occ : g.occurrences) {
      if (occ.is_write) {
        first_write_order = occ.order;
        break;
      }
    }
    if (first_write_order < 0) continue;
    for (const RefOccurrence& occ : g.occurrences) {
      if (!occ.is_write && occ.order > first_write_order) ++g.forwarded_reads_per_iter;
    }
  }
  return groups;
}

int total_occurrences(const std::vector<RefGroup>& groups) {
  int total = 0;
  for (const RefGroup& g : groups) total += static_cast<int>(g.occurrences.size());
  return total;
}

const RefGroup& group_named(const std::vector<RefGroup>& groups, const std::string& display) {
  for (const RefGroup& g : groups) {
    if (g.display == display) return g;
  }
  fail(cat("no reference group named ", display));
}

}  // namespace srra
