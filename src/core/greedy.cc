#include "core/greedy.h"

namespace srra {

Allocation allocate_fr(const RefModel& model, std::int64_t budget) {
  Allocation a = feasibility_allocation(model, budget);
  a.algorithm = "FR-RA";
  std::int64_t left = budget - a.total();
  for (int g : model.sorted_by_benefit()) {
    if (model.bc_ratio(g) <= 0.0) break;  // no further reference saves anything
    const std::int64_t need = model.beta_full(g) - a.regs[static_cast<std::size_t>(g)];
    if (need <= 0 || need > left) continue;
    a.regs[static_cast<std::size_t>(g)] += need;
    left -= need;
  }
  return a;
}

Allocation allocate_pr(const RefModel& model, std::int64_t budget) {
  Allocation a = allocate_fr(model, budget);
  a.algorithm = "PR-RA";
  std::int64_t left = budget - a.total();
  // Pour leftovers into the first not-fully-covered profitable references,
  // in the same benefit order (the paper assigns them to "the next
  // reference in the sorted list").
  for (int g : model.sorted_by_benefit()) {
    if (left <= 0) break;
    if (model.bc_ratio(g) <= 0.0) break;
    auto& r = a.regs[static_cast<std::size_t>(g)];
    const std::int64_t room = model.beta_full(g) - r;
    if (room <= 0) continue;
    const std::int64_t give = std::min(room, left);
    r += give;
    left -= give;
  }
  return a;
}

}  // namespace srra
