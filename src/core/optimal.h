// Optimal-partial allocator: dynamic programming over the register budget
// that minimizes the total steady-state RAM access count, allowing any
// per-reference register count (not just the full-or-nothing knapsack).
// This bounds what any allocator can achieve under the serial access
// metric; CPA-RA can still win on *cycles* because the DP objective is
// blind to operand concurrency and the critical path (ablation Ext. B).
#pragma once

#include "core/allocation.h"

namespace srra {

/// Minimizes sum_g steady_accesses(g, n_g) s.t. sum n_g <= budget,
/// 1 <= n_g <= beta_full(g). Pseudo-polynomial in the budget.
Allocation allocate_optimal_dp(const RefModel& model, std::int64_t budget);

}  // namespace srra
