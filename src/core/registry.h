// Allocator registry: the paper's three algorithms plus baselines, selected
// by enum or name (benches and examples iterate over these).
#pragma once

#include <string>
#include <vector>

#include "core/allocation.h"

namespace srra {

/// Available register allocation algorithms.
enum class Algorithm {
  kFeasibility,  ///< one register per reference (no reuse exploitation)
  kFrRa,         ///< Full Reuse RA (paper Fig. 3, v1)
  kPrRa,         ///< Partial Reuse RA (paper Fig. 3, v2)
  kCpaRa,        ///< Critical-Path-Aware RA (paper Fig. 4, v3)
  kKnapsack,     ///< exact 0/1 knapsack (ablation)
  kOptimalDp,    ///< DP-optimal partial allocation for the serial access metric
  kLinearScan,   ///< linear scan over scalar live intervals (core/linear_scan.h)
  kBnbOptimal,   ///< branch-and-bound certified optimum (core/bnb_optimal.h)
};

/// Number of Algorithm enum values (dense, starting at 0) — sized arrays
/// indexed by static_cast<std::size_t>(algorithm) use this.
constexpr int kAlgorithmCount = 8;
static_assert(static_cast<int>(Algorithm::kBnbOptimal) + 1 == kAlgorithmCount,
              "kAlgorithmCount must track the last Algorithm enumerator");

/// Short display name, e.g. "CPA-RA".
std::string algorithm_name(Algorithm algorithm);

/// Parses "feasibility" / "fr" / "pr" / "cpa" / "knapsack" / "ks" / "dp" /
/// "optimal" / "optimal-dp" / "ls" / "linear-scan" / "bnb" / "optimal-bnb"
/// (and the display names, so parse_algorithm(algorithm_name(a)) round-trips
/// for every enum value); throws on unknown input.
Algorithm parse_algorithm(const std::string& name);

/// Runs the chosen algorithm.
Allocation allocate(Algorithm algorithm, const RefModel& model, std::int64_t budget);

/// The paper's three variants in Table 1 order (v1, v2, v3).
std::vector<Algorithm> paper_variants();

/// Every algorithm, in enum order.
std::vector<Algorithm> all_algorithms();

}  // namespace srra
