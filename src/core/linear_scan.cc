#include "core/linear_scan.h"

#include <algorithm>

#include "support/span.h"

namespace srra {

std::vector<LiveInterval> scalar_live_intervals(const RefModel& model) {
  std::vector<LiveInterval> intervals;
  for (int g = 0; g < model.group_count(); ++g) {
    const std::int64_t need = model.beta_full(g) - 1;
    if (need <= 0) continue;  // no reuse window beyond the operand latch
    const RefGroup& group = model.groups()[static_cast<std::size_t>(g)];
    intervals.push_back(LiveInterval{g, group.occurrences.front().order,
                                     group.occurrences.back().order, need});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const LiveInterval& a, const LiveInterval& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end < b.end;
              return a.group < b.group;
            });
  return intervals;
}

namespace {

// One O(G log G) scan replay for one budget; `regs` is overwritten with the
// full assignment. Shared verbatim by the single-budget entry point and the
// frontier builder, so slices match standalone runs by construction.
void scan_replay(srra::span<const LiveInterval> intervals, std::int64_t budget,
                 std::vector<std::int64_t>& regs) {
  std::fill(regs.begin(), regs.end(), std::int64_t{1});
  std::int64_t pool = budget - static_cast<std::int64_t>(regs.size());

  // Indices into `intervals`: the active set is kept sorted so the holder
  // with the furthest next use is at the back; `spilled` remembers losers in
  // spill order for the final partial pour.
  std::vector<std::size_t> active;
  std::vector<std::size_t> spilled;
  const auto ends_before = [&](std::size_t a, std::size_t b) {
    if (intervals[a].end != intervals[b].end) return intervals[a].end < intervals[b].end;
    if (intervals[a].start != intervals[b].start) {
      return intervals[a].start < intervals[b].start;
    }
    return intervals[a].group < intervals[b].group;
  };

  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const LiveInterval& iv = intervals[i];
    // Expire lifetimes that ended before this start: their registers stay
    // committed, they just stop being eviction candidates.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](std::size_t a) { return intervals[a].end < iv.start; }),
                 active.end());

    if (iv.need > pool) {
      // Spill-furthest-next-use: walk the active set from the furthest end
      // down, counting holders whose next use lies beyond iv's end, and
      // evict that suffix only if the freed registers make iv fit.
      std::int64_t freed = 0;
      std::size_t evict = active.size();
      while (evict > 0 && intervals[active[evict - 1]].end > iv.end &&
             pool + freed < iv.need) {
        freed += intervals[active[evict - 1]].need;
        --evict;
      }
      if (pool + freed >= iv.need) {
        for (std::size_t k = evict; k < active.size(); ++k) {
          regs[static_cast<std::size_t>(intervals[active[k]].group)] = 1;
          spilled.push_back(active[k]);
        }
        active.resize(evict);
        pool += freed;
      }
    }

    if (iv.need <= pool) {
      regs[static_cast<std::size_t>(iv.group)] += iv.need;
      pool -= iv.need;
      active.insert(std::upper_bound(active.begin(), active.end(), i, ends_before), i);
    } else {
      spilled.push_back(i);
    }
  }

  // Partial pour: leftover registers go to the spilled intervals smallest
  // need first (a shorter window is closest to completion, and reuse
  // windows pay off near completion), capped at beta_full. Stable order
  // keeps ties deterministic in spill order.
  std::stable_sort(spilled.begin(), spilled.end(), [&](std::size_t a, std::size_t b) {
    return intervals[a].need < intervals[b].need;
  });
  for (const std::size_t s : spilled) {
    if (pool <= 0) break;
    const LiveInterval& iv = intervals[s];
    auto& r = regs[static_cast<std::size_t>(iv.group)];
    const std::int64_t give = std::min(iv.need + 1 - r, pool);
    r += give;
    pool -= give;
  }
}

}  // namespace

Allocation allocate_linear_scan(const RefModel& model, std::int64_t budget) {
  Allocation a = feasibility_allocation(model, budget);
  a.algorithm = "LS-RA";
  const std::vector<LiveInterval> intervals = scalar_live_intervals(model);
  scan_replay(srra::span<const LiveInterval>(intervals.data(), intervals.size()), budget,
              a.regs);
  return a;
}

AllocationFrontier allocate_linear_scan_frontier(const RefModel& model,
                                                 std::int64_t max_budget) {
  AllocationFrontier frontier = make_frontier(model, max_budget, "LS-RA");
  const std::vector<LiveInterval> intervals = scalar_live_intervals(model);
  const srra::span<const LiveInterval> plan(intervals.data(), intervals.size());
  std::vector<std::int64_t> regs(static_cast<std::size_t>(model.group_count()));
  for (std::int64_t b = frontier.min_budget; b <= max_budget; ++b) {
    scan_replay(plan, b, regs);
    push_frontier_budget(frontier, regs);
  }
  return frontier;
}

}  // namespace srra
