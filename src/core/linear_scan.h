// Linear-scan register allocation over scalar-replaced live ranges
// (DESIGN.md §11). Each reference group with exploitable reuse becomes one
// weighted live interval — first-touch to last-use evaluation rank within
// one steady-state iteration of the loop body, weight beta_full - 1 — and
// a single sorted scan with an active set decides which groups hold their
// full reuse window:
//
//  * intervals are visited in ascending start rank;
//  * intervals whose lifetime ended before the current start expire out of
//    the active set (their registers stay committed — the assignment is
//    static over the steady state — but they leave eviction candidacy);
//  * when the current interval does not fit the remaining budget, active
//    holders whose next use lies *beyond* the current interval's end are
//    evicted furthest-next-use-first, but only when the freed registers
//    actually let the current interval fit (the weighted generalization of
//    Poletto/Sarkar spill-furthest);
//  * leftover registers are poured into the spilled intervals in spill
//    order, capped at beta_full (partial windows still cut accesses).
//
// The scan needs only the reuse analysis (occurrence ranks + beta_full) —
// no access counting, no benefit metric — so one allocation is O(G log G)
// after the model's structural analysis, a fraction of both the greedy
// allocators (which pay the access-count passes behind bc_ratio) and the
// O(G*B^2) DP. Quality sits within a few percent of the greedy allocators
// on the paper kernels (pinned in tests/test_allocators.cc and measured in
// bench_allocators); this is the latency-sensitive path of ROADMAP item 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocation.h"
#include "core/frontier.h"

namespace srra {

/// One scalar-replaced live range: a reference group with exploitable reuse,
/// spanning its first-touch to last-use evaluation ranks within one
/// steady-state iteration of the loop body.
struct LiveInterval {
  int group = 0;           ///< reference group id
  int start = 0;           ///< evaluation rank of the first touch
  int end = 0;             ///< evaluation rank of the last use
  std::int64_t need = 0;   ///< holding registers beyond the latch (beta_full - 1)
};

/// The live intervals the scan runs over: one per group with beta_full > 1,
/// sorted by (start, end, group). Groups without exploitable reuse never
/// enter the scan — their feasibility register is unconditional.
std::vector<LiveInterval> scalar_live_intervals(const RefModel& model);

/// Linear-scan allocation for one budget (algorithm name "LS-RA").
Allocation allocate_linear_scan(const RefModel& model, std::int64_t budget);

/// LS-RA for every budget from one interval plan: each budget is an
/// O(G log G) scan replay, byte-identical to allocate_linear_scan at that
/// budget (pinned in tests/test_frontier.cc and tests/test_allocators.cc).
AllocationFrontier allocate_linear_scan_frontier(const RefModel& model,
                                                 std::int64_t max_budget);

}  // namespace srra
