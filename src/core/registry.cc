#include "core/registry.h"

#include "core/bnb_optimal.h"
#include "core/cpa_ra.h"
#include "core/frontier.h"
#include "core/knapsack.h"
#include "core/linear_scan.h"
#include "core/optimal.h"
#include "support/error.h"
#include "support/str.h"

namespace srra {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFeasibility: return "feasibility";
    case Algorithm::kFrRa: return "FR-RA";
    case Algorithm::kPrRa: return "PR-RA";
    case Algorithm::kCpaRa: return "CPA-RA";
    case Algorithm::kKnapsack: return "KS-RA";
    case Algorithm::kOptimalDp: return "DP-RA";
    case Algorithm::kLinearScan: return "LS-RA";
    case Algorithm::kBnbOptimal: return "BB-RA";
  }
  fail("unknown Algorithm");
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "feasibility") return Algorithm::kFeasibility;
  if (name == "fr" || name == "FR-RA") return Algorithm::kFrRa;
  if (name == "pr" || name == "PR-RA") return Algorithm::kPrRa;
  if (name == "cpa" || name == "CPA-RA") return Algorithm::kCpaRa;
  if (name == "knapsack" || name == "ks" || name == "KS-RA") return Algorithm::kKnapsack;
  if (name == "dp" || name == "optimal" || name == "optimal-dp" || name == "DP-RA") {
    return Algorithm::kOptimalDp;
  }
  if (name == "ls" || name == "linear-scan" || name == "LS-RA") {
    return Algorithm::kLinearScan;
  }
  if (name == "bnb" || name == "bb" || name == "optimal-bnb" || name == "BB-RA") {
    return Algorithm::kBnbOptimal;
  }
  fail(cat("unknown algorithm name: ", name));
}

Allocation allocate(Algorithm algorithm, const RefModel& model, std::int64_t budget) {
  switch (algorithm) {
    case Algorithm::kFeasibility: return feasibility_allocation(model, budget);
    case Algorithm::kFrRa: return allocate_fr(model, budget);
    case Algorithm::kPrRa: return allocate_pr(model, budget);
    case Algorithm::kCpaRa: return allocate_cpa(model, budget);
    case Algorithm::kKnapsack: return allocate_knapsack(model, budget);
    case Algorithm::kOptimalDp: return allocate_optimal_dp(model, budget);
    case Algorithm::kLinearScan: return allocate_linear_scan(model, budget);
    case Algorithm::kBnbOptimal: return allocate_bnb(model, budget);
  }
  fail("unknown Algorithm");
}

std::vector<Algorithm> paper_variants() {
  return {Algorithm::kFrRa, Algorithm::kPrRa, Algorithm::kCpaRa};
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kFeasibility, Algorithm::kFrRa,       Algorithm::kPrRa,
          Algorithm::kCpaRa,       Algorithm::kKnapsack,   Algorithm::kOptimalDp,
          Algorithm::kLinearScan,  Algorithm::kBnbOptimal};
}

}  // namespace srra
