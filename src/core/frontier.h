// All-budget allocation frontiers (DESIGN.md §9): one evaluation per
// (model, algorithm) that yields the allocator's result for *every* budget
// up to a bound, instead of one full allocator run per budget point.
//
//  * DP-RA: the budget DP already computes the optimal value for every
//    intermediate budget; keeping the whole choice matrix and
//    reconstructing per budget turns the O(B * G*B^2) sweep into one
//    O(G*B^2) pass. The monotone best-so-far propagation makes the slice
//    at budget b byte-identical to a standalone run at b.
//  * FR-RA / PR-RA: one benefit-sorted pass precomputes the order, needs
//    and ratios; each budget is then an O(G) greedy replay.
//  * KS-RA: one knapsack DP at the largest capacity; per-budget
//    reconstructions read the shared keep matrix (items heavier than a
//    smaller capacity never set bits at its columns, so slices match the
//    standalone filtered runs exactly).
//  * CPA-RA: one traced run at the largest budget. Every smaller budget
//    replays a prefix of the same rounds — the round state depends only on
//    the current assignment, never on the remaining budget — and
//    water-fills the first round that no longer fits.
//
// Every slice is byte-identical to running the per-budget allocator
// directly (cross-checked, including on fuzzed kernels, in
// tests/test_frontier.cc); the per-budget entry points below and in
// knapsack.h and optimal.h are thin slices of these builders.
//
// The two greedy allocators of the paper's Figure 3 live here as well:
//
// FR-RA (Full Reuse Register Allocation): one feasibility register per
// reference, then walk the references in descending benefit/cost order and
// give each its full requirement beta_full if it still fits — a reference
// ends at either beta_full or 1.
//
// PR-RA (Partial Reuse Register Allocation): FR-RA, then pour the leftover
// registers into the next profitable references in the same order (partial
// reuse), capping each at beta_full.
//
// Both are single-budget replays of the benefit-sorted plan their
// all-budget frontier builders share.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/cpa_ra.h"
#include "core/registry.h"

namespace srra {

/// Full Reuse Register Allocation (paper Figure 3, variant 1).
Allocation allocate_fr(const RefModel& model, std::int64_t budget);

/// Partial Reuse Register Allocation (paper Figure 3, variant 2).
Allocation allocate_pr(const RefModel& model, std::int64_t budget);

/// The per-budget results of one allocator over every feasible budget in
/// [group_count, max_budget], stored as deduplicated breakpoint allocations
/// plus a dense budget -> breakpoint index.
struct AllocationFrontier {
  std::string algorithm;         ///< display name, e.g. "DP-RA"
  std::int64_t min_budget = 0;   ///< group count: the first feasible budget
  std::int64_t max_budget = 0;
  std::vector<Allocation> steps;    ///< unique allocations, budget-ascending;
                                    ///< each stamped with its first budget
  std::vector<std::int32_t> index;  ///< budget - min_budget -> steps index

  bool covers(std::int64_t budget) const {
    return budget >= min_budget && budget <= max_budget;
  }

  /// The allocation for one budget: a copy of its breakpoint with `budget`
  /// stamped, byte-identical to the per-budget allocator run. Throws
  /// srra::Error outside [min_budget, max_budget].
  Allocation at(std::int64_t budget) const;
};

/// One register per group at every budget (the trivial frontier).
AllocationFrontier allocate_feasibility_frontier(const RefModel& model,
                                                 std::int64_t max_budget);

/// Full Reuse RA for every budget from one benefit-sorted pass.
AllocationFrontier allocate_fr_frontier(const RefModel& model, std::int64_t max_budget);

/// Partial Reuse RA for every budget from one benefit-sorted pass.
AllocationFrontier allocate_pr_frontier(const RefModel& model, std::int64_t max_budget);

/// 0/1-knapsack optimum for every budget from one DP at the top capacity.
AllocationFrontier allocate_knapsack_frontier(const RefModel& model,
                                              std::int64_t max_budget);

/// Serial-access optimum for every budget from a single O(G*B^2) DP over
/// the model's access curve (model.access_curve(max_budget), built here if
/// absent and lock-free for every later query).
AllocationFrontier allocate_optimal_dp_frontier(const RefModel& model,
                                                std::int64_t max_budget);

/// CPA-RA for every budget from one traced run at max_budget.
AllocationFrontier allocate_cpa_frontier(const RefModel& model, std::int64_t max_budget,
                                         const CpaOptions& options = {});

/// Frontier dispatch for any Algorithm (CPA-RA uses default CpaOptions,
/// matching allocate()).
AllocationFrontier allocate_frontier(Algorithm algorithm, const RefModel& model,
                                     std::int64_t max_budget);

/// Builder scaffold shared with the out-of-file frontier builders
/// (core/linear_scan.cc, core/bnb_optimal.cc): validates the budget range
/// (with the same error feasibility_allocation raises, so infeasible sweeps
/// report identically on both evaluation paths) and stamps the header
/// fields.
AllocationFrontier make_frontier(const RefModel& model, std::int64_t max_budget,
                                 const char* algorithm);

/// Appends the next budget's assignment to `frontier`, deduplicating equal
/// neighbours into one breakpoint step. Budgets must be pushed in ascending
/// order starting at frontier.min_budget.
void push_frontier_budget(AllocationFrontier& frontier,
                          const std::vector<std::int64_t>& regs);

}  // namespace srra
