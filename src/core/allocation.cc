#include "core/allocation.h"

#include <numeric>

#include "support/error.h"
#include "support/str.h"

namespace srra {

std::int64_t Allocation::total() const {
  return std::accumulate(regs.begin(), regs.end(), std::int64_t{0});
}

std::int64_t Allocation::at(int g) const {
  check(g >= 0 && g < static_cast<int>(regs.size()), "group id out of range");
  return regs[static_cast<std::size_t>(g)];
}

void Allocation::validate(const RefModel& model) const {
  check(static_cast<int>(regs.size()) == model.group_count(),
        "allocation size must match group count");
  for (int g = 0; g < model.group_count(); ++g) {
    const std::int64_t n = regs[static_cast<std::size_t>(g)];
    check(n >= 1, cat("group ", g, " lacks its feasibility register"));
    check(n <= model.beta_full(g),
          cat("group ", g, " allocated beyond full scalar replacement"));
  }
  check(total() <= budget, "allocation exceeds the register budget");
}

std::string Allocation::distribution() const {
  std::vector<std::string> parts;
  parts.reserve(regs.size());
  for (std::int64_t r : regs) parts.push_back(std::to_string(r));
  return join(parts, "/");
}

Allocation feasibility_allocation(const RefModel& model, std::int64_t budget) {
  check(budget >= model.group_count(),
        cat("budget ", budget, " cannot give every of the ", model.group_count(),
            " references its feasibility register"));
  Allocation a;
  a.algorithm = "feasibility";
  a.budget = budget;
  a.regs.assign(static_cast<std::size_t>(model.group_count()), 1);
  return a;
}

}  // namespace srra
