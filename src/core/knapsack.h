// Exact 0/1-knapsack allocator: the optimal full-or-nothing assignment under
// the paper's knapsack formulation (§3): item = reference, weight = extra
// registers for full scalar replacement, value = eliminated accesses.
// This is the yardstick the greedy FR-RA approximates (ablation Ext. B).
#pragma once

#include "core/allocation.h"

namespace srra {

/// Optimal full-or-nothing register allocation by dynamic programming over
/// the remaining budget (pseudo-polynomial; budgets here are tiny).
Allocation allocate_knapsack(const RefModel& model, std::int64_t budget);

}  // namespace srra
