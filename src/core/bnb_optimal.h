// Branch-and-bound certified-optimal allocation (DESIGN.md §11), in the
// spirit of the combinatorial-allocation survey (Castañeda Lozano &
// Schulte): exhaustive search over per-group register counts for the DP
// objective — minimize the total steady-state RAM access count subject to
// sum n_g <= budget, 1 <= n_g <= beta_full(g) — with admissible pruning, a
// deterministic node budget and an explicit `certified` flag.
//
// Search space: per group only the *staircase* counts matter — n = 1 plus
// every n where steady_accesses(g, n) strictly improves on all smaller
// counts. Any assignment maps to a staircase assignment with no more
// registers and no more accesses (replace n_g by the largest staircase
// count <= n_g), so the staircase optimum is the true optimum; the search
// proves it rather than assuming the DP's recurrence is right.
//
// Bound: at a node with groups g..G-1 open and e extra registers left, each
// open group independently could take at most 1 + e registers, so
// sum_g min_{n <= 1+e} steady(g, n) is a lower bound on any completion
// (the budget-sharing constraint is relaxed away). Nodes whose fixed cost
// plus bound cannot beat the incumbent are cut.
//
// Incumbent: the DP-RA allocation, so the search starts one admissible
// upper bound deep and the result is never worse than DP-RA. When the
// search exhausts the space within the node/time budget the result carries
// certified = true: it is the per-budget optimum of the serial access
// metric, the denominator of every heuristic's pinned gap-to-optimal
// (tests/test_allocators.cc). On the paper-scale kernels (depth <= 3,
// <= 8 groups) certification completes in well under the default budgets.
#pragma once

#include <cstdint>

#include "core/allocation.h"
#include "core/frontier.h"

namespace srra {

/// Search budgets. The node budget is deterministic (same inputs, same
/// result, byte-identical across --jobs); the wall-clock budget is a
/// nondeterministic safety valve and is off by default.
struct BnbOptions {
  std::int64_t max_nodes = std::int64_t{1} << 20;  ///< expanded-node cap
  double time_budget_ms = 0.0;                     ///< 0 = unlimited (default)
};

/// Outcome of one branch-and-bound run.
struct BnbResult {
  Allocation allocation;         ///< best assignment found (never worse than DP-RA)
  std::int64_t accesses = 0;     ///< steady accesses of `allocation`
  std::int64_t lower_bound = 0;  ///< root relaxation of the objective
  std::int64_t nodes = 0;        ///< nodes expanded
  bool certified = false;        ///< search exhausted: `allocation` is optimal
};

/// Branch-and-bound search for one budget, with certification detail.
BnbResult allocate_bnb_certified(const RefModel& model, std::int64_t budget,
                                 const BnbOptions& options = {});

/// Registry entry point (algorithm name "BB-RA"): the certified search's
/// allocation, degrading gracefully to the DP-RA incumbent when the node
/// budget runs out first.
Allocation allocate_bnb(const RefModel& model, std::int64_t budget);

/// BB-RA for every budget: one shared DP frontier seeds the per-budget
/// incumbents (slices are byte-identical to standalone DP runs), then each
/// budget runs the same bounded search as allocate_bnb.
AllocationFrontier allocate_bnb_frontier(const RefModel& model, std::int64_t max_budget,
                                         const BnbOptions& options = {});

}  // namespace srra
