// The two greedy allocators of the paper's Figure 3:
//
// FR-RA (Full Reuse Register Allocation): one feasibility register per
// reference, then walk the references in descending benefit/cost order and
// give each its full requirement beta_full if it still fits — a reference
// ends at either beta_full or 1.
//
// PR-RA (Partial Reuse Register Allocation): FR-RA, then pour the leftover
// registers into the next profitable references in the same order (partial
// reuse), capping each at beta_full.
//
// Both are implemented in core/frontier.cc as single-budget replays of the
// benefit-sorted plan their all-budget frontier builders share.
#pragma once

#include "core/allocation.h"

namespace srra {

/// Full Reuse Register Allocation (paper Figure 3, variant 1).
Allocation allocate_fr(const RefModel& model, std::int64_t budget);

/// Partial Reuse Register Allocation (paper Figure 3, variant 2).
Allocation allocate_pr(const RefModel& model, std::int64_t budget);

}  // namespace srra
