#include "core/bnb_optimal.h"

#include <algorithm>
#include <chrono>

#include "core/optimal.h"

namespace srra {

namespace {

using Clock = std::chrono::steady_clock;

// The search's static shape for one (model, budget): per position in a
// pruning-friendly order, the group's staircase counts/costs, plus dense
// suffix lower-bound tables so a node's bound is one array lookup.
struct SearchPlan {
  std::vector<int> group;                         ///< position -> group id
  std::vector<std::vector<std::int64_t>> counts;  ///< staircase n, ascending
  std::vector<std::vector<std::int64_t>> costs;   ///< steady accesses at counts[k]
  // suffix_bound[pos][limit]: sum over positions >= pos of the cheapest
  // staircase cost reachable with at most `limit` registers per group — the
  // budget-sharing relaxation. limit in [1, limit_max]; one trailing
  // all-zero row serves the leaf position.
  std::vector<std::vector<std::int64_t>> suffix_bound;
  std::int64_t limit_max = 1;  ///< budget - (G - 1): a group's register ceiling
};

SearchPlan build_plan(const RefModel& model, std::int64_t budget) {
  const int groups = model.group_count();
  SearchPlan plan;
  plan.limit_max = std::max<std::int64_t>(budget - groups + 1, 1);
  model.access_curve(budget);  // lock-free steady queries below

  // Staircase per group: n = 1 plus every count that strictly improves on
  // all smaller counts. Assignments off the staircase are dominated — any
  // n maps to the largest staircase count below it with the same cost and
  // no more registers — so searching staircases only preserves optimality.
  std::vector<std::vector<std::int64_t>> best_upto(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    const std::int64_t cap = std::min(model.beta_full(g), plan.limit_max);
    std::vector<std::int64_t> counts{1};
    std::vector<std::int64_t> costs{model.accesses(g, 1, CountMode::kSteady)};
    for (std::int64_t n = 2; n <= cap; ++n) {
      const std::int64_t cost = model.accesses(g, n, CountMode::kSteady);
      if (cost < costs.back()) {
        counts.push_back(n);
        costs.push_back(cost);
      }
    }
    // Dense cheapest-cost-with-at-most-`limit`-registers table.
    std::vector<std::int64_t>& upto = best_upto[static_cast<std::size_t>(g)];
    upto.assign(static_cast<std::size_t>(plan.limit_max) + 1, costs.front());
    for (std::size_t k = 0, limit = 1; limit <= static_cast<std::size_t>(plan.limit_max);
         ++limit) {
      while (k + 1 < counts.size() && counts[k + 1] <= static_cast<std::int64_t>(limit)) {
        ++k;
      }
      upto[limit] = costs[k];
    }
    plan.group.push_back(g);
    plan.counts.push_back(std::move(counts));
    plan.costs.push_back(std::move(costs));
  }

  // Search high-spread groups first: their branches move the cost most, so
  // the bound bites early. Group id breaks ties for determinism.
  std::sort(plan.group.begin(), plan.group.end(), [&](int a, int b) {
    const std::vector<std::int64_t>& ca = plan.costs[static_cast<std::size_t>(a)];
    const std::vector<std::int64_t>& cb = plan.costs[static_cast<std::size_t>(b)];
    const std::int64_t spread_a = ca.front() - ca.back();
    const std::int64_t spread_b = cb.front() - cb.back();
    if (spread_a != spread_b) return spread_a > spread_b;
    return a < b;
  });
  {
    std::vector<std::vector<std::int64_t>> counts(plan.group.size());
    std::vector<std::vector<std::int64_t>> costs(plan.group.size());
    for (std::size_t pos = 0; pos < plan.group.size(); ++pos) {
      counts[pos] = std::move(plan.counts[static_cast<std::size_t>(plan.group[pos])]);
      costs[pos] = std::move(plan.costs[static_cast<std::size_t>(plan.group[pos])]);
    }
    plan.counts = std::move(counts);
    plan.costs = std::move(costs);
  }

  plan.suffix_bound.assign(
      plan.group.size() + 1,
      std::vector<std::int64_t>(static_cast<std::size_t>(plan.limit_max) + 1, 0));
  for (std::size_t pos = plan.group.size(); pos-- > 0;) {
    const std::vector<std::int64_t>& upto =
        best_upto[static_cast<std::size_t>(plan.group[pos])];
    for (std::size_t limit = 1; limit <= static_cast<std::size_t>(plan.limit_max);
         ++limit) {
      plan.suffix_bound[pos][limit] = plan.suffix_bound[pos + 1][limit] + upto[limit];
    }
  }
  return plan;
}

// Depth-first search over the staircase assignments, strictly-improve-only:
// the incumbent is already the DP optimum, so every node whose relaxation
// cannot *beat* it is cut, and an exhausted search is the certificate that
// the incumbent is the true optimum — proved, not assumed from the DP
// recurrence.
struct Search {
  const SearchPlan& plan;
  const BnbOptions& options;
  std::vector<std::int64_t> current;  ///< chosen count per position
  std::vector<std::int64_t> best;     ///< incumbent counts per position
  std::int64_t best_cost = 0;
  std::int64_t nodes = 0;
  bool aborted = false;
  bool timed = false;
  Clock::time_point deadline;

  Search(const SearchPlan& p, const BnbOptions& o) : plan(p), options(o) {
    current.resize(plan.group.size());
    best.resize(plan.group.size());
    if (options.time_budget_ms > 0.0) {
      timed = true;
      deadline = Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(options.time_budget_ms));
    }
  }

  void dfs(std::size_t pos, std::int64_t extra_left, std::int64_t cost_so_far) {
    if (++nodes > options.max_nodes) {
      aborted = true;
      return;
    }
    if (timed && (nodes & 255) == 0 && Clock::now() >= deadline) {
      aborted = true;
      return;
    }
    if (pos == plan.group.size()) {
      if (cost_so_far < best_cost) {
        best_cost = cost_so_far;
        best = current;
      }
      return;
    }
    const std::vector<std::int64_t>& counts = plan.counts[pos];
    const std::vector<std::int64_t>& costs = plan.costs[pos];
    for (std::size_t k = counts.size(); k-- > 0;) {  // greediest branch first
      const std::int64_t extra = counts[k] - 1;
      if (extra > extra_left) continue;
      const std::int64_t child_cost = cost_so_far + costs[k];
      const std::int64_t child_extra = extra_left - extra;
      const std::size_t limit =
          static_cast<std::size_t>(std::min(child_extra + 1, plan.limit_max));
      if (child_cost + plan.suffix_bound[pos + 1][limit] >= best_cost) continue;
      current[pos] = counts[k];
      dfs(pos + 1, child_extra, child_cost);
      if (aborted) return;
    }
  }
};

// The search for one budget around a DP-optimal seed. `result.allocation`
// must arrive stamped "BB-RA" with the seed's register counts.
void search_around_seed(const RefModel& model, std::int64_t budget,
                        const BnbOptions& options, BnbResult& result) {
  const SearchPlan plan = build_plan(model, budget);
  Search search(plan, options);
  for (std::size_t pos = 0; pos < plan.group.size(); ++pos) {
    search.best[pos] = result.allocation.at(plan.group[pos]);
    search.best_cost +=
        model.accesses(plan.group[pos], search.best[pos], CountMode::kSteady);
  }

  const std::int64_t extra_root = budget - model.group_count();
  result.lower_bound = plan.suffix_bound.front()[static_cast<std::size_t>(
      std::min(extra_root + 1, plan.limit_max))];
  search.dfs(0, extra_root, 0);

  for (std::size_t pos = 0; pos < plan.group.size(); ++pos) {
    result.allocation.regs[static_cast<std::size_t>(plan.group[pos])] = search.best[pos];
  }
  result.accesses = search.best_cost;
  result.nodes = search.nodes;
  result.certified = !search.aborted;
}

}  // namespace

BnbResult allocate_bnb_certified(const RefModel& model, std::int64_t budget,
                                 const BnbOptions& options) {
  BnbResult result;
  result.allocation = allocate_optimal_dp(model, budget);  // validates the budget
  result.allocation.algorithm = "BB-RA";
  search_around_seed(model, budget, options, result);
  return result;
}

Allocation allocate_bnb(const RefModel& model, std::int64_t budget) {
  return allocate_bnb_certified(model, budget).allocation;
}

AllocationFrontier allocate_bnb_frontier(const RefModel& model, std::int64_t max_budget,
                                         const BnbOptions& options) {
  AllocationFrontier frontier = make_frontier(model, max_budget, "BB-RA");
  // One shared DP frontier seeds every budget's incumbent; its slices are
  // byte-identical to standalone DP runs (tests/test_frontier.cc), so each
  // budget below reproduces allocate_bnb(model, b) exactly.
  const AllocationFrontier seeds = allocate_optimal_dp_frontier(model, max_budget);
  for (std::int64_t b = frontier.min_budget; b <= max_budget; ++b) {
    BnbResult result;
    result.allocation = seeds.at(b);
    result.allocation.algorithm = "BB-RA";
    search_around_seed(model, b, options, result);
    push_frontier_budget(frontier, result.allocation.regs);
  }
  return frontier;
}

}  // namespace srra
