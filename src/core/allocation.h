// Allocation result type shared by every allocator: the number of registers
// assigned to each reference group of a kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/model.h"

namespace srra {

/// A register assignment produced by one of the allocation algorithms.
struct Allocation {
  std::string algorithm;            ///< e.g. "FR-RA"
  std::int64_t budget = 0;          ///< register budget it was computed for
  std::vector<std::int64_t> regs;   ///< registers per reference group

  /// Sum of all per-group assignments.
  std::int64_t total() const;

  /// Registers for group `g`.
  std::int64_t at(int g) const;

  /// Checks the paper's structural invariants: every group has at least its
  /// feasibility register, nothing exceeds beta_full, and the total is
  /// within budget. Throws srra::Error on violation.
  void validate(const RefModel& model) const;

  /// "30/1/20/1/1" style summary in group order (benches, logs).
  std::string distribution() const;
};

/// The feasibility baseline: one register per reference group (renders the
/// datapath realizable; exploits no reuse beyond forwarding).
Allocation feasibility_allocation(const RefModel& model, std::int64_t budget);

}  // namespace srra
