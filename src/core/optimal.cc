#include "core/optimal.h"

#include "core/frontier.h"

namespace srra {

// Thin slice of the all-budget DP frontier (core/frontier.cc owns the
// choice-matrix DP over the model's access curve); a budget sweep builds
// the frontier once — O(G*B^2) total instead of per point.
Allocation allocate_optimal_dp(const RefModel& model, std::int64_t budget) {
  return allocate_optimal_dp_frontier(model, budget).at(budget);
}

}  // namespace srra
