#include "core/optimal.h"

#include <algorithm>

#include "support/error.h"

namespace srra {

Allocation allocate_optimal_dp(const RefModel& model, std::int64_t budget) {
  Allocation a = feasibility_allocation(model, budget);
  a.algorithm = "DP-RA";

  const int groups = model.group_count();
  // Per group, the useful register range is [1, min(beta_full, budget)].
  std::vector<std::int64_t> cap(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    cap[static_cast<std::size_t>(g)] = std::min<std::int64_t>(model.beta_full(g), budget);
  }

  // dp[b] = minimal steady accesses for the first `g` groups using exactly
  // the feasibility register plus b extra registers in total. Choices live
  // in one contiguous groups x width buffer (row g, column b) instead of a
  // vector-of-vectors: one allocation, cache-line-friendly reconstruction.
  const std::int64_t extra_budget = budget - groups;
  const auto width = static_cast<std::size_t>(extra_budget + 1);
  constexpr std::int64_t kInf = std::int64_t{1} << 60;
  std::vector<std::int64_t> dp(width, 0);
  std::vector<std::int64_t> choice(static_cast<std::size_t>(groups) * width, 0);

  for (int g = 0; g < groups; ++g) {
    std::vector<std::int64_t> next(width, kInf);
    std::int64_t* row = choice.data() + static_cast<std::size_t>(g) * width;
    const std::int64_t max_extra = cap[static_cast<std::size_t>(g)] - 1;
    for (std::int64_t b = 0; b <= extra_budget; ++b) {
      if (dp[static_cast<std::size_t>(b)] >= kInf) continue;
      // Tightened inner bound: takes past extra_budget - b overflow the
      // budget and were skipped one comparison at a time before.
      const std::int64_t take_limit = std::min(max_extra, extra_budget - b);
      for (std::int64_t take = 0; take <= take_limit; ++take) {
        const std::int64_t cost =
            dp[static_cast<std::size_t>(b)] +
            model.accesses(g, 1 + take, CountMode::kSteady);
        auto& cell = next[static_cast<std::size_t>(b + take)];
        if (cost < cell) {
          cell = cost;
          row[static_cast<std::size_t>(b + take)] = take;
        }
      }
    }
    // Allow leaving budget unused: propagate best-so-far forward so that
    // next[b] is monotone (using fewer registers is always permitted).
    for (std::size_t b = 1; b < width; ++b) {
      if (next[b] > next[b - 1]) {
        next[b] = next[b - 1];
        row[b] = -1;  // marker: look left
      }
    }
    dp = std::move(next);
  }

  // Reconstruct.
  std::int64_t b = extra_budget;
  for (int g = groups - 1; g >= 0; --g) {
    const std::int64_t* row = choice.data() + static_cast<std::size_t>(g) * width;
    while (row[static_cast<std::size_t>(b)] < 0) --b;
    const std::int64_t take = row[static_cast<std::size_t>(b)];
    a.regs[static_cast<std::size_t>(g)] += take;
    b -= take;
  }
  check(a.total() <= budget, "DP reconstruction exceeded the budget");
  return a;
}

}  // namespace srra
