// Critical-Path-Aware Register Allocation (paper Figure 4) — the paper's
// contribution. Starting from the feasibility assignment, the algorithm
// repeatedly:
//  1. weighs the DFG under the current assignment (RAM-resident references
//     cost a memory access, register-resident ones are free),
//  2. extracts the Critical Graph,
//  3. enumerates its cuts over *reducible* reference nodes (references with
//     remaining exploitable reuse and a nonzero memory weight),
//  4. fully allocates the cut with the minimum incremental register
//     requirement, or — when the cheapest cut no longer fits — divides the
//     remaining registers equally among the cut's members (water-filling
//     with per-reference beta_full caps).
// Repeats until the registers are exhausted or no critical memory access
// can be removed.
#pragma once

#include "core/allocation.h"
#include "dfg/cuts.h"
#include "dfg/latency.h"

namespace srra {

/// Cut selection policy (paper: kMinRegisters; others are ablations).
enum class CutStrategy {
  kMinRegisters,     ///< minimum incremental register requirement (paper)
  kMaxSavedPerReg,   ///< maximum eliminated accesses per register
  kFewestMembers,    ///< smallest cut first
};

/// Tuning knobs for CPA-RA.
struct CpaOptions {
  CutStrategy strategy = CutStrategy::kMinRegisters;
  LatencyModel latency;
  CutOptions cuts;
  int max_rounds = 64;  ///< defensive bound on allocation rounds
};

/// Critical-Path-Aware Register Allocation.
Allocation allocate_cpa(const RefModel& model, std::int64_t budget,
                        const CpaOptions& options = {});

/// One round's diagnostic record (exposed for tests, benches and the
/// figure-2 demo).
struct CpaRound {
  std::int64_t cp_length = 0;
  std::vector<std::vector<int>> cut_groups;  ///< all candidate cuts (group ids)
  std::vector<int> chosen;                   ///< chosen cut (group ids)
  std::int64_t required = 0;                 ///< incremental registers of chosen cut
  bool partial = false;                      ///< water-filled instead of full
};

/// As allocate_cpa, also returning the per-round trace.
Allocation allocate_cpa_traced(const RefModel& model, std::int64_t budget,
                               const CpaOptions& options, std::vector<CpaRound>& trace);

}  // namespace srra
