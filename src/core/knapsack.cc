#include "core/knapsack.h"

#include "core/frontier.h"

namespace srra {

// Thin slice of the all-budget knapsack frontier (core/frontier.cc owns the
// keep-matrix DP); a budget sweep builds the frontier once instead.
Allocation allocate_knapsack(const RefModel& model, std::int64_t budget) {
  return allocate_knapsack_frontier(model, budget).at(budget);
}

}  // namespace srra
