#include "core/knapsack.h"

#include "support/error.h"

namespace srra {

Allocation allocate_knapsack(const RefModel& model, std::int64_t budget) {
  Allocation a = feasibility_allocation(model, budget);
  a.algorithm = "KS-RA";
  const std::int64_t capacity = budget - a.total();

  struct Item {
    int group;
    std::int64_t weight;
    std::int64_t value;
  };
  std::vector<Item> items;
  for (int g = 0; g < model.group_count(); ++g) {
    const std::int64_t weight = model.beta_full(g) - 1;
    const std::int64_t value = model.saved(g);
    if (weight <= 0 || value <= 0 || weight > capacity) continue;
    items.push_back(Item{g, weight, value});
  }

  // dp[c] = best value with capacity c. Choices live in one flat bitset
  // (row i = item, bit c = capacity) — a single allocation instead of one
  // heap vector<bool> per item in the O(items x capacity) DP.
  const auto cap = static_cast<std::size_t>(capacity);
  const std::size_t row_words = cap / 64 + 1;
  std::vector<std::int64_t> dp(cap + 1, 0);
  std::vector<std::uint64_t> keep(items.size() * row_words, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto w = static_cast<std::size_t>(items[i].weight);
    std::uint64_t* row = keep.data() + i * row_words;
    for (std::size_t c = cap + 1; c-- > w;) {
      const std::int64_t with = dp[c - w] + items[i].value;
      if (with > dp[c]) {
        dp[c] = with;
        row[c / 64] |= std::uint64_t{1} << (c % 64);
      }
    }
  }

  std::size_t c = cap;
  for (std::size_t i = items.size(); i-- > 0;) {
    const std::uint64_t* row = keep.data() + i * row_words;
    if ((row[c / 64] >> (c % 64) & 1) == 0) continue;
    a.regs[static_cast<std::size_t>(items[i].group)] += items[i].weight;
    c -= static_cast<std::size_t>(items[i].weight);
  }
  return a;
}

}  // namespace srra
