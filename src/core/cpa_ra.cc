#include "core/cpa_ra.h"

#include <algorithm>
#include <limits>
#include <set>

#include "support/error.h"

namespace srra {

namespace {

// Incremental registers needed to fully cover every group of `cut`.
std::int64_t cut_requirement(const RefModel& model, const Allocation& a,
                             const std::vector<int>& cut) {
  std::int64_t req = 0;
  for (int g : cut) req += model.beta_full(g) - a.regs[static_cast<std::size_t>(g)];
  return req;
}

// Steady accesses the cut would still eliminate, for the kMaxSavedPerReg
// ablation strategy.
std::int64_t cut_saving(const RefModel& model, const Allocation& a,
                        const std::vector<int>& cut) {
  std::int64_t saving = 0;
  for (int g : cut) {
    saving += model.accesses(g, a.regs[static_cast<std::size_t>(g)], CountMode::kSteady) -
              model.accesses(g, model.beta_full(g), CountMode::kSteady);
  }
  return saving;
}

int first_order_key(const RefModel& model, const std::vector<int>& cut) {
  int best = std::numeric_limits<int>::max();
  for (int g : cut) {
    best = std::min(best, model.groups()[static_cast<std::size_t>(g)].first_order);
  }
  return best;
}

}  // namespace

Allocation allocate_cpa_traced(const RefModel& model, std::int64_t budget,
                               const CpaOptions& options, std::vector<CpaRound>& trace) {
  Allocation a = feasibility_allocation(model, budget);
  a.algorithm = "CPA-RA";
  std::int64_t left = budget - a.total();

  const Dfg dfg = Dfg::build(model.kernel(), model.groups());

  for (int round = 0; round < options.max_rounds && left > 0; ++round) {
    const std::vector<std::int64_t> weights =
        node_weights(dfg, model, a.regs, options.latency);
    const CriticalGraph cg = critical_graph(dfg, weights);

    // Reducible candidates: reference nodes that still cost memory on the
    // critical path and whose group has unexploited reuse.
    CutOptions cut_options = options.cuts;
    cut_options.candidates.assign(static_cast<std::size_t>(dfg.node_count()), false);
    bool any_candidate = false;
    for (const DfgNode& n : dfg.nodes()) {
      if (!n.is_ref() || !cg.in_cg[static_cast<std::size_t>(n.id)]) continue;
      if (weights[static_cast<std::size_t>(n.id)] <= 0) continue;
      const bool reducible =
          model.reuse()[static_cast<std::size_t>(n.group)].has_reuse() &&
          a.regs[static_cast<std::size_t>(n.group)] < model.beta_full(n.group);
      if (!reducible) continue;
      cut_options.candidates[static_cast<std::size_t>(n.id)] = true;
      any_candidate = true;
    }
    if (!any_candidate) break;

    const std::vector<std::vector<int>> node_cuts = find_cuts(dfg, cg, weights, cut_options);
    if (node_cuts.empty()) break;

    // Collapse node cuts to unique group cuts.
    std::set<std::vector<int>> group_cut_set;
    for (const auto& cut : node_cuts) {
      std::set<int> groups;
      for (int id : cut) groups.insert(dfg.node(id).group);
      group_cut_set.insert(std::vector<int>(groups.begin(), groups.end()));
    }
    const std::vector<std::vector<int>> group_cuts(group_cut_set.begin(), group_cut_set.end());

    // Pick the cut per strategy.
    const std::vector<int>* best = nullptr;
    for (const auto& cut : group_cuts) {
      if (best == nullptr) {
        best = &cut;
        continue;
      }
      const std::int64_t req_c = cut_requirement(model, a, cut);
      const std::int64_t req_b = cut_requirement(model, a, *best);
      bool better = false;
      switch (options.strategy) {
        case CutStrategy::kMinRegisters:
          better = req_c < req_b ||
                   (req_c == req_b && (cut.size() < best->size() ||
                                       (cut.size() == best->size() &&
                                        first_order_key(model, cut) <
                                            first_order_key(model, *best))));
          break;
        case CutStrategy::kMaxSavedPerReg: {
          const double gain_c =
              req_c > 0 ? static_cast<double>(cut_saving(model, a, cut)) / static_cast<double>(req_c)
                        : 0.0;
          const double gain_b =
              req_b > 0 ? static_cast<double>(cut_saving(model, a, *best)) / static_cast<double>(req_b)
                        : 0.0;
          better = gain_c > gain_b || (gain_c == gain_b && req_c < req_b);
          break;
        }
        case CutStrategy::kFewestMembers:
          better = cut.size() < best->size() ||
                   (cut.size() == best->size() && req_c < req_b);
          break;
      }
      if (better) best = &cut;
    }
    check(best != nullptr, "cut selection failed");

    CpaRound record;
    record.cp_length = cg.length;
    record.cut_groups = group_cuts;
    record.chosen = *best;
    record.required = cut_requirement(model, a, *best);

    if (record.required <= left) {
      for (int g : *best) {
        const std::int64_t need = model.beta_full(g) - a.regs[static_cast<std::size_t>(g)];
        a.regs[static_cast<std::size_t>(g)] += need;
        left -= need;
      }
    } else {
      // Divide the remaining registers equally among the cut's members
      // (water-filling, beta_full caps, earliest reference gets remainders).
      record.partial = true;
      std::vector<int> members = *best;
      std::sort(members.begin(), members.end(), [&](int x, int y) {
        return model.groups()[static_cast<std::size_t>(x)].first_order <
               model.groups()[static_cast<std::size_t>(y)].first_order;
      });
      bool progress = true;
      while (left > 0 && progress) {
        progress = false;
        for (int g : members) {
          if (left <= 0) break;
          auto& r = a.regs[static_cast<std::size_t>(g)];
          if (r < model.beta_full(g)) {
            ++r;
            --left;
            progress = true;
          }
        }
      }
    }
    trace.push_back(std::move(record));
  }
  return a;
}

Allocation allocate_cpa(const RefModel& model, std::int64_t budget,
                        const CpaOptions& options) {
  std::vector<CpaRound> trace;
  return allocate_cpa_traced(model, budget, options, trace);
}

}  // namespace srra
