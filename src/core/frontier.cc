#include "core/frontier.h"

#include <algorithm>

#include "core/bnb_optimal.h"
#include "core/linear_scan.h"
#include "support/error.h"
#include "support/str.h"

namespace srra {

AllocationFrontier make_frontier(const RefModel& model, std::int64_t max_budget,
                                 const char* algorithm) {
  (void)feasibility_allocation(model, max_budget);  // budget >= group_count
  AllocationFrontier frontier;
  frontier.algorithm = algorithm;
  frontier.min_budget = model.group_count();
  frontier.max_budget = max_budget;
  frontier.index.reserve(static_cast<std::size_t>(max_budget - frontier.min_budget) + 1);
  return frontier;
}

void push_frontier_budget(AllocationFrontier& frontier,
                          const std::vector<std::int64_t>& regs) {
  if (frontier.steps.empty() || frontier.steps.back().regs != regs) {
    Allocation step;
    step.algorithm = frontier.algorithm;
    step.budget = frontier.min_budget + static_cast<std::int64_t>(frontier.index.size());
    step.regs = regs;
    frontier.steps.push_back(std::move(step));
  }
  frontier.index.push_back(static_cast<std::int32_t>(frontier.steps.size()) - 1);
}

Allocation AllocationFrontier::at(std::int64_t budget) const {
  check(covers(budget), cat(algorithm, " frontier covers budgets [", min_budget, ", ",
                            max_budget, "], not ", budget));
  Allocation a = steps[static_cast<std::size_t>(
      index[static_cast<std::size_t>(budget - min_budget)])];
  a.budget = budget;
  return a;
}

AllocationFrontier allocate_feasibility_frontier(const RefModel& model,
                                                 std::int64_t max_budget) {
  AllocationFrontier frontier = make_frontier(model, max_budget, "feasibility");
  const std::vector<std::int64_t> ones(static_cast<std::size_t>(model.group_count()), 1);
  for (std::int64_t b = frontier.min_budget; b <= max_budget; ++b) {
    push_frontier_budget(frontier, ones);
  }
  return frontier;
}

namespace {

// The benefit-sorted plan both greedy allocators replay per budget: group
// order, per-group full requirements, and the cutoff where the ratios stop
// being profitable. Computed once per frontier (or per single-budget call).
struct GreedyPlan {
  std::vector<int> order;
  std::size_t active = 0;           ///< groups before the first bc <= 0
  std::vector<std::int64_t> full;   ///< beta_full per group

  explicit GreedyPlan(const RefModel& model)
      : order(model.sorted_by_benefit()),
        active(order.size()),
        full(static_cast<std::size_t>(model.group_count())) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (model.bc_ratio(order[i]) <= 0.0) {
        active = i;
        break;
      }
    }
    for (int g = 0; g < model.group_count(); ++g) {
      full[static_cast<std::size_t>(g)] = model.beta_full(g);
    }
  }
};

// One O(G) FR-RA replay: feasibility registers, then full coverage in
// benefit order while it fits.
void fr_replay(const GreedyPlan& plan, std::int64_t budget,
               std::vector<std::int64_t>& regs) {
  std::fill(regs.begin(), regs.end(), std::int64_t{1});
  std::int64_t left = budget - static_cast<std::int64_t>(regs.size());
  for (std::size_t i = 0; i < plan.active; ++i) {
    const auto g = static_cast<std::size_t>(plan.order[i]);
    const std::int64_t need = plan.full[g] - 1;
    if (need <= 0 || need > left) continue;
    regs[g] += need;
    left -= need;
  }
}

// One O(G) PR-RA replay: FR-RA, then pour the leftovers into the next
// profitable references in the same order.
void pr_replay(const GreedyPlan& plan, std::int64_t budget,
               std::vector<std::int64_t>& regs) {
  fr_replay(plan, budget, regs);
  std::int64_t used = 0;
  for (const std::int64_t r : regs) used += r;
  std::int64_t left = budget - used;
  for (std::size_t i = 0; i < plan.active && left > 0; ++i) {
    const auto g = static_cast<std::size_t>(plan.order[i]);
    const std::int64_t room = plan.full[g] - regs[g];
    if (room <= 0) continue;
    const std::int64_t give = std::min(room, left);
    regs[g] += give;
    left -= give;
  }
}

// Shared scaffold of the two greedy entry-point flavours: a single-budget
// allocation or a whole frontier from the same replay.
template <typename Replay>
Allocation greedy_at(const RefModel& model, std::int64_t budget, const char* algorithm,
                     const Replay& replay) {
  Allocation a = feasibility_allocation(model, budget);
  a.algorithm = algorithm;
  GreedyPlan plan(model);
  replay(plan, budget, a.regs);
  return a;
}

template <typename Replay>
AllocationFrontier greedy_frontier(const RefModel& model, std::int64_t max_budget,
                                   const char* algorithm, const Replay& replay) {
  AllocationFrontier frontier = make_frontier(model, max_budget, algorithm);
  GreedyPlan plan(model);
  std::vector<std::int64_t> regs(static_cast<std::size_t>(model.group_count()));
  for (std::int64_t b = frontier.min_budget; b <= max_budget; ++b) {
    replay(plan, b, regs);
    push_frontier_budget(frontier, regs);
  }
  return frontier;
}

}  // namespace

// The per-budget greedy allocators share the replay with their frontier
// builders: one call is one O(G) pass, not a sliced frontier.

Allocation allocate_fr(const RefModel& model, std::int64_t budget) {
  return greedy_at(model, budget, "FR-RA", fr_replay);
}

Allocation allocate_pr(const RefModel& model, std::int64_t budget) {
  return greedy_at(model, budget, "PR-RA", pr_replay);
}

AllocationFrontier allocate_fr_frontier(const RefModel& model, std::int64_t max_budget) {
  return greedy_frontier(model, max_budget, "FR-RA", fr_replay);
}

AllocationFrontier allocate_pr_frontier(const RefModel& model, std::int64_t max_budget) {
  return greedy_frontier(model, max_budget, "PR-RA", pr_replay);
}

AllocationFrontier allocate_knapsack_frontier(const RefModel& model,
                                              std::int64_t max_budget) {
  AllocationFrontier frontier = make_frontier(model, max_budget, "KS-RA");
  const int groups = model.group_count();
  const std::int64_t capacity = max_budget - groups;

  struct Item {
    int group;
    std::int64_t weight;
    std::int64_t value;
  };
  std::vector<Item> items;
  for (int g = 0; g < groups; ++g) {
    const std::int64_t weight = model.beta_full(g) - 1;
    const std::int64_t value = model.saved(g);
    if (weight <= 0 || value <= 0 || weight > capacity) continue;
    items.push_back(Item{g, weight, value});
  }

  // One DP at the top capacity; the keep matrix serves every budget. An
  // item never sets a bit below its own weight, so reconstructing from
  // column c replays exactly the standalone run whose item list drops the
  // too-heavy items for capacity c.
  const auto cap = static_cast<std::size_t>(capacity);
  const std::size_t row_words = cap / 64 + 1;
  std::vector<std::int64_t> dp(cap + 1, 0);
  std::vector<std::uint64_t> keep(items.size() * row_words, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto w = static_cast<std::size_t>(items[i].weight);
    std::uint64_t* row = keep.data() + i * row_words;
    for (std::size_t c = cap + 1; c-- > w;) {
      const std::int64_t with = dp[c - w] + items[i].value;
      if (with > dp[c]) {
        dp[c] = with;
        row[c / 64] |= std::uint64_t{1} << (c % 64);
      }
    }
  }

  std::vector<std::int64_t> regs(static_cast<std::size_t>(groups));
  for (std::int64_t b = frontier.min_budget; b <= max_budget; ++b) {
    std::fill(regs.begin(), regs.end(), std::int64_t{1});
    std::size_t c = static_cast<std::size_t>(b - groups);
    for (std::size_t i = items.size(); i-- > 0;) {
      const std::uint64_t* row = keep.data() + i * row_words;
      if ((row[c / 64] >> (c % 64) & 1) == 0) continue;
      regs[static_cast<std::size_t>(items[i].group)] += items[i].weight;
      c -= static_cast<std::size_t>(items[i].weight);
    }
    push_frontier_budget(frontier, regs);
  }
  return frontier;
}

AllocationFrontier allocate_optimal_dp_frontier(const RefModel& model,
                                                std::int64_t max_budget) {
  AllocationFrontier frontier = make_frontier(model, max_budget, "DP-RA");
  const int groups = model.group_count();

  // The DP's inner loop reads the dense curve directly — no per-query memo
  // locks on the hot path.
  const AccessCurve& curve = model.access_curve(max_budget);

  // Per group, the useful register range is [1, min(beta_full, budget)].
  std::vector<std::int64_t> cap(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    cap[static_cast<std::size_t>(g)] = std::min<std::int64_t>(model.beta_full(g), max_budget);
  }

  // dp[b] = minimal steady accesses for the first `g` groups using exactly
  // the feasibility register plus b extra registers in total. Because the
  // best-so-far propagation keeps every column monotone, the dp state and
  // choice rows at column e never depend on columns above e — so one run at
  // the top budget contains every smaller budget's run verbatim, and the
  // per-budget reconstructions below are byte-identical to standalone runs.
  const std::int64_t extra_budget = max_budget - groups;
  const auto width = static_cast<std::size_t>(extra_budget + 1);
  constexpr std::int64_t kInf = std::int64_t{1} << 60;
  std::vector<std::int64_t> dp(width, 0);
  std::vector<std::int64_t> choice(static_cast<std::size_t>(groups) * width, 0);

  for (int g = 0; g < groups; ++g) {
    std::vector<std::int64_t> next(width, kInf);
    std::int64_t* row = choice.data() + static_cast<std::size_t>(g) * width;
    const std::int64_t max_extra = cap[static_cast<std::size_t>(g)] - 1;
    for (std::int64_t b = 0; b <= extra_budget; ++b) {
      if (dp[static_cast<std::size_t>(b)] >= kInf) continue;
      // Tightened inner bound: takes past extra_budget - b overflow the
      // budget and were skipped one comparison at a time before.
      const std::int64_t take_limit = std::min(max_extra, extra_budget - b);
      for (std::int64_t take = 0; take <= take_limit; ++take) {
        const std::int64_t cost =
            dp[static_cast<std::size_t>(b)] + curve.steady(g, 1 + take);
        auto& cell = next[static_cast<std::size_t>(b + take)];
        if (cost < cell) {
          cell = cost;
          row[static_cast<std::size_t>(b + take)] = take;
        }
      }
    }
    // Allow leaving budget unused: propagate best-so-far forward so that
    // next[b] is monotone (using fewer registers is always permitted).
    for (std::size_t b = 1; b < width; ++b) {
      if (next[b] > next[b - 1]) {
        next[b] = next[b - 1];
        row[b] = -1;  // marker: look left
      }
    }
    dp = std::move(next);
  }

  // Reconstruct every budget from its own column.
  std::vector<std::int64_t> regs(static_cast<std::size_t>(groups));
  for (std::int64_t budget = frontier.min_budget; budget <= max_budget; ++budget) {
    std::fill(regs.begin(), regs.end(), std::int64_t{1});
    std::int64_t b = budget - groups;
    for (int g = groups - 1; g >= 0; --g) {
      const std::int64_t* row = choice.data() + static_cast<std::size_t>(g) * width;
      while (row[static_cast<std::size_t>(b)] < 0) --b;
      const std::int64_t take = row[static_cast<std::size_t>(b)];
      regs[static_cast<std::size_t>(g)] += take;
      b -= take;
    }
    std::int64_t used = 0;
    for (const std::int64_t r : regs) used += r;
    check(used <= budget, "DP reconstruction exceeded the budget");
    push_frontier_budget(frontier, regs);
  }
  return frontier;
}

AllocationFrontier allocate_cpa_frontier(const RefModel& model, std::int64_t max_budget,
                                         const CpaOptions& options) {
  AllocationFrontier frontier = make_frontier(model, max_budget, "CPA-RA");
  const int groups = model.group_count();

  // One traced run at the top budget. A round's critical graph, candidate
  // cuts and chosen cut are functions of the current assignment only — the
  // remaining budget only decides whether the round applies fully, water-
  // fills, or stops — so every smaller budget replays a prefix of this
  // trace against the very same states.
  std::vector<CpaRound> trace;
  (void)allocate_cpa_traced(model, max_budget, options, trace);

  std::vector<std::int64_t> regs(static_cast<std::size_t>(groups));
  std::vector<int> members;
  for (std::int64_t b = frontier.min_budget; b <= max_budget; ++b) {
    std::fill(regs.begin(), regs.end(), std::int64_t{1});
    std::int64_t left = b - groups;
    for (const CpaRound& round : trace) {
      if (left <= 0) break;
      std::int64_t required = 0;
      for (const int g : round.chosen) {
        required += model.beta_full(g) - regs[static_cast<std::size_t>(g)];
      }
      if (required <= left) {
        for (const int g : round.chosen) {
          const std::int64_t need = model.beta_full(g) - regs[static_cast<std::size_t>(g)];
          regs[static_cast<std::size_t>(g)] += need;
          left -= need;
        }
        continue;
      }
      // Divide the remaining registers equally among the cut's members
      // (water-filling, beta_full caps, earliest reference gets remainders)
      // — identical to the traced allocator's partial round.
      members = round.chosen;
      std::sort(members.begin(), members.end(), [&](int x, int y) {
        return model.groups()[static_cast<std::size_t>(x)].first_order <
               model.groups()[static_cast<std::size_t>(y)].first_order;
      });
      bool progress = true;
      while (left > 0 && progress) {
        progress = false;
        for (const int g : members) {
          if (left <= 0) break;
          auto& r = regs[static_cast<std::size_t>(g)];
          if (r < model.beta_full(g)) {
            ++r;
            --left;
            progress = true;
          }
        }
      }
      break;
    }
    push_frontier_budget(frontier, regs);
  }
  return frontier;
}

AllocationFrontier allocate_frontier(Algorithm algorithm, const RefModel& model,
                                     std::int64_t max_budget) {
  switch (algorithm) {
    case Algorithm::kFeasibility: return allocate_feasibility_frontier(model, max_budget);
    case Algorithm::kFrRa: return allocate_fr_frontier(model, max_budget);
    case Algorithm::kPrRa: return allocate_pr_frontier(model, max_budget);
    case Algorithm::kCpaRa: return allocate_cpa_frontier(model, max_budget);
    case Algorithm::kKnapsack: return allocate_knapsack_frontier(model, max_budget);
    case Algorithm::kOptimalDp: return allocate_optimal_dp_frontier(model, max_budget);
    case Algorithm::kLinearScan: return allocate_linear_scan_frontier(model, max_budget);
    case Algorithm::kBnbOptimal: return allocate_bnb_frontier(model, max_budget);
  }
  fail("unknown Algorithm");
}

}  // namespace srra
