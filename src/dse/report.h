// Report emission for explored design spaces (DESIGN.md §7): one schema,
// three encodings (ASCII tables, RFC-4180 CSV, pretty-printed JSON). All
// three are byte-deterministic functions of the ExploreResult — no
// timestamps, no wall-clock, no pointer identities — so reports produced
// with different --jobs values compare equal (tested in test_dse.cc).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "dse/explore.h"
#include "dse/pareto.h"

namespace srra::dse {

/// Report encoding.
enum class Format { kText, kCsv, kJson };

/// Parses "text" / "csv" / "json"; throws srra::Error on anything else.
Format parse_format(const std::string& name);

/// Inverse of parse_format.
std::string format_name(Format format);

/// The full point-by-point sweep report: one record per SpacePoint in
/// enumeration order, with allocation, cycle, and hardware columns.
void write_points_report(std::ostream& os, const ExploreResult& result, Format format);

/// The reduced report: per kernel the registers-vs-exec-cycles and
/// slices-vs-time_us Pareto frontiers, then the best-per-budget table.
void write_pareto_report(std::ostream& os, const ExploreResult& result, Format format);

/// Table-1-style block for one kernel: one row per design point with the
/// exact cell formatting of bench_table1 (Required S.R., distribution,
/// cycles, dCyc/speedup vs the first point, clock, time, slices, RAMs).
void write_design_table(std::ostream& os, const std::string& kernel_name,
                        const RefModel& model, const std::vector<DesignPoint>& points);

}  // namespace srra::dse
