#include "dse/explore.h"

#include <algorithm>
#include <array>
#include <memory>
#include <mutex>

#include "core/frontier.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace srra::dse {

namespace {

// Lazily built allocation frontiers of one nest piece, one per algorithm —
// shared by every shard and fetch mode of the variant, built at most once
// under std::call_once (the result is a deterministic function of the
// model, so reports cannot depend on which lane built it).
struct PieceFrontiers {
  std::array<std::once_flag, kAlgorithmCount> once;
  std::array<std::unique_ptr<AllocationFrontier>, kAlgorithmCount> frontiers;
};

struct VariantFrontiers {
  std::int64_t max_budget = -1;  ///< largest feasible budget of the variant
  int min_feasible = 0;          ///< max group count over the variant's pieces
  std::vector<PieceFrontiers> pieces;  ///< main first, epilogues after
};

}  // namespace

ExploreResult explore(EnumeratedSpace space, const ExploreOptions& options) {
  ExploreResult result;
  result.results.resize(space.points.size());
  const std::vector<std::vector<int>> groups = space.points_by_variant();

  // One shared RefModel per nest piece of every variant (main first, then
  // the peeled epilogues — most variants have exactly one piece): the model
  // caches (access counts, strategy selections, cycle-model memo) are
  // thread-safe, so every shard of the variant reuses the same analysis
  // instead of redoing grouping, reuse and counting per shard. Results
  // cannot depend on sharing: every cached value is a deterministic
  // function of its key, so reports stay byte-identical for any --jobs.
  std::vector<std::vector<std::unique_ptr<RefModel>>> models;
  models.reserve(space.variants.size());
  for (const Variant& variant : space.variants) {
    std::vector<std::unique_ptr<RefModel>> pieces;
    pieces.push_back(std::make_unique<RefModel>(variant.kernel.clone()));
    for (const Kernel& epilogue : variant.epilogues) {
      pieces.push_back(std::make_unique<RefModel>(epilogue.clone()));
    }
    models.push_back(std::move(pieces));
  }

  // The whole budget axis of one (variant, algorithm) collapses into one
  // frontier evaluation per piece; per-budget allocations are slices of it.
  // A peeled variant is feasible only when every piece is, so budgets below
  // the widest piece's feasibility point keep the per-point path and its
  // diagnostics.
  std::vector<VariantFrontiers> frontiers(space.variants.size());
  for (const Variant& variant : space.variants) {
    VariantFrontiers& vf = frontiers[static_cast<std::size_t>(variant.index)];
    const auto& pieces = models[static_cast<std::size_t>(variant.index)];
    vf.pieces = std::vector<PieceFrontiers>(pieces.size());
    for (const auto& model : pieces) {
      vf.min_feasible = std::max(vf.min_feasible, model->group_count());
    }
  }
  for (const SpacePoint& point : space.points) {
    VariantFrontiers& vf = frontiers[static_cast<std::size_t>(point.variant)];
    if (point.budget >= vf.min_feasible) vf.max_budget = std::max(vf.max_budget, point.budget);
  }

  // Work units are contiguous shards of one variant's point list. One
  // shard per variant suffices when there are at least as many variants as
  // lanes; otherwise every variant is split so a single-kernel sweep still
  // fills the pool.
  struct Unit {
    int variant;
    std::size_t begin;
    std::size_t end;
  };
  const std::size_t lanes =
      static_cast<std::size_t>(ThreadPool::clamp_jobs(options.jobs));
  const std::size_t shards =
      space.variants.empty() ? 1 : std::max<std::size_t>(1, lanes / space.variants.size());
  std::vector<Unit> units;
  for (const Variant& variant : space.variants) {
    const std::size_t n = groups[static_cast<std::size_t>(variant.index)].size();
    const std::size_t chunks = std::min(shards, std::max<std::size_t>(n, 1));
    for (std::size_t c = 0; c < chunks; ++c) {
      const Unit unit{variant.index, n * c / chunks, n * (c + 1) / chunks};
      if (unit.begin < unit.end) units.push_back(unit);
    }
  }

  ThreadPool pool(options.jobs);
  pool.parallel_for(static_cast<std::int64_t>(units.size()), [&](std::int64_t u) {
    const Unit& unit = units[static_cast<std::size_t>(u)];
    const auto& piece_models = models[static_cast<std::size_t>(unit.variant)];
    VariantFrontiers& vf = frontiers[static_cast<std::size_t>(unit.variant)];
    const std::vector<int>& indices = groups[static_cast<std::size_t>(unit.variant)];
    for (std::size_t i = unit.begin; i < unit.end; ++i) {
      const SpacePoint& point = space.points[static_cast<std::size_t>(indices[i])];
      PointResult& out = result.results[static_cast<std::size_t>(point.index)];
      PipelineOptions pipeline = options.pipeline;
      pipeline.budget = point.budget;
      pipeline.cycles.concurrent_operand_fetch = point.concurrent_fetch;
      try {
        const auto a = static_cast<std::size_t>(point.algorithm);
        std::vector<DesignPoint> pieces;
        pieces.reserve(piece_models.size());
        if (options.frontier && point.budget >= vf.min_feasible) {
          for (std::size_t p = 0; p < piece_models.size(); ++p) {
            const RefModel& model = *piece_models[p];
            PieceFrontiers& pf = vf.pieces[p];
            std::call_once(pf.once[a], [&] {
              pf.frontiers[a] = std::make_unique<AllocationFrontier>(
                  allocate_frontier(point.algorithm, model, vf.max_budget));
            });
            // (call_once rethrows build failures with the flag unset, so a
            // set pointer is guaranteed here; the feasibility guard above
            // makes such failures impossible in the first place.)
            pieces.push_back(evaluate_design(model, point.algorithm,
                                             pf.frontiers[a]->at(point.budget), pipeline));
          }
        } else {
          for (const auto& model : piece_models) {
            pieces.push_back(run_pipeline(*model, point.algorithm, pipeline));
          }
        }
        out.design = combine_pieces(std::move(pieces));
        out.feasible = true;
      } catch (const Error& e) {
        out.error = e.what();
      }
    }
  });

  result.space = std::move(space);
  return result;
}

}  // namespace srra::dse
