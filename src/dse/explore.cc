#include "dse/explore.h"

#include <algorithm>
#include <array>
#include <memory>
#include <mutex>

#include "core/frontier.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace srra::dse {

namespace {

// Lazily built allocation frontiers of one variant, one per algorithm —
// shared by every shard and fetch mode of the variant, built at most once
// under std::call_once (the result is a deterministic function of the
// model, so reports cannot depend on which lane built it).
struct VariantFrontiers {
  std::int64_t max_budget = -1;  ///< largest feasible budget of the variant
  std::array<std::once_flag, kAlgorithmCount> once;
  std::array<std::unique_ptr<AllocationFrontier>, kAlgorithmCount> frontiers;
};

}  // namespace

ExploreResult explore(EnumeratedSpace space, const ExploreOptions& options) {
  ExploreResult result;
  result.results.resize(space.points.size());
  const std::vector<std::vector<int>> groups = space.points_by_variant();

  // One shared RefModel per variant: its caches (access counts, strategy
  // selections, cycle-model memo) are thread-safe, so every shard of the
  // variant reuses the same analysis instead of redoing grouping, reuse and
  // counting per shard. Results cannot depend on sharing: every cached
  // value is a deterministic function of its key, so reports stay
  // byte-identical for any --jobs.
  std::vector<std::unique_ptr<RefModel>> models;
  models.reserve(space.variants.size());
  for (const Variant& variant : space.variants) {
    models.push_back(std::make_unique<RefModel>(variant.kernel.clone()));
  }

  // The whole budget axis of one (variant, algorithm) collapses into one
  // frontier evaluation; per-budget allocations are slices of it. Budgets
  // below the variant's feasibility point keep the per-point path so their
  // diagnostics stay identical.
  std::vector<VariantFrontiers> frontiers(space.variants.size());
  for (const SpacePoint& point : space.points) {
    VariantFrontiers& vf = frontiers[static_cast<std::size_t>(point.variant)];
    const int group_count = models[static_cast<std::size_t>(point.variant)]->group_count();
    if (point.budget >= group_count) vf.max_budget = std::max(vf.max_budget, point.budget);
  }

  // Work units are contiguous shards of one variant's point list. One
  // shard per variant suffices when there are at least as many variants as
  // lanes; otherwise every variant is split so a single-kernel sweep still
  // fills the pool.
  struct Unit {
    int variant;
    std::size_t begin;
    std::size_t end;
  };
  const std::size_t lanes =
      static_cast<std::size_t>(ThreadPool::clamp_jobs(options.jobs));
  const std::size_t shards =
      space.variants.empty() ? 1 : std::max<std::size_t>(1, lanes / space.variants.size());
  std::vector<Unit> units;
  for (const Variant& variant : space.variants) {
    const std::size_t n = groups[static_cast<std::size_t>(variant.index)].size();
    const std::size_t chunks = std::min(shards, std::max<std::size_t>(n, 1));
    for (std::size_t c = 0; c < chunks; ++c) {
      const Unit unit{variant.index, n * c / chunks, n * (c + 1) / chunks};
      if (unit.begin < unit.end) units.push_back(unit);
    }
  }

  ThreadPool pool(options.jobs);
  pool.parallel_for(static_cast<std::int64_t>(units.size()), [&](std::int64_t u) {
    const Unit& unit = units[static_cast<std::size_t>(u)];
    const RefModel& model = *models[static_cast<std::size_t>(unit.variant)];
    VariantFrontiers& vf = frontiers[static_cast<std::size_t>(unit.variant)];
    const std::vector<int>& indices = groups[static_cast<std::size_t>(unit.variant)];
    for (std::size_t i = unit.begin; i < unit.end; ++i) {
      const SpacePoint& point = space.points[static_cast<std::size_t>(indices[i])];
      PointResult& out = result.results[static_cast<std::size_t>(point.index)];
      PipelineOptions pipeline = options.pipeline;
      pipeline.budget = point.budget;
      pipeline.cycles.concurrent_operand_fetch = point.concurrent_fetch;
      try {
        const auto a = static_cast<std::size_t>(point.algorithm);
        if (options.frontier && point.budget >= model.group_count()) {
          std::call_once(vf.once[a], [&] {
            vf.frontiers[a] = std::make_unique<AllocationFrontier>(
                allocate_frontier(point.algorithm, model, vf.max_budget));
          });
          // (call_once rethrows build failures with the flag unset, so a
          // set pointer is guaranteed here; the feasibility guard above
          // makes such failures impossible in the first place.)
          out.design = evaluate_design(model, point.algorithm,
                                       vf.frontiers[a]->at(point.budget), pipeline);
        } else {
          out.design = run_pipeline(model, point.algorithm, pipeline);
        }
        out.feasible = true;
      } catch (const Error& e) {
        out.error = e.what();
      }
    }
  });

  result.space = std::move(space);
  return result;
}

}  // namespace srra::dse
