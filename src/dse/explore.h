// Design-space evaluation (DESIGN.md §7). Every SpacePoint runs through
// the full driver pipeline; points of one variant share a single RefModel,
// so the analysis stage (grouping, reuse, access-count cache) is computed
// once per (kernel, transform sequence) and amortized over every fetch
// mode, algorithm and budget.
//
// Parallelism runs on a fixed ThreadPool over contiguous shards of each
// variant's point list (variants are split further when there are more
// lanes than variants, so single-kernel sweeps still fill the pool). All
// shards of a variant share one thread-safe RefModel, so the analysis is
// computed once per variant for any lane count. Workers claim shard
// indices from a shared counter and write each point result into its
// preallocated slot (results[point.index]), so the merged ExploreResult is
// identical for any --jobs value — the byte-identical-reports guarantee.
#pragma once

#include <string>
#include <vector>

#include "driver/pipeline.h"
#include "dse/space.h"

namespace srra::dse {

/// Engine knobs.
struct ExploreOptions {
  /// Evaluation lanes (1 = sequential; <= 0 = hardware concurrency).
  int jobs = 1;
  /// Collapse each (variant, algorithm) budget axis into one
  /// AllocationFrontier evaluation shared across fetch modes and budgets
  /// (core/frontier.h), with per-budget allocations sliced out of it. When
  /// false every point runs its own allocator call — the per-point oracle
  /// the frontier path is byte-identical to (tested in test_frontier.cc).
  bool frontier = true;
  /// Base pipeline configuration; `budget` and
  /// `cycles.concurrent_operand_fetch` are overridden per point.
  PipelineOptions pipeline;
};

/// Outcome of one point. Points whose budget cannot even cover the
/// feasibility assignment (one register per reference group) are reported
/// infeasible rather than aborting the sweep.
struct PointResult {
  bool feasible = false;
  std::string error;   ///< diagnostic when infeasible
  DesignPoint design;  ///< valid only when feasible
};

/// The evaluated space: results[i] corresponds to space.points[i].
struct ExploreResult {
  EnumeratedSpace space;
  std::vector<PointResult> results;

  const Variant& variant_of(const SpacePoint& point) const {
    return space.variants[static_cast<std::size_t>(point.variant)];
  }
};

/// Evaluates every point of `space`. Deterministic for any `options.jobs`.
ExploreResult explore(EnumeratedSpace space, const ExploreOptions& options = {});

/// Convenience: enumerate + explore.
inline ExploreResult explore(AxisSpec axes, const ExploreOptions& options = {}) {
  return explore(enumerate_space(std::move(axes)), options);
}

}  // namespace srra::dse
