#include "dse/report.h"

#include <algorithm>

#include "service/proto.h"
#include "support/csv.h"
#include "support/error.h"
#include "support/json.h"
#include "support/str.h"
#include "support/table.h"

namespace srra::dse {

namespace {

const char* fetch_name(bool concurrent) { return concurrent ? "concurrent" : "serial"; }

// Tmem per steady outer iteration — the unit Figure 2(c) reports (1800 /
// 1560 / 1184 on the worked example at budget 64).
double tmem_per_outer(const Variant& variant, const DesignPoint& d) {
  return d.cycles.mem_cycles_per_outer(variant.kernel.loop(0).trip_count());
}

// Emits the per-point payload fields shared by the JSON reports.
void json_point(JsonWriter& json, const ExploreResult& result, const SpacePoint& point) {
  const PointResult& r = result.results[static_cast<std::size_t>(point.index)];
  const Variant& variant = result.variant_of(point);
  json.begin_object();
  json.field("kernel", variant.kernel_name);
  json.field("order", variant.label());
  json.field("fetch", fetch_name(point.concurrent_fetch));
  json.field("algorithm", algorithm_name(point.algorithm));
  json.field("budget", point.budget);
  json.field("feasible", r.feasible);
  if (!r.feasible) {
    json.field("error", r.error);
    json.end_object();
    return;
  }
  // Same field set and formatting as the service's srra-query/v1 points —
  // one writer, so the two JSON schemas cannot drift.
  service::write_design_point_fields(json, r.design,
                                     variant.kernel.loop(0).trip_count());
  json.end_object();
}

std::vector<std::string> csv_point(const ExploreResult& result, const SpacePoint& point) {
  const PointResult& r = result.results[static_cast<std::size_t>(point.index)];
  const Variant& variant = result.variant_of(point);
  std::vector<std::string> row{variant.kernel_name,
                               variant.label(),
                               fetch_name(point.concurrent_fetch),
                               algorithm_name(point.algorithm),
                               std::to_string(point.budget),
                               r.feasible ? "1" : "0"};
  if (!r.feasible) {
    row.insert(row.end(), {"", "", "", "", "", "", "", "", "", "", "", r.error});
    return row;
  }
  const DesignPoint& d = r.design;
  row.insert(row.end(),
             {std::to_string(d.allocation.total()), d.allocation.distribution(),
              std::to_string(d.cycles.mem_cycles), to_fixed(tmem_per_outer(variant, d), 1),
              std::to_string(d.cycles.ram_accesses),
              std::to_string(d.cycles.exec_cycles), to_fixed(d.hw.clock_ns, 2),
              to_fixed(d.time_us(), 3), std::to_string(d.hw.slices),
              to_fixed(d.hw.occupancy, 4), std::to_string(d.hw.block_rams), ""});
  return row;
}

void frontier_rows(Table& table, const ExploreResult& result, const Frontier& frontier,
                   bool integer_axes) {
  for (const int index : frontier.points) {
    const SpacePoint& point = result.space.points[static_cast<std::size_t>(index)];
    const PointResult& r = result.results[static_cast<std::size_t>(index)];
    const Variant& variant = result.variant_of(point);
    const DesignPoint& d = r.design;
    const bool regs_cycles = integer_axes;
    table.add_row({regs_cycles ? std::to_string(d.allocation.total())
                               : with_commas(d.hw.slices),
                   regs_cycles ? with_commas(d.cycles.exec_cycles)
                               : to_fixed(d.time_us(), 1),
                   algorithm_name(point.algorithm), std::to_string(point.budget),
                   variant.label(), fetch_name(point.concurrent_fetch)});
  }
}

void json_frontier(JsonWriter& json, const ExploreResult& result, const Frontier& frontier) {
  json.begin_object();
  json.field("label", frontier.label);
  json.field("x", frontier.x_name);
  json.field("y", frontier.y_name);
  json.key("points");
  json.begin_array();
  for (const int index : frontier.points) {
    json_point(json, result, result.space.points[static_cast<std::size_t>(index)]);
  }
  json.end_array();
  json.end_object();
}

// Candidate-count accounting line (text), CSV trailing comment, and JSON
// fields. generated = pruned + evaluated always holds — whether the space
// came from the exhaustive enumerator (cap + structural dedup) or the
// guided search (dse/prune.h), no candidate disappears uncounted.
std::string stats_line(const SpaceStats& stats) {
  return cat("generated ", stats.variants_generated, ", pruned ",
             stats.variants_pruned, ", evaluated ", stats.variants_evaluated);
}

void json_stats(JsonWriter& json, const SpaceStats& stats) {
  json.field("variants_generated", stats.variants_generated);
  json.field("variants_pruned", stats.variants_pruned);
  json.field("variants_evaluated", stats.variants_evaluated);
}

}  // namespace

Format parse_format(const std::string& name) {
  if (name == "text") return Format::kText;
  if (name == "csv") return Format::kCsv;
  if (name == "json") return Format::kJson;
  fail(cat("unknown report format: ", name, " (want text|csv|json)"));
}

std::string format_name(Format format) {
  switch (format) {
    case Format::kText: return "text";
    case Format::kCsv: return "csv";
    case Format::kJson: return "json";
  }
  fail("unknown Format");
}

void write_points_report(std::ostream& os, const ExploreResult& result, Format format) {
  switch (format) {
    case Format::kText: {
      os << "Design-space sweep: " << result.space.variants.size() << " variant(s), "
         << result.space.points.size() << " point(s)\n";
      os << "Candidates: " << stats_line(result.space.stats) << "\n\n";
      Table table({"Kernel", "Order", "Fetch", "Algorithm", "Budget", "Regs",
                   "Distribution", "Tmem", "Tmem/outer", "Exec cycles", "Clock ns",
                   "Time us", "Slices", "RAMs", "Status"});
      int last_variant = -1;
      for (const SpacePoint& point : result.space.points) {
        const PointResult& r = result.results[static_cast<std::size_t>(point.index)];
        const Variant& variant = result.variant_of(point);
        if (last_variant >= 0 && point.variant != last_variant) table.add_separator();
        last_variant = point.variant;
        if (!r.feasible) {
          table.add_row({variant.kernel_name, variant.label(),
                         fetch_name(point.concurrent_fetch),
                         algorithm_name(point.algorithm), std::to_string(point.budget),
                         "-", "-", "-", "-", "-", "-", "-", "-", "-", "infeasible"});
          continue;
        }
        const DesignPoint& d = r.design;
        table.add_row({variant.kernel_name, variant.label(),
                       fetch_name(point.concurrent_fetch),
                       algorithm_name(point.algorithm), std::to_string(point.budget),
                       std::to_string(d.allocation.total()), d.allocation.distribution(),
                       with_commas(d.cycles.mem_cycles),
                       to_fixed(tmem_per_outer(variant, d), 0),
                       with_commas(d.cycles.exec_cycles), to_fixed(d.hw.clock_ns, 1),
                       to_fixed(d.time_us(), 1), with_commas(d.hw.slices),
                       std::to_string(d.hw.block_rams), "ok"});
      }
      table.render(os);
      return;
    }
    case Format::kCsv: {
      CsvWriter csv(os);
      csv.row({"kernel", "order", "fetch", "algorithm", "budget", "feasible",
               "registers", "distribution", "mem_cycles", "mem_cycles_per_outer",
               "ram_accesses", "exec_cycles", "clock_ns", "time_us", "slices",
               "occupancy", "block_rams", "error"});
      for (const SpacePoint& point : result.space.points) {
        csv.row(csv_point(result, point));
      }
      os << "# candidates: " << stats_line(result.space.stats) << "\n";
      return;
    }
    case Format::kJson: {
      JsonWriter json(os);
      json.begin_object();
      json.field("schema", "srra-dse-points/v1");
      json.field("variants", static_cast<std::int64_t>(result.space.variants.size()));
      json_stats(json, result.space.stats);
      json.key("points");
      json.begin_array();
      for (const SpacePoint& point : result.space.points) json_point(json, result, point);
      json.end_array();
      json.end_object();
      return;
    }
  }
}

void write_pareto_report(std::ostream& os, const ExploreResult& result, Format format) {
  const std::vector<std::string> names = kernel_names(result);
  const std::vector<int> best = best_per_budget(result);

  switch (format) {
    case Format::kText: {
      os << "Candidates: " << stats_line(result.space.stats) << "\n\n";
      for (const std::string& name : names) {
        const Frontier rc = registers_vs_cycles(result, name);
        const Frontier st = slices_vs_time(result, name);
        os << name << " — Pareto frontier: registers vs exec cycles\n";
        Table rc_table({"Registers", "Exec cycles", "Algorithm", "Budget", "Order", "Fetch"});
        frontier_rows(rc_table, result, rc, /*integer_axes=*/true);
        rc_table.render(os);
        os << "\n" << name << " — Pareto frontier: slices vs time\n";
        Table st_table({"Slices", "Time us", "Algorithm", "Budget", "Order", "Fetch"});
        frontier_rows(st_table, result, st, /*integer_axes=*/false);
        st_table.render(os);
        os << "\n";
      }
      os << "Best per budget (fewest exec cycles; ties: fewest registers)\n";
      Table table({"Kernel", "Budget", "Algorithm", "Order", "Fetch", "Regs",
                   "Exec cycles", "Time us"});
      for (const int index : best) {
        const SpacePoint& point = result.space.points[static_cast<std::size_t>(index)];
        const DesignPoint& d = result.results[static_cast<std::size_t>(index)].design;
        const Variant& variant = result.variant_of(point);
        table.add_row({variant.kernel_name, std::to_string(point.budget),
                       algorithm_name(point.algorithm), variant.label(),
                       fetch_name(point.concurrent_fetch),
                       std::to_string(d.allocation.total()),
                       with_commas(d.cycles.exec_cycles), to_fixed(d.time_us(), 1)});
      }
      table.render(os);
      return;
    }
    case Format::kCsv: {
      CsvWriter csv(os);
      csv.row({"section", "kernel", "order", "fetch", "algorithm", "budget",
               "registers", "mem_cycles", "exec_cycles", "slices", "time_us"});
      const auto emit = [&](const std::string& section, int index) {
        const SpacePoint& point = result.space.points[static_cast<std::size_t>(index)];
        const DesignPoint& d = result.results[static_cast<std::size_t>(index)].design;
        const Variant& variant = result.variant_of(point);
        csv.row({section, variant.kernel_name, variant.label(),
                 fetch_name(point.concurrent_fetch), algorithm_name(point.algorithm),
                 std::to_string(point.budget), std::to_string(d.allocation.total()),
                 std::to_string(d.cycles.mem_cycles),
                 std::to_string(d.cycles.exec_cycles), std::to_string(d.hw.slices),
                 to_fixed(d.time_us(), 3)});
      };
      for (const std::string& name : names) {
        for (const int i : registers_vs_cycles(result, name).points) {
          emit("registers_vs_cycles", i);
        }
        for (const int i : slices_vs_time(result, name).points) {
          emit("slices_vs_time", i);
        }
      }
      for (const int i : best) emit("best_per_budget", i);
      os << "# candidates: " << stats_line(result.space.stats) << "\n";
      return;
    }
    case Format::kJson: {
      JsonWriter json(os);
      json.begin_object();
      json.field("schema", "srra-dse-pareto/v1");
      json_stats(json, result.space.stats);
      json.key("kernels");
      json.begin_array();
      for (const std::string& name : names) {
        json.begin_object();
        json.field("name", name);
        json.key("frontiers");
        json.begin_array();
        json_frontier(json, result, registers_vs_cycles(result, name));
        json_frontier(json, result, slices_vs_time(result, name));
        json.end_array();
        json.end_object();
      }
      json.end_array();
      json.key("best_per_budget");
      json.begin_array();
      for (const int i : best) {
        json_point(json, result, result.space.points[static_cast<std::size_t>(i)]);
      }
      json.end_array();
      json.end_object();
      return;
    }
  }
}

void write_design_table(std::ostream& os, const std::string& kernel_name,
                        const RefModel& model, const std::vector<DesignPoint>& points) {
  check(!points.empty(), "write_design_table: no design points");
  Table table({"Kernel", "Version", "Required S.R.", "Distribution", "Total",
               "Cycles", "dCyc", "Clock ns", "Time us", "Speedup", "Slices", "Occup",
               "RAMs"});
  const DesignPoint& v1 = points.front();
  for (std::size_t v = 0; v < points.size(); ++v) {
    const DesignPoint& p = points[v];
    const double dcyc = 1.0 - static_cast<double>(p.cycles.exec_cycles) /
                                  static_cast<double>(v1.cycles.exec_cycles);
    const double speedup = v1.time_us() / p.time_us();
    table.add_row({kernel_name, cat("v", v + 1, " ", algorithm_name(p.algorithm)),
                   v == 0 ? required_registers_string(model) : "",
                   p.allocation.distribution(), std::to_string(p.allocation.total()),
                   with_commas(p.cycles.exec_cycles), v == 0 ? "-" : to_percent(dcyc),
                   to_fixed(p.hw.clock_ns, 1), to_fixed(p.time_us(), 1),
                   v == 0 ? "1.00" : to_fixed(speedup, 2), with_commas(p.hw.slices),
                   to_percent(p.hw.occupancy).substr(1), std::to_string(p.hw.block_rams)});
  }
  table.render(os);
}

}  // namespace srra::dse
