// Pareto-frontier reduction over evaluated design points (DESIGN.md §7).
// Both objectives are minimized (fewer registers, fewer cycles; fewer
// slices, less time). Dominance is the usual weak form: a dominates b when
// a is no worse on both axes and strictly better on at least one. Points
// with identical coordinates do not dominate each other, so coordinate
// ties all survive; the returned order is deterministic.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dse/explore.h"

namespace srra::dse {

/// Indices of the non-dominated points of `points` (minimizing both
/// coordinates), sorted by (x ascending, y ascending, input index).
/// Coordinate-tied copies of a frontier point are all kept.
std::vector<int> pareto_frontier(const std::vector<std::pair<double, double>>& points);

/// Kernel names of `result` in variant declaration order, deduplicated —
/// the section order shared by every reduced report.
std::vector<std::string> kernel_names(const ExploreResult& result);

/// A named two-objective reduction of an ExploreResult.
struct Frontier {
  std::string label;       ///< e.g. "registers vs exec cycles"
  std::string x_name;      ///< axis names for reports
  std::string y_name;
  std::vector<int> points; ///< SpacePoint indices on the frontier, frontier order
};

/// The registers-vs-exec-cycles frontier over the feasible points of one
/// kernel (all loop orders, fetch modes, algorithms and budgets pooled).
Frontier registers_vs_cycles(const ExploreResult& result, const std::string& kernel_name);

/// The slices-vs-wall-clock (time_us) frontier over the same pool.
Frontier slices_vs_time(const ExploreResult& result, const std::string& kernel_name);

/// For each (kernel, budget): the feasible point with the fewest execution
/// cycles (ties: fewer registers, then lower point index). Returned as
/// SpacePoint indices in (kernel declaration order, budget ascending)
/// order; budgets with no feasible point are skipped.
std::vector<int> best_per_budget(const ExploreResult& result);

}  // namespace srra::dse
