#include "dse/cli.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "dse/report.h"
#include "ir/parser.h"
#include "kernels/kernels.h"
#include "support/error.h"
#include "support/str.h"
#include "support/table.h"

namespace srra::dse {

namespace {

const char kUsage[] =
    "usage: srra <command> [flags]\n"
    "\n"
    "commands:\n"
    "  list     built-in kernels and algorithms\n"
    "  run      evaluate one kernel at one budget (Table-1-style report)\n"
    "  sweep    evaluate the full design space, one record per point\n"
    "  pareto   sweep, reduced to Pareto frontiers + best-per-budget\n"
    "\n"
    "flags:\n"
    "  --kernel=LIST    built-in names, 'paper', 'all', or a kernel-DSL file\n"
    "                   (run: exactly one; sweep/pareto default: paper)\n"
    "  --algos=LIST     algorithm names, 'paper' (default) or 'all'\n"
    "  --budget=N       register budget for run (default 64)\n"
    "  --budgets=SPEC   budget axis for sweep/pareto: N | a,b,c | lo:hi[:step]\n"
    "                   (default 8:128; lo:hi doubles from lo)\n"
    "  --interchange    also enumerate legal loop-interchange orders\n"
    "  --tiles=LIST     also enumerate loop tiling: every legal Tile(level,\n"
    "                   size) per variant, sizes from LIST (e.g. 4,8)\n"
    "  --unroll=LIST    also enumerate unroll-and-jam: every legal\n"
    "                   UnrollJam(level, factor), factors from LIST\n"
    "  --transforms=SEQ explicit transform sequences in canonical encoding,\n"
    "                   e.g. 'i(1,0,2);t(2,8)' (see DESIGN.md §10); sweep and\n"
    "                   pareto accept several sequences joined with '+',\n"
    "                   run applies exactly one to its kernel\n"
    "  --fetch=MODE     concurrent operand fetch: on (default) | off | both\n"
    "  --jobs=N         evaluation threads (default 1; 0 = all cores)\n"
    "  --format=FMT     text (default) | csv | json\n"
    "  --frontier       sweep/pareto: one all-budget allocation frontier per\n"
    "                   (variant, algorithm), sliced per budget (default)\n"
    "  --per-point      sweep/pareto: run every (algorithm, budget) point\n"
    "                   through its own allocator call (the frontier's\n"
    "                   oracle; output is byte-identical to --frontier)\n";

struct Flags {
  std::map<std::string, std::string> values;
  std::vector<std::string> order;  // for unknown-flag reporting

  bool has(const std::string& name) const { return values.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
};

Flags parse_flags(const std::vector<std::string>& args, std::size_t first) {
  Flags flags;
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& arg = args[i];
    check(starts_with(arg, "--"), cat("unexpected argument: ", arg));
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos ? eq : eq - 2);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    static const char* known[] = {"kernel", "algos",  "budget",   "budgets",
                                  "interchange", "tiles", "unroll", "transforms",
                                  "fetch", "jobs", "format",
                                  "frontier", "per-point"};
    check(std::find_if(std::begin(known), std::end(known),
                       [&](const char* k) { return name == k; }) != std::end(known),
          cat("unknown flag: --", name));
    check(flags.values.emplace(name, value).second, cat("duplicate flag: --", name));
    flags.order.push_back(name);
  }
  return flags;
}

// Canonical matching key: lower-case, '-' folded to '_'.
std::string canon(std::string_view name) {
  std::string key;
  for (const char c : name) {
    key += c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return key;
}

std::vector<SpaceKernel> builtin_kernels() {
  std::vector<SpaceKernel> all;
  all.push_back({"example", kernels::paper_example()});
  for (kernels::NamedKernel& nk : kernels::all_kernels()) {
    all.push_back({nk.name, std::move(nk.kernel)});
  }
  return all;
}

SpaceKernel load_kernel_file(const std::string& path) {
  std::ifstream in(path);
  check(in.good(), cat("cannot open kernel file: ", path));
  std::ostringstream text;
  text << in.rdbuf();
  Kernel kernel = parse_kernel(text.str());
  std::string name = kernel.name();
  return {std::move(name), std::move(kernel)};
}

// Resolves one --kernel token: built-in name, set name, or DSL file path.
void resolve_kernel(const std::string& token, std::vector<SpaceKernel>& out) {
  std::string key = canon(token);
  if (key == "mmt") key = "mat";  // matrix-matrix multiply, both spellings
  if (key == "paper") {
    for (kernels::NamedKernel& nk : kernels::table1_kernels()) {
      out.push_back({nk.name, std::move(nk.kernel)});
    }
    return;
  }
  if (key == "all") {
    for (SpaceKernel& sk : builtin_kernels()) out.push_back(std::move(sk));
    return;
  }
  for (SpaceKernel& sk : builtin_kernels()) {
    if (canon(sk.name) == key) {
      out.push_back(std::move(sk));
      return;
    }
  }
  if (std::ifstream(token).good()) {
    out.push_back(load_kernel_file(token));
    return;
  }
  fail(cat("unknown kernel '", token,
           "' (want example, fir, dec_fir, mat, imi, pat, bic, conv2d, matvec, "
           "paper, all, or a kernel-DSL file path)"));
}

std::vector<SpaceKernel> resolve_kernels(const std::string& list) {
  std::vector<SpaceKernel> out;
  for (const std::string& token : split(list, ',')) {
    check(!trim(token).empty(), cat("empty kernel name in '", list, "'"));
    resolve_kernel(std::string(trim(token)), out);
  }
  check(!out.empty(), "no kernels selected");
  return out;
}

std::vector<Algorithm> resolve_algorithms(const std::string& list) {
  const std::string key = canon(list);
  if (key == "paper") return paper_variants();
  if (key == "all") return all_algorithms();
  std::vector<Algorithm> algorithms;
  for (const std::string& token : split(list, ',')) {
    algorithms.push_back(parse_algorithm(std::string(trim(token))));
  }
  check(!algorithms.empty(), "no algorithms selected");
  return algorithms;
}

// Parses a --transforms value: canonical transform sequences joined with
// '+' (';' already separates the transforms *inside* one sequence).
std::vector<std::vector<LoopTransform>> resolve_transform_sequences(
    const std::string& value) {
  std::vector<std::vector<LoopTransform>> sequences;
  for (const std::string& token : split(value, '+')) {
    std::vector<LoopTransform> sequence = parse_transforms(token);
    check(!sequence.empty(), cat("empty transform sequence in '", value, "'"));
    sequences.push_back(std::move(sequence));
  }
  return sequences;
}

std::vector<bool> resolve_fetch(const std::string& mode) {
  if (mode == "on") return {true};
  if (mode == "off") return {false};
  if (mode == "both") return {true, false};
  fail(cat("bad --fetch value: ", mode, " (want on|off|both)"));
}

int parse_int(const std::string& text, const char* what, int min_value) {
  // The length bound keeps std::stoi from throwing std::out_of_range,
  // which would escape run_cli's srra::Error handler and abort.
  check(!text.empty() && text.size() <= 7 &&
            text.find_first_not_of("0123456789") == std::string::npos,
        cat("bad ", what, " value: ", text));
  const int value = std::stoi(text);
  check(value >= min_value,
        cat("bad ", what, " value: ", text, " (must be >= ", min_value, ")"));
  return value;
}

int cmd_list(std::ostream& out) {
  out << "Built-in kernels:\n";
  Table kernels_table({"Name", "Depth", "Loops", "Description"});
  std::vector<SpaceKernel> builtins = builtin_kernels();
  std::map<std::string, std::string> descriptions;
  for (const kernels::NamedKernel& nk : kernels::all_kernels()) {
    descriptions[nk.name] = nk.description;
  }
  descriptions["example"] = "Figure 1 worked example";
  for (const SpaceKernel& sk : builtins) {
    // find(), not operator[]: a kernel without a description entry should
    // say so, not silently grow the map with an empty string.
    const auto description = descriptions.find(sk.name);
    kernels_table.add_row({sk.name, std::to_string(sk.kernel.depth()),
                           cat("(", join(sk.kernel.loop_names(), ","), ")"),
                           description != descriptions.end() ? description->second
                                                             : "(no description)"});
  }
  kernels_table.set_align(1, Align::kRight);
  kernels_table.render(out);

  out << "\nAlgorithms:\n";
  Table algorithms_table({"Name", "Spellings"});
  algorithms_table.add_row({"feasibility", "feasibility"});
  algorithms_table.add_row({"FR-RA", "fr, FR-RA"});
  algorithms_table.add_row({"PR-RA", "pr, PR-RA"});
  algorithms_table.add_row({"CPA-RA", "cpa, CPA-RA"});
  algorithms_table.add_row({"KS-RA", "knapsack, KS-RA"});
  algorithms_table.add_row({"DP-RA", "dp, optimal, optimal-dp, DP-RA"});
  algorithms_table.add_row({"LS-RA", "ls, linear-scan, LS-RA"});
  algorithms_table.add_row({"BB-RA", "bnb, bb, optimal-bnb, BB-RA"});
  algorithms_table.render(out);
  return 0;
}

int cmd_run(const Flags& flags, std::ostream& out) {
  check(flags.has("kernel"), "run needs --kernel=NAME|FILE");
  check(!flags.has("budgets"), "run takes --budget, not --budgets");
  check(!flags.has("jobs"), "run evaluates one point set; --jobs applies to sweep/pareto");
  check(!flags.has("interchange"), "--interchange applies to sweep/pareto");
  check(!flags.has("tiles") && !flags.has("unroll"),
        "--tiles/--unroll enumerate axes and apply to sweep/pareto; "
        "run takes an explicit --transforms sequence");
  check(!flags.has("frontier") && !flags.has("per-point"),
        "--frontier/--per-point apply to sweep/pareto");
  std::vector<SpaceKernel> selected = resolve_kernels(flags.get("kernel", ""));
  check(selected.size() == 1, "run takes exactly one kernel");
  if (flags.has("transforms")) {
    std::vector<std::vector<LoopTransform>> sequences =
        resolve_transform_sequences(flags.get("transforms", ""));
    check(sequences.size() == 1, "run applies exactly one transform sequence");
    selected.front().kernel = transform_for_pipeline(
        selected.front().kernel,
        srra::span<const LoopTransform>(sequences.front().data(),
                                        sequences.front().size()));
  }
  const std::vector<Algorithm> algorithms = resolve_algorithms(flags.get("algos", "paper"));
  const std::vector<bool> fetch = resolve_fetch(flags.get("fetch", "on"));
  check(fetch.size() == 1, "run takes --fetch=on or --fetch=off");

  PipelineOptions options;
  options.budget = parse_int(flags.get("budget", "64"), "--budget", 1);
  options.cycles.concurrent_operand_fetch = fetch.front();
  const Format format = parse_format(flags.get("format", "text"));

  if (format == Format::kText) {
    const RefModel model(selected.front().kernel.clone());
    std::vector<DesignPoint> points;
    for (const Algorithm algorithm : algorithms) {
      points.push_back(run_pipeline(model, algorithm, options));
    }
    out << selected.front().name << " at budget " << options.budget
        << " (Virtex XCV1000 model; see DESIGN.md §4-6)\n\n";
    write_design_table(out, selected.front().name, model, points);
    return 0;
  }

  AxisSpec axes;
  axes.kernels = std::move(selected);
  axes.algorithms = algorithms;
  axes.budgets = {options.budget};
  axes.fetch_modes = fetch;
  ExploreOptions explore_options;
  explore_options.pipeline = options;
  write_points_report(out, explore(std::move(axes), explore_options), format);
  return 0;
}

int cmd_sweep(const Flags& flags, std::ostream& out, bool reduce_to_pareto) {
  check(!flags.has("budget"), "sweep/pareto take --budgets, not --budget");
  AxisSpec axes;
  axes.kernels = resolve_kernels(flags.get("kernel", "paper"));
  axes.algorithms = resolve_algorithms(flags.get("algos", "paper"));
  axes.budgets = parse_budget_spec(flags.get("budgets", "8:128"));
  axes.fetch_modes = resolve_fetch(flags.get("fetch", "on"));
  axes.transforms.interchange = flags.has("interchange");
  if (flags.has("tiles")) {
    axes.transforms.tile_sizes = parse_size_list(flags.get("tiles", ""), "--tiles");
  }
  if (flags.has("unroll")) {
    axes.transforms.unroll_factors =
        parse_size_list(flags.get("unroll", ""), "--unroll");
  }
  if (flags.has("transforms")) {
    axes.transforms.sequences =
        resolve_transform_sequences(flags.get("transforms", ""));
  }

  ExploreOptions options;
  options.jobs = flags.has("jobs") ? parse_int(flags.get("jobs", "1"), "--jobs", 0) : 1;
  check(!(flags.has("frontier") && flags.has("per-point")),
        "--frontier and --per-point are mutually exclusive");
  options.frontier = !flags.has("per-point");
  const Format format = parse_format(flags.get("format", "text"));

  const ExploreResult result = explore(std::move(axes), options);
  if (reduce_to_pareto) {
    write_pareto_report(out, result, format);
  } else {
    write_points_report(out, result, format);
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args.front();
  if (command == "--help" || command == "-h" || command == "help") {
    out << kUsage;
    return 0;
  }
  try {
    const Flags flags = parse_flags(args, 1);
    if (command == "list") {
      check(flags.values.empty(), "list takes no flags");
      return cmd_list(out);
    }
    if (command == "run") return cmd_run(flags, out);
    if (command == "sweep") return cmd_sweep(flags, out, /*reduce_to_pareto=*/false);
    if (command == "pareto") return cmd_sweep(flags, out, /*reduce_to_pareto=*/true);
    err << "error: unknown command '" << command << "'\n\n" << kUsage;
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace srra::dse
