#include "dse/cli.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "dse/prune.h"
#include "dse/report.h"
#include "ir/kernel.h"
#include "ir/parser.h"
#include "kernels/kernels.h"
#include "service/client.h"
#include "service/proto.h"
#include "support/error.h"
#include "support/str.h"
#include "support/table.h"

namespace srra::dse {

namespace {

const char kUsage[] =
    "usage: srra <command> [flags]\n"
    "\n"
    "commands:\n"
    "  list     built-in kernels and algorithms\n"
    "  run      evaluate one kernel at one budget (Table-1-style report;\n"
    "           --format=json emits the service's srra-query/v1 object,\n"
    "           an array of them when several algorithms are selected)\n"
    "  sweep    evaluate the full design space, one record per point\n"
    "  pareto   sweep, reduced to Pareto frontiers + best-per-budget\n"
    "  client   query a running srrad daemon, or emit/decode raw frames\n"
    "\n"
    "flags:\n"
    "  --kernel=LIST    built-in names, 'paper', 'all', or a kernel-DSL file\n"
    "                   (run: exactly one; sweep/pareto default: paper)\n"
    "  --algos=LIST     algorithm names, 'paper' (default) or 'all'\n"
    "  --budget=N       register budget for run (default 64)\n"
    "  --budgets=SPEC   budget axis for sweep/pareto: N | a,b,c | lo:hi[:step]\n"
    "                   (default 8:128; lo:hi doubles from lo)\n"
    "  --interchange    also enumerate legal loop-interchange orders\n"
    "  --tiles=LIST     also enumerate loop tiling: every legal Tile(level,\n"
    "                   size) per variant, sizes from LIST (e.g. 4,8)\n"
    "  --unroll=LIST    also enumerate unroll-and-jam: every legal\n"
    "                   UnrollJam(level, factor), factors from LIST\n"
    "  --transforms=SEQ explicit transform sequences in canonical encoding,\n"
    "                   e.g. 'i(1,0,2);t(2,8)' (see DESIGN.md §10); sweep and\n"
    "                   pareto accept several sequences joined with '+',\n"
    "                   run applies exactly one to its kernel\n"
    "  --prune=MODE     sweep/pareto transform-axis search: off (default) =\n"
    "                   exhaustive enumeration; on = analytic bound-guided\n"
    "                   search (DESIGN.md §13) that skips dominated\n"
    "                   candidates; stats = on, plus a pruning summary line\n"
    "  --fetch=MODE     concurrent operand fetch: on (default) | off | both\n"
    "  --jobs=N         evaluation threads (default 1; 0 = all cores)\n"
    "  --format=FMT     text (default) | csv | json\n"
    "  --frontier       sweep/pareto: one all-budget allocation frontier per\n"
    "                   (variant, algorithm), sliced per budget (default)\n"
    "  --per-point      sweep/pareto: run every (algorithm, budget) point\n"
    "                   through its own allocator call (the frontier's\n"
    "                   oracle; output is byte-identical to --frontier)\n"
    "\n"
    "client flags (see README \"Running the service\"):\n"
    "  --socket=PATH    connect to a srrad Unix socket\n"
    "  --tcp=HOST:PORT  connect to a srrad TCP endpoint (PORT alone means\n"
    "                   127.0.0.1)\n"
    "  --emit           write request frames to stdout instead of\n"
    "                   connecting (pipe into `srrad --stdio`)\n"
    "  --decode[=MODE]  read response frames from stdin, print payloads;\n"
    "                   MODE=query prints just each cached query object\n"
    "  --print=query    connected modes: print just each response's cached\n"
    "                   query object (the envelope stripped), so answers\n"
    "                   from different daemons diff byte-identical\n"
    "  --script=FILE    one request per line as key=value tokens, e.g.\n"
    "                   'kernel=fir algo=cpa budget=64', 'kernel=mat\n"
    "                   budgets=8:64', 'probe key=HEX16', 'stats'\n"
    "  --repeat=N       send the request list N times over\n"
    "  --timeout-ms=N   connect/send/receive deadline (default 5000 connect,\n"
    "                   30000 I/O; 0 = wait forever)\n"
    "  --retries=N      reconnect-and-resend attempts after a failed\n"
    "                   roundtrip, with deterministic exponential backoff\n"
    "                   (default 0; retried queries are answered from the\n"
    "                   daemon's store, never recomputed)\n"
    "  one-shot query:  --kernel=NAME|FILE [--transforms=SEQ] [--algo=NAME]\n"
    "                   [--budget=N | --budgets=SPEC] [--fetch=on|off]\n"
    "                   [--probe] [--key=HEX16] [--timing] [--id=TAG],\n"
    "                   or --stats / --health / --shutdown\n";

struct Flags {
  std::map<std::string, std::string> values;
  std::vector<std::string> order;  // for unknown-flag reporting

  bool has(const std::string& name) const { return values.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
};

// Per-command flag vocabularies (unknown flags error instead of being
// silently ignored).
const std::vector<const char*> kExploreFlags = {
    "kernel", "algos", "budget", "budgets", "interchange", "tiles", "unroll",
    "transforms", "prune", "fetch", "jobs", "format", "frontier", "per-point"};
const std::vector<const char*> kClientFlags = {
    "socket", "tcp", "emit", "decode", "print", "script", "repeat", "kernel",
    "transforms", "algo", "budget", "budgets", "fetch", "probe", "key",
    "timing", "id", "stats", "health", "shutdown", "timeout-ms", "retries"};

Flags parse_flags(const std::vector<std::string>& args, std::size_t first,
                  const std::vector<const char*>& known) {
  Flags flags;
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& arg = args[i];
    check(starts_with(arg, "--"), cat("unexpected argument: ", arg));
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos ? eq : eq - 2);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    check(std::find_if(known.begin(), known.end(),
                       [&](const char* k) { return name == k; }) != known.end(),
          cat("unknown flag: --", name));
    check(flags.values.emplace(name, value).second, cat("duplicate flag: --", name));
    flags.order.push_back(name);
  }
  return flags;
}

// Canonical matching key: lower-case, '-' folded to '_'.
std::string canon(std::string_view name) {
  std::string key;
  for (const char c : name) {
    key += c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return key;
}

std::vector<SpaceKernel> builtin_kernels() {
  std::vector<SpaceKernel> all;
  all.push_back({"example", kernels::paper_example()});
  for (kernels::NamedKernel& nk : kernels::all_kernels()) {
    all.push_back({nk.name, std::move(nk.kernel)});
  }
  return all;
}

SpaceKernel load_kernel_file(const std::string& path) {
  std::ifstream in(path);
  check(in.good(), cat("cannot open kernel file: ", path));
  std::ostringstream text;
  text << in.rdbuf();
  Kernel kernel = parse_kernel(text.str());
  std::string name = kernel.name();
  return {std::move(name), std::move(kernel)};
}

// Resolves one --kernel token: built-in name, set name, or DSL file path.
void resolve_kernel(const std::string& token, std::vector<SpaceKernel>& out) {
  std::string key = canon(token);
  if (key == "mmt") key = "mat";  // matrix-matrix multiply, both spellings
  if (key == "paper") {
    for (kernels::NamedKernel& nk : kernels::table1_kernels()) {
      out.push_back({nk.name, std::move(nk.kernel)});
    }
    return;
  }
  if (key == "all") {
    for (SpaceKernel& sk : builtin_kernels()) out.push_back(std::move(sk));
    return;
  }
  for (SpaceKernel& sk : builtin_kernels()) {
    if (canon(sk.name) == key) {
      out.push_back(std::move(sk));
      return;
    }
  }
  if (std::ifstream(token).good()) {
    out.push_back(load_kernel_file(token));
    return;
  }
  fail(cat("unknown kernel '", token,
           "' (want example, fir, dec_fir, mat, imi, pat, bic, conv2d, matvec, "
           "paper, all, or a kernel-DSL file path)"));
}

std::vector<SpaceKernel> resolve_kernels(const std::string& list) {
  std::vector<SpaceKernel> out;
  for (const std::string& token : split(list, ',')) {
    check(!trim(token).empty(), cat("empty kernel name in '", list, "'"));
    resolve_kernel(std::string(trim(token)), out);
  }
  check(!out.empty(), "no kernels selected");
  return out;
}

std::vector<Algorithm> resolve_algorithms(const std::string& list) {
  const std::string key = canon(list);
  if (key == "paper") return paper_variants();
  if (key == "all") return all_algorithms();
  std::vector<Algorithm> algorithms;
  for (const std::string& token : split(list, ',')) {
    algorithms.push_back(parse_algorithm(std::string(trim(token))));
  }
  check(!algorithms.empty(), "no algorithms selected");
  return algorithms;
}

// Parses a --transforms value: canonical transform sequences joined with
// '+' (';' already separates the transforms *inside* one sequence).
std::vector<std::vector<LoopTransform>> resolve_transform_sequences(
    const std::string& value) {
  std::vector<std::vector<LoopTransform>> sequences;
  for (const std::string& token : split(value, '+')) {
    std::vector<LoopTransform> sequence = parse_transforms(token);
    check(!sequence.empty(), cat("empty transform sequence in '", value, "'"));
    sequences.push_back(std::move(sequence));
  }
  return sequences;
}

std::vector<bool> resolve_fetch(const std::string& mode) {
  if (mode == "on") return {true};
  if (mode == "off") return {false};
  if (mode == "both") return {true, false};
  fail(cat("bad --fetch value: ", mode, " (want on|off|both)"));
}

int parse_int(const std::string& text, const char* what, int min_value) {
  // The length bound keeps std::stoi from throwing std::out_of_range,
  // which would escape run_cli's srra::Error handler and abort.
  check(!text.empty() && text.size() <= 7 &&
            text.find_first_not_of("0123456789") == std::string::npos,
        cat("bad ", what, " value: ", text));
  const int value = std::stoi(text);
  check(value >= min_value,
        cat("bad ", what, " value: ", text, " (must be >= ", min_value, ")"));
  return value;
}

int cmd_list(std::ostream& out) {
  out << "Built-in kernels:\n";
  Table kernels_table({"Name", "Depth", "Loops", "Description"});
  std::vector<SpaceKernel> builtins = builtin_kernels();
  std::map<std::string, std::string> descriptions;
  for (const kernels::NamedKernel& nk : kernels::all_kernels()) {
    descriptions[nk.name] = nk.description;
  }
  descriptions["example"] = "Figure 1 worked example";
  for (const SpaceKernel& sk : builtins) {
    // find(), not operator[]: a kernel without a description entry should
    // say so, not silently grow the map with an empty string.
    const auto description = descriptions.find(sk.name);
    kernels_table.add_row({sk.name, std::to_string(sk.kernel.depth()),
                           cat("(", join(sk.kernel.loop_names(), ","), ")"),
                           description != descriptions.end() ? description->second
                                                             : "(no description)"});
  }
  kernels_table.set_align(1, Align::kRight);
  kernels_table.render(out);

  out << "\nAlgorithms:\n";
  Table algorithms_table({"Name", "Spellings"});
  algorithms_table.add_row({"feasibility", "feasibility"});
  algorithms_table.add_row({"FR-RA", "fr, FR-RA"});
  algorithms_table.add_row({"PR-RA", "pr, PR-RA"});
  algorithms_table.add_row({"CPA-RA", "cpa, CPA-RA"});
  algorithms_table.add_row({"KS-RA", "knapsack, KS-RA"});
  algorithms_table.add_row({"DP-RA", "dp, optimal, optimal-dp, DP-RA"});
  algorithms_table.add_row({"LS-RA", "ls, linear-scan, LS-RA"});
  algorithms_table.add_row({"BB-RA", "bnb, bb, optimal-bnb, BB-RA"});
  algorithms_table.render(out);
  return 0;
}

int cmd_run(const Flags& flags, std::ostream& out) {
  check(flags.has("kernel"), "run needs --kernel=NAME|FILE");
  check(!flags.has("budgets"), "run takes --budget, not --budgets");
  check(!flags.has("jobs"), "run evaluates one point set; --jobs applies to sweep/pareto");
  check(!flags.has("interchange"), "--interchange applies to sweep/pareto");
  check(!flags.has("tiles") && !flags.has("unroll"),
        "--tiles/--unroll enumerate axes and apply to sweep/pareto; "
        "run takes an explicit --transforms sequence");
  check(!flags.has("frontier") && !flags.has("per-point"),
        "--frontier/--per-point apply to sweep/pareto");
  check(!flags.has("prune"), "--prune applies to sweep/pareto");
  std::vector<SpaceKernel> selected = resolve_kernels(flags.get("kernel", ""));
  check(selected.size() == 1, "run takes exactly one kernel");
  std::string transforms_encoding;  // canonical, for the JSON report header
  if (flags.has("transforms")) {
    std::vector<std::vector<LoopTransform>> sequences =
        resolve_transform_sequences(flags.get("transforms", ""));
    check(sequences.size() == 1, "run applies exactly one transform sequence");
    const srra::span<const LoopTransform> sequence(sequences.front().data(),
                                                   sequences.front().size());
    transforms_encoding = to_string(sequence);
    selected.front().kernel = transform_for_pipeline(selected.front().kernel, sequence);
  }
  const std::vector<Algorithm> algorithms = resolve_algorithms(flags.get("algos", "paper"));
  const std::vector<bool> fetch = resolve_fetch(flags.get("fetch", "on"));
  check(fetch.size() == 1, "run takes --fetch=on or --fetch=off");

  PipelineOptions options;
  options.budget = parse_int(flags.get("budget", "64"), "--budget", 1);
  options.cycles.concurrent_operand_fetch = fetch.front();
  const Format format = parse_format(flags.get("format", "text"));

  if (format == Format::kText) {
    const RefModel model(selected.front().kernel.clone());
    std::vector<DesignPoint> points;
    for (const Algorithm algorithm : algorithms) {
      points.push_back(run_pipeline(model, algorithm, options));
    }
    out << selected.front().name << " at budget " << options.budget
        << " (Virtex XCV1000 model; see DESIGN.md §4-6)\n\n";
    write_design_table(out, selected.front().name, model, points);
    return 0;
  }

  if (format == Format::kJson) {
    // The service's srra-query/v1 report, through the service's own
    // evaluate/serialize code — `srra run --format=json` and a srrad
    // response's "query" member are byte-identical by construction
    // (test_service.cc pins this).
    const SpaceKernel& sk = selected.front();
    const std::uint64_t hash = structural_hash(sk.kernel);
    const RefModel model(sk.kernel.clone());
    JsonWriter json(out);
    if (algorithms.size() > 1) json.begin_array();
    for (const Algorithm algorithm : algorithms) {
      service::QueryInput input;
      input.kernel_name = sk.name;
      input.transforms = transforms_encoding;
      input.kernel_hash = hash;
      input.algorithm = algorithm;
      input.fetch = fetch.front();
      input.budget = options.budget;
      service::write_query_report(json, service::evaluate_query(model, input));
    }
    if (algorithms.size() > 1) json.end_array();
    return 0;
  }

  AxisSpec axes;
  axes.kernels = std::move(selected);
  axes.algorithms = algorithms;
  axes.budgets = {options.budget};
  axes.fetch_modes = fetch;
  ExploreOptions explore_options;
  explore_options.pipeline = options;
  write_points_report(out, explore(std::move(axes), explore_options), format);
  return 0;
}

int cmd_sweep(const Flags& flags, std::ostream& out, bool reduce_to_pareto) {
  check(!flags.has("budget"), "sweep/pareto take --budgets, not --budget");
  const std::string prune_mode = flags.get("prune", "off");
  check(prune_mode == "on" || prune_mode == "off" || prune_mode == "stats",
        cat("bad --prune value: ", prune_mode, " (want on|off|stats)"));
  AxisSpec axes;
  axes.kernels = resolve_kernels(flags.get("kernel", "paper"));
  axes.algorithms = resolve_algorithms(flags.get("algos", "paper"));
  axes.budgets = parse_budget_spec(flags.get("budgets", "8:128"));
  axes.fetch_modes = resolve_fetch(flags.get("fetch", "on"));
  axes.transforms.interchange = flags.has("interchange");
  if (flags.has("tiles")) {
    axes.transforms.tile_sizes = parse_size_list(flags.get("tiles", ""), "--tiles");
  }
  if (flags.has("unroll")) {
    axes.transforms.unroll_factors =
        parse_size_list(flags.get("unroll", ""), "--unroll");
  }
  if (flags.has("transforms")) {
    axes.transforms.sequences =
        resolve_transform_sequences(flags.get("transforms", ""));
  }

  ExploreOptions options;
  options.jobs = flags.has("jobs") ? parse_int(flags.get("jobs", "1"), "--jobs", 0) : 1;
  check(!(flags.has("frontier") && flags.has("per-point")),
        "--frontier and --per-point are mutually exclusive");
  options.frontier = !flags.has("per-point");
  const Format format = parse_format(flags.get("format", "text"));

  const ExploreResult result = prune_mode == "off"
                                   ? explore(std::move(axes), options)
                                   : explore_guided(std::move(axes), options);
  if (prune_mode == "stats") {
    const SpaceStats& stats = result.space.stats;
    const double share =
        stats.variants_generated > 0
            ? 100.0 * static_cast<double>(stats.variants_pruned) /
                  static_cast<double>(stats.variants_generated)
            : 0.0;
    out << "Prune: generated " << stats.variants_generated << ", pruned "
        << stats.variants_pruned << " (" << to_fixed(share, 1)
        << "%), evaluated " << stats.variants_evaluated << "\n\n";
  }
  if (reduce_to_pareto) {
    write_pareto_report(out, result, format);
  } else {
    write_points_report(out, result, format);
  }
  return 0;
}

// ------------------------------------------------------------------- client

// Resolves a client --kernel/kernel= value: a readable file becomes its DSL
// text (the daemon never reads client-side paths), anything else passes
// through as a builtin name or inline DSL.
std::string resolve_kernel_text(const std::string& token) {
  std::ifstream in(token);
  if (!in.good()) return token;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Builds one request payload from key=value tokens (the client flags and
// --script lines share this vocabulary: kernel, transforms, algo, budget,
// budgets, fetch, probe, key, timing, id, stats, shutdown).
std::string client_request(const std::map<std::string, std::string>& tokens) {
  for (const auto& [name, value] : tokens) {
    static const char* known[] = {"kernel", "transforms", "algo",   "budget",
                                  "budgets", "fetch",     "probe",  "key",
                                  "timing",  "id",        "stats",  "health",
                                  "shutdown"};
    check(std::find_if(std::begin(known), std::end(known),
                       [&, n = name](const char* k) { return n == k; }) != std::end(known),
          cat("unknown request token: ", name, (value.empty() ? "" : "="), value));
  }
  const auto has = [&](const char* k) { return tokens.count(k) != 0; };
  const auto get = [&](const char* k) { return tokens.at(k); };

  JsonValue request = JsonValue::make_object();
  const int admin_ops = static_cast<int>(has("stats")) + static_cast<int>(has("health")) +
                        static_cast<int>(has("shutdown"));
  check(admin_ops <= 1, "stats, health and shutdown are separate requests");
  if (admin_ops == 1) {
    check(!has("kernel") && !has("key"),
          "stats/health/shutdown requests take no query tokens");
    request.set("op", JsonValue::make_string(has("stats")    ? "stats"
                                             : has("health") ? "health"
                                                             : "shutdown"));
    if (has("id")) request.set("id", JsonValue::make_string(get("id")));
    return request.to_string();
  }

  if (has("id")) request.set("id", JsonValue::make_string(get("id")));
  if (has("key")) {
    check(!has("kernel"), "kernel and key are mutually exclusive");
    request.set("key", JsonValue::make_string(get("key")));
    request.set("probe", JsonValue::make_bool(true));
  } else {
    check(has("kernel"), "a query needs kernel=NAME|FILE (or key=HEX16)");
    request.set("kernel", JsonValue::make_string(resolve_kernel_text(get("kernel"))));
    if (has("transforms") && !get("transforms").empty()) {
      request.set("transforms", JsonValue::make_string(get("transforms")));
    }
    if (has("algo")) request.set("algorithm", JsonValue::make_string(get("algo")));
    check(!(has("budget") && has("budgets")), "budget and budgets are mutually exclusive");
    if (has("budgets")) {
      request.set("mode", JsonValue::make_string("frontier"));
      request.set("budgets", JsonValue::make_string(get("budgets")));
    } else if (has("budget")) {
      request.set("budget",
                  JsonValue::make_int(parse_int(get("budget"), "budget", 1)));
    }
    if (has("fetch")) {
      const std::string mode = get("fetch");
      check(mode == "on" || mode == "off", cat("bad fetch value: ", mode, " (want on|off)"));
      if (mode == "off") request.set("fetch", JsonValue::make_bool(false));
    }
    if (has("probe")) request.set("probe", JsonValue::make_bool(true));
  }
  if (has("timing")) request.set("timing", JsonValue::make_bool(true));
  return request.to_string();
}

// Decode mode: response frames in on stdin, payloads out. MODE=query
// prints just each cached query object — the envelope (cache status,
// timing) stripped away, so two service passes over the same queries
// compare byte-identical (the CI smoke test diffs exactly this).
int client_decode(const std::string& mode, std::ostream& out) {
  check(mode.empty() || mode == "full" || mode == "query",
        cat("bad --decode value: ", mode, " (want full|query)"));
  for (;;) {
    const std::optional<std::string> frame = service::read_frame(std::cin);
    if (!frame.has_value()) return 0;
    if (mode == "query") {
      const JsonValue envelope = parse_json(*frame);
      if (const JsonValue* query = envelope.find("query")) {
        out << query->to_string() << "\n";
        continue;
      }
    }
    out << *frame;  // payloads are newline-terminated documents already
  }
}

int cmd_client(const Flags& flags, std::ostream& out) {
  const int modes = static_cast<int>(flags.has("socket")) + static_cast<int>(flags.has("tcp")) +
                    static_cast<int>(flags.has("emit")) + static_cast<int>(flags.has("decode"));
  check(modes == 1, "client needs exactly one of --socket, --tcp, --emit, --decode");
  if (flags.has("decode")) return client_decode(flags.get("decode", ""), out);

  // Assemble the request list: --script lines, or one request from flags.
  std::vector<std::string> requests;
  if (flags.has("script")) {
    const std::string path = flags.get("script", "");
    std::ifstream in(path);
    check(in.good(), cat("cannot open script file: ", path));
    std::string line;
    while (std::getline(in, line)) {
      const std::string_view body = trim(line);
      if (body.empty() || body.front() == '#') continue;
      std::map<std::string, std::string> tokens;
      std::istringstream fields{std::string(body)};
      std::string token;
      while (fields >> token) {
        const std::size_t eq = token.find('=');
        const std::string name = token.substr(0, eq);
        const std::string value = eq == std::string::npos ? "" : token.substr(eq + 1);
        check(tokens.emplace(name, value).second,
              cat("duplicate request token '", name, "' in: ", std::string(body)));
      }
      requests.push_back(client_request(tokens));
    }
  } else {
    std::map<std::string, std::string> tokens;
    for (const char* name : {"kernel", "transforms", "budget", "budgets", "fetch",
                             "probe", "key", "timing", "id", "stats", "health",
                             "shutdown"}) {
      if (flags.has(name)) tokens.emplace(name, flags.get(name, ""));
    }
    if (flags.has("algo")) tokens.emplace("algo", flags.get("algo", ""));
    requests.push_back(client_request(tokens));
  }
  const int repeat =
      flags.has("repeat") ? parse_int(flags.get("repeat", "1"), "--repeat", 1) : 1;
  const std::size_t unique = requests.size();
  for (int r = 1; r < repeat; ++r) {
    for (std::size_t i = 0; i < unique; ++i) requests.push_back(requests[i]);
  }

  if (flags.has("emit")) {
    for (const std::string& request : requests) service::write_frame(out, request);
    return 0;
  }

  service::ClientOptions client_options;
  if (flags.has("timeout-ms")) {
    const int timeout = parse_int(flags.get("timeout-ms", ""), "--timeout-ms", 0);
    client_options.connect_timeout_ms = timeout;
    client_options.io_timeout_ms = timeout;
  }
  if (flags.has("retries")) {
    client_options.retries = parse_int(flags.get("retries", ""), "--retries", 0);
  }
  service::Client client = [&] {
    if (flags.has("socket")) {
      return service::Client::connect_unix(flags.get("socket", ""), client_options);
    }
    const std::string endpoint = flags.get("tcp", "");
    const std::size_t colon = endpoint.rfind(':');
    const std::string host = colon == std::string::npos ? "127.0.0.1" : endpoint.substr(0, colon);
    const std::string port = colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
    return service::Client::connect_tcp(host, parse_int(port, "--tcp port", 1),
                                        client_options);
  }();

  const std::string print_mode = flags.get("print", "");
  check(print_mode.empty() || print_mode == "query",
        cat("bad --print value: ", print_mode, " (want query)"));
  bool all_ok = true;
  for (const std::string& response : client.roundtrip_batch(requests)) {
    const JsonValue envelope = parse_json(response);
    const JsonValue* ok = envelope.find("ok");
    if (ok == nullptr || !ok->as_bool()) all_ok = false;
    if (print_mode == "query") {
      // Envelope stripped: the per-key cached object is a pure function of
      // the cache key, so output diffs byte-identical across daemons.
      if (const JsonValue* query = envelope.find("query")) {
        out << query->to_string() << "\n";
      } else {
        out << response;
      }
      continue;
    }
    out << response;
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args.front();
  if (command == "--help" || command == "-h" || command == "help") {
    out << kUsage;
    return 0;
  }
  try {
    const Flags flags =
        parse_flags(args, 1, command == "client" ? kClientFlags : kExploreFlags);
    if (command == "list") {
      check(flags.values.empty(), "list takes no flags");
      return cmd_list(out);
    }
    if (command == "run") return cmd_run(flags, out);
    if (command == "sweep") return cmd_sweep(flags, out, /*reduce_to_pareto=*/false);
    if (command == "pareto") return cmd_sweep(flags, out, /*reduce_to_pareto=*/true);
    if (command == "client") return cmd_client(flags, out);
    err << "error: unknown command '" << command << "'\n\n" << kUsage;
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace srra::dse
