// Analytic transform-space pruning (DESIGN.md §13): guided enumeration of
// the loop-transform axis that derives, for every candidate transform
// sequence, a *sound lower bound curve* on (registers, execution cycles)
// directly from the affine access matrices — no iteration-space walk, no
// RefModel construction — and skips materializing and evaluating any
// candidate whose whole curve is strictly dominated by an already-measured
// design point of the same kernel.
//
// The candidate state is abstract: per reference group, the per-level
// linearized element shift (analysis/reuse.h access_shift_profile), which
// interchange permutes, tiling splits (tile level shifts by size x the old
// stride, point level keeps it) and unroll-and-jam scales — so walking the
// whole generated cross product costs microseconds per candidate instead of
// a kernel rewrite plus a full analysis. Only bound-surviving candidates
// are materialized (ir/transform.h apply_peeled), legality-checked with the
// real is_safe, deduplicated by structural hash, and evaluated in waves
// through the ordinary dse/explore engine.
//
// Soundness of the bound (why pruning cannot change the Pareto frontier):
//
//  * Floor. In the paper-faithful FSM cycle model every iteration costs
//    loop_overhead + compute critical path + that iteration's memory
//    cycles, so exec_cycles >= iterations x (overhead + L0) summed over the
//    nest pieces, where L0 is the empty-memory-profile schedule length of
//    the *source* body — a lower bound for every rewrite because tiling and
//    interchange keep the body and unroll-and-jam replicates it (a DFG that
//    contains the source body as a subgraph cannot schedule shorter).
//  * Memory corner. A group whose element moves at the (effective)
//    innermost level cannot hold anything with one register under the
//    default window model (no carrying level fits: the inner footprint is
//    >= the innermost trip), so each such group pays at least one steady
//    RAM access per iteration while it owns a single register. With total
//    register count r and G groups, at most r - G groups own more than one.
//  * Savings ramp. Extra registers on one group eliminate its per-iteration
//    charge no faster than one save per register per d iterations, where d
//    is a lower bound on the group's element-reuse distance solved from the
//    shift profile (deepest invariant level's inner trip product, or the
//    minimal pairwise cancellation of two moving levels); a small slack
//    per min-trip absorbs the peeled window-boundary accounting. The bound
//    curve relaxes the integer allocation to the continuous greedy optimum,
//    which only lowers it.
//
// A candidate is pruned only when some measured point beats its curve
// *strictly* at every register count it could realize, so a pruned
// candidate cannot tie, let alone enter, the registers-vs-cycles frontier:
// guided and exhaustive sweeps produce identical frontiers at equal caps
// (pinned in tests/test_prune.cc). Candidate counts stay honest through
// SpaceStats — generated = pruned + evaluated, never a silent cap.
#pragma once

#include <cstdint>
#include <vector>

#include "dse/explore.h"
#include "dse/space.h"

namespace srra::dse {

/// Guided-search knobs.
struct PruneOptions {
  /// Candidates materialized and evaluated per wave; measured results of
  /// each wave feed the pruning pool of the next. Fixed (not adaptive) so
  /// runs are deterministic.
  int wave = 16;
  /// Hard cap on evaluated variants per kernel after pruning; candidates
  /// past it count as pruned. 0 = unlimited — the identity mode whose
  /// frontier provably equals the exhaustive sweep's.
  int max_evaluated_per_kernel = 0;
};

/// One candidate's analytic lower-bound curve: a convex, non-increasing
/// step-down from the memory-bound corner at `min_regs` to the compute
/// floor. Exposed for the soundness fuzz suite (tests/test_prune.cc).
struct BoundCurve {
  std::int64_t min_regs = 1;      ///< abstract feasibility floor (group count)
  std::int64_t floor_cycles = 0;  ///< iterations x (overhead + L0), all pieces

  /// One charged reference group of the main piece.
  struct Item {
    double read_rate = 0;   ///< per-iteration read cycles while un-held
    double write_rate = 0;  ///< per-iteration write cycles while un-held
    int array = 0;          ///< RAM block (reads of one block serialize)
    double distance = 0;    ///< reuse-distance lower bound, iterations; <= 0 = none
    double steady = 1;      ///< charged fraction after boundary slack
  };
  std::vector<Item> items;
  std::int64_t main_iterations = 0;

  /// Lower bound on exec_cycles of any feasible design of the candidate
  /// whose allocation totals `regs` registers (clamped to >= min_regs).
  /// Requires finalize() — bound_curve() and the guided search call it;
  /// hand-built curves must call it after filling `items`.
  std::int64_t at(std::int64_t regs) const;

  /// Precomputes the per-array greedy ramps at() walks. at() is called many
  /// times per curve (once per measured staircase range during dominance
  /// checks), so the sort-by-slope happens here, once, allocation-free at
  /// query time.
  void finalize();

 private:
  struct Ramp {
    double slope = 0;  ///< per-iteration cycles one extra register removes
    double cap = 0;    ///< registers that exhaust this item's charge
  };
  struct ArrayPool {
    double total = 0;  ///< per-iteration charge with minimal registers
    std::vector<Ramp> ramps;  ///< slope-descending
  };
  std::vector<ArrayPool> pools_;
};

/// Analytic bound for an explicit transform sequence on `kernel`, computed
/// without materializing the rewrite. Exposed for the soundness suite;
/// explore_guided derives the same curves during abstract enumeration.
/// `cycles` supplies the latency model and overhead; when fsm_serial_memory
/// is off the curve degrades to the compute floor (memory overlaps).
BoundCurve bound_curve(const Kernel& kernel, srra::span<const LoopTransform> transforms,
                       const CycleOptions& cycles);

/// Guided counterpart of explore(enumerate_space(axes), options): abstract-
/// enumerates the same transform cross product per kernel, scores every
/// candidate by its bound curve, and evaluates waves of the most promising
/// survivors, pruning candidates strictly dominated by measured points.
/// Stats land in result.space.stats (generated = pruned + evaluated).
/// Explicit illegal sequences throw exactly like enumerate_space.
ExploreResult explore_guided(AxisSpec axes, const ExploreOptions& options,
                             const PruneOptions& prune = {});

}  // namespace srra::dse
