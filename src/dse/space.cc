#include "dse/space.h"

#include <algorithm>
#include <numeric>

#include "ir/transform.h"
#include "support/error.h"
#include "support/str.h"

namespace srra::dse {

namespace {

// Returns `base` with its loops rearranged so that new level l holds the
// original level perm[l], composed from pairwise interchanges.
Kernel apply_order(const Kernel& base, const std::vector<int>& perm) {
  Kernel kernel = base.clone();
  std::vector<int> current(perm.size());
  std::iota(current.begin(), current.end(), 0);  // current[l] = original level at l
  for (int pos = 0; pos < static_cast<int>(perm.size()); ++pos) {
    if (current[pos] == perm[pos]) continue;
    const auto it = std::find(current.begin() + pos, current.end(), perm[pos]);
    const int src = static_cast<int>(it - current.begin());
    kernel = interchange_loops(kernel, pos, src);
    std::swap(current[pos], current[src]);
  }
  return kernel;
}

std::string order_label(const Kernel& base, const std::vector<int>& perm) {
  const std::vector<std::string> names = base.loop_names();
  std::vector<std::string> parts;
  parts.reserve(perm.size());
  for (const int level : perm) parts.push_back(names[static_cast<std::size_t>(level)]);
  return cat("(", join(parts, ","), ")");
}

// Budgets above this are nonsense for any device the hw model knows; the
// bound also keeps the doubling ladder far from int64 overflow.
constexpr std::int64_t kMaxBudget = 1'000'000;

std::int64_t parse_positive(std::string_view token, const std::string& spec) {
  const std::string text(trim(token));
  check(!text.empty() && text.size() <= 7 &&
            text.find_first_not_of("0123456789") == std::string::npos,
        cat("bad budget spec '", spec, "': '", text,
            "' is not a positive integer <= ", kMaxBudget));
  const std::int64_t value = std::stoll(text);
  check(value > 0 && value <= kMaxBudget,
        cat("bad budget spec '", spec, "': budgets must be in [1, ", kMaxBudget, "]"));
  return value;
}

}  // namespace

std::vector<std::vector<int>> EnumeratedSpace::points_by_variant() const {
  std::vector<std::vector<int>> groups(variants.size());
  for (const SpacePoint& point : points) {
    groups[static_cast<std::size_t>(point.variant)].push_back(point.index);
  }
  return groups;
}

EnumeratedSpace enumerate_space(AxisSpec axes) {
  check(!axes.kernels.empty(), "enumerate_space: no kernels");
  check(!axes.algorithms.empty(), "enumerate_space: no algorithms");
  check(!axes.budgets.empty(), "enumerate_space: no budgets");
  check(!axes.fetch_modes.empty(), "enumerate_space: no fetch modes");

  EnumeratedSpace space;
  for (SpaceKernel& sk : axes.kernels) {
    const int depth = sk.kernel.depth();
    std::vector<int> perm(static_cast<std::size_t>(depth));
    std::iota(perm.begin(), perm.end(), 0);
    const bool permute = axes.interchange && depth > 1 &&
                         depth <= axes.max_interchange_depth &&
                         interchange_is_safe(sk.kernel);
    do {
      Variant variant;
      variant.index = static_cast<int>(space.variants.size());
      variant.kernel_name = sk.name;
      variant.order = order_label(sk.kernel, perm);
      const bool identity = std::is_sorted(perm.begin(), perm.end());
      variant.kernel = identity ? sk.kernel.clone() : apply_order(sk.kernel, perm);
      space.variants.push_back(std::move(variant));
    } while (permute && std::next_permutation(perm.begin(), perm.end()));
  }

  for (const Variant& variant : space.variants) {
    for (const bool fetch : axes.fetch_modes) {
      for (const Algorithm algorithm : axes.algorithms) {
        for (const std::int64_t budget : axes.budgets) {
          SpacePoint point;
          point.index = static_cast<int>(space.points.size());
          point.variant = variant.index;
          point.algorithm = algorithm;
          point.budget = budget;
          point.concurrent_fetch = fetch;
          space.points.push_back(point);
        }
      }
    }
  }
  return space;
}

std::vector<std::int64_t> parse_budget_spec(const std::string& spec) {
  std::vector<std::int64_t> budgets;
  if (spec.find(':') != std::string::npos) {
    const std::vector<std::string> parts = split(spec, ':');
    check(parts.size() == 2 || parts.size() == 3,
          cat("bad budget spec '", spec, "': want lo:hi or lo:hi:step"));
    const std::int64_t lo = parse_positive(parts[0], spec);
    const std::int64_t hi = parse_positive(parts[1], spec);
    check(lo <= hi, cat("bad budget spec '", spec, "': lo > hi"));
    if (parts.size() == 3) {
      const std::int64_t step = parse_positive(parts[2], spec);
      for (std::int64_t b = lo; b <= hi; b += step) budgets.push_back(b);
    } else {
      for (std::int64_t b = lo; b <= hi; b *= 2) budgets.push_back(b);
    }
    if (budgets.back() != hi) budgets.push_back(hi);
  } else {
    for (const std::string& token : split(spec, ',')) {
      budgets.push_back(parse_positive(token, spec));
    }
  }
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  return budgets;
}

}  // namespace srra::dse
