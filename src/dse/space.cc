#include "dse/space.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "support/error.h"
#include "support/str.h"

namespace srra::dse {

namespace {

std::string order_label(const Kernel& kernel) {
  return cat("(", join(kernel.loop_names(), ","), ")");
}

// Budgets above this are nonsense for any device the hw model knows; the
// bound also keeps the doubling ladder far from int64 overflow.
constexpr std::int64_t kMaxBudget = 1'000'000;

std::int64_t parse_positive(std::string_view token, const std::string& spec) {
  const std::string text(trim(token));
  check(!text.empty() && text.size() <= 7 &&
            text.find_first_not_of("0123456789") == std::string::npos,
        cat("bad budget spec '", spec, "': '", text,
            "' is not a positive integer <= ", kMaxBudget));
  const std::int64_t value = std::stoll(text);
  check(value > 0 && value <= kMaxBudget,
        cat("bad budget spec '", spec, "': budgets must be in [1, ", kMaxBudget, "]"));
  return value;
}

// Structural fingerprint of a peeled nest: the main kernel's hash mixed
// with every epilogue's (two variants are duplicates only when every piece
// matches).
std::uint64_t nest_hash(const PeeledNest& nest) {
  std::uint64_t h = structural_hash(nest.main);
  for (const Kernel& epilogue : nest.epilogues) {
    h = h * 1099511628211ull ^ structural_hash(epilogue);
  }
  return h;
}

PeeledNest clone_nest(const PeeledNest& nest) {
  PeeledNest out;
  out.main = nest.main.clone();
  out.epilogues.reserve(nest.epilogues.size());
  for (const Kernel& epilogue : nest.epilogues) out.epilogues.push_back(epilogue.clone());
  return out;
}

// Enumerates the transform axis of one kernel (see TransformSpec): the
// source variant, the explicit sequences, then the generated cross product
// permutations x tile stacks x unroll factors, deduplicated by structural
// hash and capped — but never silently: candidates past the cap (and
// duplicates) keep counting into space.stats. Deterministic: purely a
// function of the kernel and the spec.
class VariantEnumerator {
 public:
  VariantEnumerator(EnumeratedSpace& space, const TransformSpec& spec,
                    const std::string& kernel_name, const Kernel& base)
      : space_(space), spec_(spec), kernel_name_(kernel_name), base_(base) {}

  void run() {
    add({base_.clone(), {}}, {});  // the source variant always enumerates first
    // Explicit sequences: validated first (the API contract promises a
    // throw for an illegal sequence, never a silent skip — even once the
    // variant cap is reached), then applied with remainder peeling.
    for (const std::vector<LoopTransform>& sequence : spec_.sequences) {
      const srra::span<const LoopTransform> seq(sequence.data(), sequence.size());
      check(is_safe(base_, seq), cat("transform sequence '", to_string(seq),
                                     "' is illegal for kernel ", kernel_name_));
      add(apply_peeled(base_, seq), sequence);
    }

    const int depth = base_.depth();
    const bool permute = spec_.interchange && depth > 1 &&
                         depth <= spec_.max_interchange_depth && reorder_is_safe(base_);
    std::vector<int> perm(static_cast<std::size_t>(depth));
    std::iota(perm.begin(), perm.end(), 0);
    do {
      const bool identity = std::is_sorted(perm.begin(), perm.end());
      if (identity) {
        expand({base_.clone(), {}}, {}, /*add_bare=*/false, spec_.tile_depth);
      } else {
        const std::vector<LoopTransform> prefix{LoopTransform::interchange(perm)};
        expand({apply_transform(base_, prefix.front()), {}}, prefix,
               /*add_bare=*/true, spec_.tile_depth);
      }
    } while (permute && std::next_permutation(perm.begin(), perm.end()));
  }

 private:
  // One (possibly permuted, possibly tiled) nest: the bare variant (when
  // requested), its unroll-and-jam options, then — while tile layers
  // remain — every legal Tile{level, size} expanded recursively, so
  // tile_depth > 1 stacks tiles on tiles.
  void expand(const PeeledNest& nest, const std::vector<LoopTransform>& prefix,
              bool add_bare, int tiles_left) {
    if (add_bare) add(clone_nest(nest), prefix);
    add_unrolls(nest, prefix);
    if (tiles_left <= 0) return;
    for (int level = 0; level < nest.main.depth(); ++level) {
      const std::int64_t trip = nest.main.loop(level).trip_count();
      for (const std::int64_t size : spec_.tile_sizes) {
        if (size < 2 || size >= trip) continue;
        const LoopTransform t = LoopTransform::tile(level, size);
        // Full tiles are always legal; peeled ones check the level-0 /
        // reorder condition (ir/transform.h).
        if (trip % size != 0 && !is_safe(nest.main, t)) continue;
        std::vector<LoopTransform> sequence = prefix;
        sequence.push_back(t);
        PeeledNest tiled = apply_peeled(nest.main, srra::span<const LoopTransform>(&t, 1));
        for (std::size_t e = 0; e < nest.epilogues.size(); ++e) {
          tiled.epilogues.insert(tiled.epilogues.begin() + static_cast<std::ptrdiff_t>(e),
                                 nest.epilogues[e].clone());
        }
        expand(tiled, sequence, /*add_bare=*/true, tiles_left - 1);
      }
    }
  }

  // Every legal UnrollJam{level, factor} on top of the nest's main piece
  // (epilogues are never unrolled — they execute after the whole main
  // range, so a main-only unroll-and-jam cannot observe them).
  void add_unrolls(const PeeledNest& nest, const std::vector<LoopTransform>& prefix) {
    for (int level = 0; level < nest.main.depth(); ++level) {
      for (const std::int64_t factor : spec_.unroll_factors) {
        const LoopTransform t = LoopTransform::unroll_jam(level, factor);
        if (!is_safe(nest.main, t)) continue;
        std::vector<LoopTransform> sequence = prefix;
        sequence.push_back(t);
        PeeledNest unrolled = clone_nest(nest);
        unrolled.main = apply_transform(unrolled.main, t);
        add(std::move(unrolled), sequence);
      }
    }
  }

  bool full() const { return added_ >= spec_.max_variants_per_kernel; }

  void add(PeeledNest nest, std::vector<LoopTransform> transforms) {
    ++space_.stats.variants_generated;
    if (full() || !seen_.insert(nest_hash(nest)).second) {
      ++space_.stats.variants_pruned;
      return;
    }
    Variant variant;
    variant.index = static_cast<int>(space_.variants.size());
    variant.kernel_name = kernel_name_;
    variant.order = order_label(nest.main);
    variant.encoding = to_string(
        srra::span<const LoopTransform>(transforms.data(), transforms.size()));
    variant.transforms = std::move(transforms);
    variant.kernel = std::move(nest.main);
    variant.epilogues = std::move(nest.epilogues);
    space_.variants.push_back(std::move(variant));
    ++space_.stats.variants_evaluated;
    ++added_;
  }

  EnumeratedSpace& space_;
  const TransformSpec& spec_;
  const std::string& kernel_name_;
  const Kernel& base_;
  std::unordered_set<std::uint64_t> seen_;
  int added_ = 0;
};

}  // namespace

std::vector<std::vector<int>> EnumeratedSpace::points_by_variant() const {
  std::vector<std::vector<int>> groups(variants.size());
  for (const SpacePoint& point : points) {
    groups[static_cast<std::size_t>(point.variant)].push_back(point.index);
  }
  return groups;
}

EnumeratedSpace enumerate_space(AxisSpec axes) {
  check(!axes.kernels.empty(), "enumerate_space: no kernels");
  check(!axes.algorithms.empty(), "enumerate_space: no algorithms");
  check(!axes.budgets.empty(), "enumerate_space: no budgets");
  check(!axes.fetch_modes.empty(), "enumerate_space: no fetch modes");
  check(axes.transforms.max_variants_per_kernel >= 1,
        "enumerate_space: max_variants_per_kernel must be at least 1");

  EnumeratedSpace space;
  for (const SpaceKernel& sk : axes.kernels) {
    VariantEnumerator(space, axes.transforms, sk.name, sk.kernel).run();
  }

  for (const Variant& variant : space.variants) {
    for (const bool fetch : axes.fetch_modes) {
      for (const Algorithm algorithm : axes.algorithms) {
        for (const std::int64_t budget : axes.budgets) {
          SpacePoint point;
          point.index = static_cast<int>(space.points.size());
          point.variant = variant.index;
          point.algorithm = algorithm;
          point.budget = budget;
          point.concurrent_fetch = fetch;
          space.points.push_back(point);
        }
      }
    }
  }
  return space;
}

std::vector<std::int64_t> parse_budget_spec(const std::string& spec) {
  std::vector<std::int64_t> budgets;
  if (spec.find(':') != std::string::npos) {
    const std::vector<std::string> parts = split(spec, ':');
    check(parts.size() == 2 || parts.size() == 3,
          cat("bad budget spec '", spec, "': want lo:hi or lo:hi:step"));
    const std::int64_t lo = parse_positive(parts[0], spec);
    const std::int64_t hi = parse_positive(parts[1], spec);
    check(lo <= hi, cat("bad budget spec '", spec, "': lo > hi"));
    if (parts.size() == 3) {
      const std::int64_t step = parse_positive(parts[2], spec);
      for (std::int64_t b = lo; b <= hi; b += step) budgets.push_back(b);
    } else {
      for (std::int64_t b = lo; b <= hi; b *= 2) budgets.push_back(b);
    }
    if (budgets.back() != hi) budgets.push_back(hi);
  } else {
    for (const std::string& token : split(spec, ',')) {
      budgets.push_back(parse_positive(token, spec));
    }
  }
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  return budgets;
}

std::vector<std::int64_t> parse_size_list(const std::string& spec, const char* what) {
  std::vector<std::int64_t> sizes;
  for (const std::string& token : split(spec, ',')) {
    const std::string text(trim(token));
    check(!text.empty() && text.size() <= 7 &&
              text.find_first_not_of("0123456789") == std::string::npos,
          cat("bad ", what, " spec '", spec, "': '", text, "' is not an integer"));
    const std::int64_t value = std::stoll(text);
    check(value >= 2, cat("bad ", what, " spec '", spec, "': values must be >= 2"));
    sizes.push_back(value);
  }
  check(!sizes.empty(), cat("bad ", what, " spec '", spec, "': empty"));
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

}  // namespace srra::dse
