// Design-space definition and enumeration (DESIGN.md §7). A space is the
// cross product of five axes:
//
//   kernels x loop orders x fetch modes x algorithms x register budgets
//
// Kernel x loop-order combinations are materialized as *variants* (each
// owns one transformed Kernel); the remaining axes are expanded into flat
// SpacePoints that reference their variant by index. Enumeration order is
// deterministic — variants in kernel/order declaration order, points in
// (variant, fetch, algorithm, budget) lexicographic order — and every
// point carries its dense index, which is what makes parallel evaluation
// reproducible (explore.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.h"
#include "ir/kernel.h"

namespace srra::dse {

/// One kernel entering the space, with its display name.
struct SpaceKernel {
  std::string name;
  Kernel kernel;
};

/// The axes of a design space. Defaults reproduce the paper's setup: the
/// three Fig. 3/4 allocators at budget 64, source loop order, concurrent
/// operand fetch.
struct AxisSpec {
  std::vector<SpaceKernel> kernels;
  std::vector<Algorithm> algorithms = paper_variants();
  std::vector<std::int64_t> budgets = {64};
  /// Values taken by CycleOptions::concurrent_operand_fetch.
  std::vector<bool> fetch_modes = {true};
  /// Enumerate every legal loop-interchange permutation per kernel.
  bool interchange = false;
  /// Nests deeper than this keep source order even with interchange on
  /// (depth d contributes d! orders; 3 ⇒ at most 6 variants per kernel).
  int max_interchange_depth = 3;
};

/// One (kernel, loop order) combination; owns the transformed kernel.
struct Variant {
  int index = 0;
  std::string kernel_name;
  std::string order;  ///< loop-order label, e.g. "(i,j,k)"
  Kernel kernel;
};

/// One evaluation point: a variant plus values for the scalar axes.
struct SpacePoint {
  int index = 0;    ///< dense id in enumeration order
  int variant = 0;  ///< index into EnumeratedSpace::variants
  Algorithm algorithm = Algorithm::kFrRa;
  std::int64_t budget = 64;
  bool concurrent_fetch = true;
};

/// A fully enumerated space.
struct EnumeratedSpace {
  std::vector<Variant> variants;
  std::vector<SpacePoint> points;

  /// Point indices grouped by variant, each group in point order.
  std::vector<std::vector<int>> points_by_variant() const;
};

/// Expands `axes` into variants and points. With `interchange` set, every
/// permutation of the loop nest that `interchange_is_safe` admits is
/// enumerated (source order first); otherwise only the source order.
/// Throws srra::Error if any axis is empty.
EnumeratedSpace enumerate_space(AxisSpec axes);

/// Parses a budget-axis spec: "64" (single), "8,16,64" (list),
/// "lo:hi" (doubling ladder from lo, hi appended if overshot) or
/// "lo:hi:step" (arithmetic). Result is sorted ascending, deduplicated.
/// Throws srra::Error on malformed specs or non-positive budgets.
std::vector<std::int64_t> parse_budget_spec(const std::string& spec);

}  // namespace srra::dse
