// Design-space definition and enumeration (DESIGN.md §7, §10). A space is
// the cross product of five axes:
//
//   kernels x loop transforms x fetch modes x algorithms x register budgets
//
// Kernel x transform-sequence combinations are materialized as *variants*
// (each owns one transformed Kernel plus the LoopTransform sequence that
// produced it); the remaining axes are expanded into flat SpacePoints that
// reference their variant by index. Enumeration order is deterministic —
// variants in kernel/sequence declaration order, points in (variant, fetch,
// algorithm, budget) lexicographic order — and every point carries its
// dense index, which is what makes parallel evaluation reproducible
// (explore.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.h"
#include "ir/kernel.h"
#include "ir/transform.h"

namespace srra::dse {

/// One kernel entering the space, with its display name.
struct SpaceKernel {
  std::string name;
  Kernel kernel;
};

/// The loop-transformation axis (ir/transform.h): which rewrites of each
/// kernel enter the space. Enumeration is the cross product
///
///   (source order + legal interchange permutations)
///     x (untiled + Tile{level, size} stacks up to tile_depth layers)
///     x (unjammed + one UnrollJam{level, factor} per level and factor)
///
/// in that nesting order, each sequence applied left to right, with levels
/// of later transforms referring to the nest the earlier ones produced.
/// Non-dividing tile sizes are applied with remainder peeling where legal;
/// remaining illegal combinations (oversized tiles, non-dividing unroll
/// factors, unsafe reorders) are skipped; structurally identical results —
/// e.g. permutations that are no-ops on 1D or symmetric nests — are
/// deduplicated via structural_hash; and each kernel contributes at most
/// max_variants_per_kernel variants (candidates past the cap are still
/// counted in EnumeratedSpace::stats).
struct TransformSpec {
  /// Enumerate every legal loop-interchange permutation per kernel.
  bool interchange = false;
  /// Nests deeper than this keep source order even with interchange on
  /// (depth d contributes d! orders; 3 ⇒ at most 6 orders per kernel).
  int max_interchange_depth = 3;
  /// Tile sizes to try at every level of the (possibly permuted) nest.
  /// Sizes that do not divide a level's trip count are applied with
  /// remainder peeling (ir/transform.h apply_peeled) when that is legal for
  /// the level; sizes >= the trip count are skipped.
  std::vector<std::int64_t> tile_sizes;
  /// How many Tile layers the generated cross product stacks (1 = one tile
  /// per candidate, 2 adds tile-on-tile candidates, ...).
  int tile_depth = 1;
  /// Unroll-and-jam factors to try at every level of the (possibly
  /// permuted, possibly tiled) nest; illegal factors are skipped.
  std::vector<std::int64_t> unroll_factors;
  /// Explicit transform sequences, enumerated right after the source
  /// variant and before the generated cross product. Each must be legal
  /// (ir/transform.h is_safe) for every kernel of the space; an illegal or
  /// malformed sequence throws srra::Error.
  std::vector<std::vector<LoopTransform>> sequences;
  /// Hard cap on the variants one kernel contributes. Generation keeps
  /// *counting* candidates past the cap (EnumeratedSpace::stats — no
  /// silent truncation), it just stops materializing them.
  int max_variants_per_kernel = 6400;

  /// True when any axis beyond the source order is requested.
  bool any() const {
    return interchange || !tile_sizes.empty() || !unroll_factors.empty() ||
           !sequences.empty();
  }
};

/// One (kernel, transform sequence) combination; owns the transformed
/// kernel. `order` is the legacy loop-order label (e.g. "(i,j,k)"), kept
/// byte-identical to the pre-transform-IR reports for interchange-only
/// spaces; `encoding` is the canonical transform encoding (e.g.
/// "i(1,0,2);t(2,8)", "" for the source variant). label() picks the report
/// spelling: `order` for the source order and pure interchanges, `encoding`
/// as soon as a tile or unroll-and-jam is involved.
struct Variant {
  int index = 0;
  std::string kernel_name;
  std::string order;                      ///< loop-order label, e.g. "(i,j,k)"
  std::string encoding;                   ///< canonical transform encoding
  std::vector<LoopTransform> transforms;  ///< applied sequence (empty = source)
  Kernel kernel;                          ///< main nest (peeled-tile full range)
  /// Remainder nests peeled off by non-dividing tiles (ir/transform.h
  /// PeeledNest), in peel order; empty for full-tile / untiled variants.
  /// Evaluation runs every piece and combines (dse/explore.h).
  std::vector<Kernel> epilogues;

  const std::string& label() const {
    const bool pure_interchange =
        transforms.empty() ||
        (transforms.size() == 1 && transforms.front().kind == TransformKind::kInterchange);
    return pure_interchange ? order : encoding;
  }
};

/// The axes of a design space. Defaults reproduce the paper's setup: the
/// three Fig. 3/4 allocators at budget 64, source loop order, concurrent
/// operand fetch.
struct AxisSpec {
  std::vector<SpaceKernel> kernels;
  std::vector<Algorithm> algorithms = paper_variants();
  std::vector<std::int64_t> budgets = {64};
  /// Values taken by CycleOptions::concurrent_operand_fetch.
  std::vector<bool> fetch_modes = {true};
  /// Loop-transformation axis (source order only by default).
  TransformSpec transforms;
};

/// One evaluation point: a variant plus values for the scalar axes.
struct SpacePoint {
  int index = 0;    ///< dense id in enumeration order
  int variant = 0;  ///< index into EnumeratedSpace::variants
  Algorithm algorithm = Algorithm::kFrRa;
  std::int64_t budget = 64;
  bool concurrent_fetch = true;
};

/// Candidate-generation counters — the no-silent-caps contract. Every
/// candidate transform sequence the generator produces increments
/// `generated`; `evaluated` counts the variants that entered the space;
/// `pruned` counts the rest (bound-dominated in guided search, duplicate or
/// over-cap in exhaustive enumeration). generated == pruned + evaluated, so
/// a capped or pruned run is visible in every report.
struct SpaceStats {
  std::int64_t variants_generated = 0;
  std::int64_t variants_pruned = 0;
  std::int64_t variants_evaluated = 0;
};

/// A fully enumerated space.
struct EnumeratedSpace {
  std::vector<Variant> variants;
  std::vector<SpacePoint> points;
  SpaceStats stats;

  /// Point indices grouped by variant, each group in point order.
  std::vector<std::vector<int>> points_by_variant() const;
};

/// Expands `axes` into variants and points (see TransformSpec for the
/// transform-axis enumeration). Throws srra::Error if any axis is empty or
/// an explicit transform sequence is illegal for one of the kernels.
EnumeratedSpace enumerate_space(AxisSpec axes);

/// Parses a budget-axis spec: "64" (single), "8,16,64" (list),
/// "lo:hi" (doubling ladder from lo, hi appended if overshot) or
/// "lo:hi:step" (arithmetic). Result is sorted ascending, deduplicated.
/// Throws srra::Error on malformed specs or non-positive budgets.
std::vector<std::int64_t> parse_budget_spec(const std::string& spec);

/// Parses a tile-size / unroll-factor axis spec: a comma list of integers
/// >= 2 ("4,8"), sorted ascending and deduplicated. Throws srra::Error on
/// malformed specs.
std::vector<std::int64_t> parse_size_list(const std::string& spec, const char* what);

}  // namespace srra::dse
