#include "dse/prune.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "analysis/refs.h"
#include "analysis/reuse.h"
#include "dfg/dfg.h"
#include "sched/schedule.h"
#include "support/error.h"
#include "support/str.h"

namespace srra::dse {

namespace {

// ---- Abstract candidate state ------------------------------------------
//
// Everything the bound needs about a transformed nest, maintained under
// the transforms analytically: per-level trip counts and, per reference
// group, the per-level element shift (the step-scaled access-matrix row).
// Interchange permutes both, Tile splits a column, UnrollJam scales one —
// no kernel is ever rewritten.

struct AbsGroup {
  std::vector<std::int64_t> shift;  ///< element shift per single loop step
  int array = 0;
  bool read_node = false;  ///< has a read that is not forwarded in-iteration
  bool write = false;
  std::int64_t mult = 1;  ///< structural copies made by unroll-and-jam
};

struct AbsState {
  std::vector<std::int64_t> trips;
  std::vector<AbsGroup> groups;
  /// Iteration counts of the remainder nests peeled off so far (their body
  /// is a snapshot of the main body, so the shared L0 floor applies).
  std::vector<std::int64_t> epilogue_iterations;

  std::int64_t main_iterations() const {
    std::int64_t n = 1;
    for (const std::int64_t t : trips) n *= t;
    return n;
  }
};

void apply_interchange_abs(AbsState& state, const std::vector<int>& perm) {
  const auto permute = [&](const std::vector<std::int64_t>& in) {
    std::vector<std::int64_t> out(in.size());
    for (std::size_t l = 0; l < perm.size(); ++l) {
      out[l] = in[static_cast<std::size_t>(perm[l])];
    }
    return out;
  };
  state.trips = permute(state.trips);
  for (AbsGroup& g : state.groups) g.shift = permute(g.shift);
}

// Mirrors ir/transform.cc: a non-dividing size peels the remainder range
// into an epilogue first; the main range then full-tiles into a tile loop
// (stride scaled by `size`) over a point loop (original stride).
void apply_tile_abs(AbsState& state, int level, std::int64_t size) {
  const std::size_t l = static_cast<std::size_t>(level);
  const std::int64_t rem = state.trips[l] % size;
  if (rem != 0) {
    state.epilogue_iterations.push_back(state.main_iterations() / state.trips[l] * rem);
    state.trips[l] -= rem;
  }
  state.trips[l] /= size;
  state.trips.insert(state.trips.begin() + static_cast<std::ptrdiff_t>(l) + 1, size);
  for (AbsGroup& g : state.groups) {
    const std::int64_t shift = g.shift[l];
    g.shift[l] = shift * size;
    g.shift.insert(g.shift.begin() + static_cast<std::ptrdiff_t>(l) + 1, shift);
  }
}

void apply_unroll_jam_abs(AbsState& state, int level, std::int64_t factor) {
  const std::size_t l = static_cast<std::size_t>(level);
  for (AbsGroup& g : state.groups) {
    // Copies whose subscripts move at the level become distinct groups; an
    // invariant group's copies collapse back onto one syntactic pattern.
    if (g.shift[l] != 0) g.mult *= factor;
    g.shift[l] *= factor;
  }
  state.trips[l] /= factor;
}

void apply_abs(AbsState& state, const LoopTransform& t) {
  switch (t.kind) {
    case TransformKind::kInterchange:
      apply_interchange_abs(state, t.perm);
      return;
    case TransformKind::kTile:
      apply_tile_abs(state, t.level, t.amount);
      return;
    case TransformKind::kUnrollJam:
      apply_unroll_jam_abs(state, t.level, t.amount);
      return;
  }
  fail("unknown TransformKind");
}

// ---- Reuse-distance lower bound ----------------------------------------
//
// A sound lower bound (in iterations of the transformed nest) on the
// distance between two touches of the same element by one group. Used as
// the savings ramp: one extra register can eliminate at most one steady
// access per `distance` iterations. Returns <= 0 for "no temporal reuse"
// (the group's charge can never be reduced).

double distance_lb(const AbsState& state, const AbsGroup& group) {
  const int depth = static_cast<int>(state.trips.size());
  const auto inner_product = [&](int level) {
    std::int64_t p = 1;
    for (int m = level + 1; m < depth; ++m) p *= state.trips[static_cast<std::size_t>(m)];
    return p;
  };
  double best = -1.0;  // no reuse found yet
  std::vector<int> moving;
  for (int l = 0; l < depth; ++l) {
    const std::int64_t trip = state.trips[static_cast<std::size_t>(l)];
    if (trip < 2) continue;  // a degenerate level never steps
    if (group.shift[static_cast<std::size_t>(l)] != 0) {
      moving.push_back(l);
    } else {
      // Stepping an invariant level alone revisits every element: distance
      // = the iteration sub-space below it. The deepest such level is the
      // minimum, but taking all is harmless.
      const double d = static_cast<double>(inner_product(l));
      if (best < 0 || d < best) best = d;
    }
  }
  if (moving.size() == 2) {
    // Exactly two moving levels j < l: all same-element pairs differ by a
    // multiple of the primitive cancellation (gl/g at j, -gj/g at l). The
    // k=1 instance, when it fits the trip ranges, is the minimal distance.
    const int j = moving[0];
    const int l = moving[1];
    const std::int64_t gj = group.shift[static_cast<std::size_t>(j)];
    const std::int64_t gl = group.shift[static_cast<std::size_t>(l)];
    if ((gj > 0) == (gl > 0)) {  // opposite signs only lengthen the distance
      const std::int64_t aj = gj < 0 ? -gj : gj;
      const std::int64_t al = gl < 0 ? -gl : gl;
      const std::int64_t g = std::gcd(aj, al);
      const std::int64_t dj = al / g;  // delta at j
      const std::int64_t dl = aj / g;  // |delta| at l (negative direction)
      if (dj <= state.trips[static_cast<std::size_t>(j)] - 1 &&
          dl <= state.trips[static_cast<std::size_t>(l)] - 1) {
        const double d = static_cast<double>(dj * inner_product(j) - dl * inner_product(l));
        if (best < 0 || d < best) best = d;
      }
    }
  } else if (moving.size() >= 3) {
    // Three or more coupled levels can cancel in ways the pairwise solve
    // misses; fall back to the universal minimum (consecutive iterations
    // cannot touch the same element when the innermost shift is nonzero).
    best = 2.0;
  }
  if (best >= 0 && best < 2.0) best = 2.0;
  return best;
}

// ---- Bound-curve construction ------------------------------------------

struct BaseSummary {
  std::int64_t l0 = 0;  ///< empty-memory-profile schedule length of the body
  AbsState initial;
  bool reorder_safe = false;
  /// Arrays some statement writes — fixed under every transform here.
  std::vector<bool> written;
};

BaseSummary summarize(const Kernel& kernel, const CycleOptions& cycles) {
  BaseSummary s;
  const std::vector<RefGroup> groups = collect_ref_groups(kernel);
  std::vector<int> array_of_group(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    array_of_group[g] = groups[g].access.array_id;
  }
  const Dfg dfg = Dfg::build(kernel, groups);
  IterationProfile empty;
  empty.ram_access.assign(static_cast<std::size_t>(dfg.node_count()), false);
  s.l0 = schedule_iteration(dfg, empty, array_of_group, cycles.latency);
  s.initial.trips = kernel.trip_counts();
  s.written.assign(kernel.arrays().size(), false);
  for (const RefGroup& g : groups) {
    if (g.writes_per_iter > 0) {
      s.written[static_cast<std::size_t>(g.access.array_id)] = true;
    }
  }
  for (const RefGroup& g : groups) {
    AbsGroup ag;
    ag.shift = access_shift_profile(kernel, g.access);
    ag.array = g.access.array_id;
    ag.read_node = g.reads_per_iter > g.forwarded_reads_per_iter;
    ag.write = g.writes_per_iter > 0;
    s.initial.groups.push_back(std::move(ag));
  }
  s.reorder_safe = reorder_is_safe(kernel);
  return s;
}

BoundCurve make_curve(const AbsState& state, const BaseSummary& summary,
                      const CycleOptions& cycles) {
  BoundCurve curve;
  curve.main_iterations = state.main_iterations();
  std::int64_t total_iterations = curve.main_iterations;
  for (const std::int64_t e : state.epilogue_iterations) total_iterations += e;
  curve.floor_cycles = total_iterations * (cycles.loop_overhead + summary.l0);
  curve.min_regs = 0;
  for (const AbsGroup& g : state.groups) curve.min_regs += g.mult;

  // The memory corner holds only in the FSM execution model, where every
  // iteration's memory cycles serialize with the compute path.
  if (!cycles.fsm_serial_memory) return curve;

  std::int64_t min_eff_trip = 0;
  int inn = -1;  // deepest level that actually steps
  const int depth = static_cast<int>(state.trips.size());
  for (int l = 0; l < depth; ++l) {
    const std::int64_t trip = state.trips[static_cast<std::size_t>(l)];
    if (trip < 2) continue;
    inn = l;
    if (min_eff_trip == 0 || trip < min_eff_trip) min_eff_trip = trip;
  }
  if (inn < 0) return curve;  // single-iteration nest: floor only
  // Slack absorbing the peeled (non-steady) boundary accounting of held
  // windows: at most the first and last carry-loop values per instance.
  const double steady = 1.0 - 2.0 / static_cast<double>(min_eff_trip);
  if (steady <= 0) return curve;

  for (const AbsGroup& g : state.groups) {
    // Charged groups: the element moves at the effective innermost level,
    // so no carrying window fits in one register (the inner footprint is at
    // least that level's trip) and a 1-register group pays RAM every
    // steady iteration.
    if (g.shift[static_cast<std::size_t>(inn)] == 0) continue;
    BoundCurve::Item item;
    item.read_rate =
        g.read_node ? static_cast<double>(cycles.latency.mem_read) : 0.0;
    item.write_rate = g.write ? static_cast<double>(cycles.latency.mem_write) : 0.0;
    if (item.read_rate <= 0 && item.write_rate <= 0) continue;
    item.array = g.array;
    item.distance = distance_lb(state, g);
    item.steady = steady;
    curve.items.push_back(item);
  }
  curve.finalize();
  return curve;
}

}  // namespace

void BoundCurve::finalize() {
  pools_.clear();
  // Reads of one RAM block serialize even under concurrent operand fetch,
  // so each block alone lower-bounds the per-iteration memory cycles: one
  // greedy pool per distinct array, charging that array's reads plus every
  // write.
  std::vector<int> arrays;
  for (const Item& item : items) {
    if (std::find(arrays.begin(), arrays.end(), item.array) == arrays.end()) {
      arrays.push_back(item.array);
    }
  }
  for (const int array : arrays) {
    ArrayPool pool;
    for (const Item& item : items) {
      const double rate =
          item.write_rate + (item.array == array ? item.read_rate : 0.0);
      if (rate <= 0) continue;
      pool.total += rate * item.steady;
      // One register slot saves at most one access per `distance`
      // iterations; granting the pre-existing feasibility register to the
      // ramp as well (factor 2) only lowers the bound.
      if (item.distance > 0) {
        Ramp ramp;
        ramp.slope = rate * 2.0 / item.distance;
        ramp.cap = item.steady * item.distance / 2.0;  // regs to zero the item
        pool.ramps.push_back(ramp);
      }
    }
    std::sort(pool.ramps.begin(), pool.ramps.end(),
              [](const Ramp& a, const Ramp& b) { return a.slope > b.slope; });
    pools_.push_back(std::move(pool));
  }
}

std::int64_t BoundCurve::at(std::int64_t regs) const {
  if (pools_.empty()) return floor_cycles;
  const double budget =
      regs > min_regs ? static_cast<double>(regs - min_regs) : 0.0;
  // The adversary (the allocator) spends the extra-register budget greedily
  // on the steepest savings ramp first — the continuous optimum of the LP,
  // which never exceeds any integer allocation's true savings.
  double best = 0.0;
  for (const ArrayPool& pool : pools_) {
    double total = pool.total;
    double remaining = budget;
    for (const Ramp& ramp : pool.ramps) {
      if (remaining <= 0 || total <= 0) break;
      const double spend = remaining < ramp.cap ? remaining : ramp.cap;
      total -= spend * ramp.slope;
      remaining -= spend;
    }
    if (total > best) best = total;
  }
  return floor_cycles +
         static_cast<std::int64_t>(static_cast<double>(main_iterations) * best);
}

BoundCurve bound_curve(const Kernel& kernel, srra::span<const LoopTransform> transforms,
                       const CycleOptions& cycles) {
  const BaseSummary summary = summarize(kernel, cycles);
  AbsState state = summary.initial;
  for (const LoopTransform& t : transforms) apply_abs(state, t);
  return make_curve(state, summary, cycles);
}

namespace {

// ---- Guided search ------------------------------------------------------

std::string order_label(const Kernel& kernel) {
  return cat("(", join(kernel.loop_names(), ","), ")");
}

std::uint64_t nest_hash(const PeeledNest& nest) {
  std::uint64_t h = structural_hash(nest.main);
  for (const Kernel& epilogue : nest.epilogues) {
    h = h * 1099511628211ull ^ structural_hash(epilogue);
  }
  return h;
}

struct Candidate {
  std::vector<LoopTransform> sequence;
  BoundCurve curve;
  std::int64_t optimistic = 0;  ///< curve at the sweep's largest budget
  std::int64_t corner = 0;      ///< curve at the feasibility floor
  std::int64_t gen_index = 0;
};

// Abstract mirror of dse/space.cc's VariantEnumerator: the same candidate
// tree (source, explicit sequences, permutations x tile stacks x unroll
// factors) walked over AbsState with *superset* legality — peeled-tile and
// unroll-and-jam dependence conditions are deferred to materialization,
// where the real is_safe filters them. Every node counts as generated.
class AbstractEnumerator {
 public:
  AbstractEnumerator(std::vector<Candidate>& out, SpaceStats& stats,
                     const TransformSpec& spec, const std::string& kernel_name,
                     const Kernel& base, const BaseSummary& summary,
                     const CycleOptions& cycles, std::int64_t max_budget)
      : out_(out),
        stats_(stats),
        spec_(spec),
        kernel_name_(kernel_name),
        base_(base),
        summary_(summary),
        cycles_(cycles),
        max_budget_(max_budget) {}

  void run() {
    add(summary_.initial, {});
    for (const std::vector<LoopTransform>& sequence : spec_.sequences) {
      const srra::span<const LoopTransform> seq(sequence.data(), sequence.size());
      check(is_safe(base_, seq), cat("transform sequence '", to_string(seq),
                                     "' is illegal for kernel ", kernel_name_));
      AbsState state = summary_.initial;
      for (const LoopTransform& t : sequence) apply_abs(state, t);
      add(state, sequence);
    }

    const int depth = base_.depth();
    const bool permute = spec_.interchange && depth > 1 &&
                         depth <= spec_.max_interchange_depth && summary_.reorder_safe;
    std::vector<int> perm(static_cast<std::size_t>(depth));
    std::iota(perm.begin(), perm.end(), 0);
    do {
      const bool identity = std::is_sorted(perm.begin(), perm.end());
      if (identity) {
        expand(summary_.initial, {}, /*add_bare=*/false, spec_.tile_depth);
      } else {
        const std::vector<LoopTransform> prefix{LoopTransform::interchange(perm)};
        AbsState state = summary_.initial;
        apply_abs(state, prefix.front());
        expand(state, prefix, /*add_bare=*/true, spec_.tile_depth);
      }
    } while (permute && std::next_permutation(perm.begin(), perm.end()));
  }

 private:
  void expand(const AbsState& state, const std::vector<LoopTransform>& prefix,
              bool add_bare, int tiles_left) {
    if (add_bare) add(state, prefix);
    add_unrolls(state, prefix);
    if (tiles_left <= 0) return;
    for (int level = 0; level < static_cast<int>(state.trips.size()); ++level) {
      const std::int64_t trip = state.trips[static_cast<std::size_t>(level)];
      for (const std::int64_t size : spec_.tile_sizes) {
        if (size < 2 || size >= trip) continue;
        std::vector<LoopTransform> sequence = prefix;
        sequence.push_back(LoopTransform::tile(level, size));
        AbsState tiled = state;
        apply_tile_abs(tiled, level, size);
        expand(tiled, sequence, /*add_bare=*/true, tiles_left - 1);
      }
    }
  }

  // Abstract mirror of the real unroll-and-jam write-invariance condition:
  // every group touching a written array must be invariant at the unrolled
  // level. shift[l] == 0 whenever the subscripts are invariant in l, so the
  // abstract test accepts a superset of the real one (linearization can
  // cancel varying subscripts to a zero shift; the real is_safe still runs
  // at materialization). The dependence half (outer-level reorder) stays
  // deferred — only the real check decides it.
  bool unroll_invariance_holds(const AbsState& state, int level) const {
    for (const AbsGroup& g : state.groups) {
      if (summary_.written[static_cast<std::size_t>(g.array)] &&
          g.shift[static_cast<std::size_t>(level)] != 0) {
        return false;
      }
    }
    return true;
  }

  void add_unrolls(const AbsState& state, const std::vector<LoopTransform>& prefix) {
    for (int level = 0; level < static_cast<int>(state.trips.size()); ++level) {
      const std::int64_t trip = state.trips[static_cast<std::size_t>(level)];
      if (!unroll_invariance_holds(state, level)) continue;
      for (const std::int64_t factor : spec_.unroll_factors) {
        if (factor < 2 || trip % factor != 0) continue;
        std::vector<LoopTransform> sequence = prefix;
        sequence.push_back(LoopTransform::unroll_jam(level, factor));
        AbsState unrolled = state;
        apply_unroll_jam_abs(unrolled, level, factor);
        add(unrolled, sequence);
      }
    }
  }

  void add(const AbsState& state, std::vector<LoopTransform> sequence) {
    ++stats_.variants_generated;
    Candidate cand;
    cand.curve = make_curve(state, summary_, cycles_);
    cand.optimistic = cand.curve.at(max_budget_);
    cand.corner = cand.curve.at(cand.curve.min_regs);
    cand.gen_index = static_cast<std::int64_t>(out_.size());
    cand.sequence = std::move(sequence);
    out_.push_back(std::move(cand));
  }

  std::vector<Candidate>& out_;
  SpaceStats& stats_;
  const TransformSpec& spec_;
  const std::string& kernel_name_;
  const Kernel& base_;
  const BaseSummary& summary_;
  const CycleOptions& cycles_;
  std::int64_t max_budget_;
};

// Measured (registers, cycles) points of one kernel, reduced to the
// dominating staircase: regs strictly ascending, cycles strictly descending.
class MeasuredPool {
 public:
  void insert(std::int64_t regs, std::int64_t cycles) {
    points_.emplace_back(regs, cycles);
    std::sort(points_.begin(), points_.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> stair;
    for (const auto& p : points_) {
      if (!stair.empty() && p.second >= stair.back().second) continue;
      if (!stair.empty() && p.first == stair.back().first) stair.pop_back();
      stair.push_back(p);
    }
    points_ = std::move(stair);
  }

  /// True when some measured point strictly beats `curve` at every register
  /// count in [curve.min_regs, max_budget] — the candidate cannot tie any
  /// frontier point, so it is safe to discard.
  bool dominates(const BoundCurve& curve, std::int64_t max_budget) const {
    if (points_.empty() || curve.min_regs > max_budget) return false;
    // No measured point at or below the candidate's feasibility floor: the
    // low-register region is uncontested.
    if (points_.front().first > curve.min_regs) return false;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const std::int64_t from = points_[i].first;
      if (from > max_budget) break;
      // This point is the pool's best up to the next staircase step; the
      // candidate's curve is lowest at the range's right edge.
      std::int64_t to = max_budget;
      if (i + 1 < points_.size() && points_[i + 1].first <= max_budget) {
        to = points_[i + 1].first - 1;
      }
      if (to < curve.min_regs) continue;
      if (points_[i].second >= curve.at(to)) return false;
    }
    return true;
  }

 private:
  std::vector<std::pair<std::int64_t, std::int64_t>> points_;  ///< (regs, cycles)
};

}  // namespace

ExploreResult explore_guided(AxisSpec axes, const ExploreOptions& options,
                             const PruneOptions& prune) {
  check(!axes.kernels.empty(), "explore_guided: no kernels");
  check(!axes.algorithms.empty(), "explore_guided: no algorithms");
  check(!axes.budgets.empty(), "explore_guided: no budgets");
  check(!axes.fetch_modes.empty(), "explore_guided: no fetch modes");
  check(prune.wave >= 1, "explore_guided: wave must be at least 1");

  const std::int64_t max_budget =
      *std::max_element(axes.budgets.begin(), axes.budgets.end());

  ExploreResult final;
  for (const SpaceKernel& sk : axes.kernels) {
    const BaseSummary summary = summarize(sk.kernel, options.pipeline.cycles);
    std::vector<Candidate> candidates;
    AbstractEnumerator(candidates, final.space.stats, axes.transforms, sk.name,
                       sk.kernel, summary, options.pipeline.cycles, max_budget)
        .run();

    // Most promising first: lowest optimistic bound, then lowest corner —
    // generation order breaks ties, so the search is deterministic.
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const Candidate& ca = candidates[a];
      const Candidate& cb = candidates[b];
      if (ca.optimistic != cb.optimistic) return ca.optimistic < cb.optimistic;
      if (ca.corner != cb.corner) return ca.corner < cb.corner;
      return ca.gen_index < cb.gen_index;
    });

    MeasuredPool pool;
    std::unordered_set<std::uint64_t> seen;
    int evaluated = 0;
    std::size_t next = 0;
    while (next < order.size()) {
      // Assemble one wave of bound-surviving, legal, novel candidates.
      std::vector<Variant> wave;
      while (static_cast<int>(wave.size()) < prune.wave && next < order.size()) {
        const Candidate& cand = candidates[order[next++]];
        const srra::span<const LoopTransform> seq(cand.sequence.data(),
                                                  cand.sequence.size());
        if (prune.max_evaluated_per_kernel > 0 &&
            evaluated + static_cast<int>(wave.size()) >=
                prune.max_evaluated_per_kernel) {
          ++final.space.stats.variants_pruned;
          continue;
        }
        if (pool.dominates(cand.curve, max_budget)) {
          ++final.space.stats.variants_pruned;
          continue;
        }
        // Abstract legality is a superset; the real check runs here, once,
        // only for bound survivors.
        if (!cand.sequence.empty() && !is_safe(sk.kernel, seq)) {
          ++final.space.stats.variants_pruned;
          continue;
        }
        PeeledNest nest = apply_peeled(sk.kernel, seq);
        if (!seen.insert(nest_hash(nest)).second) {
          ++final.space.stats.variants_pruned;
          continue;
        }
        Variant variant;
        variant.index = static_cast<int>(wave.size());
        variant.kernel_name = sk.name;
        variant.order = order_label(nest.main);
        variant.encoding = to_string(seq);
        variant.transforms = cand.sequence;
        variant.kernel = std::move(nest.main);
        variant.epilogues = std::move(nest.epilogues);
        wave.push_back(std::move(variant));
      }
      if (wave.empty()) continue;

      EnumeratedSpace ws;
      ws.variants = std::move(wave);
      for (const Variant& variant : ws.variants) {
        for (const bool fetch : axes.fetch_modes) {
          for (const Algorithm algorithm : axes.algorithms) {
            for (const std::int64_t budget : axes.budgets) {
              SpacePoint point;
              point.index = static_cast<int>(ws.points.size());
              point.variant = variant.index;
              point.algorithm = algorithm;
              point.budget = budget;
              point.concurrent_fetch = fetch;
              ws.points.push_back(point);
            }
          }
        }
      }
      ExploreResult measured = explore(std::move(ws), options);

      // Feed the pool, then splice the wave into the merged result with
      // global variant and point indices.
      for (std::size_t i = 0; i < measured.results.size(); ++i) {
        const PointResult& r = measured.results[i];
        if (r.feasible) {
          pool.insert(r.design.allocation.total(), r.design.cycles.exec_cycles);
        }
      }
      const int variant_offset = static_cast<int>(final.space.variants.size());
      for (Variant& variant : measured.space.variants) {
        variant.index += variant_offset;
        ++evaluated;
        ++final.space.stats.variants_evaluated;
        final.space.variants.push_back(std::move(variant));
      }
      for (std::size_t i = 0; i < measured.space.points.size(); ++i) {
        SpacePoint point = measured.space.points[i];
        point.variant += variant_offset;
        point.index = static_cast<int>(final.space.points.size());
        final.space.points.push_back(point);
        final.results.push_back(std::move(measured.results[i]));
      }
    }
  }
  return final;
}

}  // namespace srra::dse
