// Command-line front end for the DSE engine (DESIGN.md §7), shared by
// tools/srra_cli.cc and the in-process CLI tests. Grammar:
//
//   srra list
//   srra run    --kernel=NAME|FILE [--algos=LIST] [--budget=N]
//               [--fetch=on|off] [--format=text|csv|json]
//   srra sweep  [--kernel=LIST|all|paper] [--algos=LIST|all|paper]
//               [--budgets=SPEC] [--interchange] [--fetch=on|off|both]
//               [--jobs=N] [--format=text|csv|json]
//   srra pareto (same flags as sweep)
//
// --kernel accepts built-in names (example, fir, dec_fir, mat, imi, pat,
// bic, conv2d, matvec; case- and -/_-insensitive), the sets "paper"
// (Table 1) and "all", or a path to a kernel-DSL file. --budgets accepts
// "64", "8,16,64", "8:128" (doubling) or "8:128:8" (arithmetic step).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace srra::dse {

/// Runs one srra CLI invocation. `args` excludes argv[0]. Reports go to
/// `out`; usage and diagnostics go to `err`. Returns the process exit
/// code: 0 on success, 2 on usage/input errors.
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace srra::dse
