#include "dse/pareto.h"

#include <algorithm>
#include <limits>

namespace srra::dse {

std::vector<std::string> kernel_names(const ExploreResult& result) {
  std::vector<std::string> names;
  for (const Variant& variant : result.space.variants) {
    if (std::find(names.begin(), names.end(), variant.kernel_name) == names.end()) {
      names.push_back(variant.kernel_name);
    }
  }
  return names;
}

namespace {

Frontier frontier_for(const ExploreResult& result, const std::string& kernel_name,
                      std::string label, std::string x_name, std::string y_name,
                      double (*x_of)(const DesignPoint&),
                      double (*y_of)(const DesignPoint&)) {
  std::vector<std::pair<double, double>> coords;
  std::vector<int> owners;  // SpacePoint index per coordinate row
  for (const SpacePoint& point : result.space.points) {
    const PointResult& r = result.results[static_cast<std::size_t>(point.index)];
    if (!r.feasible) continue;
    if (result.variant_of(point).kernel_name != kernel_name) continue;
    coords.emplace_back(x_of(r.design), y_of(r.design));
    owners.push_back(point.index);
  }
  Frontier frontier;
  frontier.label = std::move(label);
  frontier.x_name = std::move(x_name);
  frontier.y_name = std::move(y_name);
  for (const int row : pareto_frontier(coords)) {
    frontier.points.push_back(owners[static_cast<std::size_t>(row)]);
  }
  return frontier;
}

}  // namespace

std::vector<int> pareto_frontier(const std::vector<std::pair<double, double>>& points) {
  std::vector<int> order(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& pa = points[static_cast<std::size_t>(a)];
    const auto& pb = points[static_cast<std::size_t>(b)];
    if (pa.first != pb.first) return pa.first < pb.first;
    if (pa.second != pb.second) return pa.second < pb.second;
    return a < b;
  });

  // Sweep x-ascending: a point survives iff its y is strictly below every
  // smaller-x point's y. Within one x value only the minimal y survives
  // (all coordinate-tied copies of it).
  std::vector<int> frontier;
  double best_y = std::numeric_limits<double>::infinity();  // over strictly smaller x
  std::size_t i = 0;
  while (i < order.size()) {
    const double x = points[static_cast<std::size_t>(order[i])].first;
    const double group_y = points[static_cast<std::size_t>(order[i])].second;
    if (group_y < best_y) {
      for (std::size_t j = i;
           j < order.size() &&
           points[static_cast<std::size_t>(order[j])].first == x &&
           points[static_cast<std::size_t>(order[j])].second == group_y;
           ++j) {
        frontier.push_back(order[j]);
      }
      best_y = group_y;
    }
    while (i < order.size() && points[static_cast<std::size_t>(order[i])].first == x) ++i;
  }
  return frontier;
}

Frontier registers_vs_cycles(const ExploreResult& result, const std::string& kernel_name) {
  return frontier_for(
      result, kernel_name, "registers vs exec cycles", "registers", "exec_cycles",
      [](const DesignPoint& d) { return static_cast<double>(d.allocation.total()); },
      [](const DesignPoint& d) { return static_cast<double>(d.cycles.exec_cycles); });
}

Frontier slices_vs_time(const ExploreResult& result, const std::string& kernel_name) {
  return frontier_for(
      result, kernel_name, "slices vs time_us", "slices", "time_us",
      [](const DesignPoint& d) { return static_cast<double>(d.hw.slices); },
      [](const DesignPoint& d) { return d.time_us(); });
}

std::vector<int> best_per_budget(const ExploreResult& result) {
  std::vector<std::int64_t> budgets;
  for (const SpacePoint& point : result.space.points) budgets.push_back(point.budget);
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

  std::vector<int> best;
  for (const std::string& name : kernel_names(result)) {
    for (const std::int64_t budget : budgets) {
      int winner = -1;
      for (const SpacePoint& point : result.space.points) {
        if (point.budget != budget) continue;
        if (result.variant_of(point).kernel_name != name) continue;
        const PointResult& r = result.results[static_cast<std::size_t>(point.index)];
        if (!r.feasible) continue;
        if (winner < 0) {
          winner = point.index;
          continue;
        }
        const DesignPoint& cur = result.results[static_cast<std::size_t>(winner)].design;
        const DesignPoint& cand = r.design;
        if (cand.cycles.exec_cycles != cur.cycles.exec_cycles) {
          if (cand.cycles.exec_cycles < cur.cycles.exec_cycles) winner = point.index;
        } else if (cand.allocation.total() < cur.allocation.total()) {
          winner = point.index;
        }
      }
      if (winner >= 0) best.push_back(winner);
    }
  }
  return best;
}

}  // namespace srra::dse
