// Deterministic fault injection for the srrad service I/O edges
// (DESIGN.md §14). Every raw read/write/rename/fsync/connect the service
// performs goes through the wrappers below; with no plan installed they are
// the identity over the underlying syscalls. A FaultPlan — parsed from text
// (the SRRA_FAULT_PLAN environment variable, or installed directly by
// tests) — makes them deterministically misbehave: short reads/writes,
// EINTR storms, EAGAIN, ENOSPC/EIO, injected delays, torn frames, and
// named *crash points* that abort the process on their Nth hit so a
// torture test can relaunch over the same store directory and verify
// recovery.
//
// Plan grammar (one line; ';'-separated items):
//
//   plan  := item (';' item)*
//   item  := 'seed=' N                     -- Rng seed for @p draws (default 0)
//          | SITE '=' fault (',' fault)*   -- faults tried in order per op
//          | 'crash=' POINT ':' N          -- abort on the Nth hit of POINT
//   fault := KIND ('@' qual)*
//   qual  := 'p=' FLOAT                    -- fire with probability p
//          | 'n=' N                        -- fire on every Nth op at the site
//          | 'max=' N                      -- fire at most N times total
//   KIND  := short                         -- truncate to a seeded 1..len-1 cap
//          | eintr | eagain | enospc | eio -- return -1 with that errno
//          | delay=MS                      -- sleep, then keep scanning faults
//          | torn                          -- write half, then shutdown(SHUT_WR)
//   SITE  := client.connect | client.read | client.write
//          | server.read | server.write
//          | store.read | store.write | store.rename | store.flush
//          | store.journal
//
// Example: SRRA_FAULT_PLAN='seed=7;store.write=enospc@p=1;client.read=eintr@n=1@max=10,short@p=0.5'
//
// Faults are tried in plan order per operation; the first terminal fault
// (anything but delay) wins. All draws come from one SplitMix64 stream
// seeded by the plan, and all per-fault counters are plan-local, so the
// same plan against the same operation sequence misbehaves identically —
// which is what lets tests assert exact degraded behavior and CI soak runs
// replay bit-for-bit.
//
// Crash points are named checkpoints compiled into the store's write path
// (registered_crash_points() lists them); 'crash=POINT:N' calls _Exit(134)
// on the Nth hit. They are ordinary no-ops when no plan names them.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace srra::faultio {

enum class Site {
  kClientConnect,
  kClientRead,
  kClientWrite,
  kServerRead,
  kServerWrite,
  kStoreRead,
  kStoreWrite,
  kStoreRename,
  kStoreFlush,
  kStoreJournal,
  kCount,
};

/// The site spelling used by the plan grammar ("store.write", ...).
const char* site_name(Site site);

/// Installs a plan parsed from `text`; throws srra::Error on a grammar
/// error. An empty string resets to no injection.
void install_plan(const std::string& text);

/// Installs the plan from SRRA_FAULT_PLAN when set (srrad's entry point
/// calls this; a daemon run without the variable pays one getenv).
void install_plan_from_env();

/// Removes any installed plan and zeroes all counters.
void reset();

/// True when a plan is installed (the wrappers consult it per op).
bool plan_installed();

/// Faults fired so far at `site` (terminal and delay fires both count).
std::int64_t fires(Site site);

// --------------------------------------------------------------- crash points
// Named checkpoints in the store write path. crash_point() is a no-op
// unless the installed plan says 'crash=NAME:N' and this is the Nth hit —
// then the process exits immediately with status 134 (no destructors, no
// atexit: the closest deterministic stand-in for a mid-write power cut).

void crash_point(const char* name);

/// Every crash point compiled into the library, for torture tests to
/// iterate. Order is stable (write-path order).
const std::vector<std::string>& registered_crash_points();

// ------------------------------------------------------------------ wrappers
// Identical to the raw syscalls when no plan is installed. With a plan,
// each call first consults the schedule for its site: an injected errno
// returns -1 without touching the fd; 'short' caps the byte count; 'delay'
// sleeps; 'torn' (write sites) writes at most half then shuts down the
// socket's write side. EINTR/EAGAIN loops in callers behave exactly as
// they would against a hostile kernel.

ssize_t read(Site site, int fd, void* buf, std::size_t count);
ssize_t write(Site site, int fd, const void* buf, std::size_t count);
ssize_t recv(Site site, int fd, void* buf, std::size_t count, int flags);
ssize_t send(Site site, int fd, const void* buf, std::size_t count, int flags);
int rename(Site site, const char* from, const char* to);
int fsync(Site site, int fd);
int connect(Site site, int fd, const struct sockaddr* addr, socklen_t len);

}  // namespace srra::faultio
