// ASCII table builder used by the benchmark harness to print paper-style
// result tables (Table 1, Figure 2(c), ablation tables).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace srra {

/// Column alignment inside a Table cell.
enum class Align { kLeft, kRight };

/// Accumulates rows of string cells and renders them with aligned columns,
/// a header separator and optional group separators between logical blocks.
class Table {
 public:
  /// Creates a table with the given column headers; all columns default to
  /// right alignment except the first, which is left-aligned.
  explicit Table(std::vector<std::string> headers);

  /// Overrides the alignment of column `index`.
  void set_align(std::size_t index, Align align);

  /// Appends a data row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator after the current last row.
  void add_separator();

  /// Renders the table (headers, separator, rows) to `os`.
  void render(std::ostream& os) const;

  /// Renders to a string (convenience for tests).
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // indices of rows after which a rule is drawn
};

}  // namespace srra
