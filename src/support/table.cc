#include "support/table.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace srra {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t index, Align align) {
  check(index < aligns_.size(), "column index out of range");
  aligns_[index] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { separators_.push_back(rows_.size()); }

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto draw_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto draw_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string body = aligns_[c] == Align::kLeft ? pad_right(cells[c], widths[c])
                                                          : pad_left(cells[c], widths[c]);
      os << ' ' << body << " |";
    }
    os << '\n';
  };

  draw_rule();
  draw_row(headers_);
  draw_rule();
  std::size_t next_sep = 0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    while (next_sep < separators_.size() && separators_[next_sep] == r) {
      draw_rule();
      ++next_sep;
    }
    draw_row(rows_[r]);
  }
  draw_rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace srra
