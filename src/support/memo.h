// Thread-safe memo table mapping a flat integer key to a flat integer
// record. Used for derived-analysis caches that live on a shared RefModel
// (the cycle-model memo): readers take a shared lock, a miss computes
// outside any lock and publishes under an exclusive one, so two racing
// writers simply store the same deterministic value.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace srra {

class MemoTable {
 public:
  /// Copies the record for `key` into `out`; false on miss.
  bool lookup(const std::vector<std::int64_t>& key, std::vector<std::int64_t>& out) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = table_.find(key);
    if (it == table_.end()) return false;
    out = it->second;
    return true;
  }

  /// Publishes a record (first store wins; later stores of the same key
  /// are dropped — values are deterministic functions of the key).
  void store(const std::vector<std::int64_t>& key, std::vector<std::int64_t> value) const {
    std::unique_lock<std::shared_mutex> lock(mu_);
    table_.emplace(key, std::move(value));
  }

 private:
  mutable std::shared_mutex mu_;
  mutable std::map<std::vector<std::int64_t>, std::vector<std::int64_t>> table_;
};

}  // namespace srra
