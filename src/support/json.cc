#include "support/json.h"

#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace srra {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::begin_value() {
  check(!done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Scope::kObject) {
    check(key_pending_, "JsonWriter: object member needs key() first");
    key_pending_ = false;
    return;  // key() already wrote separator + indentation
  }
  if (has_items_.back()) os_ << ',';
  indent();
  has_items_.back() = true;
}

void JsonWriter::key(std::string_view name) {
  check(!stack_.empty() && stack_.back() == Scope::kObject,
        "JsonWriter: key() outside an object");
  check(!key_pending_, "JsonWriter: key() while a key is already pending");
  if (has_items_.back()) os_ << ',';
  indent();
  has_items_.back() = true;
  os_ << '"' << json_escape(name) << "\": ";
  key_pending_ = true;
}

void JsonWriter::open(Scope scope, char bracket) {
  begin_value();
  os_ << bracket;
  stack_.push_back(scope);
  has_items_.push_back(false);
}

void JsonWriter::close(Scope scope, char bracket) {
  check(!stack_.empty() && stack_.back() == scope && !key_pending_,
        "JsonWriter: unbalanced end of scope");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) indent();
  os_ << bracket;
  if (stack_.empty()) {
    os_ << '\n';
    done_ = true;
  }
}

void JsonWriter::begin_object() { open(Scope::kObject, '{'); }
void JsonWriter::end_object() { close(Scope::kObject, '}'); }
void JsonWriter::begin_array() { open(Scope::kArray, '['); }
void JsonWriter::end_array() { close(Scope::kArray, ']'); }

void JsonWriter::value(std::string_view text) {
  begin_value();
  os_ << '"' << json_escape(text) << '"';
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::value(std::int64_t number) {
  begin_value();
  os_ << number;
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::value(double number) {
  begin_value();
  if (!std::isfinite(number)) {
    os_ << "null";
  } else {
    // %.12g is locale-independent with snprintf on the platforms we target
    // and round-trips every value the models produce.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", number);
    os_ << buf;
  }
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::value(bool flag) {
  begin_value();
  os_ << (flag ? "true" : "false");
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::null() {
  begin_value();
  os_ << "null";
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

}  // namespace srra
