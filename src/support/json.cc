#include "support/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace srra {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::begin_value() {
  check(!done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Scope::kObject) {
    check(key_pending_, "JsonWriter: object member needs key() first");
    key_pending_ = false;
    return;  // key() already wrote separator + indentation
  }
  if (has_items_.back()) os_ << ',';
  indent();
  has_items_.back() = true;
}

void JsonWriter::key(std::string_view name) {
  check(!stack_.empty() && stack_.back() == Scope::kObject,
        "JsonWriter: key() outside an object");
  check(!key_pending_, "JsonWriter: key() while a key is already pending");
  if (has_items_.back()) os_ << ',';
  indent();
  has_items_.back() = true;
  os_ << '"' << json_escape(name) << "\": ";
  key_pending_ = true;
}

void JsonWriter::open(Scope scope, char bracket) {
  begin_value();
  os_ << bracket;
  stack_.push_back(scope);
  has_items_.push_back(false);
}

void JsonWriter::close(Scope scope, char bracket) {
  check(!stack_.empty() && stack_.back() == scope && !key_pending_,
        "JsonWriter: unbalanced end of scope");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) indent();
  os_ << bracket;
  if (stack_.empty()) {
    os_ << '\n';
    done_ = true;
  }
}

void JsonWriter::begin_object() { open(Scope::kObject, '{'); }
void JsonWriter::end_object() { close(Scope::kObject, '}'); }
void JsonWriter::begin_array() { open(Scope::kArray, '['); }
void JsonWriter::end_array() { close(Scope::kArray, ']'); }

void JsonWriter::value(std::string_view text) {
  begin_value();
  os_ << '"' << json_escape(text) << '"';
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::value(std::int64_t number) {
  begin_value();
  os_ << number;
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::value(double number) {
  begin_value();
  if (!std::isfinite(number)) {
    os_ << "null";
  } else {
    // %.12g is locale-independent with snprintf on the platforms we target
    // and round-trips every value the models produce.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", number);
    os_ << buf;
  }
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::value(bool flag) {
  begin_value();
  os_ << (flag ? "true" : "false");
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

void JsonWriter::null() {
  begin_value();
  os_ << "null";
  if (stack_.empty()) { os_ << '\n'; done_ = true; }
}

// ----------------------------------------------------------------- JsonValue

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::make_double(double v) {
  JsonValue j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::make_object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

bool JsonValue::as_bool() const {
  check(kind_ == Kind::kBool, "JsonValue: not a boolean");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  check(kind_ == Kind::kInt, "JsonValue: not an integer");
  return int_;
}

double JsonValue::as_double() const {
  check(is_number(), "JsonValue: not a number");
  return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  check(kind_ == Kind::kString, "JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  check(kind_ == Kind::kArray, "JsonValue: not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  check(kind_ == Kind::kObject, "JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  check(kind_ == Kind::kArray, "JsonValue: push_back on a non-array");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  check(kind_ == Kind::kObject, "JsonValue: set on a non-object");
  for (Member& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::write(JsonWriter& json) const {
  switch (kind_) {
    case Kind::kNull: json.null(); return;
    case Kind::kBool: json.value(bool_); return;
    case Kind::kInt: json.value(int_); return;
    case Kind::kDouble: json.value(double_); return;
    case Kind::kString: json.value(string_); return;
    case Kind::kArray:
      json.begin_array();
      for (const JsonValue& item : items_) item.write(json);
      json.end_array();
      return;
    case Kind::kObject:
      json.begin_object();
      for (const Member& member : members_) {
        json.key(member.first);
        member.second.write(json);
      }
      json.end_object();
      return;
  }
}

std::string JsonValue::to_string() const {
  std::ostringstream os;
  JsonWriter json(os);
  write(json);
  std::string text = os.str();
  // The writer terminates root values with '\n'; a value rendered into a
  // string is more useful without it.
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

// -------------------------------------------------------------------- parser

namespace {

constexpr int kMaxParseDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    check(pos_ == text_.size(), where("trailing characters after JSON document"));
    return value;
  }

 private:
  std::string where(std::string_view message) const {
    return cat("JSON parse error at byte ", pos_, ": ", message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < text_.size(), where("unexpected end of input"));
    return text_[pos_];
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char expected) {
    check(consume(expected), where(cat("expected '", expected, "'")));
  }

  void expect_literal(std::string_view literal) {
    check(text_.substr(pos_, literal.size()) == literal,
          where(cat("expected '", literal, "'")));
    pos_ += literal.size();
  }

  JsonValue parse_value(int depth) {
    check(depth < kMaxParseDepth, where("nesting too deep"));
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't': expect_literal("true"); return JsonValue::make_bool(true);
      case 'f': expect_literal("false"); return JsonValue::make_bool(false);
      case 'n': expect_literal("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue object = JsonValue::make_object();
    skip_whitespace();
    if (consume('}')) return object;
    for (;;) {
      skip_whitespace();
      check(peek() == '"', where("expected object key string"));
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (consume(',')) continue;
      expect('}');
      return object;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue array = JsonValue::make_array();
    skip_whitespace();
    if (consume(']')) return array;
    for (;;) {
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (consume(',')) continue;
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), where("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        check(static_cast<unsigned char>(c) >= 0x20,
              where("unescaped control character in string"));
        out += c;
        continue;
      }
      check(pos_ < text_.size(), where("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(where(cat("bad escape '\\", esc, "'")));
      }
    }
  }

  // \uXXXX escapes, including UTF-16 surrogate pairs, decoded to UTF-8 —
  // json_escape only ever emits \u00XX, but the wire protocol accepts
  // documents from foreign clients.
  std::string parse_unicode_escape() {
    const auto hex4 = [&]() -> unsigned {
      unsigned code = 0;
      for (int i = 0; i < 4; ++i) {
        check(pos_ < text_.size(), where("truncated \\u escape"));
        const char c = text_[pos_++];
        code <<= 4;
        if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
        else fail(where("bad hex digit in \\u escape"));
      }
      return code;
    };
    unsigned code = hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      check(consume('\\') && consume('u'), where("unpaired UTF-16 surrogate"));
      const unsigned low = hex4();
      check(low >= 0xDC00 && low <= 0xDFFF, where("bad low surrogate"));
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else {
      check(!(code >= 0xDC00 && code <= 0xDFFF), where("unpaired UTF-16 surrogate"));
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
          where("expected a value"));
    const std::size_t digits = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    check(pos_ - digits == 1 || text_[digits] != '0',
          where("leading zero in number"));  // RFC 8259
    bool integral = true;
    if (consume('.')) {
      integral = false;
      check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            where("expected digits after decimal point"));
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            where("expected exponent digits"));
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue::make_int(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double like other parsers do.
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    check(end == token.c_str() + token.size(), where("malformed number"));
    return JsonValue::make_double(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  JsonParser parser(text);
  return parser.parse_document();
}

}  // namespace srra
