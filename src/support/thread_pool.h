// Fixed-size thread pool with a deterministic parallel-for. There is no
// work stealing and no per-thread result state: workers claim indices from
// a shared counter and every index writes only into its own output slot, so
// the merged result is identical regardless of thread count or scheduling —
// the property the DSE engine's byte-identical-reports guarantee rests on
// (DESIGN.md §7).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace srra {

/// A fixed pool of `jobs - 1` worker threads plus the calling thread.
/// `jobs <= 1` runs everything inline on the caller (no threads spawned).
class ThreadPool {
 public:
  /// `jobs <= 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(int jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  int jobs() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(i)` for every i in [0, n), spread over the pool; blocks until
  /// all calls return. The first exception thrown by any `fn(i)` is
  /// rethrown on the caller once the batch drains. Not reentrant: `fn` must
  /// not call parallel_for on the same pool.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// Stops the worker threads and blocks until they exit. A batch already
  /// in flight completes in full first — workers never abandon claimed or
  /// unclaimed indices of a posted batch. Batches posted at or after
  /// shutdown run inline on their calling thread, so every parallel_for
  /// ever issued runs all of its tasks exactly once — the deterministic
  /// clean-exit contract the srrad daemon relies on (tested in
  /// test_support.cc). Idempotent; called by the destructor. May race with
  /// one concurrent parallel_for from another thread, but not with itself.
  void shutdown();

  /// Resolves a requested job count: <= 0 becomes hardware_concurrency;
  /// explicit positive requests are honored (capped at 256).
  static int clamp_jobs(int jobs);

 private:
  void run_batch();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped once per parallel_for batch
  bool shutdown_ = false;
  int idle_workers_ = 0;  // workers done with the current batch

  // Current batch (valid while a parallel_for is in flight).
  const std::function<void(std::int64_t)>* fn_ = nullptr;
  std::int64_t n_ = 0;
  std::atomic<std::int64_t> next_{0};
  std::exception_ptr error_;
};

}  // namespace srra
