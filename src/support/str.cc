#include "support/str.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace srra {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string to_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string to_percent(double ratio, int digits) {
  const double pct = ratio * 100.0;
  std::string body = to_fixed(pct, digits);
  if (pct > 0.0 && body[0] != '-') body = "+" + body;
  return body + "%";
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace srra
