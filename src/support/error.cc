#include "support/error.h"

#include <sstream>

namespace srra::detail {

void throw_error(std::string_view message, SourceLocation where) {
  std::ostringstream os;
  os << where.file_name() << ':' << where.line() << " (" << where.function_name()
     << "): " << message;
  throw Error(os.str());
}

}  // namespace srra::detail
