// Minimal streaming JSON writer and recursive-descent parser — the
// machine-readable twin of support/table.h. Emission is fully
// deterministic (fixed indentation, fixed number formatting, no locale
// dependence), which the DSE engine relies on for byte-identical reports
// across thread counts (DESIGN.md §7) and the service wire protocol
// (service/proto.h, DESIGN.md §12) relies on for byte-identical response
// frames. The parser accepts exactly RFC 8259 documents (no comments, no
// trailing commas) and preserves object member order, so
// parse -> write round-trips every document this library emits.
//
// Usage:
//   JsonWriter json(os);
//   json.begin_object();
//   json.key("name"); json.value("FIR");
//   json.key("budgets"); json.begin_array();
//   json.value(std::int64_t{64});
//   json.end_array();
//   json.end_object();   // destructor checks the document is complete
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace srra {

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes added).
std::string json_escape(std::string_view text);

/// Streams one JSON document, pretty-printed with 2-space indentation.
/// Structural misuse (value without key inside an object, unbalanced
/// end_*) throws srra::Error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(const std::string& text) { value(std::string_view(text)); }
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void value(double number);
  void value(bool flag);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void field(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

 private:
  enum class Scope { kObject, kArray };
  void begin_value();  // comma/newline/indent bookkeeping before any value
  void open(Scope scope, char bracket);
  void close(Scope scope, char bracket);
  void indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // per scope: something emitted yet?
  bool key_pending_ = false;
  bool done_ = false;
};

/// One parsed JSON value. Objects keep their members in document order
/// (lookup is a linear scan — wire-protocol objects are small); numbers
/// remember whether they were written as integers so integer fields
/// round-trip exactly through write().
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  static JsonValue make_bool(bool v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array();
  static JsonValue make_object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }

  /// Checked accessors; throw srra::Error on kind mismatch. as_double()
  /// accepts integers too (widening); as_int() requires an integral number.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;     ///< array elements
  const std::vector<Member>& members() const;      ///< object members, document order

  /// Object member by key, or nullptr (null/other kinds: always nullptr).
  const JsonValue* find(std::string_view key) const;

  /// Mutators for building documents programmatically (arrays/objects only).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Re-emits this value through `json` (object member order preserved), so
  /// parse_json + write reproduces the writer's deterministic formatting.
  void write(JsonWriter& json) const;

  /// Renders this value as a standalone pretty-printed document.
  std::string to_string() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws srra::Error with the byte offset of the
/// problem. Nesting depth is capped (protocol safety) at 64 levels.
JsonValue parse_json(std::string_view text);

}  // namespace srra
