// Minimal streaming JSON writer with correct string escaping — the
// machine-readable twin of support/table.h. Emission is fully
// deterministic (fixed indentation, fixed number formatting, no locale
// dependence), which the DSE engine relies on for byte-identical reports
// across thread counts (DESIGN.md §7).
//
// Usage:
//   JsonWriter json(os);
//   json.begin_object();
//   json.key("name"); json.value("FIR");
//   json.key("budgets"); json.begin_array();
//   json.value(std::int64_t{64});
//   json.end_array();
//   json.end_object();   // destructor checks the document is complete
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace srra {

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes added).
std::string json_escape(std::string_view text);

/// Streams one JSON document, pretty-printed with 2-space indentation.
/// Structural misuse (value without key inside an object, unbalanced
/// end_*) throws srra::Error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(const std::string& text) { value(std::string_view(text)); }
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void value(double number);
  void value(bool flag);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void field(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

 private:
  enum class Scope { kObject, kArray };
  void begin_value();  // comma/newline/indent bookkeeping before any value
  void open(Scope scope, char bracket);
  void close(Scope scope, char bracket);
  void indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // per scope: something emitted yet?
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace srra
