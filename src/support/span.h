// Minimal C++17 stand-in for std::span (C++20).
//
// The library only needs read-only contiguous views (`span<const T>`), but the
// template is written generically. Implicit conversion from std::vector,
// std::array, C arrays and std::initializer_list mirrors the call sites that
// were written against std::span.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace srra {

template <typename T>
class span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;
  using size_type = std::size_t;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr span() noexcept = default;
  constexpr span(T* data, size_type size) noexcept : data_(data), size_(size) {}

  template <std::size_t N>
  constexpr span(T (&arr)[N]) noexcept : data_(arr), size_(N) {}

  template <typename U, std::size_t N,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr span(std::array<U, N>& arr) noexcept : data_(arr.data()), size_(N) {}

  template <typename U, std::size_t N,
            typename = std::enable_if_t<std::is_convertible_v<const U (*)[], T (*)[]>>>
  constexpr span(const std::array<U, N>& arr) noexcept : data_(arr.data()), size_(N) {}

  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  span(std::vector<U>& vec) noexcept : data_(vec.data()), size_(vec.size()) {}

  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<const U (*)[], T (*)[]>>>
  span(const std::vector<U>& vec) noexcept : data_(vec.data()), size_(vec.size()) {}

  // Lifetime note: only valid while the initializer_list (i.e. the full
  // expression of the call) is alive — same as std::span in C++26.
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  constexpr span(std::initializer_list<value_type> il) noexcept
      : data_(il.begin()), size_(il.size()) {}

  // span<T> -> span<const T>
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr span(span<U> other) noexcept : data_(other.data()), size_(other.size()) {}

  constexpr T* data() const noexcept { return data_; }
  constexpr size_type size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr T& operator[](size_type i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr iterator begin() const noexcept { return data_; }
  constexpr iterator end() const noexcept { return data_ + size_; }

  constexpr span first(size_type n) const { return span(data_, n); }
  constexpr span last(size_type n) const { return span(data_ + (size_ - n), n); }
  constexpr span subspan(size_type offset) const {
    return span(data_ + offset, size_ - offset);
  }
  constexpr span subspan(size_type offset, size_type count) const {
    return span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_type size_ = 0;
};

}  // namespace srra
