// Error type and checked-precondition helpers for the srra library.
//
// Following the C++ Core Guidelines (E.2, I.6) we report errors that cannot
// be handled locally via exceptions and express preconditions as checks at
// function entry. `check()` is the library-wide precondition/invariant
// helper; it throws `srra::Error` carrying the failing location.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace srra {

/// Exception thrown on any srra precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// C++17 stand-in for std::source_location (C++20), backed by the GCC/Clang
/// __builtin_FILE/__builtin_LINE/__builtin_FUNCTION intrinsics so call sites
/// still capture the *caller's* location through default arguments.
class SourceLocation {
 public:
  static SourceLocation current(const char* file = __builtin_FILE(),
                                int line = __builtin_LINE(),
                                const char* function = __builtin_FUNCTION()) {
    SourceLocation loc;
    loc.file_ = file;
    loc.line_ = line;
    loc.function_ = function;
    return loc;
  }

  const char* file_name() const { return file_; }
  int line() const { return line_; }
  const char* function_name() const { return function_; }

 private:
  const char* file_ = "";
  int line_ = 0;
  const char* function_ = "";
};

namespace detail {
[[noreturn]] void throw_error(std::string_view message, SourceLocation where);
}  // namespace detail

/// Checks a precondition/invariant; throws srra::Error with location info on
/// failure. Used instead of assert() so violations are testable and carry a
/// message even in release builds.
inline void check(bool condition, std::string_view message,
                  SourceLocation where = SourceLocation::current()) {
  if (!condition) detail::throw_error(message, where);
}

/// Unconditional failure with location info (e.g. unreachable switch arms).
[[noreturn]] inline void fail(std::string_view message,
                              SourceLocation where = SourceLocation::current()) {
  detail::throw_error(message, where);
}

}  // namespace srra
