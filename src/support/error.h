// Error type and checked-precondition helpers for the srra library.
//
// Following the C++ Core Guidelines (E.2, I.6) we report errors that cannot
// be handled locally via exceptions and express preconditions as checks at
// function entry. `check()` is the library-wide precondition/invariant
// helper; it throws `srra::Error` carrying the failing location.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace srra {

/// Exception thrown on any srra precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(std::string_view message, std::source_location where);
}  // namespace detail

/// Checks a precondition/invariant; throws srra::Error with location info on
/// failure. Used instead of assert() so violations are testable and carry a
/// message even in release builds.
inline void check(bool condition, std::string_view message,
                  std::source_location where = std::source_location::current()) {
  if (!condition) detail::throw_error(message, where);
}

/// Unconditional failure with location info (e.g. unreachable switch arms).
[[noreturn]] inline void fail(std::string_view message,
                              std::source_location where = std::source_location::current()) {
  detail::throw_error(message, where);
}

}  // namespace srra
