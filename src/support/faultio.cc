#include "support/faultio.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "support/error.h"
#include "support/rng.h"
#include "support/str.h"

namespace srra::faultio {

namespace {

constexpr int kSiteCount = static_cast<int>(Site::kCount);

constexpr const char* kSiteNames[kSiteCount] = {
    "client.connect", "client.read", "client.write",
    "server.read",    "server.write",
    "store.read",     "store.write", "store.rename", "store.flush",
    "store.journal",
};

// The store write path's checkpoints, in write order (store.cc invokes
// them; keep the two lists in sync).
const std::vector<std::string> kCrashPoints = {
    "store.write.open",     // tmp file created, no payload bytes yet
    "store.write.partial",  // half the payload written (torn tmp)
    "store.write.sync",     // full payload written, before any fsync
    "store.write.rename",   // flushed tmp in place, before the rename
    "store.write.publish",  // renamed into place, before the index update
};

enum class Kind { kShort, kEintr, kEagain, kEnospc, kEio, kDelay, kTorn };

struct Fault {
  Kind kind = Kind::kShort;
  int delay_ms = 0;            ///< kDelay only
  double probability = -1.0;   ///< < 0 = unconditional
  std::int64_t every_nth = 0;  ///< > 0 = fire on every Nth op at the site
  std::int64_t max_fires = -1; ///< >= 0 = total-fire cap
  std::int64_t ops_seen = 0;
  std::int64_t fired = 0;
};

struct CrashRule {
  std::string point;
  std::int64_t nth = 1;
  std::int64_t hits = 0;
};

struct Plan {
  Rng rng{0};
  std::vector<Fault> faults[kSiteCount];
  std::vector<CrashRule> crashes;
};

/// What one consult decided: injected errno, byte cap, torn write, and any
/// accumulated delay (slept by the caller, outside the plan lock).
struct Outcome {
  int err = 0;
  std::size_t cap = SIZE_MAX;
  bool torn = false;
  int delay_ms = 0;
};

std::mutex g_mu;
std::unique_ptr<Plan> g_plan;
std::int64_t g_fires[kSiteCount] = {};

std::int64_t parse_u64(std::string_view text, std::string_view what) {
  const std::string t(text);
  check(!t.empty() && t.size() <= 18 &&
            t.find_first_not_of("0123456789") == std::string::npos,
        cat("fault plan: bad ", what, " value '", t, "'"));
  return std::atoll(t.c_str());
}

double parse_prob(std::string_view text) {
  const std::string t(text);
  char* end = nullptr;
  const double p = std::strtod(t.c_str(), &end);
  check(end != t.c_str() && *end == '\0' && p >= 0.0 && p <= 1.0,
        cat("fault plan: bad probability '", t, "' (want 0..1)"));
  return p;
}

Fault parse_fault(std::string_view token) {
  Fault fault;
  bool first = true;
  for (const std::string& part : split(std::string(token), '@')) {
    const std::string_view body = trim(part);
    if (first) {
      first = false;
      if (body == "short") fault.kind = Kind::kShort;
      else if (body == "eintr") fault.kind = Kind::kEintr;
      else if (body == "eagain") fault.kind = Kind::kEagain;
      else if (body == "enospc") fault.kind = Kind::kEnospc;
      else if (body == "eio") fault.kind = Kind::kEio;
      else if (body == "torn") fault.kind = Kind::kTorn;
      else if (starts_with(body, "delay=")) {
        fault.kind = Kind::kDelay;
        fault.delay_ms = static_cast<int>(parse_u64(body.substr(6), "delay"));
      } else {
        fail(cat("fault plan: unknown fault kind '", std::string(body),
                 "' (want short|eintr|eagain|enospc|eio|delay=MS|torn)"));
      }
      continue;
    }
    if (starts_with(body, "p=")) {
      fault.probability = parse_prob(body.substr(2));
    } else if (starts_with(body, "n=")) {
      fault.every_nth = parse_u64(body.substr(2), "n");
      check(fault.every_nth >= 1, "fault plan: @n must be >= 1");
    } else if (starts_with(body, "max=")) {
      fault.max_fires = parse_u64(body.substr(4), "max");
    } else {
      fail(cat("fault plan: unknown qualifier '@", std::string(body),
               "' (want @p=FLOAT, @n=N, @max=N)"));
    }
  }
  check(!first, "fault plan: empty fault token");
  return fault;
}

int site_index(std::string_view name) {
  for (int s = 0; s < kSiteCount; ++s) {
    if (name == kSiteNames[s]) return s;
  }
  return -1;
}

std::unique_ptr<Plan> parse_plan(const std::string& text) {
  auto plan = std::make_unique<Plan>();
  std::uint64_t seed = 0;
  for (const std::string& item : split(text, ';')) {
    const std::string_view body = trim(item);
    if (body.empty()) continue;
    if (starts_with(body, "seed=")) {
      seed = static_cast<std::uint64_t>(parse_u64(body.substr(5), "seed"));
      continue;
    }
    if (starts_with(body, "crash=")) {
      const std::string_view rest = body.substr(6);
      const std::size_t colon = rest.rfind(':');
      check(colon != std::string_view::npos,
            cat("fault plan: crash item needs POINT:N, got '", std::string(rest), "'"));
      CrashRule rule;
      rule.point = std::string(trim(rest.substr(0, colon)));
      rule.nth = parse_u64(trim(rest.substr(colon + 1)), "crash count");
      check(rule.nth >= 1, "fault plan: crash count must be >= 1");
      check(std::find(kCrashPoints.begin(), kCrashPoints.end(), rule.point) !=
                kCrashPoints.end(),
            cat("fault plan: unknown crash point '", rule.point, "'"));
      plan->crashes.push_back(std::move(rule));
      continue;
    }
    const std::size_t eq = body.find('=');
    check(eq != std::string_view::npos,
          cat("fault plan: bad item '", std::string(body), "'"));
    const int site = site_index(trim(body.substr(0, eq)));
    check(site >= 0, cat("fault plan: unknown site '",
                         std::string(trim(body.substr(0, eq))), "'"));
    for (const std::string& token : split(std::string(body.substr(eq + 1)), ',')) {
      plan->faults[site].push_back(parse_fault(trim(token)));
    }
  }
  plan->rng = Rng(seed);
  return plan;
}

// Decides the fate of one operation at `site`: walks the site's faults in
// plan order, first terminal fault wins; delay faults accumulate and keep
// scanning. `requested` bounds the short-read/short-write cap draw.
Outcome consult(Site site, std::size_t requested) {
  Outcome out;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_plan == nullptr) return out;
    for (Fault& fault : g_plan->faults[static_cast<int>(site)]) {
      ++fault.ops_seen;
      if (fault.max_fires >= 0 && fault.fired >= fault.max_fires) continue;
      if (fault.every_nth > 0 && fault.ops_seen % fault.every_nth != 0) continue;
      if (fault.probability >= 0.0 && g_plan->rng.uniform01() >= fault.probability) {
        continue;
      }
      ++fault.fired;
      ++g_fires[static_cast<int>(site)];
      if (fault.kind == Kind::kDelay) {
        delay_ms += fault.delay_ms;
        continue;
      }
      switch (fault.kind) {
        case Kind::kShort:
          out.cap = requested <= 1
                        ? requested
                        : 1 + static_cast<std::size_t>(g_plan->rng.next() %
                                                       (requested - 1));
          break;
        case Kind::kEintr: out.err = EINTR; break;
        case Kind::kEagain: out.err = EAGAIN; break;
        case Kind::kEnospc: out.err = ENOSPC; break;
        case Kind::kEio: out.err = EIO; break;
        case Kind::kTorn: out.torn = true; break;
        case Kind::kDelay: break;  // handled above
      }
      break;  // terminal fault decided this op
    }
  }
  out.delay_ms = delay_ms;
  return out;
}

void apply_delay(const Outcome& out) {
  if (out.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(out.delay_ms));
  }
}

}  // namespace

const char* site_name(Site site) { return kSiteNames[static_cast<int>(site)]; }

void install_plan(const std::string& text) {
  std::unique_ptr<Plan> plan;
  const std::string_view body = trim(text);
  if (!body.empty()) plan = parse_plan(std::string(body));
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = std::move(plan);
  for (std::int64_t& f : g_fires) f = 0;
}

void install_plan_from_env() {
  const char* text = std::getenv("SRRA_FAULT_PLAN");
  if (text != nullptr && *text != '\0') install_plan(text);
}

void reset() { install_plan(""); }

bool plan_installed() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_plan != nullptr;
}

std::int64_t fires(Site site) {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_fires[static_cast<int>(site)];
}

void crash_point(const char* name) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_plan == nullptr || g_plan->crashes.empty()) return;
  for (CrashRule& rule : g_plan->crashes) {
    if (rule.point != name) continue;
    if (++rule.hits == rule.nth) {
      // No destructors, no atexit, no buffered-stream flushes: the closest
      // deterministic stand-in for losing power mid-write.
      std::_Exit(134);
    }
  }
}

const std::vector<std::string>& registered_crash_points() { return kCrashPoints; }

ssize_t read(Site site, int fd, void* buf, std::size_t count) {
  const Outcome out = consult(site, count);
  apply_delay(out);
  if (out.err != 0) {
    errno = out.err;
    return -1;
  }
  return ::read(fd, buf, std::min(count, out.cap));
}

ssize_t write(Site site, int fd, const void* buf, std::size_t count) {
  const Outcome out = consult(site, count);
  apply_delay(out);
  if (out.err != 0) {
    errno = out.err;
    return -1;
  }
  if (out.torn) {
    // A torn file write claims full success but leaves half the bytes —
    // the silent-corruption shape the store's entry validation must catch.
    const std::size_t half = count <= 1 ? count : count / 2;
    if (::write(fd, buf, half) < 0) return -1;
    return static_cast<ssize_t>(count);
  }
  return ::write(fd, buf, std::min(count, out.cap));
}

ssize_t recv(Site site, int fd, void* buf, std::size_t count, int flags) {
  const Outcome out = consult(site, count);
  apply_delay(out);
  if (out.err != 0) {
    errno = out.err;
    return -1;
  }
  return ::recv(fd, buf, std::min(count, out.cap), flags);
}

ssize_t send(Site site, int fd, const void* buf, std::size_t count, int flags) {
  const Outcome out = consult(site, count);
  apply_delay(out);
  if (out.err != 0) {
    errno = out.err;
    return -1;
  }
  if (out.torn) {
    // A torn frame: half the bytes reach the peer, then the write side
    // closes — the peer must fail cleanly, not hang or misparse.
    const std::size_t half = count <= 1 ? count : count / 2;
    const ssize_t n = ::send(fd, buf, half, flags);
    ::shutdown(fd, SHUT_WR);
    return n;
  }
  return ::send(fd, buf, std::min(count, out.cap), flags);
}

int rename(Site site, const char* from, const char* to) {
  const Outcome out = consult(site, 0);
  apply_delay(out);
  if (out.err != 0) {
    errno = out.err;
    return -1;
  }
  return ::rename(from, to);
}

int fsync(Site site, int fd) {
  const Outcome out = consult(site, 0);
  apply_delay(out);
  if (out.err != 0) {
    errno = out.err;
    return -1;
  }
  return ::fsync(fd);
}

int connect(Site site, int fd, const struct sockaddr* addr, socklen_t len) {
  const Outcome out = consult(site, 0);
  apply_delay(out);
  if (out.err != 0) {
    errno = out.err;
    return -1;
  }
  return ::connect(fd, addr, len);
}

}  // namespace srra::faultio
