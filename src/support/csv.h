// Minimal CSV writer: benches can dump machine-readable result series next
// to the human-readable ASCII tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace srra {

/// Streams rows of cells as RFC-4180-style CSV (quotes fields containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; cells are escaped as needed.
  void row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace srra
