// Small string utilities shared across the library: concatenation of
// heterogeneous values, joining, padding and fixed-precision number
// formatting (libstdc++ 12 lacks std::format, so we provide the handful of
// helpers the project needs).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace srra {

namespace detail {
inline void cat_one(std::ostringstream& os) { (void)os; }
template <typename T, typename... Rest>
void cat_one(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  cat_one(os, rest...);
}
}  // namespace detail

/// Concatenates all arguments with operator<< into one string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  detail::cat_one(os, args...);
  return os.str();
}

/// Joins the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep` (no empty-token suppression).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Left-pads `text` with spaces to at least `width` characters.
std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads `text` with spaces to at least `width` characters.
std::string pad_right(std::string_view text, std::size_t width);

/// Formats `value` with exactly `digits` digits after the decimal point.
std::string to_fixed(double value, int digits);

/// Formats a ratio as a signed percentage string, e.g. "-12.3%".
std::string to_percent(double ratio, int digits = 1);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
std::string with_commas(long long value);

}  // namespace srra
