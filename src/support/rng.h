// Deterministic pseudo-random number generator (SplitMix64) used by tests
// and property sweeps; header-only so tests do not need extra linkage.
#pragma once

#include <cstdint>

namespace srra {

/// SplitMix64: tiny, fast, deterministic across platforms. Not for crypto.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace srra
