// Deterministic pseudo-random number generator (SplitMix64) used by tests
// and property sweeps; header-only so tests do not need extra linkage.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace srra {

/// SplitMix64: tiny, fast, deterministic across platforms. Not for crypto.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

/// Reads an unsigned integer from environment variable `name`; returns
/// `fallback` when the variable is unset or not a number.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(parsed);
}

/// Base seed for the randomized property tests. Fixed by default so CI runs
/// are reproducible; override with SRRA_FUZZ_SEED to explore other regions
/// or replay a failure.
inline std::uint64_t fuzz_seed() { return env_u64("SRRA_FUZZ_SEED", 0); }

/// Number of fuzz iterations (distinct derived seeds) per property.
/// Override with SRRA_FUZZ_ITERS, e.g. for a long soak run. Clamped to
/// [1, 1000000]: zero would leave the gtest suite uninstantiated (which
/// GoogleTest reports as a failure), and each iteration is a registered
/// gtest instance, so an unbounded count would hang test registration
/// (for a longer soak, sweep SRRA_FUZZ_SEED across runs instead).
inline int fuzz_iters() {
  constexpr std::uint64_t kMaxIters = 1000000;
  const std::uint64_t iters = env_u64("SRRA_FUZZ_ITERS", 24);
  if (iters < 1) return 1;
  if (iters > kMaxIters) return static_cast<int>(kMaxIters);
  return static_cast<int>(iters);
}

}  // namespace srra
