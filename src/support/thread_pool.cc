#include "support/thread_pool.h"

#include <algorithm>

namespace srra {

int ThreadPool::clamp_jobs(int jobs) {
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  // An explicit request is honored even beyond the core count (results are
  // thread-count-independent by construction; oversubscription only costs
  // scheduling). The cap is a sanity bound, not a tuning decision.
  return std::min(jobs, 256);
}

ThreadPool::ThreadPool(int jobs) {
  const int lanes = clamp_jobs(jobs <= 0 ? 0 : jobs);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int w = 0; w < lanes - 1; ++w) {
    workers_.emplace_back([this] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mu_);
          start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
          // Batch first, shutdown second: a batch posted before (or racing
          // with) shutdown() must run to completion, not be abandoned —
          // its caller is blocked waiting for idle_workers_ to converge.
          if (generation_ == seen) return;  // shutdown with no pending batch
          seen = generation_;
        }
        run_batch();
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++idle_workers_;
        }
        done_cv_.notify_one();
      }
    });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  // workers_ stays populated after the join (jobs() keeps reporting the
  // configured lane count); a waiter comparing idle_workers_ against
  // workers_.size() must not see the size change under it.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::run_batch() {
  for (;;) {
    const std::int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  {
    // Checking shutdown_ and posting the batch under one lock acquisition:
    // a shutdown() that lands after the batch is posted still runs it to
    // completion (workers handle a pending batch before exiting); one that
    // lands before is seen here and the batch runs inline instead.
    std::unique_lock<std::mutex> lock(mu_);
    if (workers_.empty() || shutdown_) {
      lock.unlock();
      // No workers, or the pool is (being) shut down: run inline on the
      // caller, exceptions propagate as-is. Every task still runs once.
      for (std::int64_t i = 0; i < n; ++i) fn(i);
      return;
    }
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    idle_workers_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  run_batch();  // the calling thread is a lane too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return idle_workers_ == static_cast<int>(workers_.size()); });
    fn_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace srra
