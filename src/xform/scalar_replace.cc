#include "xform/scalar_replace.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace srra {

const GroupPlan& TransformPlan::for_group(int g) const {
  check(g >= 0 && g < static_cast<int>(groups.size()), "group id out of range");
  return groups[static_cast<std::size_t>(g)];
}

TransformPlan plan_scalar_replacement(const RefModel& model, const Allocation& allocation) {
  allocation.validate(model);

  TransformPlan plan;
  plan.allocation = allocation;
  plan.groups.reserve(static_cast<std::size_t>(model.group_count()));

  for (int g = 0; g < model.group_count(); ++g) {
    const RefGroup& group = model.groups()[static_cast<std::size_t>(g)];
    const ReuseInfo& reuse = model.reuse()[static_cast<std::size_t>(g)];

    GroupPlan gp;
    gp.group = g;
    gp.display = group.display;
    gp.regs = allocation.at(g);
    gp.strategy = select_strategy(model.kernel(), group, reuse, gp.regs,
                                  model.options());
    if (gp.strategy.holds()) {
      gp.window_elements =
          window_size(model.kernel(), group.access, gp.strategy.carry_level);
      gp.full = gp.strategy.held_limit >= gp.window_elements;
      gp.rotating = std::any_of(reuse.distance.begin(), reuse.distance.end(),
                                [](std::int64_t d) { return d < 0; });
      const GroupCounts& counts = model.counts(g, gp.regs);
      gp.fills = counts.fills > 0;
      gp.flushes = counts.flushes > 0;
    }
    plan.groups.push_back(std::move(gp));
  }
  return plan;
}

std::string describe_plan(const RefModel& model, const TransformPlan& plan) {
  std::ostringstream os;
  os << "scalar replacement plan (" << plan.allocation.algorithm << ", "
     << plan.allocation.total() << "/" << plan.allocation.budget << " registers)\n";
  for (const GroupPlan& gp : plan.groups) {
    os << "  " << pad_right(gp.display, 14) << " regs=" << pad_left(std::to_string(gp.regs), 4);
    if (!gp.strategy.holds()) {
      os << "  RAM-resident (operand latch only)\n";
      continue;
    }
    const Loop& loop = model.kernel().loop(gp.strategy.carry_level);
    os << "  " << (gp.full ? "full" : "partial") << " window of " << gp.window_elements
       << " at loop '" << loop.var << "'";
    if (gp.rotating) os << ", rotating";
    if (gp.fills) os << "; fills " << (gp.rotating ? "inline (steady)" : "pre-peeled");
    if (gp.flushes) os << "; flushes back-peeled";
    os << "\n";
  }
  return os.str();
}

}  // namespace srra
