// Scalar-replacement transformation planning: turns an Allocation into a
// concrete per-reference rewrite description (register binding, window
// strategy, load/store placement), the blueprint both code emitters follow.
// The paper describes the corresponding code generation via loop pre-/back-
// peeling; the plan records, per reference, where the fill and flush
// traffic lives.
#pragma once

#include <string>
#include <vector>

#include "analysis/walker.h"
#include "core/allocation.h"

namespace srra {

/// Rewrite description of one reference group.
struct GroupPlan {
  int group = -1;
  std::string display;             ///< e.g. "b[k][j]"
  std::int64_t regs = 0;           ///< registers bound to the group
  RefStrategy strategy;            ///< window policy (level + held count)
  std::int64_t window_elements = 0;///< distinct elements per carry iteration
  bool full = false;               ///< whole window held
  bool rotating = false;           ///< sliding window (rotating register file)
  bool fills = false;              ///< reads RAM into registers
  bool flushes = false;            ///< writes registers back to RAM
};

/// The whole-kernel transformation plan.
struct TransformPlan {
  Allocation allocation;
  std::vector<GroupPlan> groups;   ///< index-aligned with the model's groups

  const GroupPlan& for_group(int g) const;
};

/// Plans the rewrite for `allocation` (which must validate against `model`).
TransformPlan plan_scalar_replacement(const RefModel& model, const Allocation& allocation);

/// Human-readable plan summary (examples and logs).
std::string describe_plan(const RefModel& model, const TransformPlan& plan);

}  // namespace srra
