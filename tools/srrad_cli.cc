// srrad: the batch/streaming allocation service (DESIGN.md §12, §15).
// Serves length-prefixed JSON query frames over a Unix socket, loopback
// TCP, or stdin/stdout, against a persistent on-disk result store that is
// safe to share between several srrad processes.
//
//   srrad --stdio [--store=DIR] [--jobs=N]
//   srrad --socket=/tmp/srrad.sock --store=/var/cache/srrad --jobs=0
//   srrad --tcp=7433 --store=store
//   srrad --store=store --export-manifest
//   srrad --socket=/tmp/b.sock --store=fresh --warm-from=/tmp/a.sock
//
// Query it with `srra client` (see README "Running the service").
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "service/proto.h"
#include "service/server.h"
#include "service/store.h"
#include "support/error.h"
#include "support/faultio.h"
#include "support/str.h"

namespace {

const char kUsage[] =
    "usage: srrad (--stdio | --socket=PATH | --tcp=PORT | --export-manifest)\n"
    "             [flags]\n"
    "\n"
    "flags:\n"
    "  --stdio          serve frames on stdin/stdout (one-shot pipe mode)\n"
    "  --socket=PATH    listen on a Unix domain socket\n"
    "  --tcp=PORT       listen on 127.0.0.1:PORT\n"
    "  --store=DIR      persistent result store directory (default: none,\n"
    "                   in-memory caching only); safe to share between\n"
    "                   several srrad processes\n"
    "  --store-max-entries=N  store eviction cap in entries (default 4096,\n"
    "                   min 1; --store-max is an accepted alias)\n"
    "  --memory-max-entries=N  in-memory payload cache cap in entries\n"
    "                   (default 65536, min 1)\n"
    "  --fsync          fsync every store entry (and its directory) before\n"
    "                   reporting it stored; default off — the store is a\n"
    "                   cache, a lost entry is only a recompute\n"
    "  --jobs=N         compute threads per batch (default 0 = all cores;\n"
    "                   responses are byte-identical for any value)\n"
    "  --read-deadline-ms=N  close a connection stuck mid-frame after N ms\n"
    "                   (default 30000; 0 = never)\n"
    "  --export-manifest  print a deterministic JSON manifest of the store\n"
    "                   (keys, costs, payload hashes, sorted by key) and\n"
    "                   exit; requires --store\n"
    "  --warm-from=ENDPOINT  before serving, stream the peer daemon's\n"
    "                   stored entries (best recompute-cost-per-byte first)\n"
    "                   into this store via paged pull requests; ENDPOINT\n"
    "                   is a socket path or host:port. An unreachable peer\n"
    "                   is a warning — the daemon serves cold, not dead\n"
    "\n"
    "The SRRA_FAULT_PLAN environment variable installs a deterministic\n"
    "fault-injection plan over every I/O edge (DESIGN.md §14) — test and\n"
    "soak tooling only.\n";

long long parse_count(const std::string& text, const char* what, long long min_value) {
  srra::check(!text.empty() && text.size() <= 9 &&
                  text.find_first_not_of("0123456789") == std::string::npos,
              srra::cat("bad ", what, " value: ", text));
  const long long value = std::atoll(text.c_str());
  srra::check(value >= min_value,
              srra::cat("bad ", what, " value: ", text, " (must be >= ", min_value, ")"));
  return value;
}

// The srrad-manifest/v1 document: every stored entry's key, size, cost and
// payload hash, sorted by key — two stores holding the same entries print
// byte-identical manifests, which is how replication jobs and tests prove a
// warmup actually transferred the peer's bytes. Arrival sequence numbers
// are deliberately absent: they record local history (a warmed store
// receives entries best-score-first), not content.
int export_manifest(const std::string& store_dir) {
  srra::check(!store_dir.empty(), "--export-manifest requires --store=DIR");
  srra::service::ResultStore store(store_dir);
  srra::check(!store.open_failed(),
              srra::cat("cannot open store '", store_dir, "'"));
  std::cout << "{\n  \"schema\": \"srrad-manifest/v1\",\n  \"entries\": [";
  bool first = true;
  for (const srra::service::StoreEntryInfo& row : store.snapshot()) {
    const auto payload = store.get(row.key);
    if (!payload.has_value()) continue;  // dropped as corrupt mid-scan
    std::cout << (first ? "" : ",") << "\n    {\"key\": \"" << row.key
              << "\", \"bytes\": " << row.bytes << ", \"cost\": " << row.cost
              << ", \"hash\": \"" << srra::service::payload_hash(*payload)
              << "\"}";
    first = false;
  }
  std::cout << (first ? "]\n}\n" : "\n  ]\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client hanging up mid-response must surface as a failed write on
  // that connection, never a process-killing SIGPIPE (socket sends already
  // use MSG_NOSIGNAL; this covers the stdio pipe path too).
  std::signal(SIGPIPE, SIG_IGN);

  const std::vector<std::string> args(argv + 1, argv + argc);
  bool stdio = false;
  bool manifest = false;
  std::string socket_path;
  std::string warm_from;
  int tcp_port = 0;
  srra::service::ServerOptions options;
  options.jobs = 0;  // a daemon defaults to all cores; results don't depend on it

  try {
    srra::faultio::install_plan_from_env();
    for (const std::string& arg : args) {
      if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      }
      const std::size_t eq = arg.find('=');
      const std::string name = arg.substr(0, eq);
      const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
      if (name == "--stdio") {
        stdio = true;
      } else if (name == "--socket") {
        srra::check(!value.empty(), "--socket needs a path");
        socket_path = value;
      } else if (name == "--tcp") {
        tcp_port = static_cast<int>(parse_count(value, "--tcp", 1));
      } else if (name == "--store") {
        srra::check(!value.empty(), "--store needs a directory");
        options.store_dir = value;
      } else if (name == "--store-max-entries" || name == "--store-max") {
        options.store_max_entries = parse_count(value, name.c_str(), 1);
      } else if (name == "--memory-max-entries") {
        options.memory_max_entries = parse_count(value, "--memory-max-entries", 1);
      } else if (name == "--fsync") {
        srra::check(value.empty(), "--fsync takes no value");
        options.store_fsync = true;
      } else if (name == "--jobs") {
        options.jobs = static_cast<int>(parse_count(value, "--jobs", 0));
      } else if (name == "--read-deadline-ms") {
        options.read_deadline_ms =
            static_cast<int>(parse_count(value, "--read-deadline-ms", 0));
      } else if (name == "--export-manifest") {
        srra::check(value.empty(), "--export-manifest takes no value");
        manifest = true;
      } else if (name == "--warm-from") {
        srra::check(!value.empty(),
                    "--warm-from needs a peer endpoint (socket path or host:port)");
        warm_from = value;
      } else {
        srra::fail(srra::cat("unknown flag: ", arg));
      }
    }
    if (manifest) {
      srra::check(!stdio && socket_path.empty() && tcp_port == 0 && warm_from.empty(),
                  "--export-manifest runs alone (no serve mode, no --warm-from)");
      return export_manifest(options.store_dir);
    }
    const int modes = static_cast<int>(stdio) + static_cast<int>(!socket_path.empty()) +
                      static_cast<int>(tcp_port != 0);
    if (modes != 1) {
      std::cerr << "error: pick exactly one of --stdio, --socket, --tcp\n\n" << kUsage;
      return 2;
    }

    srra::service::Server server(std::move(options));
    if (!warm_from.empty()) {
      // Best effort by design: a fresh shard whose peer is down should
      // come up cold and compute, not refuse to start.
      try {
        const int adopted = server.warm_from_peer(warm_from);
        std::cerr << "srrad: warmed " << adopted << " entries from " << warm_from
                  << "\n";
      } catch (const srra::Error& e) {
        std::cerr << "srrad: warning: warm-from " << warm_from
                  << " failed, serving cold: " << e.what() << "\n";
      }
    }
    if (stdio) return server.serve_stream(std::cin, std::cout);
    if (!socket_path.empty()) {
      std::cerr << "srrad: listening on " << socket_path << "\n";
      return server.serve_unix(socket_path);
    }
    std::cerr << "srrad: listening on 127.0.0.1:" << tcp_port << "\n";
    return server.serve_tcp(tcp_port);
  } catch (const srra::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
