// srrad: the batch/streaming allocation service (DESIGN.md §12). Serves
// length-prefixed JSON query frames over a Unix socket, loopback TCP, or
// stdin/stdout, against a persistent on-disk result store.
//
//   srrad --stdio [--store=DIR] [--jobs=N]
//   srrad --socket=/tmp/srrad.sock --store=/var/cache/srrad --jobs=0
//   srrad --tcp=7433 --store=store
//
// Query it with `srra client` (see README "Running the service").
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "service/server.h"
#include "support/error.h"
#include "support/faultio.h"
#include "support/str.h"

namespace {

const char kUsage[] =
    "usage: srrad (--stdio | --socket=PATH | --tcp=PORT) [flags]\n"
    "\n"
    "flags:\n"
    "  --stdio          serve frames on stdin/stdout (one-shot pipe mode)\n"
    "  --socket=PATH    listen on a Unix domain socket\n"
    "  --tcp=PORT       listen on 127.0.0.1:PORT\n"
    "  --store=DIR      persistent result store directory (default: none,\n"
    "                   in-memory caching only)\n"
    "  --store-max=N    store eviction cap in entries (default 4096)\n"
    "  --fsync          fsync every store entry (and its directory) before\n"
    "                   reporting it stored; default off — the store is a\n"
    "                   cache, a lost entry is only a recompute\n"
    "  --jobs=N         compute threads per batch (default 0 = all cores;\n"
    "                   responses are byte-identical for any value)\n"
    "  --read-deadline-ms=N  close a connection stuck mid-frame after N ms\n"
    "                   (default 30000; 0 = never)\n"
    "\n"
    "The SRRA_FAULT_PLAN environment variable installs a deterministic\n"
    "fault-injection plan over every I/O edge (DESIGN.md §14) — test and\n"
    "soak tooling only.\n";

long long parse_count(const std::string& text, const char* what, long long min_value) {
  srra::check(!text.empty() && text.size() <= 9 &&
                  text.find_first_not_of("0123456789") == std::string::npos,
              srra::cat("bad ", what, " value: ", text));
  const long long value = std::atoll(text.c_str());
  srra::check(value >= min_value,
              srra::cat("bad ", what, " value: ", text, " (must be >= ", min_value, ")"));
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  // A client hanging up mid-response must surface as a failed write on
  // that connection, never a process-killing SIGPIPE (socket sends already
  // use MSG_NOSIGNAL; this covers the stdio pipe path too).
  std::signal(SIGPIPE, SIG_IGN);

  const std::vector<std::string> args(argv + 1, argv + argc);
  bool stdio = false;
  std::string socket_path;
  int tcp_port = 0;
  srra::service::ServerOptions options;
  options.jobs = 0;  // a daemon defaults to all cores; results don't depend on it

  try {
    srra::faultio::install_plan_from_env();
    for (const std::string& arg : args) {
      if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      }
      const std::size_t eq = arg.find('=');
      const std::string name = arg.substr(0, eq);
      const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
      if (name == "--stdio") {
        stdio = true;
      } else if (name == "--socket") {
        srra::check(!value.empty(), "--socket needs a path");
        socket_path = value;
      } else if (name == "--tcp") {
        tcp_port = static_cast<int>(parse_count(value, "--tcp", 1));
      } else if (name == "--store") {
        srra::check(!value.empty(), "--store needs a directory");
        options.store_dir = value;
      } else if (name == "--store-max") {
        options.store_max_entries = parse_count(value, "--store-max", 1);
      } else if (name == "--fsync") {
        srra::check(value.empty(), "--fsync takes no value");
        options.store_fsync = true;
      } else if (name == "--jobs") {
        options.jobs = static_cast<int>(parse_count(value, "--jobs", 0));
      } else if (name == "--read-deadline-ms") {
        options.read_deadline_ms =
            static_cast<int>(parse_count(value, "--read-deadline-ms", 0));
      } else {
        srra::fail(srra::cat("unknown flag: ", arg));
      }
    }
    const int modes = static_cast<int>(stdio) + static_cast<int>(!socket_path.empty()) +
                      static_cast<int>(tcp_port != 0);
    if (modes != 1) {
      std::cerr << "error: pick exactly one of --stdio, --socket, --tcp\n\n" << kUsage;
      return 2;
    }

    srra::service::Server server(std::move(options));
    if (stdio) return server.serve_stream(std::cin, std::cout);
    if (!socket_path.empty()) {
      std::cerr << "srrad: listening on " << socket_path << "\n";
      return server.serve_unix(socket_path);
    }
    std::cerr << "srrad: listening on 127.0.0.1:" << tcp_port << "\n";
    return server.serve_tcp(tcp_port);
  } catch (const srra::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
