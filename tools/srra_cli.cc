// The `srra` command-line tool: design-space exploration over the paper's
// kernels (and user kernel-DSL files) without writing C++. All the logic
// lives in src/dse/cli.{h,cc} so the test suite can drive it in-process;
// this translation unit is only the process shell.
//
//   srra list
//   srra run    --kernel=fir
//   srra sweep  --kernel=example --budgets=16:64 --jobs=2 --format=json
//   srra pareto --kernel=paper --interchange --fetch=both --jobs=0
#include <iostream>
#include <string>
#include <vector>

#include "dse/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return srra::dse::run_cli(args, std::cout, std::cerr);
}
