#!/usr/bin/env sh
# CI perf guard: fails when a bench's measured wall time regresses more than
# FACTOR x over the committed baseline JSON. Both files use the run_all.sh
# BENCH JSON schema (a top-level "wall_seconds" number); baselines live in
# tests/golden/ and are refreshed deliberately when a PR changes the
# performance envelope on purpose.
#
# Usage: tools/perf_guard.sh <measured.json> <baseline.json> [more pairs...] [factor]
#
# Arguments are (measured, baseline) pairs; an optional trailing odd
# argument is the factor applied to every pair (default 2). The guard
# checks all pairs and fails if any one regresses, so one CI step can watch
# bench_register_sweep and bench_dse together.
set -u

[ "$#" -ge 2 ] || {
  echo "usage: perf_guard.sh <measured.json> <baseline.json> [more pairs...] [factor]" >&2
  exit 2
}

factor=2
if [ $(( $# % 2 )) -eq 1 ]; then
  # Trailing factor: POSIX-portable "last argument".
  for factor do :; done
  # A malformed factor must not sail through awk, which coerces garbage to 0
  # and turns the guard into a pass-everything (limit 0 fails all) or
  # fail-everything no-op. Require a positive decimal number.
  case $factor in
    *[!0-9.]* | '' | . | *.*.*) factor= ;;
  esac
  [ -n "$factor" ] && awk -v f="$factor" 'BEGIN { exit (f > 0) ? 0 : 1 }' || {
    echo "error: factor must be a positive number" >&2
    echo "usage: perf_guard.sh <measured.json> <baseline.json> [more pairs...] [factor]" >&2
    exit 2
  }
fi

get_wall() {
  sed -n 's/.*"wall_seconds": *\([0-9][0-9.]*\).*/\1/p' "$1" | head -n 1
}

status=0
while [ "$#" -ge 2 ]; do
  measured=$1
  baseline=$2
  shift 2

  m=$(get_wall "$measured")
  b=$(get_wall "$baseline")
  [ -n "$m" ] || { echo "error: no wall_seconds in $measured" >&2; exit 2; }
  [ -n "$b" ] || { echo "error: no wall_seconds in $baseline" >&2; exit 2; }

  if awk -v m="$m" -v b="$b" -v f="$factor" -v name="$measured" 'BEGIN {
    limit = b * f
    printf "perf-guard: %s measured %.3fs, baseline %.3fs, limit %.3fs (%sx)\n", \
        name, m, b, limit, f
    exit (m <= limit) ? 0 : 1
  }'; then
    :
  else
    echo "perf-guard FAIL: $measured regressed more than ${factor}x over $baseline" >&2
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "perf-guard: OK"
exit "$status"
