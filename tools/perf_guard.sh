#!/usr/bin/env sh
# CI perf guard: fails when a bench's measured wall time regresses more than
# FACTOR x over the committed baseline JSON. Both files use the run_all.sh
# BENCH JSON schema (a top-level "wall_seconds" number); the baseline lives
# in tests/golden/ and is refreshed deliberately when a PR changes the
# performance envelope on purpose.
#
# Usage: tools/perf_guard.sh <measured.json> <baseline.json> [factor]
set -u

measured=${1:?usage: perf_guard.sh <measured.json> <baseline.json> [factor]}
baseline=${2:?usage: perf_guard.sh <measured.json> <baseline.json> [factor]}
factor=${3:-2}

get_wall() {
  sed -n 's/.*"wall_seconds": *\([0-9][0-9.]*\).*/\1/p' "$1" | head -n 1
}

m=$(get_wall "$measured")
b=$(get_wall "$baseline")
[ -n "$m" ] || { echo "error: no wall_seconds in $measured" >&2; exit 2; }
[ -n "$b" ] || { echo "error: no wall_seconds in $baseline" >&2; exit 2; }

if awk -v m="$m" -v b="$b" -v f="$factor" 'BEGIN {
  limit = b * f
  printf "perf-guard: measured %.3fs, baseline %.3fs, limit %.3fs (%sx)\n", m, b, limit, f
  exit (m <= limit) ? 0 : 1
}'; then
  echo "perf-guard: OK"
else
  echo "perf-guard FAIL: $measured regressed more than ${factor}x over $baseline" >&2
  exit 1
fi
