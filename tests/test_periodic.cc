// Equivalence suite for the periodic collapse (DESIGN.md §8): the collapsed
// access counters and cycle reports must be bit-identical to the full
// iteration-space oracles on every built-in kernel and across randomized
// kernels, budgets, strategies and model knobs. Deterministic by default;
// SRRA_FUZZ_SEED / SRRA_FUZZ_ITERS override the base seed and instance
// count exactly as in test_fuzz, and every failure carries the replay
// recipe.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/periodic.h"
#include "analysis/walker.h"
#include "core/registry.h"
#include "kernels/kernels.h"
#include "random_kernel.h"
#include "sched/cycle_model.h"
#include "support/rng.h"

namespace srra {
namespace {

using srra::testing::random_kernel;

void expect_counts_equal(const GroupCounts& collapsed, const GroupCounts& oracle,
                         const std::string& context) {
  EXPECT_EQ(collapsed.miss_reads, oracle.miss_reads) << context;
  EXPECT_EQ(collapsed.miss_writes, oracle.miss_writes) << context;
  EXPECT_EQ(collapsed.fills, oracle.fills) << context;
  EXPECT_EQ(collapsed.steady_fills, oracle.steady_fills) << context;
  EXPECT_EQ(collapsed.flushes, oracle.flushes) << context;
  EXPECT_EQ(collapsed.steady_flushes, oracle.steady_flushes) << context;
  EXPECT_EQ(collapsed.reg_hits, oracle.reg_hits) << context;
  EXPECT_EQ(collapsed.reg_writes, oracle.reg_writes) << context;
  EXPECT_EQ(collapsed.forwards, oracle.forwards) << context;
}

void expect_reports_equal(const CycleReport& collapsed, const CycleReport& oracle,
                          const std::string& context) {
  EXPECT_EQ(collapsed.mem_cycles, oracle.mem_cycles) << context;
  EXPECT_EQ(collapsed.ram_accesses, oracle.ram_accesses) << context;
  EXPECT_EQ(collapsed.exec_cycles, oracle.exec_cycles) << context;
  EXPECT_EQ(collapsed.iterations, oracle.iterations) << context;
}

// Every candidate strategy the empirical selection would consider, plus a
// few out-of-policy window sizes for extra coverage.
std::vector<RefStrategy> candidate_strategies(const Kernel& kernel, const ReuseInfo& info) {
  std::vector<RefStrategy> candidates;
  candidates.push_back(RefStrategy{});  // no holding
  for (const CarryLevel& cl : info.levels) {
    for (const std::int64_t held :
         {std::int64_t{1}, std::int64_t{2}, cl.beta - 1, cl.beta, cl.beta + 3}) {
      if (held <= 0) continue;
      candidates.push_back(RefStrategy{cl.level, held});
    }
  }
  (void)kernel;
  return candidates;
}

void check_kernel_counts(const Kernel& kernel, const std::string& name) {
  const auto groups = collect_ref_groups(kernel);
  const auto reuse = analyze_all_reuse(kernel, groups);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    // Fixed-strategy equivalence: collapsed vs full walk for every
    // candidate window shape.
    for (const RefStrategy& strategy : candidate_strategies(kernel, reuse[g])) {
      std::ostringstream context;
      context << name << " group " << groups[g].display << " carry "
              << strategy.carry_level << " held " << strategy.held_limit;
      expect_counts_equal(count_group_accesses_collapsed(kernel, groups[g], strategy),
                          count_group_accesses_full(kernel, groups[g], strategy),
                          context.str());
    }
    // End-to-end equivalence through strategy selection at a register
    // ladder, under both counting paths.
    ModelOptions oracle;
    oracle.full_walk_oracle = true;
    for (const std::int64_t regs :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{2}, std::int64_t{3},
          reuse[g].beta_full() - 1, reuse[g].beta_full(), reuse[g].beta_full() + 5}) {
      if (regs < 0) continue;
      std::ostringstream context;
      context << name << " group " << groups[g].display << " regs " << regs;
      const RefStrategy fast = select_strategy(kernel, groups[g], reuse[g], regs);
      const RefStrategy slow = select_strategy(kernel, groups[g], reuse[g], regs, oracle);
      EXPECT_EQ(fast.carry_level, slow.carry_level) << context.str();
      EXPECT_EQ(fast.held_limit, slow.held_limit) << context.str();
      expect_counts_equal(count_group_accesses(kernel, groups[g], reuse[g], regs),
                          count_group_accesses(kernel, groups[g], reuse[g], regs, oracle),
                          context.str());
    }
  }
}

void check_kernel_cycles(Kernel kernel, const std::string& name) {
  const RefModel model(std::move(kernel));
  for (const bool fetch : {true, false}) {
    for (const bool fsm : {true, false}) {
      for (const std::int64_t budget :
           {static_cast<std::int64_t>(model.group_count()), std::int64_t{8},
            std::int64_t{64}}) {
        if (budget < model.group_count()) continue;
        for (const Algorithm alg :
             {Algorithm::kFeasibility, Algorithm::kFrRa, Algorithm::kCpaRa,
              Algorithm::kOptimalDp}) {
          const Allocation a = allocate(alg, model, budget);
          CycleOptions collapsed;
          collapsed.concurrent_operand_fetch = fetch;
          collapsed.fsm_serial_memory = fsm;
          CycleOptions full = collapsed;
          full.full_iteration_walk = true;
          std::ostringstream context;
          context << name << " " << algorithm_name(alg) << " budget " << budget
                  << (fetch ? " concurrent" : " serial") << (fsm ? " fsm" : " overlap");
          expect_reports_equal(estimate_cycles(model, a, collapsed),
                               estimate_cycles(model, a, full), context.str());
        }
      }
    }
  }
}

TEST(Periodic, CountsMatchOracleOnBuiltinKernels) {
  check_kernel_counts(kernels::paper_example(), "example");
  for (kernels::NamedKernel& nk : kernels::all_kernels()) {
    check_kernel_counts(nk.kernel, nk.name);
  }
}

TEST(Periodic, CycleReportsMatchFullWalkOnBuiltinKernels) {
  check_kernel_cycles(kernels::paper_example(), "example");
  for (kernels::NamedKernel& nk : kernels::all_kernels()) {
    check_kernel_cycles(std::move(nk.kernel), nk.name);
  }
}

TEST(Periodic, MemoizedReportIsStableAndSaturationSharesEntries) {
  const RefModel model(kernels::fir());
  const Allocation a = allocate(Algorithm::kFrRa, model, 64);
  const CycleReport first = estimate_cycles(model, a);
  const CycleReport second = estimate_cycles(model, a);
  expect_reports_equal(second, first, "repeat call");

  // Saturated budgets pick the same strategies, so the report must be
  // identical whether it came from the memo or a fresh walk.
  const Allocation bigger = allocate(Algorithm::kFrRa, model, 128);
  CycleOptions full;
  full.full_iteration_walk = true;
  expect_reports_equal(estimate_cycles(model, bigger),
                       estimate_cycles(model, bigger, full), "saturated budget");
}

class PeriodicFuzz : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t seed() const {
    return fuzz_seed() + static_cast<std::uint64_t>(GetParam());
  }

  std::string replay_hint() const {
    std::ostringstream os;
    os << "fuzz seed " << seed() << " — replay with SRRA_FUZZ_SEED=" << seed()
       << " SRRA_FUZZ_ITERS=1 ./test_periodic";
    return os.str();
  }
};

TEST_P(PeriodicFuzz, CountsMatchOracle) {
  SCOPED_TRACE(replay_hint());
  Rng rng(seed() * 48611 + 11);
  const Kernel kernel = random_kernel(rng);
  check_kernel_counts(kernel, "fuzz");
}

TEST_P(PeriodicFuzz, CycleReportsMatchFullWalk) {
  SCOPED_TRACE(replay_hint());
  Rng rng(seed() * 75979 + 13);
  check_kernel_cycles(random_kernel(rng), "fuzz");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeriodicFuzz, ::testing::Range(0, fuzz_iters()));

}  // namespace
}  // namespace srra
