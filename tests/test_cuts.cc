#include <gtest/gtest.h>

#include <set>

#include "analysis/model.h"
#include "dfg/cuts.h"
#include "dfg/latency.h"
#include "ir/parser.h"
#include "kernels/kernels.h"

namespace srra {
namespace {

// Renders a node-id cut as sorted display labels for readable assertions.
std::set<std::string> labels(const Dfg& dfg, const std::vector<int>& cut) {
  std::set<std::string> out;
  for (int id : cut) out.insert(dfg.node(id).label);
  return out;
}

TEST(Cuts, ExampleCutsMatchFigure2b) {
  const RefModel m(kernels::paper_example());
  const Dfg dfg = Dfg::build(m.kernel(), m.groups());
  const LatencyModel lat;
  const std::vector<std::int64_t> regs(static_cast<std::size_t>(m.group_count()), 1);
  const auto weights = node_weights(dfg, m, regs, lat);
  const CriticalGraph cg = critical_graph(dfg, weights);

  // The c path (1 + op2 + 1) is shorter than the a/b path (1 + op1 + op2 + 1),
  // so c is not in the CG.
  const auto cuts = find_cuts(dfg, cg, weights);
  std::set<std::set<std::string>> got;
  for (const auto& cut : cuts) got.insert(labels(dfg, cut));

  const std::set<std::set<std::string>> expected{
      {"a[k]", "b[k][j]"}, {"d[i][k]"}, {"e[i][j][k]"}};
  EXPECT_EQ(got, expected) << "paper Figure 2(b): cuts {{a,b},{d},{e}}";
}

TEST(Cuts, CriticalGraphExcludesShortPath) {
  const RefModel m(kernels::paper_example());
  const Dfg dfg = Dfg::build(m.kernel(), m.groups());
  const LatencyModel lat;
  const std::vector<std::int64_t> regs(static_cast<std::size_t>(m.group_count()), 1);
  const auto weights = node_weights(dfg, m, regs, lat);
  const CriticalGraph cg = critical_graph(dfg, weights);
  for (const DfgNode& n : dfg.nodes()) {
    if (n.label == "c[j]") {
      EXPECT_FALSE(cg.in_cg[static_cast<std::size_t>(n.id)]);
    }
    if (n.label == "a[k]") {
      EXPECT_TRUE(cg.in_cg[static_cast<std::size_t>(n.id)]);
    }
  }
  // CP: a(1) -> op1(mul,2) -> d(1) -> op2(mul,2) -> e(1) = 7.
  EXPECT_EQ(cg.length, 7);
}

TEST(Cuts, CandidateFilterExcludesNodes) {
  const RefModel m(kernels::paper_example());
  const Dfg dfg = Dfg::build(m.kernel(), m.groups());
  const LatencyModel lat;
  const std::vector<std::int64_t> regs(static_cast<std::size_t>(m.group_count()), 1);
  const auto weights = node_weights(dfg, m, regs, lat);
  const CriticalGraph cg = critical_graph(dfg, weights);

  // Excluding e (non-reducible in CPA terms) removes the {e} cut.
  CutOptions options;
  options.candidates.assign(static_cast<std::size_t>(dfg.node_count()), true);
  for (const DfgNode& n : dfg.nodes()) {
    if (n.label == "e[i][j][k]") options.candidates[static_cast<std::size_t>(n.id)] = false;
  }
  const auto cuts = find_cuts(dfg, cg, weights, options);
  std::set<std::set<std::string>> got;
  for (const auto& cut : cuts) got.insert(labels(dfg, cut));
  const std::set<std::set<std::string>> expected{{"a[k]", "b[k][j]"}, {"d[i][k]"}};
  EXPECT_EQ(got, expected);
}

TEST(Cuts, NoCutWhenAPathHasNoCandidates) {
  const RefModel m(kernels::paper_example());
  const Dfg dfg = Dfg::build(m.kernel(), m.groups());
  const LatencyModel lat;
  const std::vector<std::int64_t> regs(static_cast<std::size_t>(m.group_count()), 1);
  const auto weights = node_weights(dfg, m, regs, lat);
  const CriticalGraph cg = critical_graph(dfg, weights);

  CutOptions options;
  options.candidates.assign(static_cast<std::size_t>(dfg.node_count()), false);
  EXPECT_TRUE(find_cuts(dfg, cg, weights, options).empty());
}

TEST(Cuts, CutsAreMinimal) {
  // Diamond: two parallel single-ref paths -> the only cut is both refs or
  // the shared sink; no superset may appear.
  const Kernel k = parse_kernel(R"(
    kernel diamond {
      array p[8];
      array q[8];
      array o[8];
      for i in 0..8 { o[i] = p[i] + q[i]; }
    }
  )");
  const RefModel m(k.clone());
  const Dfg dfg = Dfg::build(m.kernel(), m.groups());
  const LatencyModel lat;
  const std::vector<std::int64_t> regs(static_cast<std::size_t>(m.group_count()), 1);
  const auto weights = node_weights(dfg, m, regs, lat);
  const CriticalGraph cg = critical_graph(dfg, weights);
  const auto cuts = find_cuts(dfg, cg, weights);

  std::set<std::set<std::string>> got;
  for (const auto& cut : cuts) got.insert(labels(dfg, cut));
  const std::set<std::set<std::string>> expected{{"p[i]", "q[i]"}, {"o[i]"}};
  EXPECT_EQ(got, expected);
}

TEST(Cuts, CriticalPathEnumerationMatchesLength) {
  const RefModel m(kernels::paper_example());
  const Dfg dfg = Dfg::build(m.kernel(), m.groups());
  const LatencyModel lat;
  const std::vector<std::int64_t> regs(static_cast<std::size_t>(m.group_count()), 1);
  const auto weights = node_weights(dfg, m, regs, lat);
  const CriticalGraph cg = critical_graph(dfg, weights);
  const auto paths = critical_paths(dfg, cg, weights);
  ASSERT_EQ(paths.size(), 2u);  // via a and via b
  for (const auto& path : paths) {
    std::int64_t total = 0;
    for (int id : path) total += weights[static_cast<std::size_t>(id)];
    EXPECT_EQ(total, cg.length);
  }
}

}  // namespace
}  // namespace srra
