#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "support/csv.h"
#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace srra {
namespace {

TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(check(true, "fine")); }

TEST(Error, CheckThrowsWithMessageAndLocation) {
  try {
    check(false, "boom");
    FAIL() << "expected srra::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("test_support.cc"), std::string::npos);
  }
}

TEST(Error, FailAlwaysThrows) { EXPECT_THROW(fail("nope"), Error); }

TEST(Str, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(cat(), "");
}

TEST(Str, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(split("a,b,c", ','), parts);
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(join({}, ","), "");
}

TEST(Str, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 4), "abcde");
}

TEST(Str, ToFixedAndPercent) {
  EXPECT_EQ(to_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(to_fixed(-1.0, 1), "-1.0");
  EXPECT_EQ(to_percent(0.125), "+12.5%");
  EXPECT_EQ(to_percent(-0.02), "-2.0%");
  EXPECT_EQ(to_percent(0.0), "0.0%");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("kernel fir", "kernel"));
  EXPECT_FALSE(starts_with("ker", "kernel"));
}

TEST(Str, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234), "-1,234");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "count"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "100"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | count |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |   100 |"), std::string::npos);
}

TEST(Table, SeparatorSplitsGroups) {
  Table t({"k"});
  t.add_row({"a"});
  t.add_separator();
  t.add_row({"b"});
  const std::string out = t.to_string();
  // Header rule + top + bottom + group separator = 4 rules.
  std::size_t rules = 0;
  for (const auto& line : split(out, '\n')) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"plain", "has,comma", "has\"quote"});
  EXPECT_EQ(os.str(), "plain,\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// ------------------------------------------------------------- JSON parser

// parse -> write reaches a fixpoint: re-parsing the canonical rendering
// reproduces it byte for byte (the property the service's envelope
// re-emission relies on).
std::string canonical(const std::string& text) { return parse_json(text).to_string(); }

TEST(Json, ParseRoundTripsNestedDocument) {
  const std::string text =
      R"({"name": "FIR", "nested": {"list": [1, 2.5, true, null, "x"],)"
      R"( "empty_obj": {}, "empty_arr": []}, "deep": [[["leaf"]]]})";
  const std::string first = canonical(text);
  EXPECT_EQ(canonical(first), first);

  const JsonValue doc = parse_json(text);
  ASSERT_TRUE(doc.is_object());
  const JsonValue* nested = doc.find("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(nested->find("list"), nullptr);
  EXPECT_EQ(nested->find("list")->items().size(), 5u);
  EXPECT_EQ(nested->find("list")->items()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(nested->find("list")->items()[1].as_double(), 2.5);
  EXPECT_TRUE(nested->find("list")->items()[3].is_null());
}

TEST(Json, ParsePreservesMemberOrder) {
  const JsonValue doc = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(Json, ParseKeepsIntDoubleDistinction) {
  const JsonValue doc = parse_json(R"({"i": 42, "d": 42.0, "e": 1e3})");
  EXPECT_EQ(doc.find("i")->kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(doc.find("i")->as_int(), 42);
  EXPECT_EQ(doc.find("d")->kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(doc.find("e")->kind(), JsonValue::Kind::kDouble);
  EXPECT_THROW(doc.find("d")->as_int(), Error);   // not an integral number
  EXPECT_DOUBLE_EQ(doc.find("i")->as_double(), 42.0);  // widening is fine
}

TEST(Json, ParseDecodesStringEscapes) {
  const JsonValue doc =
      parse_json(R"({"s": "a\"b\\c\/d\b\f\n\r\t", "u": "Aé"})");
  EXPECT_EQ(doc.find("s")->as_string(), "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(doc.find("u")->as_string(), "A\xc3\xa9");
  // Escaped strings survive a write -> parse round trip.
  EXPECT_EQ(parse_json(doc.to_string()).find("s")->as_string(),
            doc.find("s")->as_string());
}

TEST(Json, ParseDecodesSurrogatePairs) {
  const JsonValue doc = parse_json(R"(["😀"])");
  EXPECT_EQ(doc.items().front().as_string(), "\xf0\x9f\x98\x80");  // U+1F600
}

TEST(Json, BuildersEmitParseableDocuments) {
  JsonValue obj = JsonValue::make_object();
  obj.set("k", JsonValue::make_int(7));
  obj.set("k", JsonValue::make_string("overwritten"));  // set() replaces
  JsonValue arr = JsonValue::make_array();
  arr.push_back(JsonValue::make_double(1.5));
  arr.push_back(JsonValue::make_bool(false));
  obj.set("a", std::move(arr));
  const JsonValue back = parse_json(obj.to_string());
  EXPECT_EQ(back.find("k")->as_string(), "overwritten");
  EXPECT_EQ(back.members().size(), 2u);
  EXPECT_EQ(back.find("a")->items().size(), 2u);
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json(R"({"a": 1,})"), Error);  // trailing comma
  EXPECT_THROW(parse_json(R"({"a" 1})"), Error);    // missing colon
  EXPECT_THROW(parse_json(R"({"a": 1} x)"), Error); // trailing garbage
  EXPECT_THROW(parse_json(R"("\q")"), Error);       // bad escape
  EXPECT_THROW(parse_json(R"("\ud83d")"), Error);   // lone high surrogate
  EXPECT_THROW(parse_json("01"), Error);            // leading zero
  EXPECT_THROW(parse_json("nul"), Error);
}

TEST(Json, ParseEnforcesDepthCap) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW(parse_json(deep), Error);
  std::string ok;
  for (int i = 0; i < 30; ++i) ok += '[';
  for (int i = 0; i < 30; ++i) ok += ']';
  EXPECT_NO_THROW(parse_json(ok));
}

// ------------------------------------------------------ ThreadPool shutdown

// The srrad clean-exit contract: a shutdown racing an in-flight batch never
// loses or double-runs a task, and batches posted after shutdown still run
// (inline on the caller).
TEST(ThreadPool, ShutdownUnderLoadRunsEveryTaskExactlyOnce) {
  constexpr std::int64_t kTasks = 400;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);

  std::thread driver([&] {
    pool.parallel_for(kTasks, [&](std::int64_t i) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      runs[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  // Land the shutdown somewhere inside the batch.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.shutdown();
  driver.join();

  for (std::int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }

  // Post-shutdown batches run inline, still exactly once each.
  std::atomic<int> late{0};
  pool.parallel_for(16, [&](std::int64_t) { late.fetch_add(1); });
  EXPECT_EQ(late.load(), 16);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::int64_t) { count.fetch_add(1); });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, destructor makes a third
  EXPECT_EQ(count.load(), 8);
}

}  // namespace
}  // namespace srra
