#include <gtest/gtest.h>

#include <sstream>

#include "support/csv.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"

namespace srra {
namespace {

TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(check(true, "fine")); }

TEST(Error, CheckThrowsWithMessageAndLocation) {
  try {
    check(false, "boom");
    FAIL() << "expected srra::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("boom"), std::string::npos);
    EXPECT_NE(what.find("test_support.cc"), std::string::npos);
  }
}

TEST(Error, FailAlwaysThrows) { EXPECT_THROW(fail("nope"), Error); }

TEST(Str, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(cat(), "");
}

TEST(Str, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(split("a,b,c", ','), parts);
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(join({}, ","), "");
}

TEST(Str, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 4), "abcde");
}

TEST(Str, ToFixedAndPercent) {
  EXPECT_EQ(to_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(to_fixed(-1.0, 1), "-1.0");
  EXPECT_EQ(to_percent(0.125), "+12.5%");
  EXPECT_EQ(to_percent(-0.02), "-2.0%");
  EXPECT_EQ(to_percent(0.0), "0.0%");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("kernel fir", "kernel"));
  EXPECT_FALSE(starts_with("ker", "kernel"));
}

TEST(Str, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234), "-1,234");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "count"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "100"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | count |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |   100 |"), std::string::npos);
}

TEST(Table, SeparatorSplitsGroups) {
  Table t({"k"});
  t.add_row({"a"});
  t.add_separator();
  t.add_row({"b"});
  const std::string out = t.to_string();
  // Header rule + top + bottom + group separator = 4 rules.
  std::size_t rules = 0;
  for (const auto& line : split(out, '\n')) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"plain", "has,comma", "has\"quote"});
  EXPECT_EQ(os.str(), "plain,\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace srra
