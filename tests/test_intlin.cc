#include <gtest/gtest.h>

#include "analysis/intlin.h"

namespace srra {
namespace {

bool in_nullspace(const IntMatrix& m, const std::vector<std::int64_t>& v) {
  for (int r = 0; r < m.rows; ++r) {
    std::int64_t sum = 0;
    for (int c = 0; c < m.cols; ++c) sum += m.at(r, c) * v[static_cast<std::size_t>(c)];
    if (sum != 0) return false;
  }
  return true;
}

TEST(IntLin, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(IntLin, NormalizePrimitive) {
  std::vector<std::int64_t> v{4, -8, 12};
  normalize_primitive(v);
  EXPECT_EQ(v, (std::vector<std::int64_t>{1, -2, 3}));
  std::vector<std::int64_t> zero{0, 0};
  normalize_primitive(zero);
  EXPECT_EQ(zero, (std::vector<std::int64_t>{0, 0}));
}

TEST(IntLin, NullspaceOfInvariantColumn) {
  // a[k] in loops (i,j,k): A = [0 0 1]; nullspace is span{e_i, e_j}.
  IntMatrix m(1, 3);
  m.at(0, 2) = 1;
  const auto basis = integer_nullspace(m);
  ASSERT_EQ(basis.size(), 2u);
  for (const auto& v : basis) EXPECT_TRUE(in_nullspace(m, v));
}

TEST(IntLin, NullspaceOfSlidingWindow) {
  // x[i+j]: A = [1 1]; nullspace is span{(1,-1)}.
  IntMatrix m(1, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 1;
  const auto basis = integer_nullspace(m);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_TRUE(in_nullspace(m, basis[0]));
  EXPECT_EQ(basis[0][0] + basis[0][1], 0);
  EXPECT_EQ(std::abs(basis[0][0]), 1);
}

TEST(IntLin, NullspaceOfDecimatedWindow) {
  // x[4i+j]: A = [4 1]; nullspace is span{(1,-4)}.
  IntMatrix m(1, 2);
  m.at(0, 0) = 4;
  m.at(0, 1) = 1;
  const auto basis = integer_nullspace(m);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_TRUE(in_nullspace(m, basis[0]));
  // Primitive vector: +-(1,-4).
  EXPECT_EQ(std::abs(basis[0][0]), 1);
  EXPECT_EQ(std::abs(basis[0][1]), 4);
}

TEST(IntLin, FullRankHasEmptyNullspace) {
  // e[i][j][k]: identity access matrix.
  IntMatrix m(3, 3);
  for (int d = 0; d < 3; ++d) m.at(d, d) = 1;
  EXPECT_TRUE(integer_nullspace(m).empty());
}

TEST(IntLin, TwoRowMatrix) {
  // img[r+i][s+j] over (r,s,i,j): rows (1,0,1,0) and (0,1,0,1).
  IntMatrix m(2, 4);
  m.at(0, 0) = 1;
  m.at(0, 2) = 1;
  m.at(1, 1) = 1;
  m.at(1, 3) = 1;
  const auto basis = integer_nullspace(m);
  ASSERT_EQ(basis.size(), 2u);
  for (const auto& v : basis) EXPECT_TRUE(in_nullspace(m, v));
}

TEST(IntLin, ZeroMatrixNullspaceIsWholeSpace) {
  IntMatrix m(1, 2);  // all zeros: constant subscript
  const auto basis = integer_nullspace(m);
  EXPECT_EQ(basis.size(), 2u);
}

TEST(IntLin, NonTrivialCoefficients) {
  // A = [2 4]: nullspace span{(2,-1)} after normalization... 2x + 4y = 0 ->
  // x = -2y, primitive (2,-1) or (-2,1).
  IntMatrix m(1, 2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 4;
  const auto basis = integer_nullspace(m);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_TRUE(in_nullspace(m, basis[0]));
  EXPECT_EQ(std::abs(basis[0][0]), 2);
  EXPECT_EQ(std::abs(basis[0][1]), 1);
}

}  // namespace
}  // namespace srra
