#include <gtest/gtest.h>

#include "core/frontier.h"
#include "core/registry.h"
#include "hw/estimate.h"
#include "kernels/kernels.h"

namespace srra {
namespace {

TEST(Device, Xcv1000Capacities) {
  const VirtexDevice d = xcv1000();
  EXPECT_EQ(d.slices, 12288);
  EXPECT_EQ(d.block_rams, 32);
  EXPECT_EQ(d.bram_bits, 4096);
}

TEST(Hw, BlockRamsCoverEveryArray) {
  // Example kernel: a 30x32b=960b, b 600x32b=19200b, c 20x32b, d 60x32b,
  // e 1200x32b=38400b -> 1 + 5 + 1 + 1 + 10 = 18 BlockRAMs.
  const Kernel k = kernels::paper_example();
  EXPECT_EQ(block_rams_for(k), 18);
}

TEST(Hw, MoreRegistersMoreAreaAndSlowerClock) {
  const RefModel m(kernels::paper_example());
  const HwEstimate small = estimate_hw(m, feasibility_allocation(m, 64));
  const HwEstimate big = estimate_hw(m, allocate_pr(m, 64));
  EXPECT_GT(big.registers, small.registers);
  EXPECT_GT(big.flip_flops, small.flip_flops);
  EXPECT_GT(big.slices, small.slices);
  EXPECT_GT(big.clock_ns, small.clock_ns);
}

TEST(Hw, ClockDegradationIsMild) {
  // The paper reports a noticeable but small clock-rate loss for the more
  // complex designs (a few percent, up to ~10-15%); the model must not be
  // wildly off in either direction.
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel m(nk.kernel.clone());
    const HwEstimate v1 = estimate_hw(m, allocate_fr(m, 64));
    const HwEstimate v3 = estimate_hw(m, allocate(Algorithm::kCpaRa, m, 64));
    EXPECT_GE(v3.clock_ns, v1.clock_ns * 0.99) << nk.name;
    EXPECT_LE(v3.clock_ns, v1.clock_ns * 1.25) << nk.name;
  }
}

TEST(Hw, OccupancyFitsTheDevice) {
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel m(nk.kernel.clone());
    for (Algorithm alg : paper_variants()) {
      const HwEstimate hw = estimate_hw(m, allocate(alg, m, 64));
      EXPECT_GT(hw.occupancy, 0.0) << nk.name;
      EXPECT_LT(hw.occupancy, 1.0) << nk.name << " " << algorithm_name(alg)
                                   << ": design must fit the XCV1000";
    }
  }
}

TEST(Hw, ClockMhzInversesPeriod) {
  const RefModel m(kernels::paper_example());
  const HwEstimate hw = estimate_hw(m, allocate_fr(m, 64));
  EXPECT_NEAR(hw.clock_mhz() * hw.clock_ns, 1000.0, 1e-6);
  // Virtex-era designs: tens of MHz.
  EXPECT_GT(hw.clock_mhz(), 20.0);
  EXPECT_LT(hw.clock_mhz(), 60.0);
}

TEST(Hw, FsmStatesGrowWithBody) {
  const RefModel small(kernels::fir());
  const RefModel large(kernels::paper_example());
  const HwEstimate hs = estimate_hw(small, feasibility_allocation(small, 8));
  const HwEstimate hl = estimate_hw(large, feasibility_allocation(large, 8));
  EXPECT_GT(hs.fsm_states, 0);
  EXPECT_GT(hl.fsm_states, hs.fsm_states);
}

TEST(Hw, SmallerDeviceHigherOccupancy) {
  const RefModel m(kernels::paper_example());
  const Allocation a = allocate_pr(m, 64);
  const HwEstimate big = estimate_hw(m, a, xcv1000());
  const HwEstimate small = estimate_hw(m, a, xcv300());
  EXPECT_GT(small.occupancy, big.occupancy);
}

}  // namespace
}  // namespace srra
