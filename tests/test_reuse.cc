#include <gtest/gtest.h>

#include "analysis/reuse.h"
#include "ir/parser.h"
#include "kernels/kernels.h"

namespace srra {
namespace {

struct Analyzed {
  Kernel kernel;
  std::vector<RefGroup> groups;
  std::vector<ReuseInfo> reuse;
};

Analyzed analyze(Kernel kernel) {
  Analyzed a{std::move(kernel), {}, {}};
  a.groups = collect_ref_groups(a.kernel);
  a.reuse = analyze_all_reuse(a.kernel, a.groups);
  return a;
}

const ReuseInfo& info_for(const Analyzed& a, const std::string& display) {
  return a.reuse[static_cast<std::size_t>(group_named(a.groups, display).id)];
}

// ---- The paper's running example: beta = {a:30, b:600, c:20, d:30, e:1} ----

TEST(Reuse, ExampleBetaValuesMatchPaper) {
  const Analyzed a = analyze(kernels::paper_example());
  EXPECT_EQ(info_for(a, "a[k]").beta_full(), 30);
  EXPECT_EQ(info_for(a, "b[k][j]").beta_full(), 600);
  EXPECT_EQ(info_for(a, "c[j]").beta_full(), 20);
  EXPECT_EQ(info_for(a, "d[i][k]").beta_full(), 30);
  EXPECT_EQ(info_for(a, "e[i][j][k]").beta_full(), 1);
}

TEST(Reuse, ExampleCarryingLevels) {
  const Analyzed a = analyze(kernels::paper_example());
  // a[k] is invariant in i and j: carries at levels 0 and 1.
  const ReuseInfo& ra = info_for(a, "a[k]");
  ASSERT_EQ(ra.levels.size(), 2u);
  EXPECT_EQ(ra.levels[0].level, 0);
  EXPECT_EQ(ra.levels[1].level, 1);
  EXPECT_EQ(ra.levels[1].beta, 30);
  // c[j] is invariant in i and k: levels 0 (beta 20) and 2 (beta 1).
  const ReuseInfo& rc = info_for(a, "c[j]");
  ASSERT_EQ(rc.levels.size(), 2u);
  EXPECT_EQ(rc.levels[0].level, 0);
  EXPECT_EQ(rc.levels[0].beta, 20);
  EXPECT_EQ(rc.levels[1].level, 2);
  EXPECT_EQ(rc.levels[1].beta, 1);
  // d[i][k] is invariant in j only.
  const ReuseInfo& rd = info_for(a, "d[i][k]");
  ASSERT_EQ(rd.levels.size(), 1u);
  EXPECT_EQ(rd.levels[0].level, 1);
  // e has no reuse.
  EXPECT_FALSE(info_for(a, "e[i][j][k]").has_reuse());
  EXPECT_EQ(info_for(a, "e[i][j][k]").beta_full(), 1);
}

TEST(Reuse, ExampleCanonicalDistances) {
  const Analyzed a = analyze(kernels::paper_example());
  EXPECT_EQ(info_for(a, "a[k]").distance, (std::vector<std::int64_t>{1, 0, 0}));
  EXPECT_EQ(info_for(a, "d[i][k]").distance, (std::vector<std::int64_t>{0, 1, 0}));
  EXPECT_EQ(info_for(a, "b[k][j]").distance, (std::vector<std::int64_t>{1, 0, 0}));
}

// ---- FIR: sliding window ----

TEST(Reuse, FirWindowReference) {
  const Analyzed a = analyze(kernels::fir());
  const ReuseInfo& rx = info_for(a, "x[i + j]");
  ASSERT_TRUE(rx.has_reuse());
  EXPECT_EQ(rx.outermost_level(), 0);
  EXPECT_EQ(rx.beta_full(), 32);
  EXPECT_EQ(rx.distance, (std::vector<std::int64_t>{1, -1}));
  EXPECT_EQ(info_for(a, "c[j]").beta_full(), 32);
  EXPECT_EQ(info_for(a, "y[i]").beta_full(), 1);
  EXPECT_EQ(info_for(a, "y[i]").outermost_level(), 1);
}

TEST(Reuse, DecFirDecimatedWindow) {
  const Analyzed a = analyze(kernels::dec_fir());
  const ReuseInfo& rx = info_for(a, "x[4*i + j]");
  ASSERT_TRUE(rx.has_reuse());
  EXPECT_EQ(rx.outermost_level(), 0);
  EXPECT_EQ(rx.beta_full(), 64);
  EXPECT_EQ(rx.distance, (std::vector<std::int64_t>{1, -4}));
}

// ---- MAT ----

TEST(Reuse, MatBetaValues) {
  const Analyzed a = analyze(kernels::mat());
  EXPECT_EQ(info_for(a, "a[i][k]").beta_full(), 16);
  EXPECT_EQ(info_for(a, "a[i][k]").outermost_level(), 1);
  EXPECT_EQ(info_for(a, "b[k][j]").beta_full(), 256);
  EXPECT_EQ(info_for(a, "b[k][j]").outermost_level(), 0);
  EXPECT_EQ(info_for(a, "c[i][j]").beta_full(), 1);
  EXPECT_EQ(info_for(a, "c[i][j]").outermost_level(), 2);
}

// ---- BIC: group of four-deep references ----

TEST(Reuse, BicBetaValues) {
  const Analyzed a = analyze(kernels::bic());
  EXPECT_EQ(info_for(a, "tpl[i][j]").beta_full(), 64);
  EXPECT_EQ(info_for(a, "tpl[i][j]").outermost_level(), 0);
  const ReuseInfo& rimg = info_for(a, "img[r + i][s + j]");
  ASSERT_TRUE(rimg.has_reuse());
  EXPECT_EQ(rimg.outermost_level(), 0);
  EXPECT_EQ(rimg.beta_full(), 8 * 64);  // 8 template rows x 64 image columns
  EXPECT_EQ(info_for(a, "corr[r][s]").beta_full(), 1);
}

// ---- IMI ----

TEST(Reuse, ImiImagesCarryAtFrameLoop) {
  const Analyzed a = analyze(kernels::imi());
  EXPECT_EQ(info_for(a, "im1[i][j]").outermost_level(), 0);
  EXPECT_EQ(info_for(a, "im1[i][j]").beta_full(), 32 * 32);
  EXPECT_FALSE(info_for(a, "out[t][i][j]").has_reuse());
}

// ---- Edge cases ----

TEST(Reuse, NoReuseWhenEveryLoopIndexesTheArray) {
  const Analyzed a = analyze(parse_kernel(R"(
    kernel nr {
      array z[4][5];
      for i in 0..4 { for j in 0..5 { z[i][j] = 1; } }
    }
  )"));
  EXPECT_FALSE(a.reuse[0].has_reuse());
}

TEST(Reuse, ConstantSubscriptIsScalarLikeReuse) {
  const Analyzed a = analyze(parse_kernel(R"(
    kernel cs {
      array s[4];
      array o[8];
      for i in 0..8 { o[i] = s[2]; }
    }
  )"));
  const ReuseInfo& rs = info_for(a, "s[2]");
  ASSERT_TRUE(rs.has_reuse());
  EXPECT_EQ(rs.outermost_level(), 0);
  EXPECT_EQ(rs.beta_full(), 1);
}

TEST(Reuse, InfeasibleDistanceIsRejected) {
  // x[8*i + j] with j range 4: reuse would need delta_j = 8 > trip - 1.
  const Analyzed a = analyze(parse_kernel(R"(
    kernel inf {
      array x[68];
      array y[8];
      for i in 0..8 { for j in 0..4 { y[i] += x[8*i + j]; } }
    }
  )"));
  EXPECT_FALSE(info_for(a, "x[8*i + j]").has_reuse());
}

TEST(Reuse, BetaAtQueriesLevels) {
  const Analyzed a = analyze(kernels::paper_example());
  const ReuseInfo& rc = info_for(a, "c[j]");
  EXPECT_EQ(rc.beta_at(0), 20);
  EXPECT_EQ(rc.beta_at(1), -1);
  EXPECT_EQ(rc.beta_at(2), 1);
}

}  // namespace
}  // namespace srra
