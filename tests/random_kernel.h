// Shared random-kernel generator for the randomized property suites
// (test_fuzz, test_periodic): a random valid kernel with 2-3 perfectly
// nested loops with small bounds, 2-4 arrays with affine subscripts built
// from the enclosing loop variables, and 1-2 statements with random
// operator trees. random_transforms() grows random *legal* loop-transform
// sequences (ir/transform.h) on top of such kernels for the transformed-
// kernel equivalence properties.
#pragma once

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/transform.h"
#include "support/rng.h"

namespace srra {
namespace testing {

inline Kernel random_kernel(Rng& rng) {
  KernelBuilder b("fuzz");
  const int depth = static_cast<int>(rng.uniform(2, 3));
  std::vector<std::string> loop_names;
  std::vector<std::int64_t> trips;
  for (int l = 0; l < depth; ++l) {
    loop_names.push_back(std::string(1, static_cast<char>('i' + l)));
    trips.push_back(rng.uniform(2, 6));
  }

  // Arrays: each indexed by a random subset of loops (possibly with a
  // sliding i+j pair), sized to cover the subscript range.
  struct ArraySpec {
    std::string name;
    std::vector<std::vector<std::int64_t>> coeffs;  // per dim: per level
  };
  const int array_count = static_cast<int>(rng.uniform(2, 4));
  std::vector<ArraySpec> specs;
  for (int a = 0; a < array_count; ++a) {
    ArraySpec spec;
    spec.name = std::string(1, static_cast<char>('p' + a));
    const int rank = static_cast<int>(rng.uniform(1, 2));
    for (int d = 0; d < rank; ++d) {
      std::vector<std::int64_t> coeffs(static_cast<std::size_t>(depth), 0);
      // 1 or 2 participating loops with coefficient 1..2.
      const int participants = static_cast<int>(rng.uniform(1, 2));
      for (int p = 0; p < participants; ++p) {
        coeffs[static_cast<std::size_t>(rng.uniform(0, depth - 1))] = rng.uniform(1, 2);
      }
      spec.coeffs.push_back(std::move(coeffs));
    }
    std::vector<std::int64_t> dims;
    for (const auto& coeffs : spec.coeffs) {
      std::int64_t extent = 1;
      for (int l = 0; l < depth; ++l) {
        extent += coeffs[static_cast<std::size_t>(l)] * (trips[static_cast<std::size_t>(l)] - 1);
      }
      dims.push_back(extent);
    }
    const ScalarType type = rng.uniform01() < 0.5 ? ScalarType::kS32 : ScalarType::kU8;
    b.array(spec.name, dims, type);
    specs.push_back(std::move(spec));
  }
  for (int l = 0; l < depth; ++l) b.loop(loop_names[static_cast<std::size_t>(l)], 0, trips[static_cast<std::size_t>(l)]);

  const auto make_subs = [&](const ArraySpec& spec) {
    std::vector<AffineExpr> subs;
    for (const auto& coeffs : spec.coeffs) {
      AffineExpr e = b.lit(0);
      for (int l = 0; l < depth; ++l) {
        if (coeffs[static_cast<std::size_t>(l)] != 0) {
          e = e + b.var(loop_names[static_cast<std::size_t>(l)]).scaled(coeffs[static_cast<std::size_t>(l)]);
        }
      }
      subs.push_back(e);
    }
    return subs;
  };

  const auto random_leaf = [&]() -> ExprPtr {
    const int pick = static_cast<int>(rng.uniform(0, 3));
    if (pick == 0) return b.num(rng.uniform(-4, 4));
    if (pick == 1) return b.loop_expr(loop_names[static_cast<std::size_t>(rng.uniform(0, depth - 1))]);
    const ArraySpec& spec = specs[static_cast<std::size_t>(rng.uniform(0, array_count - 1))];
    return b.ref(spec.name, make_subs(spec));
  };

  const auto random_expr = [&]() -> ExprPtr {
    ExprPtr node = random_leaf();
    const int ops = static_cast<int>(rng.uniform(1, 3));
    for (int o = 0; o < ops; ++o) {
      const int pick = static_cast<int>(rng.uniform(0, 5));
      ExprPtr other = random_leaf();
      switch (pick) {
        case 0: node = add(std::move(node), std::move(other)); break;
        case 1: node = sub(std::move(node), std::move(other)); break;
        case 2: node = mul(std::move(node), std::move(other)); break;
        case 3: node = bxor(std::move(node), std::move(other)); break;
        case 4: node = min_op(std::move(node), std::move(other)); break;
        default: node = eq(std::move(node), std::move(other)); break;
      }
    }
    return node;
  };

  const int stmts = static_cast<int>(rng.uniform(1, 2));
  for (int s = 0; s < stmts; ++s) {
    const ArraySpec& spec = specs[static_cast<std::size_t>(rng.uniform(0, array_count - 1))];
    b.assign(spec.name, make_subs(spec), random_expr());
  }
  return b.build();
}

/// A random sequence of 1-3 loop transforms, each legal (is_safe) on the
/// kernel the preceding ones produce — so applying the result to `base`
/// with apply_peeled always preserves semantics (sequences may contain
/// peeled tiles, so callers use apply_peeled, not apply). Interchange and
/// unroll-and-jam only appear when the dependence condition admits them;
/// tiling wherever is_safe admits a full or peeled tile. Body growth from
/// unroll-and-jam is capped so the full-walk oracles the callers
/// cross-check against stay fast.
inline std::vector<LoopTransform> random_transforms(Rng& rng, const Kernel& base) {
  std::vector<LoopTransform> out;
  Kernel current = base.clone();
  const int count = static_cast<int>(rng.uniform(1, 3));
  for (int round = 0; round < count; ++round) {
    std::vector<LoopTransform> candidates;
    const int depth = current.depth();
    if (depth > 1 && depth <= 4 && reorder_is_safe(current)) {
      std::vector<int> perm(static_cast<std::size_t>(depth));
      std::iota(perm.begin(), perm.end(), 0);
      for (int l = depth - 1; l > 0; --l) {  // Fisher-Yates on the Rng
        std::swap(perm[static_cast<std::size_t>(l)],
                  perm[static_cast<std::size_t>(rng.uniform(0, l))]);
      }
      if (!std::is_sorted(perm.begin(), perm.end())) {
        candidates.push_back(LoopTransform::interchange(std::move(perm)));
      }
    }
    for (int level = 0; level < depth; ++level) {
      const std::int64_t trip = current.loop(level).trip_count();
      for (const std::int64_t amount : {std::int64_t{2}, std::int64_t{3}}) {
        const LoopTransform tile = LoopTransform::tile(level, amount);
        if (is_safe(current, tile)) candidates.push_back(tile);
        const LoopTransform uj = LoopTransform::unroll_jam(level, amount);
        if (static_cast<std::int64_t>(current.body().size()) * amount <= 16 &&
            amount < trip && is_safe(current, uj)) {
          candidates.push_back(uj);
        }
      }
    }
    if (candidates.empty()) break;
    LoopTransform pick =
        candidates[static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    // Peel-aware walk: later transforms apply to the main piece of a
    // peeled tile, mirroring apply_peeled's composition.
    current = std::move(
        apply_peeled(current, srra::span<const LoopTransform>(&pick, 1)).main);
    out.push_back(std::move(pick));
  }
  return out;
}

}  // namespace testing
}  // namespace srra
