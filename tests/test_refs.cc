#include <gtest/gtest.h>

#include "analysis/refs.h"
#include "ir/parser.h"
#include "kernels/kernels.h"
#include "support/error.h"

namespace srra {
namespace {

TEST(Refs, ExampleKernelHasFiveGroups) {
  const Kernel k = kernels::paper_example();
  const auto groups = collect_ref_groups(k);
  ASSERT_EQ(groups.size(), 5u);
  // First-occurrence order: stmt 0 reads a, b then writes d; stmt 1 reads c,
  // d (same group) then writes e.
  EXPECT_EQ(groups[0].display, "a[k]");
  EXPECT_EQ(groups[1].display, "b[k][j]");
  EXPECT_EQ(groups[2].display, "d[i][k]");
  EXPECT_EQ(groups[3].display, "c[j]");
  EXPECT_EQ(groups[4].display, "e[i][j][k]");
}

TEST(Refs, WriteAndReadOfSameAccessShareGroup) {
  const Kernel k = kernels::paper_example();
  const auto groups = collect_ref_groups(k);
  const RefGroup& d = group_named(groups, "d[i][k]");
  EXPECT_EQ(d.reads_per_iter, 1);
  EXPECT_EQ(d.writes_per_iter, 1);
  EXPECT_EQ(d.occurrences.size(), 2u);
  EXPECT_TRUE(d.occurrences[0].is_write);
  EXPECT_FALSE(d.occurrences[1].is_write);
}

TEST(Refs, ForwardedReadDetected) {
  const Kernel k = kernels::paper_example();
  const auto groups = collect_ref_groups(k);
  EXPECT_EQ(group_named(groups, "d[i][k]").forwarded_reads_per_iter, 1);
  EXPECT_EQ(group_named(groups, "a[k]").forwarded_reads_per_iter, 0);
}

TEST(Refs, AccumulatorReadIsNotForwarded) {
  // y[i] += ...: the read precedes the write in the iteration, so it is not
  // forwarded from a same-iteration write.
  const Kernel k = kernels::fir();
  const auto groups = collect_ref_groups(k);
  const RefGroup& y = group_named(groups, "y[i]");
  EXPECT_EQ(y.reads_per_iter, 1);
  EXPECT_EQ(y.writes_per_iter, 1);
  EXPECT_EQ(y.forwarded_reads_per_iter, 0);
}

TEST(Refs, OccurrenceOrderIsGlobalEvaluationOrder) {
  const Kernel k = kernels::paper_example();
  const auto groups = collect_ref_groups(k);
  // Orders: a=0, b=1, d(write)=2, c=3, d(read)=4, e=5.
  EXPECT_EQ(group_named(groups, "a[k]").first_order, 0);
  EXPECT_EQ(group_named(groups, "b[k][j]").first_order, 1);
  EXPECT_EQ(group_named(groups, "d[i][k]").first_order, 2);
  EXPECT_EQ(group_named(groups, "c[j]").first_order, 3);
  EXPECT_EQ(group_named(groups, "e[i][j][k]").first_order, 5);
  EXPECT_EQ(total_occurrences(groups), 6);
}

TEST(Refs, DistinctSubscriptsOfSameArrayAreDistinctGroups) {
  const Kernel k = parse_kernel(R"(
    kernel two {
      array x[34];
      array y[32];
      for i in 0..32 { y[i] = x[i] + x[i + 2]; }
    }
  )");
  const auto groups = collect_ref_groups(k);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].display, "x[i]");
  EXPECT_EQ(groups[1].display, "x[i + 2]");
}

TEST(Refs, GroupNamedThrowsForUnknown) {
  const Kernel k = kernels::paper_example();
  const auto groups = collect_ref_groups(k);
  EXPECT_THROW(group_named(groups, "zzz"), Error);
}

TEST(Refs, AllTableOneKernelsCollect) {
  for (const auto& nk : kernels::table1_kernels()) {
    const auto groups = collect_ref_groups(nk.kernel);
    EXPECT_GE(groups.size(), 3u) << nk.name;
  }
}

}  // namespace
}  // namespace srra
