#include <gtest/gtest.h>

#include "core/registry.h"
#include "kernels/kernels.h"
#include "xform/scalar_replace.h"

namespace srra {
namespace {

TEST(Xform, PlanMirrorsAllocation) {
  const RefModel m(kernels::paper_example());
  const Allocation a = allocate(Algorithm::kCpaRa, m, 64);
  const TransformPlan plan = plan_scalar_replacement(m, a);
  ASSERT_EQ(plan.groups.size(), static_cast<std::size_t>(m.group_count()));
  for (int g = 0; g < m.group_count(); ++g) {
    EXPECT_EQ(plan.for_group(g).regs, a.at(g));
    EXPECT_EQ(plan.for_group(g).display, m.groups()[static_cast<std::size_t>(g)].display);
  }
}

TEST(Xform, FullVersusPartialClassification) {
  const RefModel m(kernels::paper_example());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kCpaRa, m, 64));
  const auto& d = plan.for_group(group_named(m.groups(), "d[i][k]").id);
  EXPECT_TRUE(d.full);
  EXPECT_TRUE(d.flushes);
  EXPECT_FALSE(d.fills) << "d is write-first; nothing to preload";
  const auto& a = plan.for_group(group_named(m.groups(), "a[k]").id);
  EXPECT_FALSE(a.full);
  EXPECT_TRUE(a.fills);
  EXPECT_FALSE(a.flushes);
  const auto& e = plan.for_group(group_named(m.groups(), "e[i][j][k]").id);
  EXPECT_FALSE(e.strategy.holds());
}

TEST(Xform, RotatingWindowDetected) {
  const RefModel m(kernels::fir());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kPrRa, m, 64));
  const auto& x = plan.for_group(group_named(m.groups(), "x[i + j]").id);
  ASSERT_TRUE(x.strategy.holds());
  EXPECT_TRUE(x.rotating);
  const auto& c = plan.for_group(group_named(m.groups(), "c[j]").id);
  ASSERT_TRUE(c.strategy.holds());
  EXPECT_FALSE(c.rotating);
}

TEST(Xform, InvalidAllocationRejected) {
  const RefModel m(kernels::paper_example());
  Allocation a = allocate(Algorithm::kFrRa, m, 64);
  a.regs[0] = 0;  // drop a feasibility register
  EXPECT_THROW(plan_scalar_replacement(m, a), Error);
}

TEST(Xform, DescribeMentionsEveryGroup) {
  const RefModel m(kernels::paper_example());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kCpaRa, m, 64));
  const std::string text = describe_plan(m, plan);
  for (const RefGroup& g : m.groups()) {
    EXPECT_NE(text.find(g.display), std::string::npos) << g.display;
  }
  EXPECT_NE(text.find("CPA-RA"), std::string::npos);
  EXPECT_NE(text.find("partial"), std::string::npos);
  EXPECT_NE(text.find("full"), std::string::npos);
}

}  // namespace
}  // namespace srra
