// Integration tests of the full pipeline (analysis -> allocation -> cycles
// -> hardware -> report), including the paper's headline claims on the
// worked example and qualitative Table-1 shape checks across all kernels.
#include <gtest/gtest.h>

#include "driver/pipeline.h"
#include "kernels/kernels.h"

namespace srra {
namespace {

TEST(Pipeline, RunsAllVariantsOnExample) {
  const RefModel m(kernels::paper_example());
  const auto points = run_paper_variants(m);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].allocation.algorithm, "FR-RA");
  EXPECT_EQ(points[1].allocation.algorithm, "PR-RA");
  EXPECT_EQ(points[2].allocation.algorithm, "CPA-RA");
  for (const DesignPoint& p : points) {
    EXPECT_GT(p.cycles.exec_cycles, 0);
    EXPECT_GT(p.hw.clock_ns, 0.0);
    EXPECT_GT(p.time_us(), 0.0);
    EXPECT_LT(p.hw.occupancy, 1.0);
  }
}

TEST(Pipeline, HeadlineClaimOnExample) {
  // The paper's claim: CPA-RA reduces cycles (and wall-clock time) versus
  // the greedy allocators with the same register budget.
  const RefModel m(kernels::paper_example());
  const auto points = run_paper_variants(m);
  const DesignPoint& fr = points[0];
  const DesignPoint& pr = points[1];
  const DesignPoint& cpa = points[2];

  EXPECT_LT(pr.cycles.exec_cycles, fr.cycles.exec_cycles);
  EXPECT_LT(cpa.cycles.exec_cycles, pr.cycles.exec_cycles);
  EXPECT_LT(cpa.time_us(), fr.time_us());
  // Same or fewer registers than PR-RA (paper: "the exact same register
  // resources").
  EXPECT_LE(cpa.allocation.total(), pr.allocation.total());
}

TEST(Pipeline, RequiredRegistersStringOnExample) {
  const RefModel m(kernels::paper_example());
  // Group order a, b, d, c, e.
  EXPECT_EQ(required_registers_string(m), "30/600/30/20/1");
}

TEST(Pipeline, BudgetOptionRespected) {
  const RefModel m(kernels::paper_example());
  PipelineOptions options;
  options.budget = 32;
  const DesignPoint p = run_pipeline(m, Algorithm::kCpaRa, options);
  EXPECT_LE(p.allocation.total(), 32);
  EXPECT_EQ(p.allocation.budget, 32);
}

TEST(Pipeline, Table1ShapeAcrossAllKernels) {
  // Qualitative Table-1 shape: on every kernel, v3 (CPA-RA) never executes
  // more cycles than v1 (FR-RA), and beats or ties v2 (PR-RA) on average.
  double v2_gain_sum = 0.0;
  double v3_gain_sum = 0.0;
  int n = 0;
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel m(nk.kernel.clone());
    const auto points = run_paper_variants(m);
    const auto& fr = points[0].cycles;
    const auto& pr = points[1].cycles;
    const auto& cpa = points[2].cycles;
    EXPECT_LE(cpa.exec_cycles, fr.exec_cycles) << nk.name;
    EXPECT_LE(pr.exec_cycles, fr.exec_cycles) << nk.name;
    v2_gain_sum += 1.0 - static_cast<double>(pr.exec_cycles) / static_cast<double>(fr.exec_cycles);
    v3_gain_sum += 1.0 - static_cast<double>(cpa.exec_cycles) / static_cast<double>(fr.exec_cycles);
    ++n;
  }
  // Average cycle-count gain of v3 exceeds v2's (the paper's central table
  // observation).
  EXPECT_GT(v3_gain_sum / n, v2_gain_sum / n);
  EXPECT_GT(v3_gain_sum / n, 0.0);
}

TEST(Pipeline, WallClockMostlyFollowsCycles) {
  // Clock degradation is mild, so the v3 cycle win should survive as a
  // wall-clock win on the majority of kernels (paper: all but MAT/BIC).
  int v3_wall_wins = 0;
  int total = 0;
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel m(nk.kernel.clone());
    const auto points = run_paper_variants(m);
    if (points[2].time_us() < points[0].time_us()) ++v3_wall_wins;
    ++total;
  }
  EXPECT_GE(v3_wall_wins * 2, total) << "CPA-RA should win wall-clock on most kernels";
}

TEST(Pipeline, DesignsFitTheDevice) {
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel m(nk.kernel.clone());
    for (const DesignPoint& p : run_paper_variants(m)) {
      EXPECT_LT(p.hw.occupancy, 1.0) << nk.name;
      EXPECT_LE(p.hw.block_rams, xcv1000().block_rams) << nk.name;
    }
  }
}

}  // namespace
}  // namespace srra
