#include <gtest/gtest.h>

#include "core/registry.h"
#include "ir/printer.h"
#include "ir/parser.h"
#include "ir/transform.h"
#include "kernels/kernels.h"
#include "sim/interp.h"

namespace srra {
namespace {

TEST(Transform, InterchangeSwapsLoopsAndSubscripts) {
  const Kernel k = kernels::mat();
  const Kernel t = interchange_loops(k, 0, 2);
  EXPECT_EQ(t.loop(0).var, "k");
  EXPECT_EQ(t.loop(2).var, "i");
  // a[i][k] must still read a[i][k] (coefficients follow the loops).
  const std::string text = kernel_to_string(t);
  EXPECT_NE(text.find("c[i][j] = c[i][j] + a[i][k] * b[k][j];"), std::string::npos) << text;
}

TEST(Transform, InterchangePreservesMatSemantics) {
  // Accumulation is commutative under wrap-around arithmetic, so every loop
  // order computes bit-identical results.
  const Kernel k = kernels::mat();
  ArrayStore base(k);
  base.randomize(99);
  ArrayStore reference = base;
  interpret(k, reference);

  for (const auto& [a, b] : {std::pair{0, 1}, std::pair{0, 2}, std::pair{1, 2}}) {
    const Kernel t = interchange_loops(k, a, b);
    ArrayStore permuted(t);
    permuted.randomize(99);
    interpret(t, permuted);
    EXPECT_TRUE(permuted.equals(reference)) << "interchange " << a << "<->" << b;
  }
}

TEST(Transform, InterchangePreservesExampleSemantics) {
  const Kernel k = kernels::paper_example();
  ArrayStore reference(k);
  reference.randomize(5);
  interpret(k, reference);

  const Kernel t = interchange_loops(k, 1, 2);  // swap j and k
  ArrayStore permuted(t);
  permuted.randomize(5);
  interpret(t, permuted);
  EXPECT_TRUE(permuted.equals(reference));
}

TEST(Transform, InterchangeMovesReuseLevels) {
  // In mat's (i,j,k) order a[i][k] carries reuse at j (level 1, window 16);
  // with j outermost the carrying level moves to 0 and the window must span
  // the whole inner (i,k) subnest — full replacement now needs all 256
  // elements. Interchange genuinely changes the register economics.
  const RefModel before(kernels::mat());
  const RefModel after(interchange_loops(kernels::mat(), 0, 1));
  const int a_before = group_named(before.groups(), "a[i][k]").id;
  const int a_after = group_named(after.groups(), "a[i][k]").id;
  EXPECT_EQ(before.reuse()[a_before].outermost_level(), 1);
  EXPECT_EQ(before.beta_full(a_before), 16);
  EXPECT_EQ(after.reuse()[a_after].outermost_level(), 0);
  EXPECT_EQ(after.beta_full(a_after), 256);
}

TEST(Transform, SafetyCheckAcceptsPaperKernels) {
  EXPECT_TRUE(interchange_is_safe(kernels::mat()));
  EXPECT_TRUE(interchange_is_safe(kernels::fir()));
  EXPECT_TRUE(interchange_is_safe(kernels::paper_example()));
}

TEST(Transform, SafetyCheckRejectsNonCommutativeSelfUpdate) {
  const Kernel k = parse_kernel(R"(
    kernel shifty {
      array x[8];
      for i in 0..8 { for j in 0..4 { x[i] = x[i] * 2 + j; } }
    }
  )");
  EXPECT_FALSE(interchange_is_safe(k));
}

TEST(Transform, SafetyCheckRejectsCrossSubscriptFlow) {
  const Kernel k = parse_kernel(R"(
    kernel chain {
      array x[10];
      for i in 0..8 { x[i + 1] = x[i] + 1; }
    }
  )");
  EXPECT_FALSE(interchange_is_safe(k));
}

TEST(Transform, OutOfRangeLevelThrows) {
  EXPECT_THROW(interchange_loops(kernels::mat(), 0, 3), Error);
}

}  // namespace
}  // namespace srra
