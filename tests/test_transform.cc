#include <gtest/gtest.h>

#include "core/registry.h"
#include "ir/printer.h"
#include "ir/parser.h"
#include "ir/transform.h"
#include "kernels/kernels.h"
#include "sim/interp.h"

namespace srra {
namespace {

TEST(Transform, InterchangeSwapsLoopsAndSubscripts) {
  const Kernel k = kernels::mat();
  const Kernel t = interchange_loops(k, 0, 2);
  EXPECT_EQ(t.loop(0).var, "k");
  EXPECT_EQ(t.loop(2).var, "i");
  // a[i][k] must still read a[i][k] (coefficients follow the loops).
  const std::string text = kernel_to_string(t);
  EXPECT_NE(text.find("c[i][j] = c[i][j] + a[i][k] * b[k][j];"), std::string::npos) << text;
}

TEST(Transform, InterchangePreservesMatSemantics) {
  // Accumulation is commutative under wrap-around arithmetic, so every loop
  // order computes bit-identical results.
  const Kernel k = kernels::mat();
  ArrayStore base(k);
  base.randomize(99);
  ArrayStore reference = base;
  interpret(k, reference);

  for (const auto& [a, b] : {std::pair{0, 1}, std::pair{0, 2}, std::pair{1, 2}}) {
    const Kernel t = interchange_loops(k, a, b);
    ArrayStore permuted(t);
    permuted.randomize(99);
    interpret(t, permuted);
    EXPECT_TRUE(permuted.equals(reference)) << "interchange " << a << "<->" << b;
  }
}

TEST(Transform, InterchangePreservesExampleSemantics) {
  const Kernel k = kernels::paper_example();
  ArrayStore reference(k);
  reference.randomize(5);
  interpret(k, reference);

  const Kernel t = interchange_loops(k, 1, 2);  // swap j and k
  ArrayStore permuted(t);
  permuted.randomize(5);
  interpret(t, permuted);
  EXPECT_TRUE(permuted.equals(reference));
}

TEST(Transform, InterchangeMovesReuseLevels) {
  // In mat's (i,j,k) order a[i][k] carries reuse at j (level 1, window 16);
  // with j outermost the carrying level moves to 0 and the window must span
  // the whole inner (i,k) subnest — full replacement now needs all 256
  // elements. Interchange genuinely changes the register economics.
  const RefModel before(kernels::mat());
  const RefModel after(interchange_loops(kernels::mat(), 0, 1));
  const int a_before = group_named(before.groups(), "a[i][k]").id;
  const int a_after = group_named(after.groups(), "a[i][k]").id;
  EXPECT_EQ(before.reuse()[a_before].outermost_level(), 1);
  EXPECT_EQ(before.beta_full(a_before), 16);
  EXPECT_EQ(after.reuse()[a_after].outermost_level(), 0);
  EXPECT_EQ(after.beta_full(a_after), 256);
}

TEST(Transform, SafetyCheckAcceptsPaperKernels) {
  EXPECT_TRUE(interchange_is_safe(kernels::mat()));
  EXPECT_TRUE(interchange_is_safe(kernels::fir()));
  EXPECT_TRUE(interchange_is_safe(kernels::paper_example()));
}

TEST(Transform, SafetyCheckRejectsNonCommutativeSelfUpdate) {
  const Kernel k = parse_kernel(R"(
    kernel shifty {
      array x[8];
      for i in 0..8 { for j in 0..4 { x[i] = x[i] * 2 + j; } }
    }
  )");
  EXPECT_FALSE(interchange_is_safe(k));
}

TEST(Transform, SafetyCheckRejectsCrossSubscriptFlow) {
  const Kernel k = parse_kernel(R"(
    kernel chain {
      array x[10];
      for i in 0..8 { x[i + 1] = x[i] + 1; }
    }
  )");
  EXPECT_FALSE(interchange_is_safe(k));
}

TEST(Transform, OutOfRangeLevelThrows) {
  EXPECT_THROW(interchange_loops(kernels::mat(), 0, 3), Error);
}

TEST(Transform, SafetyCheckRejectsNonInjectiveWritePattern) {
  // q[2i+2j] collides across incomparable iterations ((i+1, j) vs (i, j+1)),
  // so a read-before-write chain through it observes any reorder. The
  // mixed-radix injectivity condition must reject it.
  const Kernel k = parse_kernel(R"(
    kernel collide {
      array p[10]; array q[15];
      for i in 0..4 { for j in 0..4 {
        p[i + j] = q[2*i + 2*j];
        q[2*i + 2*j] = 0;
      } }
    }
  )");
  EXPECT_FALSE(reorder_is_safe(k));
}

// ---- Tiling ----

TEST(Transform, TileSplitsLoopAndRemapsSubscripts) {
  const Kernel k = kernels::mat();  // (i,j,k), 16 each
  const Kernel t = apply_transform(k, LoopTransform::tile(2, 4));
  ASSERT_EQ(t.depth(), 4);
  EXPECT_EQ(t.loop(2).var, "kt");
  EXPECT_EQ(t.loop(3).var, "ki");
  EXPECT_EQ(t.loop(2).lower, 0);
  EXPECT_EQ(t.loop(2).upper, 16);
  EXPECT_EQ(t.loop(2).step, 4);
  EXPECT_EQ(t.loop(2).trip_count(), 4);
  EXPECT_EQ(t.loop(3).upper, 4);
  EXPECT_EQ(t.loop(3).trip_count(), 4);
  // v = vt + vi: a[i][k] becomes a[i][kt + ki].
  const std::string text = kernel_to_string(t);
  EXPECT_NE(text.find("a[i][kt + ki]"), std::string::npos) << text;
  EXPECT_NE(text.find("b[kt + ki][j]"), std::string::npos) << text;
}

TEST(Transform, TilePreservesSemantics) {
  const Kernel k = kernels::mat();
  ArrayStore reference(k);
  reference.randomize(7);
  interpret(k, reference);
  for (const LoopTransform& t : {LoopTransform::tile(0, 4), LoopTransform::tile(1, 8),
                                LoopTransform::tile(2, 2)}) {
    const Kernel tiled = apply_transform(k, t);
    ArrayStore got(tiled);
    got.randomize(7);
    interpret(tiled, got);
    EXPECT_TRUE(got.equals(reference)) << to_string(t);
  }
}

TEST(Transform, TilingMovesReuseWindowIntoBudget) {
  // The Domagała-style lever ("A Tiling Perspective for Register
  // Optimization"): in the source nest b[k][j]'s reuse is carried at i, so
  // full replacement needs the whole 600-element (j,k) window. Tiling j and
  // k and hoisting the tile loops outside i leaves one 4x5 tile as the
  // window: full reuse of b now fits in 20 registers — the transform moved
  // the reuse window into a fixed budget instead of growing the budget to
  // the window.
  const Kernel k = kernels::paper_example();
  const RefModel before(k.clone());
  EXPECT_EQ(before.beta_full(group_named(before.groups(), "b[k][j]").id), 600);

  const std::vector<LoopTransform> sequence{
      LoopTransform::tile(1, 4),                    // (i,jt,ji,k)
      LoopTransform::tile(3, 5),                    // (i,jt,ji,kt,ki)
      LoopTransform::interchange({1, 3, 0, 2, 4})}; // (jt,kt,i,ji,ki)
  ASSERT_TRUE(is_safe(k, srra::span<const LoopTransform>(sequence.data(),
                                                         sequence.size())));
  const RefModel after(
      apply(k, srra::span<const LoopTransform>(sequence.data(), sequence.size())));
  const RefGroup& b = group_named(after.groups(), "b[kt + ki][jt + ji]");
  EXPECT_EQ(after.reuse()[static_cast<std::size_t>(b.id)].outermost_level(), 2);
  EXPECT_EQ(after.beta_full(b.id), 20);
}

TEST(Transform, TileRequiresDividingSize) {
  // apply_transform keeps the full-tile contract; non-dividing sizes go
  // through apply_peeled, which is_safe now accepts where peeling is legal.
  EXPECT_THROW(apply_transform(kernels::mat(), LoopTransform::tile(0, 3)), Error);
  EXPECT_THROW(apply_transform(kernels::mat(), LoopTransform::tile(0, 1)), Error);
  EXPECT_THROW(apply_transform(kernels::mat(), LoopTransform::tile(4, 2)), Error);
  EXPECT_TRUE(is_safe(kernels::mat(), LoopTransform::tile(0, 3)));   // peelable
  EXPECT_FALSE(is_safe(kernels::mat(), LoopTransform::tile(0, 17)));  // size > trip
  EXPECT_FALSE(is_safe(kernels::mat(), LoopTransform::tile(0, 1)));
  EXPECT_TRUE(is_safe(kernels::mat(), LoopTransform::tile(0, 4)));
}

TEST(Transform, TileUniquifiesLoopNames) {
  const Kernel k = parse_kernel(R"(
    kernel named {
      array x[8];
      for i in 0..8 { for it in 0..4 { x[i] = x[i] + it; } }
    }
  )");
  const Kernel t = apply_transform(k, LoopTransform::tile(0, 4));
  EXPECT_EQ(t.loop(0).var, "it1");  // "it" is taken by the source nest
  EXPECT_EQ(t.loop(1).var, "ii");
}

// ---- Unroll-and-jam ----

TEST(Transform, UnrollJamReplicatesBodyWithOffsets) {
  const Kernel k = kernels::mat();
  const Kernel u = apply_transform(k, LoopTransform::unroll_jam(2, 2));
  ASSERT_EQ(u.depth(), 3);
  EXPECT_EQ(u.loop(2).step, 2);
  EXPECT_EQ(u.loop(2).trip_count(), 8);
  ASSERT_EQ(u.body().size(), 2u);  // one statement became two copies
  const std::string text = kernel_to_string(u);
  EXPECT_NE(text.find("a[i][k]"), std::string::npos) << text;
  EXPECT_NE(text.find("a[i][k + 1]"), std::string::npos) << text;
}

TEST(Transform, UnrollJamPreservesSemantics) {
  const Kernel k = kernels::mat();
  ArrayStore reference(k);
  reference.randomize(11);
  interpret(k, reference);
  // Only the k loop is legal for MAT: c[i][j] varies in i and j, so
  // unrolling those would alias the write pattern.
  for (const LoopTransform& t :
       {LoopTransform::unroll_jam(2, 2), LoopTransform::unroll_jam(2, 4)}) {
    ASSERT_TRUE(is_safe(k, t)) << to_string(t);
    const Kernel unrolled = apply_transform(k, t);
    ArrayStore got(unrolled);
    got.randomize(11);
    interpret(unrolled, got);
    EXPECT_TRUE(got.equals(reference)) << to_string(t);
  }

  const Kernel f = kernels::fir();  // y[i] += x[i+j]*h[j]: j is the safe level
  ASSERT_TRUE(is_safe(f, LoopTransform::unroll_jam(1, 2)));
  ArrayStore fir_reference(f);
  fir_reference.randomize(13);
  interpret(f, fir_reference);
  const Kernel fir_unrolled = apply_transform(f, LoopTransform::unroll_jam(1, 2));
  ArrayStore fir_got(fir_unrolled);
  fir_got.randomize(13);
  interpret(fir_unrolled, fir_got);
  EXPECT_TRUE(fir_got.equals(fir_reference));
}

TEST(Transform, UnrollJamExposesForwardWiring) {
  // Unrolling j in the worked example duplicates the d[i][k] write/read
  // chain; the copies keep the same subscript pattern (d is invariant in j),
  // so the walker sees twice the same-iteration forwarding per iteration.
  const RefModel before(kernels::paper_example());
  const RefModel after(
      apply_transform(kernels::paper_example(), LoopTransform::unroll_jam(1, 2)));
  const RefGroup& d_before = group_named(before.groups(), "d[i][k]");
  const RefGroup& d_after = group_named(after.groups(), "d[i][k]");
  EXPECT_EQ(d_before.forwarded_reads_per_iter, 1);
  EXPECT_EQ(d_after.forwarded_reads_per_iter, 2);
}

TEST(Transform, UnrollJamRejectsAliasingWrites) {
  // x[i]'s copies would write x[i] and x[i+1]: two aliasing write patterns
  // on one array, which the group-based register model cannot represent.
  const Kernel k = parse_kernel(R"(
    kernel alias {
      array x[8]; array y[8];
      for i in 0..8 { x[i] = y[i] + 1; }
    }
  )");
  EXPECT_FALSE(is_safe(k, LoopTransform::unroll_jam(0, 2)));
  // Unrolling a level the writes are invariant in is fine.
  EXPECT_TRUE(is_safe(kernels::mat(), LoopTransform::unroll_jam(2, 2)));
  // Non-dividing factors are rejected.
  EXPECT_FALSE(is_safe(kernels::mat(), LoopTransform::unroll_jam(2, 3)));
}

// ---- Sequences and the canonical encoding ----

TEST(Transform, SequencesComposeLeftToRight) {
  const Kernel k = kernels::mat();
  const std::vector<LoopTransform> sequence{
      LoopTransform::interchange({2, 0, 1}), LoopTransform::tile(1, 8),
      LoopTransform::unroll_jam(0, 2)};
  const Kernel direct = apply(
      k, srra::span<const LoopTransform>(sequence.data(), sequence.size()));
  Kernel staged = k.clone();
  for (const LoopTransform& t : sequence) staged = apply_transform(staged, t);
  EXPECT_EQ(kernel_to_string(direct), kernel_to_string(staged));
  EXPECT_EQ(structural_hash(direct), structural_hash(staged));

  ArrayStore reference(k);
  reference.randomize(3);
  interpret(k, reference);
  ArrayStore got(direct);
  got.randomize(3);
  interpret(direct, got);
  EXPECT_TRUE(got.equals(reference));
}

TEST(Transform, CanonicalEncodingRoundTrips) {
  const std::string text = "i(2,0,1);t(1,8);uj(0,2)";
  const std::vector<LoopTransform> parsed = parse_transforms(text);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], LoopTransform::interchange({2, 0, 1}));
  EXPECT_EQ(parsed[1], LoopTransform::tile(1, 8));
  EXPECT_EQ(parsed[2], LoopTransform::unroll_jam(0, 2));
  EXPECT_EQ(to_string(srra::span<const LoopTransform>(parsed.data(), parsed.size())),
            text);
  EXPECT_TRUE(parse_transforms("").empty());
  EXPECT_TRUE(parse_transforms("  ").empty());
  EXPECT_EQ(parse_transforms(" t( 1 , 8 ) ").front(), LoopTransform::tile(1, 8));
}

TEST(Transform, MalformedEncodingThrows) {
  EXPECT_THROW(parse_transforms("x(1,2)"), Error);
  EXPECT_THROW(parse_transforms("t(1)"), Error);
  EXPECT_THROW(parse_transforms("t(1,2,3)"), Error);
  EXPECT_THROW(parse_transforms("i(1)"), Error);
  EXPECT_THROW(parse_transforms("t(1,2"), Error);
  EXPECT_THROW(parse_transforms("t(1,-2)"), Error);
  EXPECT_THROW(parse_transforms("t(a,2)"), Error);
  EXPECT_THROW(parse_transforms("t(1,2);;t(0,2)"), Error);
}

TEST(Transform, SequenceSafetyChecksEachPrefix) {
  const Kernel k = kernels::mat();
  // t(2,4) leaves ki with trip 4; tiling it by 8 cannot divide.
  const std::vector<LoopTransform> bad{LoopTransform::tile(2, 4),
                                       LoopTransform::tile(3, 8)};
  EXPECT_FALSE(is_safe(k, srra::span<const LoopTransform>(bad.data(), bad.size())));
  const std::vector<LoopTransform> good{LoopTransform::tile(2, 8),
                                        LoopTransform::tile(3, 4)};
  EXPECT_TRUE(is_safe(k, srra::span<const LoopTransform>(good.data(), good.size())));
}

TEST(Transform, StructuralHashIgnoresNamesOnly) {
  const Kernel a = kernels::mat();
  Kernel b = kernels::mat();
  b.set_name("other");
  EXPECT_EQ(structural_hash(a), structural_hash(b));
  EXPECT_NE(structural_hash(a),
            structural_hash(apply_transform(a, LoopTransform::tile(2, 4))));
  EXPECT_NE(structural_hash(a),
            structural_hash(interchange_loops(a, 0, 1)));
}

}  // namespace
}  // namespace srra
