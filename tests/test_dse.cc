// DSE subsystem tests (DESIGN.md §7): budget-spec parsing, space
// enumeration, Pareto dominance on hand-built point sets, engine
// determinism across thread counts (byte-identical reports), the fixed
// thread pool, the JSON writer, and the driver's shared-model sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <sstream>
#include <vector>

#include "dse/report.h"
#include "ir/parser.h"
#include "kernels/kernels.h"
#include "support/error.h"
#include "support/json.h"
#include "support/thread_pool.h"

namespace {

using namespace srra;
using namespace srra::dse;

// ---- Budget specs ----

TEST(BudgetSpec, SingleAndList) {
  EXPECT_EQ(parse_budget_spec("64"), (std::vector<std::int64_t>{64}));
  EXPECT_EQ(parse_budget_spec("8,16,64"), (std::vector<std::int64_t>{8, 16, 64}));
  EXPECT_EQ(parse_budget_spec("64,8,64"), (std::vector<std::int64_t>{8, 64}));
}

TEST(BudgetSpec, DoublingLadder) {
  EXPECT_EQ(parse_budget_spec("8:128"),
            (std::vector<std::int64_t>{8, 16, 32, 64, 128}));
  EXPECT_EQ(parse_budget_spec("16:64"), (std::vector<std::int64_t>{16, 32, 64}));
  // hi is appended when the ladder overshoots it.
  EXPECT_EQ(parse_budget_spec("16:50"), (std::vector<std::int64_t>{16, 32, 50}));
}

TEST(BudgetSpec, ArithmeticStep) {
  EXPECT_EQ(parse_budget_spec("8:24:8"), (std::vector<std::int64_t>{8, 16, 24}));
  EXPECT_EQ(parse_budget_spec("10:25:10"), (std::vector<std::int64_t>{10, 20, 25}));
}

TEST(BudgetSpec, Malformed) {
  EXPECT_THROW(parse_budget_spec(""), Error);
  EXPECT_THROW(parse_budget_spec("abc"), Error);
  EXPECT_THROW(parse_budget_spec("0"), Error);
  EXPECT_THROW(parse_budget_spec("-8"), Error);
  EXPECT_THROW(parse_budget_spec("64:8"), Error);
  EXPECT_THROW(parse_budget_spec("8:64:0"), Error);
  EXPECT_THROW(parse_budget_spec("8:64:8:2"), Error);
  // Overflow-sized input must raise srra::Error, not std::out_of_range,
  // and the doubling ladder must never be asked to double past int64.
  EXPECT_THROW(parse_budget_spec("99999999999999999999"), Error);
  EXPECT_THROW(parse_budget_spec("2000000"), Error);
  EXPECT_THROW(parse_budget_spec("8:99999999999999999999"), Error);
}

// ---- Space enumeration ----

AxisSpec example_axes() {
  AxisSpec axes;
  axes.kernels.push_back({"example", kernels::paper_example()});
  return axes;
}

TEST(Space, CrossProductCounts) {
  AxisSpec axes = example_axes();
  axes.kernels.push_back({"FIR", kernels::fir()});
  axes.budgets = {16, 64};
  axes.fetch_modes = {true, false};
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  ASSERT_EQ(space.variants.size(), 2u);
  // 2 variants x 2 fetch x 3 algorithms x 2 budgets.
  ASSERT_EQ(space.points.size(), 24u);
  for (const SpacePoint& point : space.points) {
    EXPECT_EQ(point.index, space.points[static_cast<std::size_t>(point.index)].index);
  }
}

TEST(Space, InterchangeEnumeratesSourceOrderFirst) {
  AxisSpec axes = example_axes();
  axes.transforms.interchange = true;
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  ASSERT_EQ(space.variants.size(), 6u);  // 3! orders of the safe example nest
  EXPECT_EQ(space.variants.front().order, "(i,j,k)");
  // Every variant keeps the kernel name; orders are distinct.
  for (const Variant& variant : space.variants) {
    EXPECT_EQ(variant.kernel_name, "example");
  }
}

TEST(Space, DeepNestsKeepSourceOrder) {
  AxisSpec axes;
  axes.kernels.push_back({"BIC", kernels::bic()});  // depth 4 > cap
  axes.transforms.interchange = true;
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  EXPECT_EQ(space.variants.size(), 1u);
}

TEST(Space, EmptyAxisThrows) {
  EXPECT_THROW(enumerate_space(AxisSpec{}), Error);
  AxisSpec axes = example_axes();
  axes.budgets.clear();
  EXPECT_THROW(enumerate_space(std::move(axes)), Error);
}

TEST(Space, TileAxisEnumeratesLegalSitesOnly) {
  AxisSpec axes;
  axes.kernels.push_back({"MAT", kernels::mat()});  // 16x16x16
  axes.transforms.tile_sizes = {4, 5};  // 5 divides nothing -> peeled tiles
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  // Source + Tile(level, 4) and peeled Tile(level, 5) per level (MAT is an
  // accumulator kernel, so inner-level peeling passes reorder_is_safe).
  ASSERT_EQ(space.variants.size(), 7u);
  EXPECT_EQ(space.variants[0].label(), "(i,j,k)");
  EXPECT_EQ(space.variants[1].label(), "t(0,4)");
  EXPECT_EQ(space.variants[2].label(), "t(0,5)");
  EXPECT_EQ(space.variants[3].label(), "t(1,4)");
  EXPECT_EQ(space.variants[5].label(), "t(2,4)");
  EXPECT_EQ(space.variants[5].kernel.depth(), 4);
  // The legacy order label still describes the transformed nest.
  EXPECT_EQ(space.variants[5].order, "(i,j,kt,ki)");
  // Full tiles stay single-piece; a peeled tile carries its remainder nest.
  EXPECT_TRUE(space.variants[1].epilogues.empty());
  ASSERT_EQ(space.variants[2].epilogues.size(), 1u);
  EXPECT_EQ(space.variants[2].kernel.loop(0).trip_count(), 3);      // 15/5 tiles
  EXPECT_EQ(space.variants[2].epilogues[0].loop(0).trip_count(), 1);  // 16 % 5
  EXPECT_EQ(space.stats.variants_generated,
            space.stats.variants_pruned + space.stats.variants_evaluated);
  EXPECT_EQ(space.stats.variants_evaluated, 7);
}

TEST(Space, UnrollAxisSkipsAliasingLevels) {
  AxisSpec axes;
  axes.kernels.push_back({"MAT", kernels::mat()});
  axes.transforms.unroll_factors = {2};
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  // c[i][j] varies in i and j, so only the k loop may be unroll-jammed.
  ASSERT_EQ(space.variants.size(), 2u);
  EXPECT_EQ(space.variants[1].label(), "uj(2,2)");
  EXPECT_EQ(space.variants[1].kernel.body().size(), 2u);
}

TEST(Space, StructuralHashDeduplicatesNoOpOrders) {
  // i and j have identical bounds and never appear in a subscript, so the
  // 6 permutations yield only 3 structurally distinct nests (the position
  // of k decides); the hash dedup must collapse the rest.
  AxisSpec axes;
  axes.kernels.push_back(
      {"acc", parse_kernel(R"(
        kernel acc {
          array y[9];
          for i in 0..4 { for j in 0..4 { for k in 0..8 {
            y[k] = y[k] + 1;
          } } }
        }
      )")});
  axes.transforms.interchange = true;
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  EXPECT_EQ(space.variants.size(), 3u);
}

TEST(Space, ExplicitSequencesEnumerateAfterSource) {
  AxisSpec axes;
  axes.kernels.push_back({"MAT", kernels::mat()});
  axes.transforms.sequences = {parse_transforms("t(2,4);uj(2,2)"),
                               parse_transforms("i(1,0,2)")};
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  ASSERT_EQ(space.variants.size(), 3u);
  EXPECT_EQ(space.variants[0].label(), "(i,j,k)");
  EXPECT_EQ(space.variants[1].label(), "t(2,4);uj(2,2)");
  EXPECT_EQ(space.variants[2].label(), "(j,i,k)");  // pure interchange keeps
                                                    // the legacy order label
  EXPECT_EQ(space.variants[2].encoding, "i(1,0,2)");
}

TEST(Space, IllegalExplicitSequenceThrows) {
  AxisSpec axes;
  axes.kernels.push_back({"MAT", kernels::mat()});
  axes.transforms.sequences = {parse_transforms("t(0,17)")};  // size > trip
  EXPECT_THROW(enumerate_space(std::move(axes)), Error);

  // The legality contract holds even when the variant cap has already been
  // reached: an illegal sequence throws instead of being silently skipped.
  AxisSpec capped;
  capped.kernels.push_back({"MAT", kernels::mat()});
  capped.transforms.max_variants_per_kernel = 1;
  capped.transforms.sequences = {parse_transforms("t(0,4)"),
                                 parse_transforms("t(0,17)")};
  EXPECT_THROW(enumerate_space(std::move(capped)), Error);

  // t(0,3) used to be illegal under the full-tile restriction; it now
  // enumerates as a peeled tile (5 full tiles of 3 + a 1-iteration rest).
  AxisSpec peeled;
  peeled.kernels.push_back({"MAT", kernels::mat()});
  peeled.transforms.sequences = {parse_transforms("t(0,3)")};
  const EnumeratedSpace space = enumerate_space(std::move(peeled));
  ASSERT_EQ(space.variants.size(), 2u);
  ASSERT_EQ(space.variants[1].epilogues.size(), 1u);
}

TEST(Space, VariantCapBoundsEnumeration) {
  AxisSpec axes;
  axes.kernels.push_back({"MAT", kernels::mat()});
  axes.transforms.interchange = true;
  axes.transforms.tile_sizes = {2, 4, 8};
  axes.transforms.unroll_factors = {2, 4};
  axes.transforms.max_variants_per_kernel = 10;
  const EnumeratedSpace space = enumerate_space(std::move(axes));
  EXPECT_EQ(space.variants.size(), 10u);
  EXPECT_EQ(space.variants[0].label(), "(i,j,k)");  // source always survives
}

// ---- Pareto frontier on hand-built point sets ----

using Points = std::vector<std::pair<double, double>>;

TEST(Pareto, EmptyAndSingle) {
  EXPECT_TRUE(pareto_frontier({}).empty());
  EXPECT_EQ(pareto_frontier({{3.0, 4.0}}), (std::vector<int>{0}));
}

TEST(Pareto, TradeOffChainAllSurvive) {
  const Points points{{1, 5}, {2, 4}, {3, 3}};
  EXPECT_EQ(pareto_frontier(points), (std::vector<int>{0, 1, 2}));
}

TEST(Pareto, DominatedPointsDrop) {
  const Points points{{1, 1}, {2, 2}, {1, 2}, {3, 1}};
  // (2,2), (1,2) and (3,1) are all dominated by (1,1).
  EXPECT_EQ(pareto_frontier(points), (std::vector<int>{0}));
}

TEST(Pareto, CoordinateTiesAllKept) {
  const Points points{{1, 2}, {1, 2}, {1, 3}, {2, 2}};
  // The two copies of (1,2) do not dominate each other; (1,3) loses to
  // them on y at equal x; (2,2) loses on x at equal y.
  EXPECT_EQ(pareto_frontier(points), (std::vector<int>{0, 1}));
}

TEST(Pareto, FrontierSortedByXThenInputOrder) {
  const Points points{{3, 1}, {1, 3}, {2, 2}};
  EXPECT_EQ(pareto_frontier(points), (std::vector<int>{1, 2, 0}));
}

TEST(Pareto, EqualYKeepsSmallerX) {
  const Points points{{1, 2}, {2, 2}};
  EXPECT_EQ(pareto_frontier(points), (std::vector<int>{0}));
}

// ---- Engine ----

TEST(Explore, MatchesDirectPipeline) {
  AxisSpec axes = example_axes();
  axes.algorithms = {Algorithm::kCpaRa};
  const ExploreResult result = explore(std::move(axes));
  ASSERT_EQ(result.results.size(), 1u);
  ASSERT_TRUE(result.results[0].feasible);

  const RefModel model(kernels::paper_example());
  const DesignPoint direct = run_pipeline(model, Algorithm::kCpaRa);
  EXPECT_EQ(result.results[0].design.cycles.exec_cycles, direct.cycles.exec_cycles);
  EXPECT_EQ(result.results[0].design.allocation.regs, direct.allocation.regs);
  EXPECT_EQ(result.results[0].design.hw.slices, direct.hw.slices);
}

TEST(Explore, InfeasibleBudgetIsReportedNotFatal) {
  AxisSpec axes = example_axes();
  axes.budgets = {2, 64};  // the example has 5 reference groups
  const ExploreResult result = explore(std::move(axes));
  ASSERT_EQ(result.results.size(), 6u);
  for (const SpacePoint& point : result.space.points) {
    const PointResult& r = result.results[static_cast<std::size_t>(point.index)];
    EXPECT_EQ(r.feasible, point.budget == 64) << "budget " << point.budget;
    if (!r.feasible) {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(Explore, FetchAxisChangesTmem) {
  AxisSpec axes = example_axes();
  axes.algorithms = {Algorithm::kFrRa};
  axes.fetch_modes = {true, false};
  const ExploreResult result = explore(std::move(axes));
  ASSERT_EQ(result.results.size(), 2u);
  // Serial accounting can never beat concurrent operand fetch.
  EXPECT_GE(result.results[1].design.cycles.mem_cycles,
            result.results[0].design.cycles.mem_cycles);
}

std::string all_reports(const ExploreResult& result) {
  std::ostringstream os;
  write_points_report(os, result, Format::kText);
  write_points_report(os, result, Format::kCsv);
  write_points_report(os, result, Format::kJson);
  write_pareto_report(os, result, Format::kText);
  write_pareto_report(os, result, Format::kCsv);
  write_pareto_report(os, result, Format::kJson);
  return os.str();
}

AxisSpec paper_axes() {
  AxisSpec axes;
  for (kernels::NamedKernel& nk : kernels::table1_kernels()) {
    axes.kernels.push_back({nk.name, std::move(nk.kernel)});
  }
  axes.budgets = {16, 64};
  return axes;
}

TEST(Explore, ReportsAreByteIdenticalAcrossJobs) {
  ExploreOptions serial;
  serial.jobs = 1;
  const std::string one = all_reports(explore(paper_axes(), serial));

  ExploreOptions threaded;
  threaded.jobs = 8;
  const std::string eight = all_reports(explore(paper_axes(), threaded));

  EXPECT_EQ(one, eight);
}

// ---- The headline transform result (pinned; demonstrated in
// bench_transforms) ----

TEST(Explore, TiledMatVariantDominatesEveryUntiledPoint) {
  // MAT, the sweep bench_transforms reports: budgets {8,16,32,64}, every
  // legal interchange order, tile sizes {4,8}, unroll factor 2, the paper's
  // three allocators. Some tiled/unroll-jammed variant's (registers, Texec)
  // point must strictly dominate the best untiled point — and dominate the
  // best point of *every* untiled loop order — or the transform axis has
  // regressed.
  AxisSpec axes;
  axes.kernels.push_back({"MAT", kernels::mat()});
  axes.budgets = {8, 16, 32, 64};
  axes.transforms.interchange = true;
  axes.transforms.tile_sizes = {4, 8};
  axes.transforms.unroll_factors = {2};
  const ExploreResult result = explore(std::move(axes));

  struct P {
    std::string label;
    std::int64_t regs;
    std::int64_t cycles;
    bool transformed;
  };
  std::vector<P> points;
  for (const SpacePoint& point : result.space.points) {
    const PointResult& r = result.results[static_cast<std::size_t>(point.index)];
    if (!r.feasible) continue;
    const Variant& variant = result.variant_of(point);
    bool transformed = false;
    for (const LoopTransform& t : variant.transforms) {
      if (t.kind != TransformKind::kInterchange) transformed = true;
    }
    points.push_back({variant.label(), r.design.allocation.total(),
                      r.design.cycles.exec_cycles, transformed});
  }

  // Best (min cycles, then min registers) untiled point, overall and per
  // loop order.
  const auto better = [](const P& a, const P& b) {
    return a.cycles != b.cycles ? a.cycles < b.cycles : a.regs < b.regs;
  };
  const P* best_untiled = nullptr;
  std::vector<const P*> per_order;
  for (const P& p : points) {
    if (p.transformed) continue;
    if (best_untiled == nullptr || better(p, *best_untiled)) best_untiled = &p;
    auto it = std::find_if(per_order.begin(), per_order.end(),
                           [&](const P* q) { return q->label == p.label; });
    if (it == per_order.end()) {
      per_order.push_back(&p);
    } else if (better(p, **it)) {
      *it = &p;
    }
  }
  ASSERT_NE(best_untiled, nullptr);
  EXPECT_GE(per_order.size(), 4u);  // several interchange orders enumerated

  const P* strict_dominator = nullptr;
  const P* order_dominator = nullptr;
  for (const P& p : points) {
    if (!p.transformed) continue;
    if (p.regs < best_untiled->regs && p.cycles < best_untiled->cycles &&
        strict_dominator == nullptr) {
      strict_dominator = &p;
    }
    bool all = true;
    for (const P* q : per_order) {
      const bool dominates = p.regs <= q->regs && p.cycles <= q->cycles &&
                             (p.regs < q->regs || p.cycles < q->cycles);
      if (!dominates) {
        all = false;
        break;
      }
    }
    if (all && order_dominator == nullptr) order_dominator = &p;
  }
  ASSERT_NE(strict_dominator, nullptr)
      << "no transformed point strictly dominates the best untiled point ("
      << best_untiled->regs << " regs, " << best_untiled->cycles << " cycles)";
  ASSERT_NE(order_dominator, nullptr);
  // The margin itself: strictly fewer registers AND at least 25% fewer
  // cycles than anything achievable without tiling/unroll-and-jam.
  EXPECT_LT(strict_dominator->regs, best_untiled->regs);
  EXPECT_LE(strict_dominator->cycles * 4, best_untiled->cycles * 3);
}

// ---- Driver sweep helper ----

TEST(Driver, RunBudgetSweepSharesModelAndSkipsInfeasible) {
  const RefModel model(kernels::paper_example());
  const std::vector<DesignPoint> points =
      run_budget_sweep(model, paper_variants(), {2, 64});  // 2 < 5 groups
  ASSERT_EQ(points.size(), 3u);  // one point per algorithm, budget 2 skipped
  for (const DesignPoint& p : points) {
    EXPECT_EQ(p.allocation.budget, 64);
  }
  EXPECT_EQ(points[2].cycles.exec_cycles,
            run_pipeline(model, Algorithm::kCpaRa).cycles.exec_cycles);
}

// ---- ThreadPool ----

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::int64_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(100, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::int64_t i) {
                                   if (i == 37) fail("boom");
                                 }),
               Error);
  // The pool survives a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, SingleJobRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  std::vector<std::int64_t> order;
  pool.parallel_for(5, [&](std::int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ClampJobs) {
  EXPECT_GE(ThreadPool::clamp_jobs(0), 1);
  EXPECT_EQ(ThreadPool::clamp_jobs(7), 7);
  EXPECT_EQ(ThreadPool::clamp_jobs(100000), 256);
}

// ---- JSON writer ----

TEST(Json, EscapesEverythingThatNeedsIt) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, RendersNestedDocument) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.field("name", "FIR \"paper\"");
  json.field("budget", std::int64_t{64});
  json.field("ratio", 0.5);
  json.field("ok", true);
  json.key("path");
  json.null();
  json.key("list");
  json.begin_array();
  json.value(std::int64_t{1});
  json.value(std::int64_t{2});
  json.end_array();
  json.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"FIR \\\"paper\\\"\",\n"
            "  \"budget\": 64,\n"
            "  \"ratio\": 0.5,\n"
            "  \"ok\": true,\n"
            "  \"path\": null,\n"
            "  \"list\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}\n");
}

TEST(Json, EmptyContainersStayOnOneLine) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.key("empty");
  json.begin_array();
  json.end_array();
  json.end_object();
  EXPECT_EQ(os.str(), "{\n  \"empty\": []\n}\n");
}

TEST(Json, MisuseThrows) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  EXPECT_THROW(json.value("no key"), Error);
  EXPECT_THROW(json.end_array(), Error);
}

TEST(Json, NonFiniteBecomesNull) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_NE(os.str().find("null"), std::string::npos);
}

}  // namespace
