// Code generation tests. The C emitter's output is actually compiled with
// the host compiler and executed; its checksum must equal the golden
// interpreter's over identically seeded arrays — for plain and transformed
// variants. The VHDL emitter is checked structurally.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/c_emitter.h"
#include "codegen/vhdl_emitter.h"
#include "core/registry.h"
#include "ir/parser.h"
#include "kernels/kernels.h"
#include "sim/interp.h"
#include "sim/storage.h"
#include "support/str.h"

namespace srra {
namespace {

constexpr std::uint64_t kSeed = 20050307;  // DATE'05 started March 7, 2005

// Compiles `source` with the host C compiler, runs it and returns stdout's
// first line as an unsigned integer.
std::uint64_t compile_and_run(const std::string& source, const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/srra_gen_" + tag + ".c";
  const std::string bin_path = dir + "/srra_gen_" + tag;
  {
    std::ofstream out(c_path);
    out << source;
  }
  const std::string compile = cat("cc -O1 -std=c11 -o ", bin_path, " ", c_path, " 2>&1");
  if (std::system(compile.c_str()) != 0) {
    ADD_FAILURE() << "generated C failed to compile: " << c_path;
    return 0;
  }
  FILE* pipe = popen(bin_path.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "failed to run " << bin_path;
    return 0;
  }
  unsigned long long value = 0;
  const int matched = fscanf(pipe, "%llu", &value);
  pclose(pipe);
  EXPECT_EQ(matched, 1);
  return value;
}

std::uint64_t golden_checksum(const Kernel& kernel) {
  ArrayStore store(kernel);
  store.randomize(kSeed);
  interpret(kernel, store);
  return store_checksum(store, kernel);
}

class CEmitterEndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(CEmitterEndToEnd, TransformedCodeComputesGoldenChecksum) {
  const std::string name = GetParam();
  const RefModel m(parse_kernel(kernels::kernel_source(name)));
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kCpaRa, m, 64));
  CEmitOptions options;
  options.seed = kSeed;
  const std::string source = emit_c(m, plan, options);
  const std::uint64_t got = compile_and_run(source, name + std::string("_cpa"));
  EXPECT_EQ(got, golden_checksum(m.kernel())) << name;
}

INSTANTIATE_TEST_SUITE_P(Kernels, CEmitterEndToEnd,
                         ::testing::Values("example", "fir", "mat", "imi"));

TEST(CEmitter, PlainModeAlsoMatchesGolden) {
  const RefModel m(kernels::paper_example());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kFrRa, m, 64));
  CEmitOptions options;
  options.seed = kSeed;
  options.plain = true;
  const std::uint64_t got = compile_and_run(emit_c(m, plan, options), "example_plain");
  EXPECT_EQ(got, golden_checksum(m.kernel()));
}

TEST(CEmitter, EmitsRegisterFilePerHeldGroup) {
  const RefModel m(kernels::paper_example());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kCpaRa, m, 64));
  const std::string src = emit_c(m, plan, {});
  // CPA holds a (16), b (16), c (1), d (30); e stays RAM-resident.
  EXPECT_NE(src.find("srra_rf rf_g0"), std::string::npos);   // a
  EXPECT_NE(src.find("srra_rf rf_g1"), std::string::npos);   // b
  EXPECT_NE(src.find("srra_rf rf_g2"), std::string::npos);   // d
  EXPECT_NE(src.find("srra_rf rf_g3"), std::string::npos);   // c
  EXPECT_EQ(src.find("srra_rf rf_g4"), std::string::npos);   // e: none
  EXPECT_NE(src.find("e_data["), std::string::npos);
}

TEST(CEmitter, ChecksumHelperMatchesItsOwnDefinition) {
  const Kernel k = kernels::paper_example();
  ArrayStore s(k);
  s.randomize(kSeed);
  const std::uint64_t before = store_checksum(s, k);
  interpret(k, s);
  EXPECT_NE(store_checksum(s, k), before) << "execution must change the state";
}

// ---- VHDL emitter ----

TEST(VhdlEmitter, StructuralContent) {
  const RefModel m(kernels::paper_example());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kCpaRa, m, 64));
  const std::string vhdl = emit_vhdl(m, plan);

  EXPECT_NE(vhdl.find("entity example_top is"), std::string::npos);
  EXPECT_NE(vhdl.find("architecture behavioral of example_top"), std::string::npos);
  EXPECT_NE(vhdl.find("type state_t is ("), std::string::npos);
  EXPECT_NE(vhdl.find("S_IDLE"), std::string::npos);
  EXPECT_NE(vhdl.find("S_DONE"), std::string::npos);
  // Loop counters for i, j, k.
  EXPECT_NE(vhdl.find("signal cnt_i"), std::string::npos);
  EXPECT_NE(vhdl.find("signal cnt_k"), std::string::npos);
  // BlockRAM interface per array.
  for (const char* array : {"a_addr", "b_addr", "c_addr", "d_addr", "e_addr"}) {
    EXPECT_NE(vhdl.find(array), std::string::npos) << array;
  }
  // Register files for the held groups.
  EXPECT_NE(vhdl.find("type rf_g0_t is array (0 to 15)"), std::string::npos);
  EXPECT_NE(vhdl.find("type rf_g2_t is array (0 to 29)"), std::string::npos);
  EXPECT_NE(vhdl.find("rising_edge(clk)"), std::string::npos);
}

TEST(VhdlEmitter, OneStateDeclaredPerBodyNode) {
  const RefModel m(kernels::mat());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kFrRa, m, 64));
  const std::string vhdl = emit_vhdl(m, plan);
  // mat body: reads c, a, b; ops *, +; write c -> 4 when-clauses for memory
  // plus 2 for ops, all present.
  EXPECT_NE(vhdl.find("S_OP_op0___"), std::string::npos);  // multiply
  EXPECT_NE(vhdl.find("S_WR_c_i__j_"), std::string::npos);
  EXPECT_NE(vhdl.find("when S_STEP"), std::string::npos);
}

TEST(VhdlEmitter, LoopVarFeedsDatapath) {
  const RefModel m(kernels::imi());
  const TransformPlan plan = plan_scalar_replacement(m, allocate(Algorithm::kCpaRa, m, 64));
  const std::string vhdl = emit_vhdl(m, plan);
  EXPECT_NE(vhdl.find("to_signed(cnt_t, 64)"), std::string::npos);
}

}  // namespace
}  // namespace srra
