// Allocator tests: the three paper algorithms must reproduce the worked
// example's register distributions exactly (Figure 2(c)), plus invariants
// and baselines.
#include <gtest/gtest.h>

#include "core/cpa_ra.h"
#include "core/frontier.h"
#include "core/knapsack.h"
#include "core/registry.h"
#include "kernels/kernels.h"
#include "support/error.h"

namespace srra {
namespace {

std::int64_t regs_of(const RefModel& m, const Allocation& a, const std::string& name) {
  return a.at(group_named(m.groups(), name).id);
}

// ---- Figure 2(c): the worked example with 64 registers ----

TEST(AllocFr, ExampleMatchesPaper) {
  const RefModel m(kernels::paper_example());
  const Allocation a = allocate_fr(m, 64);
  EXPECT_EQ(regs_of(m, a, "a[k]"), 30);
  EXPECT_EQ(regs_of(m, a, "b[k][j]"), 1);
  EXPECT_EQ(regs_of(m, a, "c[j]"), 20);
  EXPECT_EQ(regs_of(m, a, "d[i][k]"), 1);
  EXPECT_EQ(regs_of(m, a, "e[i][j][k]"), 1);
  EXPECT_EQ(a.total(), 53);
  a.validate(m);
}

TEST(AllocPr, ExampleMatchesPaper) {
  const RefModel m(kernels::paper_example());
  const Allocation a = allocate_pr(m, 64);
  EXPECT_EQ(regs_of(m, a, "a[k]"), 30);
  EXPECT_EQ(regs_of(m, a, "b[k][j]"), 1);
  EXPECT_EQ(regs_of(m, a, "c[j]"), 20);
  EXPECT_EQ(regs_of(m, a, "d[i][k]"), 12) << "the 11 leftovers go to d";
  EXPECT_EQ(regs_of(m, a, "e[i][j][k]"), 1);
  EXPECT_EQ(a.total(), 64);
  a.validate(m);
}

TEST(AllocCpa, ExampleMatchesPaper) {
  const RefModel m(kernels::paper_example());
  const Allocation a = allocate_cpa(m, 64);
  EXPECT_EQ(regs_of(m, a, "d[i][k]"), 30) << "cut {d} is cheapest and goes full";
  EXPECT_EQ(regs_of(m, a, "a[k]"), 16) << "cut {a,b} splits the remaining 30";
  EXPECT_EQ(regs_of(m, a, "b[k][j]"), 16);
  EXPECT_EQ(regs_of(m, a, "c[j]"), 1);
  EXPECT_EQ(regs_of(m, a, "e[i][j][k]"), 1);
  EXPECT_EQ(a.total(), 64);
  a.validate(m);
}

TEST(AllocCpa, TraceShowsTwoRounds) {
  const RefModel m(kernels::paper_example());
  std::vector<CpaRound> trace;
  const Allocation a = allocate_cpa_traced(m, 64, CpaOptions{}, trace);
  (void)a;
  ASSERT_EQ(trace.size(), 2u);
  // Round 1: cuts {a,b} and {d} (e is non-reducible); {d} chosen, full.
  EXPECT_EQ(trace[0].cut_groups.size(), 2u);
  ASSERT_EQ(trace[0].chosen.size(), 1u);
  EXPECT_EQ(m.groups()[static_cast<std::size_t>(trace[0].chosen[0])].display, "d[i][k]");
  EXPECT_EQ(trace[0].required, 29);
  EXPECT_FALSE(trace[0].partial);
  // Round 2: cut {a,b} no longer fits; equal division.
  ASSERT_EQ(trace[1].chosen.size(), 2u);
  EXPECT_TRUE(trace[1].partial);
}

// ---- Structural invariants ----

TEST(Alloc, FeasibilityGivesOneEach) {
  const RefModel m(kernels::paper_example());
  const Allocation a = feasibility_allocation(m, 64);
  EXPECT_EQ(a.total(), 5);
  for (std::int64_t r : a.regs) EXPECT_EQ(r, 1);
}

TEST(Alloc, BudgetBelowGroupCountThrows) {
  const RefModel m(kernels::paper_example());
  EXPECT_THROW(feasibility_allocation(m, 4), Error);
  EXPECT_THROW(allocate_fr(m, 4), Error);
}

TEST(Alloc, DistributionString) {
  const RefModel m(kernels::paper_example());
  const Allocation a = allocate_fr(m, 64);
  EXPECT_EQ(a.distribution(), "30/1/1/20/1");  // group order: a, b, d, c, e
}

TEST(Alloc, ValidateRejectsOverBudget) {
  const RefModel m(kernels::paper_example());
  Allocation a = allocate_fr(m, 64);
  a.budget = 10;
  EXPECT_THROW(a.validate(m), Error);
}

TEST(Alloc, ValidateRejectsOverfullGroup) {
  const RefModel m(kernels::paper_example());
  Allocation a = allocate_fr(m, 64);
  a.regs[static_cast<std::size_t>(group_named(m.groups(), "e[i][j][k]").id)] = 5;
  EXPECT_THROW(a.validate(m), Error);
}

// ---- Knapsack baseline ----

TEST(AllocKnapsack, OptimalOnExample) {
  const RefModel m(kernels::paper_example());
  const Allocation ks = allocate_knapsack(m, 64);
  ks.validate(m);
  // With 59 free registers the optimal full-or-nothing picks c (19 regs,
  // 1180) + a (29 regs, 1170) = 2350; adding d (29) would not fit.
  EXPECT_EQ(regs_of(m, ks, "c[j]"), 20);
  EXPECT_EQ(regs_of(m, ks, "a[k]"), 30);
  EXPECT_EQ(regs_of(m, ks, "d[i][k]"), 1);
}

TEST(AllocKnapsack, AtLeastAsGoodAsFr) {
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel m(nk.kernel.clone());
    const std::int64_t budget = 64;
    const Allocation fr = allocate_fr(m, budget);
    const Allocation ks = allocate_knapsack(m, budget);
    std::int64_t fr_value = 0;
    std::int64_t ks_value = 0;
    for (int g = 0; g < m.group_count(); ++g) {
      if (fr.at(g) == m.beta_full(g)) fr_value += m.saved(g);
      if (ks.at(g) == m.beta_full(g)) ks_value += m.saved(g);
    }
    EXPECT_GE(ks_value, fr_value) << nk.name;
  }
}

// ---- Registry ----

TEST(Registry, NamesRoundTrip) {
  for (Algorithm alg : {Algorithm::kFeasibility, Algorithm::kFrRa, Algorithm::kPrRa,
                        Algorithm::kCpaRa, Algorithm::kKnapsack, Algorithm::kOptimalDp}) {
    EXPECT_EQ(parse_algorithm(algorithm_name(alg)), alg);
  }
  EXPECT_EQ(parse_algorithm("cpa"), Algorithm::kCpaRa);
  EXPECT_THROW(parse_algorithm("zzz"), Error);
}

TEST(Registry, OptimalDpSpellings) {
  EXPECT_EQ(parse_algorithm("dp"), Algorithm::kOptimalDp);
  EXPECT_EQ(parse_algorithm("optimal"), Algorithm::kOptimalDp);
  EXPECT_EQ(parse_algorithm("optimal-dp"), Algorithm::kOptimalDp);
  EXPECT_EQ(parse_algorithm("ks"), Algorithm::kKnapsack);
}

TEST(Registry, PaperVariantsAreV1V2V3) {
  const auto v = paper_variants();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], Algorithm::kFrRa);
  EXPECT_EQ(v[1], Algorithm::kPrRa);
  EXPECT_EQ(v[2], Algorithm::kCpaRa);
}

TEST(Registry, DispatchMatchesDirectCalls) {
  const RefModel m(kernels::paper_example());
  EXPECT_EQ(allocate(Algorithm::kFrRa, m, 64).regs, allocate_fr(m, 64).regs);
  EXPECT_EQ(allocate(Algorithm::kPrRa, m, 64).regs, allocate_pr(m, 64).regs);
  EXPECT_EQ(allocate(Algorithm::kCpaRa, m, 64).regs, allocate_cpa(m, 64).regs);
}

// ---- Cross-kernel sanity: every algorithm yields a valid allocation ----

TEST(Alloc, AllAlgorithmsValidOnAllKernels) {
  for (const auto& nk : kernels::table1_kernels()) {
    const RefModel m(nk.kernel.clone());
    for (Algorithm alg : {Algorithm::kFeasibility, Algorithm::kFrRa, Algorithm::kPrRa,
                          Algorithm::kCpaRa, Algorithm::kKnapsack}) {
      const Allocation a = allocate(alg, m, 64);
      EXPECT_NO_THROW(a.validate(m)) << nk.name << " " << algorithm_name(alg);
      EXPECT_LE(a.total(), 64);
    }
  }
}

// ---- Budget sweep property: allocations stay valid and within budget ----

class AllocBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllocBudgetSweep, ValidAtEveryBudget) {
  const RefModel m(kernels::paper_example());
  const std::int64_t budget = GetParam();
  for (Algorithm alg : {Algorithm::kFrRa, Algorithm::kPrRa, Algorithm::kCpaRa,
                        Algorithm::kKnapsack}) {
    const Allocation a = allocate(alg, m, budget);
    a.validate(m);
    EXPECT_LE(a.total(), budget) << algorithm_name(alg);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, AllocBudgetSweep,
                         ::testing::Values(5, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256,
                                           512, 700));

// PR never allocates less than FR, CPA uses at most the budget, and more
// budget never hurts the total saved value of FR.
class AllocMonotone : public ::testing::TestWithParam<int> {};

TEST_P(AllocMonotone, PrDominatesFrInTotalRegisters) {
  const RefModel m(kernels::paper_example());
  const std::int64_t budget = GetParam();
  const Allocation fr = allocate_fr(m, budget);
  const Allocation pr = allocate_pr(m, budget);
  for (int g = 0; g < m.group_count(); ++g) {
    EXPECT_GE(pr.at(g), fr.at(g)) << "budget " << budget << " group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, AllocMonotone,
                         ::testing::Values(5, 10, 20, 40, 64, 100, 200, 652));

}  // namespace
}  // namespace srra
